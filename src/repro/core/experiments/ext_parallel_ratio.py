"""Extension experiment — the parallel/serial transition (§5.5.1).

The paper's future-work proposal: place algorithms *between* the fully
parallelizable (Matmul) and partially parallelizable (K-means) extremes
and "devise a method to decide when it is worth exploiting GPUs based on
the ratio of parallel / serial code".  This experiment sweeps the
:class:`~repro.algorithms.SyntheticWorkflow` ratio from 0 to 1, measures
the user-code GPU speedup on the simulated cluster, predicts the same
curve analytically (Amdahl with transfer overhead), and locates the
break-even ratio both ways.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms import SyntheticWorkflow
from repro.core.experiments.engine import SweepEngine, cells_product
from repro.core.experiments.runners import speedup
from repro.core.report import Table, format_speedup
from repro.data import DatasetSpec
from repro.hardware import minotauro
from repro.perfmodel import CostModel
from repro.perfmodel.amdahl import predict

DEFAULT_RATIOS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass
class RatioPoint:
    """One parallel-ratio configuration."""

    parallel_ratio: float
    measured_user_code_speedup: float | None
    predicted_user_code_speedup: float | None

    @property
    def gpu_worth_it(self) -> bool:
        """Measured verdict: does the GPU win on user code?"""
        return (
            self.measured_user_code_speedup is not None
            and self.measured_user_code_speedup > 1.0
        )


@dataclass
class ParallelRatioResult:
    """The full transition sweep."""

    dataset: str
    grid_rows: int
    points: list[RatioPoint] = field(default_factory=list)

    def breakeven_ratio(self, predicted: bool = False) -> float | None:
        """First swept ratio at which the GPU wins (measured or analytic)."""
        for point in sorted(self.points, key=lambda p: p.parallel_ratio):
            value = (
                point.predicted_user_code_speedup
                if predicted
                else point.measured_user_code_speedup
            )
            if value is not None and value > 1.0:
                return point.parallel_ratio
        return None

    def render(self) -> str:
        """The sweep as a table."""
        table = Table(
            title=(
                "Parallel/serial transition (synthetic workload, "
                f"{self.dataset}, grid {self.grid_rows}x1)"
            ),
            headers=("parallel ratio", "measured uc speedup",
                     "predicted uc speedup", "worth GPU?"),
        )
        for point in self.points:
            table.add_row(
                f"{point.parallel_ratio:.1f}",
                format_speedup(point.measured_user_code_speedup),
                format_speedup(point.predicted_user_code_speedup),
                "yes" if point.gpu_worth_it else "no",
            )
        measured = self.breakeven_ratio()
        predicted = self.breakeven_ratio(predicted=True)
        footer = (
            f"\nbreak-even parallel ratio: measured {measured}, "
            f"analytic {predicted}"
        )
        return table.render() + footer


def run_parallel_ratio_sweep(
    ratios: tuple[float, ...] = DEFAULT_RATIOS,
    rows: int = 2_000_000,
    cols: int = 100,
    grid_rows: int = 64,
    engine: SweepEngine | None = None,
) -> ParallelRatioResult:
    """Sweep the parallel/serial split and compare measured vs analytic."""
    engine = engine if engine is not None else SweepEngine.serial()
    dataset = DatasetSpec("synthetic_sweep", rows=rows, cols=cols)
    model = CostModel(minotauro())
    result = ParallelRatioResult(dataset=dataset.name, grid_rows=grid_rows)
    cells = []
    for ratio in ratios:
        cells.extend(
            cells_product(
                "synthetic",
                (grid_rows,),
                dataset_spec=dataset,
                parallel_ratio=ratio,
            )
        )
    results = engine.run_cells(cells)
    for index, ratio in enumerate(ratios):
        workflow = SyntheticWorkflow(dataset, grid_rows, parallel_ratio=ratio)
        cost = workflow.task_costs()["synthetic_stage"]
        if cost.parallel_flops > 0:
            predicted = predict(cost, model).user_code_speedup
        else:
            predicted = None
        cpu, gpu = results[2 * index], results[2 * index + 1]
        measured = None
        if cpu.ok and gpu.ok and "synthetic_stage" in gpu.user_code:
            measured = speedup(
                cpu.user_code["synthetic_stage"].user_code,
                gpu.user_code["synthetic_stage"].user_code,
            )
        result.points.append(
            RatioPoint(
                parallel_ratio=ratio,
                measured_user_code_speedup=measured,
                predicted_user_code_speedup=predicted,
            )
        )
    return result
