"""The runtime facade: submit tasks, build the DAG, execute, collect traces.

Mirrors the user-visible surface of PyCOMPSs: applications register input
data, call task functions (directly via :meth:`Runtime.submit` or through
the :func:`~repro.runtime.task.task` decorator while the runtime is active
as a context manager), and finally :meth:`Runtime.run` the workflow on the
configured backend.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.faults import CheckpointPolicy, FaultPlan, RecoveryMetrics, RetryPolicy
from repro.hardware import ClusterSpec, StorageKind, minotauro
from repro.perfmodel import TaskCost
from repro.runtime.backends.inprocess import InProcessExecutor
from repro.runtime.backends.simulated import SimulatedExecutor
from repro.runtime.dag import TaskGraph
from repro.runtime.data import DataRef
from repro.runtime.scheduler import SchedulingPolicy
from repro.runtime.task import Task
from repro.tracing import Trace

_active_runtimes: list["Runtime"] = []


def current_runtime() -> "Runtime | None":
    """The innermost active runtime, if any (used by the task decorator)."""
    return _active_runtimes[-1] if _active_runtimes else None


class Backend(str, enum.Enum):
    """Which executor runs the workflow."""

    SIMULATED = "simulated"
    IN_PROCESS = "in_process"
    THREADED = "threaded"


@dataclass(frozen=True)
class RuntimeConfig:
    """Everything that defines an execution environment (Table 1 factors
    of the *resources* and *system* dimensions)."""

    cluster: ClusterSpec = field(default_factory=minotauro)
    storage: StorageKind = StorageKind.SHARED
    scheduling: SchedulingPolicy = SchedulingPolicy.GENERATION_ORDER
    #: Run GPU-eligible tasks on GPU devices (processor-type factor).
    use_gpu: bool = False
    backend: Backend = Backend.SIMULATED
    #: Staged-pipeline mitigation: overlap host-to-device transfer with
    #: kernel execution (§1's "staged pipeline" technique).  Off by
    #: default, matching the paper's measured configuration.
    comm_overlap: bool = False
    #: CPU cores per CPU-based task.  The paper's runtime pins one task
    #: per core (§3.3); values > 1 model OpenMP-style multi-threaded tasks
    #: for the over-subscription micro-benchmark.
    cpu_threads_per_task: int = 1
    #: Hybrid heterogeneous execution: when set (and ``use_gpu`` is on),
    #: only these task types run on GPU devices; everything else stays on
    #: CPU cores.  ``WorkflowAdvisor.plan_hybrid`` derives a good set
    #: analytically.
    gpu_task_types: frozenset[str] | None = None
    #: Run-to-run variability: compute-stage durations are multiplied by
    #: log-normal noise with this sigma (0 = fully deterministic).  Lets
    #: experiments follow the paper's protocol of repeated runs (§5).
    jitter_sigma: float = 0.0
    #: Seed for the jitter stream; vary per repetition.
    jitter_seed: int = 0
    #: Extra seconds added to the first task on each core/worker — module
    #: loading and GPU kernel compilation, the warm-up effects the paper
    #: discards its first run over (§5).
    warmup_overhead: float = 0.0
    #: Heterogeneous execution: let GPU-eligible tasks overflow to free
    #: CPU cores when queueing for a device is expected to be slower (a
    #: mitigation technique from the paper's §2 survey).
    gpu_overflow_to_cpu: bool = False
    #: Worker threads of the THREADED backend.
    thread_workers: int = 4
    #: Injected failures for resilience experiments (simulated backend
    #: only): task crashes, node failures, runtime GPU OOM, stragglers.
    #: ``None`` runs fault-free and keeps the trace bit-identical to
    #: earlier releases.
    fault_plan: FaultPlan | None = None
    #: Recovery rules applied when a fault plan injects failures: retry
    #: budget, exponential backoff, GPU-to-CPU fallback, failed-node
    #: blacklisting (optionally with a reboot cooldown), lineage-based
    #: recomputation of lost blocks, and speculative re-execution of
    #: stragglers.  ``None`` uses :class:`~repro.faults.RetryPolicy`'s
    #: defaults.
    retry_policy: RetryPolicy | None = None
    #: Barrier checkpointing of task outputs to shared storage (simulated
    #: backend only): bounds how deep lineage recomputation must walk at
    #: the price of modeled GPFS write time.  ``None`` = no checkpoints.
    checkpoint_policy: CheckpointPolicy | None = None
    #: Event-core implementation of the simulated backend: "batched" (the
    #: only kernel) runs the flat-heap event core with batched ready-set
    #: dispatch.  The legacy "reference" kernel was removed after a
    #: release as the non-default; requesting it raises a pointed error.
    #: Its traces survive as recorded oracle digests that the
    #: differential harness pins the batched kernel against.
    sim_kernel: str = "batched"
    #: Run the static analyzer (:mod:`repro.analysis`) before dispatch and
    #: raise :class:`~repro.analysis.WorkflowValidationError` on
    #: error-severity findings (predicted OOM, broken DAG, ...).
    validate: bool = False
    #: Replay the produced trace through the dynamic sanitizer
    #: (:mod:`repro.analysis.sanitizer`) after execution and raise
    #: :class:`~repro.analysis.TraceSanitizerError` on any broken
    #: invariant (happens-before, resource conservation, attempt-machine
    #: legality, ...).  ASan-style: off by default, armed in CI on the
    #: golden suite; simulated backend only.  Read-only — a sanitized
    #: run's trace is bit-identical to an unsanitized one.
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.sim_kernel == "reference":
            raise ValueError(
                "the legacy 'reference' simulation kernel was removed; the "
                "batched kernel is differentially pinned against its recorded "
                "traces (tests/golden/kernel_oracle_digests.json). Use "
                "sim_kernel='batched'."
            )


@dataclass
class WorkflowResult:
    """Outcome of one workflow execution."""

    trace: Trace
    graph: TaskGraph
    config: RuntimeConfig
    #: Ref-id -> value bindings (in-process backend only).
    data: dict[int, Any] = field(default_factory=dict)
    #: Whether any task failed permanently (retries exhausted or
    #: dependencies lost); only a fault plan can make this True.  With
    #: ``RetryPolicy(recover_lost_blocks=True)`` a lost block alone never
    #: fails the workflow as long as a live replica, a checkpoint, or a
    #: recomputable lineage exists.
    failed: bool = False
    #: Ids of the permanently failed tasks, deterministically sorted
    #: ascending.  Includes every transitive descendant of a task whose
    #: retries were exhausted — and, with recovery enabled, descendants
    #: whose lineage proved unrecoverable (a lost input whose producer
    #: itself failed permanently).
    failed_task_ids: tuple[int, ...] = ()
    #: What lineage recovery, checkpointing, and speculation cost this
    #: run; all-zero for a fault-free execution or when the recovery
    #: features are disabled.
    recovery_metrics: RecoveryMetrics = field(default_factory=RecoveryMetrics)
    #: The sanitizer's report when the run was sanitized (``None``
    #: otherwise).  Present only on clean runs — a dirty trace raises
    #: :class:`~repro.analysis.TraceSanitizerError` instead.
    sanitizer: Any = None

    @property
    def makespan(self) -> float:
        """Wall time of the whole workflow."""
        return self.trace.makespan

    @property
    def attempts(self) -> dict[int, int]:
        """Attempts per task id (1 for every task in a fault-free run)."""
        return self.trace.attempt_counts()

    @property
    def recovered_makespan(self) -> float:
        """Wall time including failed attempts and retry backoff.

        Equals :attr:`makespan` in a fault-free run; with faults it spans
        wasted attempts and master-side backoff waits as well, so the
        difference is the cost of recovery.
        """
        return self.trace.recovered_span

    def value_of(self, ref: DataRef) -> Any:
        """The real value bound to a ref (in-process backend only)."""
        if ref.ref_id not in self.data:
            raise KeyError(f"no value bound for {ref!r}")
        return self.data[ref.ref_id]


class Runtime:
    """Task submission front-end bound to one configuration.

    Use as a context manager so decorated task functions route through it::

        rt = Runtime(RuntimeConfig(use_gpu=True))
        with rt:
            c = matmul_func(a, b, _cost=cost)   # records a task
        result = rt.run()
    """

    def __init__(self, config: RuntimeConfig | None = None) -> None:
        self.config = config or RuntimeConfig()
        self.graph = TaskGraph()
        self._task_ids = itertools.count()
        self._data: dict[int, Any] = {}
        self._input_node_rr = itertools.count()

    # --------------------------------------------------------- context mgmt
    def __enter__(self) -> "Runtime":
        _active_runtimes.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        popped = _active_runtimes.pop()
        if popped is not self:  # pragma: no cover - defensive
            raise RuntimeError("runtime context stack corrupted")

    # ------------------------------------------------------------- data API
    def register_input(
        self,
        size_bytes: int,
        name: str = "",
        home_node: int | None = None,
        value: Any = None,
    ) -> DataRef:
        """Register a workflow input block.

        ``home_node`` defaults to round-robin placement over the cluster
        nodes, the way a distributed array's blocks are spread.  ``value``
        binds a real array for the in-process backend.
        """
        if home_node is None:
            home_node = next(self._input_node_rr) % self.config.cluster.num_nodes
        ref = DataRef(size_bytes=size_bytes, name=name, home_node=home_node)
        if value is not None:
            self._data[ref.ref_id] = value
        return ref

    # ------------------------------------------------------------- task API
    def submit(
        self,
        name: str,
        inputs: Sequence[DataRef],
        cost: TaskCost | None = None,
        fn: Any = None,
        args: Sequence[Any] = (),
        kwargs: dict[str, Any] | None = None,
        n_outputs: int = 1,
        output_bytes: Sequence[int] | None = None,
        ignore: Sequence[str] = (),
    ) -> list[DataRef]:
        """Record one task; returns refs for its future outputs.

        ``output_bytes`` gives the size of each produced object; when
        omitted it defaults to an even split of ``cost.output_bytes``.
        ``ignore`` suppresses the given analyzer codes (``WFnnn``) for
        this task — reviewed-and-accepted findings that lint should stop
        reporting.
        """
        if output_bytes is None:
            total = cost.output_bytes if cost is not None else 0
            output_bytes = [total // n_outputs] * n_outputs if n_outputs else []
        if len(output_bytes) != n_outputs:
            raise ValueError(
                f"task {name}: {n_outputs} outputs but "
                f"{len(output_bytes)} output sizes"
            )
        task_id = next(self._task_ids)
        outputs = tuple(
            DataRef(size_bytes=size, name=f"{name}#{task_id}.out{i}")
            for i, size in enumerate(output_bytes)
        )
        if not args:
            args = tuple(inputs)
        record = Task(
            task_id=task_id,
            name=name,
            inputs=tuple(inputs),
            outputs=outputs,
            cost=cost,
            fn=fn,
            args=tuple(args),
            kwargs=dict(kwargs or {}),
            ignore=frozenset(ignore),
        )
        self.graph.add_task(record)
        return list(outputs)

    # ------------------------------------------------------------ execution
    def validate(self, returned: Any = None) -> "AnalysisReport":
        """Statically analyze the recorded workflow without executing it.

        Returns the full :class:`~repro.analysis.AnalysisReport`; pass
        ``returned=`` the refs the application keeps so the dead-task rule
        knows terminal outputs are wanted.
        """
        from repro.analysis import analyze_runtime

        return analyze_runtime(self, returned=returned)

    def run(
        self,
        validate: bool | None = None,
        sanitize: bool | None = None,
    ) -> WorkflowResult:
        """Execute the recorded workflow on the configured backend.

        With ``validate=True`` (or ``config.validate``) the static
        analyzer runs first and error-severity findings — predicted host
        or device OOM, structural DAG defects — raise
        :class:`~repro.analysis.WorkflowValidationError` instead of
        failing mid-execution.

        With ``sanitize=True`` (or ``config.sanitize``; simulated backend
        only) the produced trace is replayed through the dynamic
        sanitizer afterwards, and any broken invariant raises
        :class:`~repro.analysis.TraceSanitizerError`.  Clean runs carry
        the report in ``result.sanitizer``.
        """
        should_validate = self.config.validate if validate is None else validate
        should_sanitize = self.config.sanitize if sanitize is None else sanitize
        if should_sanitize and self.config.backend is not Backend.SIMULATED:
            raise ValueError(
                "sanitize=True requires the simulated backend: only its "
                "trace records carry node/core placements to check"
            )
        if should_validate:
            from repro.analysis import WorkflowValidationError

            report = self.validate()
            if report.has_errors:
                raise WorkflowValidationError(report)
        if self.config.backend is Backend.IN_PROCESS:
            trace = InProcessExecutor().execute(self.graph, self._data)
            return WorkflowResult(
                trace=trace, graph=self.graph, config=self.config, data=self._data
            )
        if self.config.backend is Backend.THREADED:
            from repro.runtime.backends.threaded import ThreadedExecutor

            trace = ThreadedExecutor(self.config.thread_workers).execute(
                self.graph, self._data
            )
            return WorkflowResult(
                trace=trace, graph=self.graph, config=self.config, data=self._data
            )
        executor = SimulatedExecutor(
            cluster_spec=self.config.cluster,
            storage=self.config.storage,
            scheduling=self.config.scheduling,
            use_gpu=self.config.use_gpu,
            comm_overlap=self.config.comm_overlap,
            cpu_threads=self.config.cpu_threads_per_task,
            gpu_task_types=self.config.gpu_task_types,
            jitter_sigma=self.config.jitter_sigma,
            jitter_seed=self.config.jitter_seed,
            warmup_overhead=self.config.warmup_overhead,
            gpu_overflow=self.config.gpu_overflow_to_cpu,
            fault_plan=self.config.fault_plan,
            retry_policy=self.config.retry_policy,
            checkpoint_policy=self.config.checkpoint_policy,
            kernel=self.config.sim_kernel,
        )
        trace = executor.execute(self.graph)
        result = WorkflowResult(
            trace=trace,
            graph=self.graph,
            config=self.config,
            failed=bool(executor.failed_task_ids),
            failed_task_ids=executor.failed_task_ids,
            recovery_metrics=executor.recovery_metrics,
        )
        if should_sanitize:
            from repro.analysis import TraceSanitizerError, sanitize_result

            report = sanitize_result(result)
            if not report.ok:
                raise TraceSanitizerError(report)
            result.sanitizer = report
        return result
