"""Fault injection and recovery for the simulated runtime.

A :class:`FaultPlan` describes deterministic, seed-driven failures — task
crashes at Figure-4 stages, node loss at a simulated timestamp, runtime
GPU OOM, stragglers — and a :class:`RetryPolicy` governs recovery: retry
with exponential backoff and jitter, per-attempt deadlines, GPU-to-CPU
fallback, and failed-node blacklisting.  Wire both into
:class:`~repro.runtime.RuntimeConfig` (``fault_plan=``, ``retry_policy=``)
and read the outcome off :class:`~repro.runtime.WorkflowResult`
(``failed``, ``attempts``, ``recovered_makespan``) and the trace's
:class:`~repro.tracing.TaskAttempt` records.  See ``docs/faults.md``.
"""

from repro.faults.plan import (
    FaultError,
    FaultPlan,
    GpuOomFault,
    InjectedGpuOomError,
    NodeFault,
    NodeFailureError,
    Straggler,
    TaskCrash,
    TaskCrashError,
    TaskDeadlineError,
)
from repro.faults.policy import RetryPolicy

__all__ = [
    "FaultError",
    "FaultPlan",
    "GpuOomFault",
    "InjectedGpuOomError",
    "NodeFault",
    "NodeFailureError",
    "RetryPolicy",
    "Straggler",
    "TaskCrash",
    "TaskCrashError",
    "TaskDeadlineError",
]
