"""Deterministic fault plans for the simulated runtime.

The paper's measurements (§5) assume every task completes, but its own
taxonomy (Table 1) names resource exhaustion and contention as first-class
factors — and at cluster scale node loss, device OOM mid-run, and
stragglers are the norm.  A :class:`FaultPlan` describes *which* failures a
simulated execution injects and *when*:

* :class:`TaskCrash` — one task attempt dies at a Figure-4 stage;
* :class:`NodeFault` — a node fails at a simulated timestamp, killing
  every resident task and leaving the schedulable cluster;
* :class:`GpuOomFault` — a device allocation fails at run time (distinct
  from the statically-predicted WF102, which never starts the run);
* :class:`Straggler` — compute stages on one node / of one task type run
  slower by a constant factor;
* ``crash_probability`` — seed-driven random crashes, deterministic per
  (seed, task, attempt) so a rerun with the same seed reproduces the same
  failures, the same recovery, and the same makespan.

Plans are data, not behaviour: the simulated executor queries them at
stage boundaries, so the same plan object can be reused across runs and
serialised to/from JSON for the ``repro run --faults`` CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields

import numpy as np

from repro.tracing.trace import Stage


class FaultError(Exception):
    """Base class of every injected failure.

    ``kind`` is the stable outcome label recorded in
    :class:`~repro.tracing.TaskAttempt` records ("crash", "node_failure",
    "gpu_oom", "timeout").
    """

    kind = "fault"


class TaskCrashError(FaultError):
    """An injected task crash (planned or probabilistic)."""

    kind = "crash"

    def __init__(self, task_id: int, stage: Stage) -> None:
        self.task_id = task_id
        self.stage = stage
        super().__init__(f"task {task_id} crashed during {stage.value}")


class NodeFailureError(FaultError):
    """The node a task was resident on failed mid-run."""

    kind = "node_failure"

    def __init__(self, node: int) -> None:
        self.node = node
        super().__init__(f"node {node} failed")


class InjectedGpuOomError(FaultError):
    """A device allocation failed at run time (not statically predicted)."""

    kind = "gpu_oom"

    def __init__(self, task_id: int) -> None:
        self.task_id = task_id
        super().__init__(f"task {task_id} hit a runtime GPU OOM")


class TaskDeadlineError(FaultError):
    """An attempt exceeded the retry policy's per-attempt deadline.

    Deadlines are checked at stage boundaries (the master only observes a
    task between stages), so an attempt overruns by at most one stage.
    """

    kind = "timeout"

    def __init__(self, task_id: int, deadline: float) -> None:
        self.task_id = task_id
        self.deadline = deadline
        super().__init__(f"task {task_id} exceeded its {deadline:g}s deadline")


def _matches(task_id: int, task_type: str, want_id: int | None,
             want_type: str | None) -> bool:
    if want_id is not None and want_id != task_id:
        return False
    if want_type is not None and want_type != task_type:
        return False
    return want_id is not None or want_type is not None


@dataclass(frozen=True)
class TaskCrash:
    """Crash matching task attempts at the end of one Figure-4 stage.

    Match by ``task_id``, ``task_type``, or both; ``attempts`` lists the
    attempt numbers (1-based) that die.  A crash planned at a stage the
    task never reaches (e.g. ``DESERIALIZATION`` in a width-1 workflow,
    which skips storage) simply never fires.
    """

    task_id: int | None = None
    task_type: str | None = None
    stage: Stage = Stage.PARALLEL_FRACTION
    attempts: tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        if self.task_id is None and self.task_type is None:
            raise ValueError("TaskCrash needs a task_id or a task_type")
        if not self.attempts or any(a < 1 for a in self.attempts):
            raise ValueError("attempts must be 1-based attempt numbers")

    def applies(self, task_id: int, task_type: str, attempt: int) -> bool:
        """Whether this crash kills the given attempt."""
        return (
            _matches(task_id, task_type, self.task_id, self.task_type)
            and attempt in self.attempts
        )


@dataclass(frozen=True)
class NodeFault:
    """Node ``node`` fails at simulated time ``at_time`` (seconds).

    Every task resident on the node dies with a ``node_failure`` outcome;
    the node stops accepting work and — with
    :attr:`~repro.faults.RetryPolicy.blacklist_failed_nodes` — is
    blacklisted in the scheduler's cluster view.
    """

    node: int
    at_time: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("node index must be non-negative")
        if self.at_time < 0:
            raise ValueError("at_time must be non-negative")


@dataclass(frozen=True)
class GpuOomFault:
    """Device allocation of matching attempts fails at run time.

    Models fragmentation / co-residency OOM that static analysis (WF102)
    cannot see.  With
    :attr:`~repro.faults.RetryPolicy.gpu_fallback_to_cpu` the retry runs
    on a CPU core instead.
    """

    task_id: int | None = None
    task_type: str | None = None
    attempts: tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        if self.task_id is None and self.task_type is None:
            raise ValueError("GpuOomFault needs a task_id or a task_type")
        if not self.attempts or any(a < 1 for a in self.attempts):
            raise ValueError("attempts must be 1-based attempt numbers")

    def applies(self, task_id: int, task_type: str, attempt: int) -> bool:
        """Whether this fault hits the given attempt."""
        return (
            _matches(task_id, task_type, self.task_id, self.task_type)
            and attempt in self.attempts
        )


@dataclass(frozen=True)
class Straggler:
    """Compute stages run ``factor`` x slower on a node / task type.

    ``node=None`` matches every node, ``task_type=None`` every type;
    multiple matching stragglers multiply.
    """

    factor: float
    node: int | None = None
    task_type: str | None = None

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("straggler factor must be >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """Everything a simulated execution injects, fully deterministic.

    The probabilistic stream is keyed by ``(seed, task_id, attempt)``, not
    by draw order, so injected failures do not depend on the interleaving
    of the discrete-event simulation: the same seed always produces the
    same failures — and therefore the same recovery and the same makespan
    — run after run, consistent with ``jitter_seed`` determinism.
    """

    task_crashes: tuple[TaskCrash, ...] = ()
    node_faults: tuple[NodeFault, ...] = ()
    gpu_ooms: tuple[GpuOomFault, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    #: Probability that any given task attempt crashes (seed-driven).
    crash_probability: float = 0.0
    #: Seed of the probabilistic fault stream and of backoff jitter.
    seed: int = 0

    #: Stages a probabilistic crash may land on (storage-independent, so
    #: width-1 workflows crash too).
    _RANDOM_CRASH_STAGES = (Stage.SERIAL_FRACTION, Stage.PARALLEL_FRACTION)

    def __post_init__(self) -> None:
        if not 0.0 <= self.crash_probability <= 1.0:
            raise ValueError("crash_probability must be within [0, 1]")
        object.__setattr__(self, "task_crashes", tuple(self.task_crashes))
        object.__setattr__(self, "node_faults", tuple(self.node_faults))
        object.__setattr__(self, "gpu_ooms", tuple(self.gpu_ooms))
        object.__setattr__(self, "stragglers", tuple(self.stragglers))

    @property
    def is_empty(self) -> bool:
        """Whether the plan injects nothing at all."""
        return not (
            self.task_crashes
            or self.node_faults
            or self.gpu_ooms
            or self.stragglers
            or self.crash_probability > 0.0
        )

    # ------------------------------------------------------------ queries
    def rng_for(self, stream: str, task_id: int, attempt: int) -> np.random.Generator:
        """A generator keyed by (seed, stream, task, attempt).

        Execution-order independent: two runs draw identical values for
        the same key no matter how the event loop interleaves tasks.
        """
        stream_key = sum(ord(c) for c in stream)
        return np.random.default_rng(
            [self.seed, stream_key, task_id, attempt]
        )

    def crash_stage_for(
        self, task_id: int, task_type: str, attempt: int
    ) -> Stage | None:
        """The stage at whose end this attempt dies, or ``None``.

        Explicit :class:`TaskCrash` entries win over the probabilistic
        stream.
        """
        for crash in self.task_crashes:
            if crash.applies(task_id, task_type, attempt):
                return crash.stage
        if self.crash_probability > 0.0:
            rng = self.rng_for("crash", task_id, attempt)
            if rng.random() < self.crash_probability:
                index = int(rng.integers(len(self._RANDOM_CRASH_STAGES)))
                return self._RANDOM_CRASH_STAGES[index]
        return None

    def gpu_oom_for(self, task_id: int, task_type: str, attempt: int) -> bool:
        """Whether this attempt's device allocation fails."""
        return any(
            fault.applies(task_id, task_type, attempt) for fault in self.gpu_ooms
        )

    def straggler_factor(self, task_type: str, node: int) -> float:
        """Combined slow-down of compute stages for (task type, node)."""
        factor = 1.0
        for straggler in self.stragglers:
            if straggler.node is not None and straggler.node != node:
                continue
            if (
                straggler.task_type is not None
                and straggler.task_type != task_type
            ):
                continue
            factor *= straggler.factor
        return factor

    # -------------------------------------------------------- (de)serialise
    def to_dict(self) -> dict:
        """JSON-ready representation (``FaultPlan.from_dict`` inverse)."""
        def plain(obj) -> dict:
            out = {}
            for f in fields(obj):
                value = getattr(obj, f.name)
                if isinstance(value, Stage):
                    value = value.value
                out[f.name] = list(value) if isinstance(value, tuple) else value
            return out

        return {
            "task_crashes": [plain(c) for c in self.task_crashes],
            "node_faults": [plain(n) for n in self.node_faults],
            "gpu_ooms": [plain(g) for g in self.gpu_ooms],
            "stragglers": [plain(s) for s in self.stragglers],
            "crash_probability": self.crash_probability,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Build a plan from :meth:`to_dict` output (or hand-written JSON)."""
        def crash(entry: dict) -> TaskCrash:
            entry = dict(entry)
            if "stage" in entry:
                entry["stage"] = Stage(entry["stage"])
            if "attempts" in entry:
                entry["attempts"] = tuple(entry["attempts"])
            return TaskCrash(**entry)

        def oom(entry: dict) -> GpuOomFault:
            entry = dict(entry)
            if "attempts" in entry:
                entry["attempts"] = tuple(entry["attempts"])
            return GpuOomFault(**entry)

        return cls(
            task_crashes=tuple(crash(e) for e in payload.get("task_crashes", ())),
            node_faults=tuple(
                NodeFault(**e) for e in payload.get("node_faults", ())
            ),
            gpu_ooms=tuple(oom(e) for e in payload.get("gpu_ooms", ())),
            stragglers=tuple(
                Straggler(**e) for e in payload.get("stragglers", ())
            ),
            crash_probability=payload.get("crash_probability", 0.0),
            seed=payload.get("seed", 0),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from a JSON string (``repro run --faults``)."""
        return cls.from_dict(json.loads(text))

    def to_json(self, indent: int | None = None) -> str:
        """Serialise the plan as JSON."""
        return json.dumps(self.to_dict(), indent=indent)
