"""GPU device state: memory accounting and out-of-memory behaviour.

The paper repeatedly hits the K80's 12 GB ceiling ("GPU OOM" regions in
Figures 7-10): Matmul needs three resident blocks per task (two inputs, one
output) so the 8192 MB block exceeds device memory, and K-means hits the
ceiling for large blocks combined with many clusters.  This module provides
the allocator that reproduces those failures deterministically.
"""

from __future__ import annotations

from repro.hardware.specs import GpuSpec


class GpuOutOfMemoryError(MemoryError):
    """Raised when a task's working set exceeds the device memory."""

    def __init__(self, requested: int, capacity: int, device: str = "") -> None:
        self.requested = requested
        self.capacity = capacity
        self.device = device
        super().__init__(
            f"GPU OOM on {device or 'device'}: requested "
            f"{requested / 2**20:.0f} MiB, capacity {capacity / 2**20:.0f} MiB"
        )


class GpuDevice:
    """One schedulable GPU device with a simple bump allocator.

    Tasks allocate their full working set up front (as dislib/CuPy kernels
    effectively do) and free it when the task completes, so fragmentation is
    not modelled; what matters for the paper's experiments is the hard
    capacity ceiling.
    """

    def __init__(self, spec: GpuSpec, index: int = 0, node: int = 0) -> None:
        self.spec = spec
        self.index = index
        self.node = node
        self._allocated = 0
        self._peak = 0

    @property
    def name(self) -> str:
        """Human-readable device identifier."""
        return f"node{self.node}/gpu{self.index}"

    @property
    def allocated(self) -> int:
        """Bytes currently allocated."""
        return self._allocated

    @property
    def free(self) -> int:
        """Bytes currently free."""
        return self.spec.memory_bytes - self._allocated

    @property
    def peak_allocated(self) -> int:
        """High-water mark of allocated bytes."""
        return self._peak

    def check_fit(self, nbytes: int) -> None:
        """Raise :class:`GpuOutOfMemoryError` if ``nbytes`` can never fit."""
        if nbytes > self.spec.memory_bytes:
            raise GpuOutOfMemoryError(nbytes, self.spec.memory_bytes, self.name)

    def allocate(self, nbytes: int) -> None:
        """Reserve ``nbytes`` of device memory or raise OOM."""
        if nbytes < 0:
            raise ValueError(f"allocation size must be non-negative, got {nbytes}")
        if nbytes > self.free:
            raise GpuOutOfMemoryError(nbytes, self.spec.memory_bytes, self.name)
        self._allocated += nbytes
        self._peak = max(self._peak, self._allocated)

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the device pool."""
        if nbytes < 0:
            raise ValueError(f"release size must be non-negative, got {nbytes}")
        if nbytes > self._allocated:
            raise ValueError(
                f"releasing {nbytes} bytes but only {self._allocated} allocated"
            )
        self._allocated -= nbytes
