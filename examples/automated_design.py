"""Automated design, end to end (§5.4.3).

The paper's closing proposal: an automated method that tunes the
multiplicity of factors — e.g. predicts "the ideal block size to maximize
the efficiency of each processor".  This example assembles that method
from the library's parts:

1. run a factorial *training* design on the simulated cluster;
2. fit the learned performance model on the executed samples;
3. ask it (no further simulation) for the best block size for an unseen
   configuration;
4. validate the answer against the simulation search and the analytic
   Amdahl screen.

Run:  python examples/automated_design.py
"""

from repro import KMeansWorkflow, paper_datasets
from repro.core.advisor import WorkflowAdvisor
from repro.core.experiments.fig11 import SamplePlan, run_fig11
from repro.core.predictor import PerformancePredictor, samples_from_columns
from repro.core.report import Table, format_seconds
from repro.hardware import StorageKind
from repro.runtime import SchedulingPolicy

TRAIN_GRIDS = (256, 96, 48, 24, 12, 6)
QUERY_GRIDS = (128, 32, 8, 2)


def training_design():
    """K-means samples the query grids are deliberately excluded from."""
    plans = []
    for dataset in ("kmeans_100mb", "kmeans_10gb"):
        for grid in TRAIN_GRIDS:
            for gpu in (False, True):
                plans.append(
                    SamplePlan(
                        "kmeans", dataset, grid, 10, gpu,
                        StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER,
                    )
                )
    return plans


def main():
    print("1. executing the training design on the simulated cluster...")
    design = run_fig11(training_design())
    print(f"   {design.n_samples} samples executed")

    print("2. fitting the learned performance model...")
    predictor = PerformancePredictor().fit(samples_from_columns(design.columns))
    report = predictor.evaluate(samples_from_columns(design.columns))
    print(f"   in-sample: {report.render()}")

    print("3. predicting the best block size for unseen grids (no simulation):")
    advisor = WorkflowAdvisor()
    datasets = paper_datasets()

    def family(grid):
        return KMeansWorkflow(
            datasets["kmeans_10gb"], grid_rows=grid, n_clusters=10, iterations=3
        )

    for use_gpu in (False, True):
        learned = advisor.recommend_learned(
            family, grids=QUERY_GRIDS, predictor=predictor, use_gpu=use_gpu
        )
        simulated = advisor.recommend(
            family,
            grids=QUERY_GRIDS,
            processors=(use_gpu,),
            storages=(StorageKind.SHARED,),
            policies=(SchedulingPolicy.GENERATION_ORDER,),
        )
        table = Table(
            title=f"{'GPU' if use_gpu else 'CPU'} ranking on unseen grids",
            headers=("rank", "grid (learned)", "predicted",
                     "grid (simulated)", "measured"),
        )
        sim_ranking = simulated.ranking()
        for rank, ((grid, predicted), candidate) in enumerate(
            zip(learned, sim_ranking), start=1
        ):
            table.add_row(
                rank,
                grid,
                format_seconds(predicted),
                candidate.grid,
                format_seconds(candidate.parallel_task_time),
            )
        print()
        print(table.render())
        agreement = "agrees" if learned[0][0] == sim_ranking[0].grid else "DIFFERS"
        print(f"   winner: learned model {agreement} with the simulation search")


if __name__ == "__main__":
    main()
