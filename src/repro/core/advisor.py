"""Toward automated design (§5.4.3): a configuration advisor.

The paper closes by proposing "an automated method to handle task-based
workflows in modern, high-compute capacity, CPU-GPU engines" — e.g.
predicting "the ideal block size to maximize the efficiency of each
processor, the level of task computational complexity and parallel
fraction that would make GPUs shine".  This module is that method, built
on the reproduction's own machinery:

1. an **analytic screen** (Amdahl with transfer overhead,
   :mod:`repro.perfmodel.amdahl`) instantly classifies each candidate as
   GPU-worthy or not and prunes configurations whose working set OOMs;
2. a **simulation pass** runs the surviving candidates through the
   discrete-event cluster model, capturing the distributed-level effects
   (task-parallelism limits, storage contention, scheduling overhead) no
   closed form captures;
3. the result is a ranked recommendation with the full evaluation trail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.experiments.runners import RunMetrics, run_workflow
from repro.core.report import Table, format_seconds
from repro.hardware import ClusterSpec, StorageKind, minotauro
from repro.perfmodel import CostModel
from repro.perfmodel.amdahl import predict, worth_gpu
from repro.runtime import SchedulingPolicy

#: A workflow family: grid size -> workflow instance.
WorkflowFamily = Callable[[int], object]


@dataclass(frozen=True)
class Candidate:
    """One configuration the advisor evaluated."""

    grid: int
    use_gpu: bool
    storage: StorageKind
    scheduling: SchedulingPolicy
    status: str
    predicted_user_code_speedup: float | None
    parallel_task_time: float | None

    @property
    def label(self) -> str:
        """Human-readable configuration label."""
        processor = "GPU" if self.use_gpu else "CPU"
        return (
            f"grid {self.grid}, {processor}, {self.storage.value}, "
            f"{self.scheduling.value}"
        )


@dataclass
class Recommendation:
    """The advisor's output: the winner plus the full ranking."""

    best: Candidate
    candidates: list[Candidate] = field(default_factory=list)

    def ranking(self) -> list[Candidate]:
        """Feasible candidates, fastest first."""
        feasible = [c for c in self.candidates if c.parallel_task_time is not None]
        return sorted(feasible, key=lambda c: c.parallel_task_time)

    def render(self, top: int = 8) -> str:
        """The recommendation as a table."""
        table = Table(
            title="Advisor ranking (parallel-task time, simulated)",
            headers=("rank", "configuration", "time", "analytic uc speedup"),
        )
        for rank, candidate in enumerate(self.ranking()[:top], start=1):
            predicted = candidate.predicted_user_code_speedup
            table.add_row(
                rank,
                candidate.label,
                format_seconds(candidate.parallel_task_time),
                f"{predicted:.2f}x" if predicted is not None else "-",
            )
        return table.render()


class WorkflowAdvisor:
    """Recommends (grid, processor, storage, scheduler) for a workload."""

    def __init__(self, cluster: ClusterSpec | None = None) -> None:
        self.cluster = cluster or minotauro()
        self.cost_model = CostModel(self.cluster)

    # ----------------------------------------------------- analytic screen
    def screen_gpu(self, workflow) -> dict[str, bool]:
        """Per-task-type analytic verdict: is the GPU worth using at all?

        Mirrors the paper's finding that it is worth using GPUs only when
        the parallel-fraction gain overcomes serial and transfer time.
        """
        verdicts = {}
        for task_type, cost in workflow.task_costs().items():
            verdicts[task_type] = worth_gpu(cost, self.cost_model)
        return verdicts

    def predict_user_code_speedup(self, workflow) -> float | None:
        """Analytic user-code speedup of the workflow's primary task."""
        cost = workflow.task_costs()[workflow.primary_task_type]
        try:
            return predict(cost, self.cost_model).user_code_speedup
        except ValueError:
            return None

    def plan_hybrid(self, workflow) -> frozenset[str]:
        """Task types worth placing on GPUs in hybrid execution.

        A type qualifies when the Amdahl screen predicts a user-code win
        *and* its working set fits device memory — e.g. for Matmul this
        selects ``matmul_func`` and leaves the transfer-bound ``add_func``
        on CPU cores, resolving the Figure 8 tension without changing the
        block size.
        """
        from repro.hardware import GpuOutOfMemoryError

        selected = set()
        for task_type, cost in workflow.task_costs().items():
            if not worth_gpu(cost, self.cost_model):
                continue
            try:
                self.cost_model.check_gpu_memory(cost)
            except GpuOutOfMemoryError:
                continue
            selected.add(task_type)
        return frozenset(selected)

    def fits_gpu(self, workflow) -> bool:
        """Whether the primary task's working set fits device memory."""
        from repro.hardware import GpuOutOfMemoryError

        cost = workflow.task_costs()[workflow.primary_task_type]
        try:
            self.cost_model.check_gpu_memory(cost)
        except GpuOutOfMemoryError:
            return False
        return True

    # ----------------------------------------------- learned-model search
    def recommend_learned(
        self,
        family: WorkflowFamily,
        grids: Sequence[int],
        predictor,
        use_gpu: bool,
        storage: StorageKind = StorageKind.SHARED,
        scheduling: SchedulingPolicy = SchedulingPolicy.GENERATION_ORDER,
        n_clusters: int = 0,
        dataset_size: int | None = None,
    ) -> list[tuple[int, float]]:
        """Rank grid sizes by a fitted :class:`PerformancePredictor`.

        No simulation runs: each candidate's Table-1 features are derived
        from the workflow's blocking and cost profile and fed to the
        learned model — the paper's §5.4.3 vision of predicting "the ideal
        block size" directly.  Returns ``(grid, predicted_seconds)``
        sorted fastest-first; OOM candidates are excluded.
        """
        from repro.hardware import GpuOutOfMemoryError
        from repro.runtime import Runtime, RuntimeConfig

        ranking: list[tuple[int, float]] = []
        for grid in grids:
            workflow = family(grid)
            cost = workflow.task_costs()[workflow.primary_task_type]
            if use_gpu:
                try:
                    self.cost_model.check_gpu_memory(cost)
                except GpuOutOfMemoryError:
                    continue
            blocking = workflow.blocking
            if use_gpu:
                parallel_time = self.cost_model.parallel_fraction_time_gpu(cost)
            else:
                parallel_time = self.cost_model.parallel_fraction_time_cpu(cost)
            # Build the DAG (cheap — no execution) so the shape features
            # match what the training samples measured.
            probe = Runtime(RuntimeConfig())
            workflow.build(probe)
            sample = {
                "block_size": float(blocking.block_bytes),
                "grid_dimension": float(blocking.grid.num_blocks),
                "parallel_fraction": parallel_time,
                "computational_complexity": cost.parallel_flops,
                "dag_max_width": float(probe.graph.width),
                "dag_max_height": float(probe.graph.height),
                "dataset_size": float(
                    dataset_size or blocking.dataset.size_bytes
                ),
                "algorithm_specific_param": float(n_clusters),
                "gpu": 1.0 if use_gpu else 0.0,
                "cpu": 0.0 if use_gpu else 1.0,
                "shared_disk_storage": 1.0 if storage is StorageKind.SHARED else 0.0,
                "local_disk_storage": 1.0 if storage is StorageKind.LOCAL else 0.0,
                "data_locality_scheduling": (
                    1.0 if scheduling is SchedulingPolicy.DATA_LOCALITY else 0.0
                ),
                "task_gen_order_scheduling": (
                    1.0
                    if scheduling is SchedulingPolicy.GENERATION_ORDER
                    else 0.0
                ),
            }
            ranking.append((grid, predictor.predict(sample)))
        ranking.sort(key=lambda pair: pair[1])
        return ranking

    # --------------------------------------------------- simulation search
    def recommend(
        self,
        family: WorkflowFamily,
        grids: Sequence[int],
        processors: Sequence[bool] = (False, True),
        storages: Sequence[StorageKind] = (StorageKind.LOCAL, StorageKind.SHARED),
        policies: Sequence[SchedulingPolicy] = tuple(SchedulingPolicy),
        skip_analytically_hopeless: bool = True,
    ) -> Recommendation:
        """Search the configuration space and rank by parallel-task time.

        ``skip_analytically_hopeless`` prunes GPU candidates whose primary
        task the Amdahl screen rejects *and* whose working set OOMs —
        cutting the simulation budget roughly in half on workloads like
        Matmul's add_func regime.
        """
        candidates: list[Candidate] = []
        for grid in grids:
            for use_gpu in processors:
                workflow_probe = family(grid)
                predicted = (
                    self.predict_user_code_speedup(workflow_probe)
                    if use_gpu
                    else None
                )
                if use_gpu and skip_analytically_hopeless:
                    if not self.fits_gpu(workflow_probe):
                        candidates.append(
                            Candidate(
                                grid=grid,
                                use_gpu=True,
                                storage=storages[0],
                                scheduling=policies[0],
                                status="gpu_oom",
                                predicted_user_code_speedup=predicted,
                                parallel_task_time=None,
                            )
                        )
                        continue
                for storage in storages:
                    for policy in policies:
                        metrics = run_workflow(
                            family(grid),
                            use_gpu=use_gpu,
                            storage=storage,
                            scheduling=policy,
                            cluster=self.cluster,
                        )
                        candidates.append(
                            self._candidate(grid, use_gpu, storage, policy,
                                            metrics, predicted)
                        )
        feasible = [c for c in candidates if c.parallel_task_time is not None]
        if not feasible:
            raise ValueError("no feasible configuration found")
        best = min(feasible, key=lambda c: c.parallel_task_time)
        return Recommendation(best=best, candidates=candidates)

    @staticmethod
    def _candidate(
        grid: int,
        use_gpu: bool,
        storage: StorageKind,
        policy: SchedulingPolicy,
        metrics: RunMetrics,
        predicted: float | None,
    ) -> Candidate:
        return Candidate(
            grid=grid,
            use_gpu=use_gpu,
            storage=storage,
            scheduling=policy,
            status=metrics.status,
            predicted_user_code_speedup=predicted,
            parallel_task_time=(
                metrics.parallel_task_time if metrics.ok else None
            ),
        )
