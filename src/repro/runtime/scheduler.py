"""Task scheduling policies (§3.2).

PyCOMPSs offers several schedulers; the paper evaluates two:

* **Task generation order** (FIFO) — dispatch ready tasks in the order the
  application generated them, to the first node with free resources.
  Cheap decisions (low per-task latency).
* **Data locality** — prefer the node holding the largest share of a
  task's input bytes.  Better placement on local-disk storage at the price
  of a costlier decision per task.

The scheduler only *chooses* ``(task, node)``; resource reservation and
dispatch latency are applied by the executor, so policies stay pure and
easily testable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

from repro.runtime.task import Task

#: Decides whether one task must be placed on a GPU device.
GpuPredicate = Callable[[Task], bool]


def task_ram_bytes(task: Task) -> int:
    """Host working set a node must have free to run ``task``."""
    return task.cost.host_memory_bytes if task.cost is not None else 0


class SchedulingPolicy(str, enum.Enum):
    """Which scheduling policy the runtime uses.

    The paper evaluates ``GENERATION_ORDER`` and ``DATA_LOCALITY``
    (§4.4.2); ``LIFO`` is the third policy PyCOMPSs ships and is provided
    for completeness — it prioritises freshly generated tasks, which
    keeps hot intermediate data in use.
    """

    GENERATION_ORDER = "generation_order"
    DATA_LOCALITY = "data_locality"
    LIFO = "lifo"

    @property
    def label(self) -> str:
        """Name as used in the paper's figures."""
        if self is SchedulingPolicy.GENERATION_ORDER:
            return "task generation order"
        if self is SchedulingPolicy.LIFO:
            return "LIFO"
        return "data locality"


class ClusterView(Protocol):
    """What a scheduler may observe about the cluster.

    Views may additionally expose ``is_blacklisted(node) -> bool`` when
    recovery has excluded failed nodes from scheduling; policies consult
    it through :func:`node_usable`, and views without it (e.g. test
    stubs) are treated as having no blacklist.

    Two further optional attributes feed the data-locality policy:

    * ``resident_node(ref) -> int | None`` — the node a block currently
      resides on (``None`` = lost/off-cluster).  Without it, policies
      fall back to the ref's recorded ``home_node``, which can be stale
      when the block was since evicted or moved.
    * ``locality_index`` — a
      :class:`~repro.runtime.locality.LocalityIndex` over the ready set,
      making per-``(task, node)`` byte scores O(1) instead of a sum over
      the task's inputs.  Index scores must equal the resolver-based
      recomputation; the executor maintains that invariant.
    """

    def num_nodes(self) -> int:
        """Number of nodes."""

    def has_free_slot(self, node: int, needs_gpu: bool, ram_bytes: int = 0) -> bool:
        """Whether ``node`` can start one more task right now."""


def node_usable(
    cluster: ClusterView, node: int, needs_gpu: bool, ram_bytes: int = 0
) -> bool:
    """Whether a policy may place a task on ``node`` right now.

    Combines the resource check with the recovery blacklist, when the
    view exposes one.
    """
    is_blacklisted = getattr(cluster, "is_blacklisted", None)
    if is_blacklisted is not None and is_blacklisted(node):
        return False
    return cluster.has_free_slot(node, needs_gpu, ram_bytes)


@dataclass(frozen=True)
class Assignment:
    """A scheduling decision: run ``task`` on ``node``."""

    task: Task
    node: int


class Scheduler:
    """Base class: pick the next assignment from the ready queue.

    ``ready`` is ordered by task generation (ascending task id); policies
    may reorder.  Returns ``None`` when no ready task fits any node.
    """

    policy: SchedulingPolicy

    def select(
        self,
        ready: Sequence[Task],
        cluster: ClusterView,
        requires_gpu: GpuPredicate,
    ) -> Assignment | None:
        raise NotImplementedError

    def select_batch(
        self,
        ready: Sequence[Task],
        cluster: ClusterView,
        requires_gpu: GpuPredicate,
        reserve: Callable[[Assignment], None],
    ) -> int:
        """Drain every placeable ready task in one scheduler call.

        Repeatedly applies :meth:`select` and hands each assignment to
        ``reserve`` — which must commit the placement (claim cores/GPU/RAM
        and remove the task from ``ready``) before the next decision is
        made — until no ready task fits any node.  Returns the number of
        tasks placed.

        This is the batched kernel's dispatch entry point: one call per
        simulated instant instead of one scheduler activation per task.
        Because each decision still observes the reservations of every
        earlier one, the produced sequence of assignments (and any policy
        cursor state, e.g. round-robin node choice) is identical to ``n``
        individual :meth:`select` calls.
        """
        placed = 0
        while True:
            assignment = self.select(ready, cluster, requires_gpu)
            if assignment is None:
                return placed
            reserve(assignment)
            placed += 1


class GenerationOrderScheduler(Scheduler):
    """FIFO dispatch with round-robin node choice.

    The round-robin start index spreads consecutive tasks over nodes the
    way PyCOMPSs' ready scheduler spreads work over workers.
    """

    policy = SchedulingPolicy.GENERATION_ORDER

    def __init__(self) -> None:
        self._next_node = 0

    def select(
        self,
        ready: Sequence[Task],
        cluster: ClusterView,
        requires_gpu: GpuPredicate,
    ) -> Assignment | None:
        if not ready:
            return None
        task = ready[0]
        n = cluster.num_nodes()
        for offset in range(n):
            node = (self._next_node + offset) % n
            if node_usable(cluster, node, requires_gpu(task), task_ram_bytes(task)):
                self._next_node = (node + 1) % n
                return Assignment(task=task, node=node)
        return None


class LifoScheduler(Scheduler):
    """Dispatch the most recently generated ready task first."""

    policy = SchedulingPolicy.LIFO

    def __init__(self) -> None:
        self._next_node = 0

    def select(
        self,
        ready: Sequence[Task],
        cluster: ClusterView,
        requires_gpu: GpuPredicate,
    ) -> Assignment | None:
        if not ready:
            return None
        task = ready[len(ready) - 1]
        n = cluster.num_nodes()
        for offset in range(n):
            node = (self._next_node + offset) % n
            if node_usable(cluster, node, requires_gpu(task), task_ram_bytes(task)):
                self._next_node = (node + 1) % n
                return Assignment(task=task, node=node)
        return None


class DataLocalityScheduler(Scheduler):
    """Prefer the node owning the most input bytes of the head task.

    Falls back to the free node with the best locality score, so tasks
    never starve when their preferred node is busy.  Ties — common when a
    task's inputs live on no candidate node at all — are broken round-
    robin rather than always picking node 0, so locality scheduling
    degrades to generation-order spreading instead of piling tie tasks
    onto the first node.

    Scoring resolves each input against *current block residency*, not
    the ref's recorded ``home_node``: a block that was lost with a failed
    node (or otherwise evicted/moved since the ref was written) must not
    earn its stale location any locality credit.  Views that maintain a
    :class:`~repro.runtime.locality.LocalityIndex` over the ready set get
    O(1) scores per ``(task, node)`` pair; views exposing only a
    ``resident_node`` resolver get an O(inputs) sum; bare stubs fall back
    to ``home_node``.
    """

    policy = SchedulingPolicy.DATA_LOCALITY

    def __init__(self) -> None:
        self._next_node = 0

    def select(
        self,
        ready: Sequence[Task],
        cluster: ClusterView,
        requires_gpu: GpuPredicate,
    ) -> Assignment | None:
        n = cluster.num_nodes()
        index = getattr(cluster, "locality_index", None)
        resolve = getattr(cluster, "resident_node", None)
        for task in ready:
            best_node: int | None = None
            best_bytes = -1
            needs_gpu = requires_gpu(task)
            ram_bytes = task_ram_bytes(task)
            by_node = index.bytes_map(task.task_id) if index is not None else None
            for offset in range(n):
                # Scanning from the round-robin cursor with a strict ">"
                # makes the first usable node win ties, rotating tied
                # placements across the cluster.
                node = (self._next_node + offset) % n
                if not node_usable(cluster, node, needs_gpu, ram_bytes):
                    continue
                if by_node is not None:
                    local_bytes = by_node.get(node, 0)
                elif resolve is not None:
                    local_bytes = sum(
                        ref.size_bytes
                        for ref in task.inputs
                        if resolve(ref) == node
                    )
                else:
                    local_bytes = sum(
                        ref.size_bytes
                        for ref in task.inputs
                        if ref.home_node == node
                    )
                if local_bytes > best_bytes:
                    best_bytes = local_bytes
                    best_node = node
            if best_node is not None:
                self._next_node = (best_node + 1) % n
                return Assignment(task=task, node=best_node)
        return None


def make_scheduler(policy: SchedulingPolicy) -> Scheduler:
    """Instantiate the scheduler for a policy."""
    if policy is SchedulingPolicy.GENERATION_ORDER:
        return GenerationOrderScheduler()
    if policy is SchedulingPolicy.DATA_LOCALITY:
        return DataLocalityScheduler()
    if policy is SchedulingPolicy.LIFO:
        return LifoScheduler()
    raise ValueError(f"unknown scheduling policy: {policy!r}")
