"""Benchmark E7 — Figure 9b: data skew.

Paper shape: 50% skew does not change task user-code execution time for
either algorithm — the tested algorithms do not process skewed data
differently.
"""

import pytest

from repro.core.experiments import run_fig9b


def test_fig9b_skew(once):
    result = once(run_fig9b)
    print()
    print(result.render())
    for algorithm in ("matmul", "kmeans"):
        times = result.times_for(algorithm)
        cpu_uniform, gpu_uniform = times[0.0]
        cpu_skewed, gpu_skewed = times[0.5]
        assert cpu_skewed == pytest.approx(cpu_uniform, rel=1e-9)
        assert gpu_skewed == pytest.approx(gpu_uniform, rel=1e-9)
