"""One-shot synchronisation events for simulated processes."""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.engine import SimulationError


class SimEvent:
    """A one-shot event that processes can wait on.

    The event starts pending; :meth:`succeed` (or :meth:`fail`) fires it and
    invokes every registered callback exactly once.  Callbacks added after the
    event fired are invoked immediately, which lets late joiners (e.g. a
    scheduler waiting for a task that already finished) behave uniformly.
    """

    __slots__ = ("_fired", "_value", "_error", "_callbacks", "name")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._fired = False
        self._value: Any = None
        self._error: BaseException | None = None
        self._callbacks: list[Callable[["SimEvent"], None]] = []

    @property
    def fired(self) -> bool:
        """Whether the event has been triggered."""
        return self._fired

    @property
    def ok(self) -> bool:
        """Whether the event fired successfully (no error)."""
        return self._fired and self._error is None

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed`.

        Raises the stored error if the event failed, and
        :class:`SimulationError` if the event has not fired yet.
        """
        if not self._fired:
            raise SimulationError(f"event {self.name!r} has not fired")
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def error(self) -> BaseException | None:
        """The exception passed to :meth:`fail`, if any."""
        return self._error

    def succeed(self, value: Any = None) -> None:
        """Fire the event successfully with an optional payload."""
        self._fire(value, None)

    def fail(self, error: BaseException) -> None:
        """Fire the event with an error; waiters receive the exception."""
        self._fire(None, error)

    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        """Run ``callback(self)`` when the event fires (now, if already fired)."""
        if self._fired:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire(self, value: Any, error: BaseException | None) -> None:
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        self._error = error
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._fired else "pending"
        return f"SimEvent({self.name!r}, {state})"
