"""A dislib-like blocked distributed array.

The paper's workloads come from dislib, whose ``ds_array`` splits a matrix
into blocks organised in a grid (§3.5).  :class:`DistributedArray` plays
the same role here: it owns one :class:`~repro.runtime.DataRef` per block,
spread round-robin over the cluster nodes, and can optionally materialise
real NumPy blocks for the in-process backend.
"""

from repro.arrays.dsarray import DistributedArray

__all__ = ["DistributedArray"]
