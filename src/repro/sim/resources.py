"""Contended resources for the discrete-event simulator.

Two resource flavours cover everything the cluster model needs:

* :class:`CapacityResource` — a pool of identical slots acquired whole
  (CPU cores, GPU devices).  Waiters are served FIFO, which mirrors how the
  paper's runtime hands ready tasks to workers in generation order.
* :class:`BandwidthResource` — an egalitarian processor-sharing channel
  (disk, network link, PCIe bus).  ``n`` concurrent jobs each progress at
  ``bandwidth / n`` (optionally capped per job), so contention effects such as
  the (de-)serialization bottleneck of the paper's §5.1.2 emerge naturally.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable

from repro.sim.engine import SimulationError, Simulator

# Completion times within this many seconds of each other are treated as
# simultaneous by the processor-sharing resource, absorbing floating-point
# round-off when several equal jobs finish together.
_TIME_EPSILON = 1e-12
# A job whose remaining volume is below this fraction of its total size is
# complete for all simulation purposes; absorbs settle() round-off that
# grows with the magnitude of the simulated clock.
_RELATIVE_BYTE_EPSILON = 1e-9


class CapacityResource:
    """A pool of ``capacity`` identical slots with FIFO waiters.

    Requests are granted immediately when slots are free; otherwise the
    request callback is queued and invoked as soon as enough slots are
    released.  A request may ask for several slots at once, but a request
    larger than the total capacity can never be satisfied and is rejected.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "") -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self._sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[tuple[int, Callable[[], None]]] = deque()
        self._peak_in_use = 0

    @property
    def in_use(self) -> int:
        """Slots currently held."""
        return self._in_use

    @property
    def available(self) -> int:
        """Slots currently free."""
        return self.capacity - self._in_use

    @property
    def queued(self) -> int:
        """Number of pending requests."""
        return len(self._waiters)

    @property
    def peak_in_use(self) -> int:
        """High-water mark of concurrently held slots."""
        return self._peak_in_use

    def request(self, amount: int, callback: Callable[[], None]) -> None:
        """Acquire ``amount`` slots, invoking ``callback`` once granted."""
        if amount <= 0:
            raise SimulationError(f"request amount must be positive, got {amount}")
        if amount > self.capacity:
            raise SimulationError(
                f"request for {amount} slots exceeds capacity "
                f"{self.capacity} of resource {self.name!r}"
            )
        if not self._waiters and self._in_use + amount <= self.capacity:
            self._grant(amount, callback)
        else:
            self._waiters.append((amount, callback))

    def try_request(self, amount: int) -> bool:
        """Acquire ``amount`` slots immediately if free; never queues."""
        if amount <= 0:
            raise SimulationError(f"request amount must be positive, got {amount}")
        if self._waiters or self._in_use + amount > self.capacity:
            return False
        self._in_use += amount
        self._peak_in_use = max(self._peak_in_use, self._in_use)
        return True

    def release(self, amount: int) -> None:
        """Return ``amount`` slots to the pool and serve queued waiters."""
        if amount <= 0:
            raise SimulationError(f"release amount must be positive, got {amount}")
        if amount > self._in_use:
            raise SimulationError(
                f"released {amount} slots but only {self._in_use} are held "
                f"on resource {self.name!r}"
            )
        self._in_use -= amount
        if not self._waiters:
            return
        # Serving queued waiters is a completion cascade: while one grant
        # callback runs, further grants may still be pending here rather
        # than in the event queue, so flag the engine (the batched
        # dispatcher must not drain the ready set mid-cascade).
        self._sim.cascade_depth += 1
        try:
            while self._waiters:
                need, callback = self._waiters[0]
                if self._in_use + need > self.capacity:
                    break
                self._waiters.popleft()
                self._grant(need, callback)
        finally:
            self._sim.cascade_depth -= 1

    def _grant(self, amount: int, callback: Callable[[], None]) -> None:
        self._in_use += amount
        self._peak_in_use = max(self._peak_in_use, self._in_use)
        callback()


class _TransferJob:
    """A job in flight on a :class:`BandwidthResource`.

    The completion threshold ``max(eps_t * bandwidth, eps_b * size)`` is
    precomputed at submit time: recomputing it for every job on every
    completion event was the single hottest expression of a full DAG
    replay under the removed legacy rescan, and hoisting it keeps the
    per-scan work to one attribute compare per job.  The values are
    identical to what the legacy scan produced (same expression, same
    float64 inputs), so completion times — and therefore traces — still
    match the recorded reference-kernel oracle digests bit for bit.
    """

    __slots__ = ("size", "remaining", "threshold", "callback")

    def __init__(
        self, nbytes: float, threshold: float, callback: Callable[[], None]
    ) -> None:
        self.size = float(nbytes)
        self.remaining = float(nbytes)
        self.threshold = threshold
        self.callback = callback


class BandwidthResource:
    """An egalitarian processor-sharing channel.

    All in-flight jobs advance simultaneously; each receives
    ``min(per_job_cap, bandwidth / n)`` bytes per second where ``n`` is the
    number of active jobs.  When a job joins or completes, every job's
    remaining volume is settled at the old rate before the new rate applies,
    which is the textbook PS-queue construction.

    ``latency`` is a fixed per-job startup delay (seek/RTT) applied before the
    job starts consuming bandwidth.

    The settle path precomputes each job's completion threshold at submit
    time and scans with a single-pass partition.  It performs the same
    sequence of IEEE-754 float64 operations the removed legacy rescan
    did, so completion times — and therefore traces — stay bit-identical
    to the recorded reference-kernel oracle digests.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        name: str = "",
        per_job_cap: float | None = None,
        latency: float = 0.0,
    ) -> None:
        if bandwidth <= 0:
            raise SimulationError(f"bandwidth must be positive, got {bandwidth}")
        if per_job_cap is not None and per_job_cap <= 0:
            raise SimulationError(f"per_job_cap must be positive, got {per_job_cap}")
        if latency < 0:
            raise SimulationError(f"latency must be non-negative, got {latency}")
        self._sim = sim
        self.bandwidth = float(bandwidth)
        self.per_job_cap = per_job_cap
        self.latency = latency
        self.name = name
        self._jobs: list[_TransferJob] = []
        self._last_update = sim.now
        self._completion_event = None
        self._bytes_done = 0.0
        self._peak_jobs = 0

    @property
    def active_jobs(self) -> int:
        """Number of transfers currently in flight."""
        return len(self._jobs)

    @property
    def peak_jobs(self) -> int:
        """High-water mark of concurrent transfers."""
        return self._peak_jobs

    @property
    def bytes_transferred(self) -> float:
        """Total bytes completed so far."""
        return self._bytes_done

    def current_rate(self) -> float:
        """Per-job byte rate at this instant (0 when idle)."""
        if not self._jobs:
            return 0.0
        share = self.bandwidth / len(self._jobs)
        if self.per_job_cap is not None:
            share = min(share, self.per_job_cap)
        return share

    def submit(self, nbytes: float, callback: Callable[[], None]) -> None:
        """Transfer ``nbytes`` and invoke ``callback`` on completion."""
        if nbytes < 0:
            raise SimulationError(f"transfer size must be non-negative, got {nbytes}")
        if self.latency > 0:
            self._sim.schedule(self.latency, self._start_job, nbytes, callback)
        else:
            self._start_job(nbytes, callback)

    def _start_job(self, nbytes: float, callback: Callable[[], None]) -> None:
        if nbytes == 0:
            # Zero-byte transfers complete immediately (after latency).
            self._sim.schedule(0.0, callback)
            return
        self._settle()
        threshold = max(
            _TIME_EPSILON * self.bandwidth,
            _RELATIVE_BYTE_EPSILON * float(nbytes),
        )
        self._jobs.append(_TransferJob(nbytes, threshold, callback))
        if len(self._jobs) > self._peak_jobs:
            self._peak_jobs = len(self._jobs)
        self._reschedule()

    def _settle(self) -> None:
        """Advance all in-flight jobs to the current time at the old rate."""
        elapsed = self._sim.now - self._last_update
        if elapsed > 0 and self._jobs:
            progressed = self.current_rate() * elapsed
            for job in self._jobs:
                job.remaining -= progressed
        self._last_update = self._sim.now

    def _reschedule(self) -> None:
        """(Re)arm the completion event for the job finishing soonest."""
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        jobs = self._jobs
        if not jobs:
            return
        rate = self.current_rate()
        soonest = min(job.remaining for job in jobs)
        delay = max(soonest / rate, 0.0)
        self._completion_event = self._sim.schedule(delay, self._complete_due)

    def _complete_due(self) -> None:
        """Completion scan: threshold partition, then fire callbacks.

        Decision sequence — threshold scan, ULP-resolution fallback, drop
        finished jobs *before* firing callbacks (completion callbacks
        resume processes synchronously and may re-submit).  The
        ULP fallback is a numerical guard: settle() round-off can leave
        the leader with a residue whose drain time is below the clock's
        resolution at the current simulated time — the event would
        re-fire at the same instant forever, so such jobs are treated as
        complete.  Finished jobs keep insertion order, preserving the
        callback order the recorded oracle digests were produced under.
        """
        self._completion_event = None
        self._settle()
        finished: list[_TransferJob] = []
        survivors: list[_TransferJob] = []
        for job in self._jobs:
            if job.remaining <= job.threshold:
                finished.append(job)
            else:
                survivors.append(job)
        if not finished:
            rate = self.current_rate()
            if rate > 0:
                resolution = 4.0 * math.ulp(max(self._sim.now, 1.0))
                survivors = []
                for job in self._jobs:
                    if job.remaining / rate <= resolution:
                        finished.append(job)
                    else:
                        survivors.append(job)
            if not finished:
                self._reschedule()
                return
        self._jobs = survivors
        self._reschedule()
        self._fire_completions(finished)

    def _fire_completions(self, finished: list) -> None:
        """Invoke completion callbacks in insertion order.

        When several jobs finish in one settle, the callbacks after the
        first are same-instant work that lives in this list rather than
        in the event queue; the engine's ``cascade_depth`` flags that
        window so the batched dispatcher (woken synchronously by, say,
        the first completion committing a task) falls back to the
        yielding reference loop, which lets the remaining completions
        interleave exactly like the reference kernel.
        """
        if len(finished) == 1:
            job = finished[0]
            self._bytes_done += job.size
            job.callback()
            return
        sim = self._sim
        sim.cascade_depth += 1
        try:
            for job in finished:
                self._bytes_done += job.size
                job.callback()
        finally:
            sim.cascade_depth -= 1
