"""The static workflow analyzer: run every rule over a built task graph.

:func:`analyze` is the core entry point — pure graph-plus-spec analysis,
no execution.  :func:`analyze_runtime` is the convenience wrapper used by
``Runtime.run(validate=True)`` and the ``repro lint`` CLI: it pulls the
graph, cluster, backend, and GPU mode out of a configured
:class:`~repro.runtime.Runtime`.

Typical use::

    runtime = Runtime(RuntimeConfig(use_gpu=True))
    refs = workflow.build(runtime)
    report = analyze_runtime(runtime, returned=refs)
    if report.has_errors:
        print(report.render())          # WF101: host OOM predicted, ...
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.rules import AnalysisOptions, RuleContext, all_rules
from repro.hardware.specs import ClusterSpec
from repro.perfmodel.costmodel import CostModel
from repro.runtime.dag import TaskGraph


def collect_ref_ids(value: Any) -> frozenset[int]:
    """Ref ids reachable from an arbitrary build() return value.

    Walks nested tuples/lists/dicts, accepts bare
    :class:`~repro.runtime.DataRef` objects and anything exposing
    ``blocks()`` (e.g. :class:`~repro.arrays.DistributedArray`).
    """
    found: set[int] = set()
    _collect(value, found)
    return frozenset(found)


def _collect(value: Any, found: set[int]) -> None:
    if value is None:
        return
    ref_id = getattr(value, "ref_id", None)
    if ref_id is not None:
        found.add(ref_id)
        return
    blocks = getattr(value, "blocks", None)
    if callable(blocks):
        _collect(blocks(), found)
        return
    if isinstance(value, dict):
        for item in value.values():
            _collect(item, found)
        return
    if isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            _collect(item, found)


def analyze(
    graph: TaskGraph,
    cluster: ClusterSpec | None = None,
    *,
    use_gpu: bool = False,
    backend: str | None = "simulated",
    returned: Any = None,
    fault_plan: Any = None,
    retry_policy: Any = None,
    checkpoint_policy: Any = None,
    options: AnalysisOptions | None = None,
) -> AnalysisReport:
    """Run all diagnostic rules over a built task graph.

    Parameters
    ----------
    graph:
        The workflow DAG (nothing is executed).
    cluster:
        Target cluster for the feasibility and performance rules; with
        ``None`` only the structural ``WF0xx`` rules run.
    use_gpu:
        Whether GPU execution is planned (enables the GPU feasibility
        and performance rules).
    backend:
        Target backend name; real-execution backends skip the
        missing-cost rule.  ``Backend`` enum values are accepted.
    returned:
        The refs the application keeps as results (any nesting), so the
        dead-task rule knows terminal outputs are wanted.  ``None`` means
        unknown: final-level tasks are then given the benefit of the
        doubt.
    fault_plan / retry_policy / checkpoint_policy:
        The fault-injection plan and the recovery/checkpoint policies the
        run would use, for the ``WF3xx`` resilience rules; all default to
        ``None`` (fault-free execution, no checkpoints).
    """
    backend_name = getattr(backend, "value", backend)
    context = RuleContext(
        graph=graph,
        cluster=cluster,
        cost_model=CostModel(cluster) if cluster is not None else None,
        use_gpu=use_gpu,
        backend=backend_name,
        returned_ref_ids=None if returned is None else collect_ref_ids(returned),
        fault_plan=fault_plan,
        retry_policy=retry_policy,
        checkpoint_policy=checkpoint_policy,
        options=options or AnalysisOptions(),
    )
    report = AnalysisReport(
        cluster=cluster.name if cluster is not None else "",
        use_gpu=use_gpu,
    )
    for _code, rule_fn in all_rules():
        report.extend(rule_fn(context))
    report.diagnostics = _apply_suppressions(
        report.diagnostics, graph, context.options
    )
    return report


def _apply_suppressions(
    diagnostics: list, graph: TaskGraph, options: AnalysisOptions
) -> list:
    """Drop findings the user has explicitly accepted.

    A diagnostic is suppressed when its code is in ``options.ignore``
    (global), or when *every* task it names carries the code in its own
    ``ignore`` set (``@task(ignore=...)`` / ``submit(ignore=...)``).
    Graph-wide findings (no task ids) only honour the global set — a
    per-task annotation cannot waive a whole-workflow defect.
    """
    kept = []
    for diagnostic in diagnostics:
        if diagnostic.code in options.ignore:
            continue
        if diagnostic.task_ids and all(
            diagnostic.code in graph.task(task_id).ignore
            for task_id in diagnostic.task_ids
        ):
            continue
        kept.append(diagnostic)
    return kept


def analyze_runtime(
    runtime: Any,
    returned: Any = None,
    options: AnalysisOptions | None = None,
) -> AnalysisReport:
    """Analyze the workflow recorded in a :class:`~repro.runtime.Runtime`.

    Reads the cluster, backend, and GPU mode from the runtime's config so
    the diagnostics describe exactly the execution that ``run()`` would
    perform.
    """
    config = runtime.config
    return analyze(
        runtime.graph,
        config.cluster,
        use_gpu=config.use_gpu,
        backend=config.backend,
        returned=returned,
        fault_plan=getattr(config, "fault_plan", None),
        retry_policy=getattr(config, "retry_policy", None),
        checkpoint_policy=getattr(config, "checkpoint_policy", None),
        options=options,
    )
