"""Unit tests for contended simulation resources."""

import pytest

from repro.sim import BandwidthResource, CapacityResource, SimulationError, Simulator


class TestCapacityResource:
    def test_grants_immediately_when_free(self):
        sim = Simulator()
        res = CapacityResource(sim, 2)
        granted = []
        res.request(1, lambda: granted.append("a"))
        assert granted == ["a"]
        assert res.in_use == 1

    def test_queues_when_full_and_serves_fifo(self):
        sim = Simulator()
        res = CapacityResource(sim, 1)
        order = []
        res.request(1, lambda: order.append("first"))
        res.request(1, lambda: order.append("second"))
        res.request(1, lambda: order.append("third"))
        assert order == ["first"]
        res.release(1)
        assert order == ["first", "second"]
        res.release(1)
        assert order == ["first", "second", "third"]

    def test_multi_slot_request_waits_for_enough(self):
        sim = Simulator()
        res = CapacityResource(sim, 3)
        order = []
        res.request(2, lambda: order.append("two"))
        res.request(2, lambda: order.append("blocked"))
        assert order == ["two"]
        res.release(1)
        assert order == ["two", "blocked"]

    def test_head_of_line_blocking(self):
        # A large queued request blocks later small ones (FIFO fairness).
        sim = Simulator()
        res = CapacityResource(sim, 2)
        order = []
        res.request(2, lambda: order.append("big"))
        res.request(2, lambda: order.append("big2"))
        res.request(1, lambda: order.append("small"))
        res.release(2)
        assert order == ["big", "big2"]

    def test_try_request(self):
        sim = Simulator()
        res = CapacityResource(sim, 1)
        assert res.try_request(1) is True
        assert res.try_request(1) is False
        res.release(1)
        assert res.try_request(1) is True

    def test_over_capacity_request_rejected(self):
        sim = Simulator()
        res = CapacityResource(sim, 2)
        with pytest.raises(SimulationError):
            res.request(3, lambda: None)

    def test_over_release_rejected(self):
        sim = Simulator()
        res = CapacityResource(sim, 2)
        with pytest.raises(SimulationError):
            res.release(1)

    def test_peak_in_use_tracking(self):
        sim = Simulator()
        res = CapacityResource(sim, 4)
        res.request(3, lambda: None)
        res.release(2)
        assert res.peak_in_use == 3

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            CapacityResource(Simulator(), 0)


class TestBandwidthResource:
    def test_single_job_runs_at_full_bandwidth(self):
        sim = Simulator()
        res = BandwidthResource(sim, 100.0)
        done = []
        res.submit(200.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(2.0)]

    def test_two_equal_jobs_share_bandwidth(self):
        sim = Simulator()
        res = BandwidthResource(sim, 100.0)
        done = []
        res.submit(100.0, lambda: done.append(sim.now))
        res.submit(100.0, lambda: done.append(sim.now))
        sim.run()
        # Each gets 50 B/s => both finish at 2s instead of 1s.
        assert done == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_late_joiner_slows_in_flight_job(self):
        sim = Simulator()
        res = BandwidthResource(sim, 100.0)
        done = {}
        res.submit(100.0, lambda: done.setdefault("a", sim.now))
        sim.schedule(0.5, res.submit, 100.0, lambda: done.setdefault("b", sim.now))
        sim.run()
        # a: 50 B alone in 0.5s, then 50 B at 50 B/s => 1.5s total.
        assert done["a"] == pytest.approx(1.5)
        # b: 50 B shared (1.0s), final 50 B alone (0.5s) => 2.0s total.
        assert done["b"] == pytest.approx(2.0)

    def test_per_job_cap_limits_single_stream(self):
        sim = Simulator()
        res = BandwidthResource(sim, 100.0, per_job_cap=25.0)
        done = []
        res.submit(100.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(4.0)]

    def test_per_job_cap_allows_aggregate(self):
        sim = Simulator()
        res = BandwidthResource(sim, 100.0, per_job_cap=25.0)
        done = []
        for _ in range(4):
            res.submit(25.0, lambda: done.append(sim.now))
        sim.run()
        # 4 jobs x 25 B/s each saturate the aggregate; all end at 1s.
        assert done == [pytest.approx(1.0)] * 4

    def test_latency_is_added_before_transfer(self):
        sim = Simulator()
        res = BandwidthResource(sim, 100.0, latency=0.5)
        done = []
        res.submit(100.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.5)]

    def test_zero_byte_transfer_completes(self):
        sim = Simulator()
        res = BandwidthResource(sim, 100.0)
        done = []
        res.submit(0.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.0)]

    def test_bytes_transferred_accounting(self):
        sim = Simulator()
        res = BandwidthResource(sim, 100.0)
        res.submit(30.0, lambda: None)
        res.submit(70.0, lambda: None)
        sim.run()
        assert res.bytes_transferred == pytest.approx(100.0)

    def test_negative_size_rejected(self):
        sim = Simulator()
        res = BandwidthResource(sim, 100.0)
        with pytest.raises(SimulationError):
            res.submit(-1.0, lambda: None)

    def test_invalid_construction(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            BandwidthResource(sim, 0.0)
        with pytest.raises(SimulationError):
            BandwidthResource(sim, 10.0, per_job_cap=0.0)
        with pytest.raises(SimulationError):
            BandwidthResource(sim, 10.0, latency=-1.0)

    def test_many_unequal_jobs_complete_in_size_order(self):
        sim = Simulator()
        res = BandwidthResource(sim, 60.0)
        done = []
        for size, name in ((30.0, "s"), (60.0, "m"), (90.0, "l")):
            res.submit(size, lambda name=name: done.append((name, sim.now)))
        sim.run()
        names = [n for n, _ in done]
        assert names == ["s", "m", "l"]
        # Total bytes 180 at 60 B/s => last job ends exactly at 3.0s.
        assert done[-1][1] == pytest.approx(3.0)
