"""Unit tests for the discrete-event simulation core."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, seen.append, "late")
        sim.schedule(1.0, seen.append, "early")
        sim.run()
        assert seen == ["early", "late"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(3.5, lambda: None)
        sim.run()
        assert sim.now == 3.5

    def test_ties_run_in_schedule_order(self):
        sim = Simulator()
        seen = []
        for label in ("a", "b", "c"):
            sim.schedule(1.0, seen.append, label)
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(5.0, seen.append, "x")
        sim.run()
        assert seen == ["x"]
        assert sim.now == 5.0

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert seen == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, seen.append, "never")
        event.cancel()
        sim.run()
        assert seen == []

    def test_cancelled_events_do_not_advance_clock(self):
        sim = Simulator()
        event = sim.schedule(9.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        event.cancel()
        sim.run()
        assert sim.now == 1.0


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(5.0, seen.append, "b")
        sim.run(until=2.0)
        assert seen == ["a"]
        assert sim.now == 2.0

    def test_run_until_then_resume(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(5.0, seen.append, "b")
        sim.run(until=2.0)
        sim.run()
        assert seen == ["a", "b"]
        assert sim.now == 5.0

    def test_run_until_advances_clock_with_empty_queue(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0


class TestStep:
    def test_step_runs_exactly_one_event(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(2.0, seen.append, "b")
        assert sim.step() is True
        assert seen == ["a"]

    def test_step_on_empty_queue_returns_false(self):
        assert Simulator().step() is False

    def test_processed_event_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.processed_events == 4


class TestKernelHeapOrder:
    """The event heap must pop strictly in ``(time, seq)`` order.

    This property drives the flat array-backed heap through interleaved
    push / pop / cancel traffic and asserts the fire order equals the
    ``(time, insertion)`` sort of the surviving events — the determinism
    contract every trace digest in this repository depends on.
    """

    @given(
        batches=st.lists(
            st.lists(
                st.floats(
                    min_value=0.0,
                    max_value=10.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                max_size=4,
            ),
            min_size=1,
            max_size=8,
        ),
        cancel_every=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=100, deadline=None)
    def test_interleaved_push_pop_fire_order(self, batches, cancel_every):
        sim = Simulator()
        fired: list[int] = []
        created: list[tuple[float, int]] = []  # (absolute time, label)
        cancelled: set[int] = set()

        def push(delay: float) -> None:
            label = len(created)
            event = sim.schedule(delay, fired.append, label)
            created.append((sim.now + delay, label))
            if cancel_every and label % (cancel_every + 1) == cancel_every:
                event.cancel()
                cancelled.add(label)

        for delay in batches[0]:
            push(delay)
        # Interleave: one pop per remaining batch, pushing the batch's
        # events (relative to the advanced clock) after the pop.
        for batch in batches[1:]:
            sim.step()
            for delay in batch:
                push(delay)
        sim.run()

        expected = [
            label
            for _, label in sorted(
                (time, label)
                for time, label in created
                if label not in cancelled
            )
        ]
        assert fired == expected

    @given(count=st.integers(min_value=2, max_value=20))
    @settings(max_examples=50, deadline=None)
    def test_same_time_events_fire_in_schedule_order(self, count):
        sim = Simulator()
        fired: list[int] = []
        for i in range(count):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(count))
