"""Figure 9 — algorithm-specific parameter and data skew (§5.2.2-§5.2.3).

Panel (a): K-means' ``partial_sum`` complexity is O(M N K^2), so the
number of clusters K dominates the block dimension (linear impact) —
user-code GPU speedups grow with K (up to the parallel-fraction ceiling)
and barely move with block size, until the device memory is exhausted
("GPU OOM", and "CPU GPU OOM" when even host RAM cannot hold the distance
matrices).

Panel (b): data skew.  The algorithms do not process skewed data
differently — per-task work depends only on block shape — so the user
code execution time is unchanged between 0% and 50% skew.  The simulated
backend makes this explicit (identical :class:`TaskCost`), and the test
suite additionally verifies it on real NumPy execution at small scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms import KMeansWorkflow
from repro.core.experiments.engine import SweepEngine, cells_product
from repro.core.experiments.runners import RunMetrics, speedup
from repro.core.report import Table, format_seconds, format_speedup
from repro.data import DatasetSpec, paper_datasets

FIG9A_CLUSTERS = (10, 100, 1000)
FIG9A_GRIDS = (256, 128, 64, 32, 16, 8, 4, 2, 1)


@dataclass
class Fig9aPoint:
    """One (clusters, block size) configuration."""

    n_clusters: int
    block_mb: float
    grid: int
    cpu: RunMetrics
    gpu: RunMetrics

    @property
    def status(self) -> str:
        """'ok', 'gpu_oom', or 'cpu_oom' (the paper's 'CPU GPU OOM')."""
        if not self.cpu.ok:
            return self.cpu.status
        if not self.gpu.ok:
            return self.gpu.status
        return "ok"

    @property
    def user_code_speedup(self) -> float | None:
        """GPU-over-CPU user-code speedup of partial_sum."""
        if not (self.cpu.ok and self.gpu.ok):
            return None
        return speedup(
            self.cpu.user_code["partial_sum"].user_code,
            self.gpu.user_code["partial_sum"].user_code,
        )

    def stage(self, use_gpu: bool, attr: str) -> float | None:
        """An averaged partial_sum stage duration."""
        metrics = self.gpu if use_gpu else self.cpu
        if not metrics.ok:
            return None
        return getattr(metrics.user_code["partial_sum"], attr)


@dataclass
class Fig9aResult:
    """The cluster-count sweep of panel (a)."""

    dataset: str
    points: list[Fig9aPoint] = field(default_factory=list)

    def speedups_for_clusters(self, n_clusters: int) -> dict[float, float | None]:
        """block MB -> user-code speedup at one cluster count."""
        return {
            p.block_mb: p.user_code_speedup
            for p in self.points
            if p.n_clusters == n_clusters
        }

    def best_speedup(self, n_clusters: int) -> float | None:
        """The best user-code speedup achieved at one cluster count."""
        values = [
            v for v in self.speedups_for_clusters(n_clusters).values() if v is not None
        ]
        return max(values) if values else None

    def chart(self) -> str:
        """Panel (a) as an ASCII chart: one curve per cluster count."""
        from repro.core.plotting import speedup_chart

        return speedup_chart(
            {
                f"{k} clusters": self.speedups_for_clusters(k)
                for k in sorted({p.n_clusters for p in self.points})
            },
            f"Figure 9a shape: user-code speedup vs block MB ({self.dataset})",
        )

    def render(self) -> str:
        """Panel (a) as a table."""
        table = Table(
            title=f"Figure 9a: the effect of #clusters in K-means ({self.dataset})",
            headers=(
                "clusters",
                "block MB",
                "Usr.Code speedup",
                "P.Frac CPU",
                "S.Frac",
                "P.Frac GPU",
                "CPU-GPU comm",
                "status",
            ),
        )
        for p in self.points:
            table.add_row(
                p.n_clusters,
                f"{p.block_mb:.0f}",
                format_speedup(p.user_code_speedup),
                format_seconds(p.stage(False, "parallel_fraction")),
                format_seconds(p.stage(False, "serial_fraction")),
                format_seconds(p.stage(True, "parallel_fraction")),
                format_seconds(p.stage(True, "cpu_gpu_comm")),
                p.status,
            )
        return table.render()


def run_fig9a(
    dataset_key: str = "kmeans_10gb",
    clusters: tuple[int, ...] = FIG9A_CLUSTERS,
    grids: tuple[int, ...] = FIG9A_GRIDS,
    engine: SweepEngine | None = None,
) -> Fig9aResult:
    """Sweep cluster counts and block sizes for panel (a)."""
    engine = engine if engine is not None else SweepEngine.serial()
    dataset = paper_datasets()[dataset_key]
    result = Fig9aResult(dataset=dataset_key)
    cells = []
    meta = []
    for n_clusters in clusters:
        block_mbs = {
            grid: KMeansWorkflow(
                dataset, grid_rows=grid, n_clusters=n_clusters, iterations=3
            ).block_mb
            for grid in grids
        }
        cells.extend(
            cells_product(
                "kmeans", grids, dataset_key=dataset_key, n_clusters=n_clusters
            )
        )
        meta.extend((n_clusters, grid, block_mbs[grid]) for grid in grids)
    results = engine.run_cells(cells)
    for index, (n_clusters, grid, block_mb) in enumerate(meta):
        result.points.append(
            Fig9aPoint(
                n_clusters=n_clusters,
                block_mb=block_mb,
                grid=grid,
                cpu=results[2 * index],
                gpu=results[2 * index + 1],
            )
        )
    return result


@dataclass
class Fig9bPoint:
    """User-code times for one (algorithm, skew) pair."""

    algorithm: str
    skew: float
    cpu_user_code: float
    gpu_user_code: float


@dataclass
class Fig9bResult:
    """The data-skew comparison of panel (b)."""

    points: list[Fig9bPoint] = field(default_factory=list)

    def times_for(self, algorithm: str) -> dict[float, tuple[float, float]]:
        """skew -> (CPU, GPU) user-code times."""
        return {
            p.skew: (p.cpu_user_code, p.gpu_user_code)
            for p in self.points
            if p.algorithm == algorithm
        }

    def render(self) -> str:
        """Panel (b) as a table."""
        table = Table(
            title="Figure 9b: the effect of data skew (Matmul 2 GB, K-means 1 GB)",
            headers=("algorithm", "skew", "CPU user code", "GPU user code"),
        )
        for p in self.points:
            table.add_row(
                p.algorithm,
                f"{p.skew:.0%}",
                format_seconds(p.cpu_user_code),
                format_seconds(p.gpu_user_code),
            )
        return table.render()


def _skew_variants(base: DatasetSpec) -> list[DatasetSpec]:
    return [
        DatasetSpec(
            name=f"{base.name}-skew{int(skew * 100)}",
            rows=base.rows,
            cols=base.cols,
            dtype_bytes=base.dtype_bytes,
            skew=skew,
            seed=base.seed,
        )
        for skew in (0.0, 0.5)
    ]


def run_fig9b(grid: int = 8, engine: SweepEngine | None = None) -> Fig9bResult:
    """Compare uniform vs 50%-skewed datasets for both algorithms."""
    engine = engine if engine is not None else SweepEngine.serial()
    datasets = paper_datasets()
    result = Fig9bResult()
    cells = []
    meta = []
    for variant in _skew_variants(datasets["matmul_2gb"]):
        cells.extend(
            cells_product("matmul", (grid,), dataset_spec=variant)
        )
        meta.append(("matmul", variant.skew, "matmul_func"))
    for variant in _skew_variants(datasets["kmeans_1gb"]):
        cells.extend(
            cells_product(
                "kmeans", (grid,), dataset_spec=variant, n_clusters=10
            )
        )
        meta.append(("kmeans", variant.skew, "partial_sum"))
    results = engine.run_cells(cells)
    for index, (algorithm, skew, task_type) in enumerate(meta):
        cpu, gpu = results[2 * index], results[2 * index + 1]
        result.points.append(
            Fig9bPoint(
                algorithm=algorithm,
                skew=skew,
                cpu_user_code=cpu.user_code[task_type].user_code,
                gpu_user_code=gpu.user_code[task_type].user_code,
            )
        )
    return result
