"""Nondeterminism lint for repro's own source (``repro devlint``).

The golden-trace suite can only prove determinism for the inputs it
replays; this linter goes after the *sources* of nondeterminism before
they reach a trace.  It walks Python ASTs looking for the patterns that
have historically broken bit-identical replays of task-based runtimes:

* **DL001** — iterating a ``set``/``frozenset`` without ``sorted()``.
  Set iteration order depends on insertion history and hash seeding;
  feeding it into scheduling decisions reorders dispatches run to run.
* **DL002** — ``id()`` inside a sort key or heap entry.  CPython ids
  are addresses; two runs allocate differently, so ties break
  differently.
* **DL003** — ``heapq.heappush`` without a tie-break counter in the
  entry.  Heap order among equal priorities falls through to comparing
  payloads (or crashing on uncomparable ones); a monotonic sequence
  number makes ties FIFO and total.
* **DL004** — the module-global ``random`` API (or an unseeded
  ``random.Random()``).  Simulation randomness must come from seeded
  generator instances so runs replay.
* **DL005** — wall-clock reads (``time.time``, ``datetime.now``, ...).
  Simulated time is the only clock allowed to influence results;
  ``time.perf_counter`` is exempt because benchmarks measure with it.
* **DL006** — a blocking ``queue.get()`` or ``process.join()`` without
  a timeout.  A dead or hung peer turns the bare call into a permanent
  wedge; supervised code must wake up periodically to check liveness
  (the lesson behind the shard pool's hang-detection layer).

Findings are suppressed inline with ``# repro: disable=DL001`` (or
``disable=all``) on the offending line, or collectively through a
committed baseline file (:mod:`repro.analysis.baseline`).  Fingerprints
use the enclosing function/class qualname, not the line number, so
unrelated edits do not invalidate the baseline.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.diagnostics import Severity
from repro.analysis.registry import register_devlint

register_devlint(
    "DL001",
    severity=Severity.WARNING,
    summary="set/frozenset iterated without sorted(): order varies run to run",
)
register_devlint(
    "DL002",
    severity=Severity.WARNING,
    summary="id() used in a sort key or heap entry: address-based tie-breaks",
)
register_devlint(
    "DL003",
    severity=Severity.WARNING,
    summary="heappush entry lacks a sequence counter: unstable tie order",
)
register_devlint(
    "DL004",
    severity=Severity.WARNING,
    summary="module-global or unseeded RNG: not replayable",
)
register_devlint(
    "DL005",
    severity=Severity.WARNING,
    summary="wall-clock read: only simulated time may influence results",
)
register_devlint(
    "DL006",
    severity=Severity.WARNING,
    summary="queue.get()/process.join() without a timeout can wedge forever",
)

#: ``# repro: disable=DL001,DL003`` or ``# repro: disable=all``.
_DISABLE_RE = re.compile(r"#\s*repro:\s*disable=([A-Za-z0-9_,\s]+)")

#: Names whose presence in a heap entry marks a deliberate tie-breaker.
_COUNTERISH = re.compile(r"seq|count|counter|tie|index|order", re.IGNORECASE)

#: Wall-clock calls (module attribute -> flagged function names).
_WALL_CLOCK = {
    "time": {"time", "time_ns", "localtime", "gmtime", "ctime"},
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}

#: Receiver names whose ``.get()`` reads a blocking queue (DL006).
_QUEUEISH = re.compile(r"queue", re.IGNORECASE)

#: Receiver names whose ``.join()`` waits on a process/worker (DL006).
#: ``thread`` is deliberately excluded: daemon threads die with the
#: process, and ``os.path.join``/``str.join`` receivers never match.
_PROCESSISH = re.compile(r"^(proc|process|worker|child)", re.IGNORECASE)


@dataclass(frozen=True)
class LintFinding:
    """One devlint hit in one source file."""

    path: str
    line: int
    code: str
    #: Enclosing function/class qualname ("<module>" at top level).
    symbol: str
    message: str
    severity: Severity = Severity.WARNING

    def fingerprint(self) -> str:
        """Baseline key, stable across line drift: ``path|code|symbol``."""
        return f"{self.path}|{self.code}|{self.symbol}"

    def render(self) -> str:
        """One-line ``path:line: CODE message [symbol]`` form."""
        return (
            f"{self.path}:{self.line}: {self.code} {self.message} "
            f"[{self.symbol}]"
        )

    def to_dict(self) -> dict:
        """JSON-ready representation (``repro devlint --format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "symbol": self.symbol,
            "message": self.message,
            "severity": self.severity.value,
            "fingerprint": self.fingerprint(),
        }


def _disabled_codes(source_line: str) -> set[str]:
    match = _DISABLE_RE.search(source_line)
    if not match:
        return set()
    return {token.strip().upper() for token in match.group(1).split(",")}


def _is_set_expr(node: ast.expr) -> bool:
    """Whether an expression evaluates to a set/frozenset syntactically."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra (a | b, a - b, ...) yields a set when either side is.
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _contains_id_call(node: ast.expr) -> bool:
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id == "id"
        ):
            return True
    return False


def _names_counterish(node: ast.expr) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            fn = child.func
            if isinstance(fn, ast.Name) and fn.id == "next":
                return True
        name = None
        if isinstance(child, ast.Name):
            name = child.id
        elif isinstance(child, ast.Attribute):
            name = child.attr
        if name is not None and _COUNTERISH.search(name):
            return True
    return False


class _Linter(ast.NodeVisitor):
    """One pass over one module's AST."""

    def __init__(self, path: str, lines: list[str]) -> None:
        self.path = path
        self.lines = lines
        self.findings: list[LintFinding] = []
        self._symbols: list[str] = []
        #: Local names bound to set expressions, per function scope.
        self._set_locals: list[set[str]] = [set()]
        #: ``self.x`` attributes assigned a set anywhere in the module.
        self._set_attrs: set[str] = set()

    # -------------------------------------------------------------- helpers
    @property
    def symbol(self) -> str:
        return ".".join(self._symbols) if self._symbols else "<module>"

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        source = self.lines[line - 1] if 0 < line <= len(self.lines) else ""
        disabled = _disabled_codes(source)
        if "ALL" in disabled or code in disabled:
            return
        self.findings.append(
            LintFinding(
                path=self.path,
                line=line,
                code=code,
                symbol=self.symbol,
                message=message,
            )
        )

    def _is_known_set(self, node: ast.expr) -> bool:
        if _is_set_expr(node):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_locals)
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            if node.value.id == "self" and node.attr in self._set_attrs:
                return True
        return False

    # ------------------------------------------------------- scope tracking
    def _visit_scoped(self, node: ast.AST, name: str, new_locals: bool) -> None:
        self._symbols.append(name)
        if new_locals:
            self._set_locals.append(set())
        self.generic_visit(node)
        if new_locals:
            self._set_locals.pop()
        self._symbols.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scoped(node, node.name, new_locals=True)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scoped(node, node.name, new_locals=True)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scoped(node, node.name, new_locals=False)

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_locals[-1].add(target.id)
                elif isinstance(target, ast.Attribute) and isinstance(
                    target.value, ast.Name
                ):
                    if target.value.id == "self":
                        self._set_attrs.add(target.attr)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and _is_set_expr(node.value):
            if isinstance(node.target, ast.Name):
                self._set_locals[-1].add(node.target.id)
            elif isinstance(node.target, ast.Attribute) and isinstance(
                node.target.value, ast.Name
            ):
                if node.target.value.id == "self":
                    self._set_attrs.add(node.target.attr)
        self.generic_visit(node)

    # ------------------------------------------------------------ the rules
    def _check_iteration(self, iter_node: ast.expr) -> None:
        if self._is_known_set(iter_node):
            self._emit(
                iter_node,
                "DL001",
                "iteration over a set without sorted(); order depends on "
                "hashing and insertion history",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension_iters(self, node) -> None:
        for generator in node.generators:
            self._check_iteration(generator.iter)
        self.generic_visit(node)

    visit_ListComp = visit_comprehension_iters
    visit_SetComp = visit_comprehension_iters
    visit_DictComp = visit_comprehension_iters
    visit_GeneratorExp = visit_comprehension_iters

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        fn_name = None
        fn_module = None
        if isinstance(fn, ast.Name):
            fn_name = fn.id
        elif isinstance(fn, ast.Attribute):
            fn_name = fn.attr
            if isinstance(fn.value, ast.Name):
                fn_module = fn.value.id

        # DL002: id() inside sort keys.
        if fn_name in ("sorted", "min", "max") or (
            fn_name == "sort" and isinstance(fn, ast.Attribute)
        ):
            for keyword in node.keywords:
                if keyword.arg == "key" and _contains_id_call(keyword.value):
                    self._emit(
                        node,
                        "DL002",
                        "id() in a sort key: CPython ids are addresses, so "
                        "tie-breaks differ between runs",
                    )

        # DL003 (and DL002 inside heap entries).
        if fn_name == "heappush" and len(node.args) >= 2:
            entry = node.args[1]
            if _contains_id_call(entry):
                self._emit(
                    node,
                    "DL002",
                    "id() in a heap entry: address-based ordering is not "
                    "replayable",
                )
            if isinstance(entry, ast.Tuple):
                if not any(_names_counterish(el) for el in entry.elts):
                    self._emit(
                        node,
                        "DL003",
                        "heap entry tuple has no sequence counter; equal "
                        "priorities fall through to comparing payloads",
                    )
            elif not _names_counterish(entry):
                self._emit(
                    node,
                    "DL003",
                    "heappush without a (priority, seq, item) entry; ties "
                    "among equal items are not FIFO",
                )

        # DL004: module-global random API / unseeded Random().
        if fn_module == "random" and fn_name not in ("Random", "SystemRandom"):
            self._emit(
                node,
                "DL004",
                f"random.{fn_name}() uses the shared module-global RNG; "
                "draw from a seeded random.Random(seed) instance",
            )
        if fn_name == "Random" and not node.args and not node.keywords:
            self._emit(
                node,
                "DL004",
                "Random() without a seed cannot be replayed; pass an "
                "explicit seed",
            )

        # DL005: wall clock.
        if fn_module in _WALL_CLOCK and fn_name in _WALL_CLOCK[fn_module]:
            self._emit(
                node,
                "DL005",
                f"{fn_module}.{fn_name}() reads the wall clock; simulated "
                "time is the only clock allowed to influence results",
            )

        # DL006: unbounded blocking on a queue or a process.  The
        # receiver is judged by name (``task_queue.get``,
        # ``worker.process.join``), so attribute receivers count too.
        if isinstance(fn, ast.Attribute):
            receiver = fn_module
            if receiver is None and isinstance(fn.value, ast.Attribute):
                receiver = fn.value.attr
            keyword_names = {kw.arg for kw in node.keywords}
            bounded = bool(node.args) or "timeout" in keyword_names
            if (
                fn_name == "get"
                and receiver is not None
                and _QUEUEISH.search(receiver)
                and not bounded
            ):
                self._emit(
                    node,
                    "DL006",
                    f"{receiver}.get() without a timeout blocks forever if "
                    "the producer dies; poll with a timeout and re-check "
                    "liveness",
                )
            if (
                fn_name == "join"
                and receiver is not None
                and _PROCESSISH.search(receiver)
                and not bounded
            ):
                self._emit(
                    node,
                    "DL006",
                    f"{receiver}.join() without a timeout waits forever on "
                    "a wedged process; join with a timeout, then escalate "
                    "terminate -> kill",
                )

        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>") -> list[LintFinding]:
    """Lint one module's source text; findings in (line, code) order."""
    tree = ast.parse(source, filename=path)
    linter = _Linter(path, source.splitlines())
    linter.visit(tree)
    return sorted(linter.findings, key=lambda f: (f.line, f.code, f.symbol))


def _iter_py_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(entry.rglob("*.py"))
        else:
            yield entry


def lint_paths(
    paths: Iterable[str | Path], root: str | Path | None = None
) -> list[LintFinding]:
    """Lint files and directories (recursively); deterministic order.

    ``root`` relativizes the recorded paths so fingerprints are stable
    across checkouts (defaults to the current working directory when the
    file lies under it).
    """
    root = Path(root) if root is not None else Path.cwd()
    findings: list[LintFinding] = []
    for file_path in _iter_py_files(paths):
        try:
            shown = file_path.resolve().relative_to(root.resolve())
        except ValueError:
            shown = file_path
        findings.extend(
            lint_source(
                file_path.read_text(encoding="utf-8"), path=shown.as_posix()
            )
        )
    return sorted(findings, key=lambda f: (f.path, f.line, f.code, f.symbol))
