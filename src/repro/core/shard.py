"""Persistent-worker shard pool for independent simulation instances.

Every experiment in this repository is embarrassingly parallel at the
*instance* level: a figure cell, a fault Monte-Carlo replica, a what-if
query, or a scale-bench replay is one independent, deterministic workflow
simulation.  This module fans batches of such instances out across
long-lived worker processes:

* **Persistent workers** — each worker imports :mod:`repro` once at
  start-up and then streams picklable instance specs over a task queue,
  so the ~1 second interpreter + numpy warm-up is paid per *worker*, not
  per instance (the overhead that makes a ``ProcessPoolExecutor`` per
  call uneconomical for sub-second cells).
* **Deterministic merge** — results are keyed by caller-chosen instance
  ids and merged in id order (:func:`merge_shard_results`), so a sharded
  run is bit-identical to a serial run of the same instances regardless
  of worker count, start method, or completion order.
* **Supervised failure handling** — a worker that dies mid-instance
  (segfault, ``os._exit``, OOM-kill) takes only its in-flight instance
  with it; the pool respawns the worker and re-dispatches that instance
  under an exponential-backoff retry budget.  With a
  :class:`~repro.core.supervise.SupervisionPolicy` the pool also
  enforces per-item wall-clock deadlines and worker heartbeats, so a
  *hung* worker (alive but unresponsive) is killed and its item retried
  instead of wedging :meth:`ShardPool.run` forever.  An instance that
  keeps destroying workers is quarantined once its attempt budget is
  spent, and a pool whose respawn budget runs dry can degrade to fewer
  workers (``allow_degraded``) instead of raising.
* **Deterministic chaos** — a :class:`~repro.core.chaos.ChaosPlan`
  handed to the pool is shipped to every worker, which consults it
  before each instance to inject real kills, hangs, and slowdowns; the
  keyed decisions guarantee a chaos run is reproducible and its merged
  results stay bit-identical to a serial run.

Workers advertise themselves through :func:`in_worker`, which the sweep
engine uses to degrade nested fan-out to serial execution instead of
spawning a process pool inside a pool worker.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.core.supervise import (
    REASON_CRASH,
    BatchSupervisor,
    ShardRunReport,
    SupervisionPolicy,
    describe_exit,
    overdue_workers,
)

#: Set in worker processes before the first instance runs; read through
#: :func:`in_worker` by code that must not nest process pools.
_IN_WORKER = False

#: How many crashed-worker respawns one pool tolerates before giving up
#: (or degrading); scaled by worker count at construction time.
_RESPAWNS_PER_WORKER = 4

#: Parent receive-loop tick: the longest the pool blocks on the result
#: queue before it re-checks worker health.
_TICK_SECONDS = 0.05


def in_worker() -> bool:
    """Whether this process is a :class:`ShardPool` worker."""
    return _IN_WORKER


class ShardCrashError(RuntimeError):
    """Worker-level failure the pool could not absorb: a quarantined
    (poison) instance, or a respawn budget spent with no degradation
    allowed."""


class ShardTaskError(RuntimeError):
    """An instance raised inside its worker; carries the remote traceback."""

    def __init__(self, instance_id: Any, kind: str, message: str) -> None:
        super().__init__(
            f"shard instance {instance_id!r} raised {kind}: {message}"
        )
        self.instance_id = instance_id
        self.kind = kind
        self.remote_message = message


class ShardProtocolError(ValueError):
    """The pool's invariants were violated by its inputs (duplicate
    instance ids within a batch or across shard result maps)."""


@dataclass(frozen=True)
class ShardItem:
    """One unit of pool work: ``fn(*args, **kwargs)`` under ``instance_id``.

    ``fn`` must be picklable under the pool's start method (a module-level
    function for ``spawn``); ``instance_id`` must be hashable, sortable
    against the batch's other ids, and unique within one batch.
    """

    instance_id: Any
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)


def merge_shard_results(shards: Iterable[Mapping[Any, Any]]) -> dict[Any, Any]:
    """Merge per-shard ``{instance_id: result}`` maps deterministically.

    The merged dict is built in ascending instance-id order, so its
    iteration order — and anything serialised from it — is independent of
    how instances were assigned to shards and of shard arrival order.
    Duplicate ids across shards are a protocol violation and raise a
    pointed :class:`ShardProtocolError` naming the first collision — the
    alternative (last shard silently wins) would corrupt merged artifacts
    undetectably.
    """
    combined: dict[Any, Any] = {}
    for shard_index, shard in enumerate(shards):
        for instance_id, result in shard.items():
            if instance_id in combined:
                same = "an identical" if combined[instance_id] == result else "a DIFFERENT"
                raise ShardProtocolError(
                    f"instance {instance_id!r} appears in more than one shard "
                    f"(shard {shard_index} carries {same} result); refusing "
                    f"to let one shard silently overwrite another"
                )
            combined[instance_id] = result
    return {instance_id: combined[instance_id] for instance_id in sorted(combined)}


def _worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    heartbeat_interval: float | None = None,
    chaos=None,
) -> None:
    """Worker loop: warm up once, then stream instances until the sentinel.

    Instance exceptions are caught and shipped back as results — only the
    process dying (never a Python-level error) counts as a crash.  The
    exception crosses the process boundary as ``(type name, str)`` so an
    unpicklable exception object cannot wedge the protocol.

    With ``heartbeat_interval`` set, a daemon thread puts
    ``(worker_id, None, "beat", n)`` on the result queue every interval —
    started *before* the warm-up import so a slow numpy load is never
    mistaken for a hang.  A chaos-injected hang suspends the beats while
    it sleeps, impersonating a genuinely frozen process.
    """
    global _IN_WORKER
    _IN_WORKER = True

    stop_beats = threading.Event()
    suspend_beats = threading.Event()
    if heartbeat_interval is not None:

        def _beat() -> None:
            count = 0
            while not stop_beats.wait(heartbeat_interval):
                if suspend_beats.is_set():
                    continue
                try:
                    result_queue.put((worker_id, None, "beat", count))
                except (OSError, ValueError):  # pragma: no cover - teardown
                    return
                count += 1

        threading.Thread(target=_beat, daemon=True).start()

    import repro  # noqa: F401  - one warm-up import per worker lifetime

    while True:
        # Idle workers must block here indefinitely: the sentinel is the
        # only wake-up, and the parent supervises liveness via beats.
        item = task_queue.get()  # repro: disable=DL006
        if item is None:
            stop_beats.set()
            return
        instance_id, attempt, fn, args, kwargs = item
        if chaos is not None:
            action = chaos.decide(instance_id, attempt)
            if action.kind == "kill":
                from repro.core.chaos import CHAOS_EXIT_CODE

                # Flush the result queue before dying: ``os._exit`` mid
                # -feeder-write would take the queue's *shared* write lock
                # to the grave and wedge every surviving writer.  The
                # injected fault must reproduce a worker death, not
                # manufacture cross-process lock corruption.
                stop_beats.set()
                try:
                    result_queue.close()
                    result_queue.join_thread()
                except (OSError, ValueError):  # pragma: no cover - teardown
                    pass
                os._exit(CHAOS_EXIT_CODE)
            elif action.kind == "hang":
                suspend_beats.set()
                time.sleep(action.seconds)
                suspend_beats.clear()
            elif action.kind == "slow":
                time.sleep(action.seconds)
        try:
            result = fn(*args, **kwargs)
        except BaseException as error:  # noqa: BLE001 - shipped to the parent
            result_queue.put(
                (
                    worker_id,
                    instance_id,
                    "error",
                    (type(error).__name__, str(error)),
                )
            )
        else:
            result_queue.put((worker_id, instance_id, "ok", result))


class _Worker:
    """One pool worker: its process, private task queue, health state."""

    __slots__ = ("process", "task_queue", "inflight", "dispatched_at", "last_beat")

    def __init__(
        self,
        ctx,
        worker_id: int,
        result_queue,
        heartbeat_interval: float | None,
        chaos,
    ) -> None:
        # A private task queue per worker pins each dispatched instance to
        # one process, which is what makes crash attribution exact: when a
        # worker dies, precisely its ``inflight`` item is affected.
        self.task_queue = ctx.SimpleQueue()
        self.inflight: ShardItem | None = None
        self.dispatched_at: float | None = None
        self.last_beat = time.perf_counter()
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, self.task_queue, result_queue, heartbeat_interval, chaos),
            daemon=True,
        )
        self.process.start()


class ShardPool:
    """A reusable pool of persistent, supervised simulation workers.

    One pool is meant to span one logical invocation (a whole
    ``figures all`` run, a bench suite): workers survive across
    :meth:`run` calls, so only the first batch pays process start-up.
    Use as a context manager, or call :meth:`close` explicitly.

    ``start_method`` picks the :mod:`multiprocessing` context (``spawn``,
    ``fork``, ``forkserver``); ``None`` uses the platform default.
    ``policy`` configures supervision (deadlines, heartbeats, retry
    budget, degradation); the default reproduces the legacy contract —
    crashed workers' items re-dispatch exactly once, nothing else is
    monitored.  ``chaos`` ships a :class:`~repro.core.chaos.ChaosPlan`
    to every worker.  Dispatch keeps exactly one instance in flight per
    worker — instance granularity is whole simulations, so there is
    nothing to win from deeper queues, and crash attribution stays
    exact.
    """

    def __init__(
        self,
        workers: int,
        start_method: str | None = None,
        policy: SupervisionPolicy | None = None,
        chaos=None,
        shutdown_grace: float = 5.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.start_method = start_method
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.chaos = chaos
        self.shutdown_grace = shutdown_grace
        self._ctx = multiprocessing.get_context(start_method)
        self._result_queue = self._ctx.Queue()
        self._pool: dict[int, _Worker] = {}
        self._next_worker_id = 0
        self._respawn_budget = _RESPAWNS_PER_WORKER * workers
        self._closed = False

    # ------------------------------------------------------------ lifecycle
    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Reap every worker, escalating past a wedged process.

        Each worker gets its shutdown sentinel and ``shutdown_grace``
        seconds to exit; survivors are terminated, then killed, then
        joined — a hung worker can never hang interpreter shutdown.  The
        result queue is drained and closed afterwards so its feeder
        thread cannot deadlock teardown on buffered items.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._pool.values():
            if worker.process.is_alive():
                try:
                    worker.task_queue.put(None)
                except (OSError, ValueError):  # pragma: no cover - teardown race
                    pass
        # Drain concurrently with the joins: a worker blocked putting a
        # large result cannot exit until the queue's buffer moves.
        self._drain_result_queue()
        for worker in self._pool.values():
            worker.process.join(timeout=self.shutdown_grace)
            if worker.process.is_alive():
                _dispose_worker(worker, grace=self.policy.kill_grace)
            try:
                worker.task_queue.close()
            except (OSError, AttributeError):  # pragma: no cover
                pass
        self._pool.clear()
        self._drain_result_queue()
        try:
            self._result_queue.close()
            self._result_queue.cancel_join_thread()
        except (OSError, AttributeError):  # pragma: no cover
            pass

    def _drain_result_queue(self) -> None:
        try:
            while True:
                self._result_queue.get_nowait()
        except (queue_module.Empty, OSError, ValueError):
            pass

    def _spawn_worker(self) -> int:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        self._pool[worker_id] = _Worker(
            self._ctx,
            worker_id,
            self._result_queue,
            self.policy.heartbeat_interval,
            self.chaos,
        )
        return worker_id

    # ------------------------------------------------------------- dispatch
    def run(
        self,
        items: Sequence[ShardItem],
        on_event: Callable[[str, dict], None] | None = None,
    ) -> dict[Any, Any]:
        """Execute a batch; returns ``{instance_id: result}`` in id order.

        The raising facade over :meth:`run_report`: a quarantined
        (poison) instance raises :class:`ShardCrashError`, an instance
        exception re-raises as :class:`ShardTaskError` after the whole
        batch settled.  Callers that want partial results, the
        ``degraded`` flag, and per-item verdicts use :meth:`run_report`
        directly.
        """
        report = self.run_report(items, on_event=on_event)
        if report.quarantined:
            first = sorted(report.quarantined, key=str)[0]
            raise ShardCrashError(report.quarantined[first])
        if report.errors:
            first = sorted(report.errors, key=str)[0]
            kind, message = report.errors[first]
            raise ShardTaskError(first, kind, message)
        return report.results

    def run_report(
        self,
        items: Sequence[ShardItem],
        on_event: Callable[[str, dict], None] | None = None,
    ) -> ShardRunReport:
        """Execute a batch under supervision; never raises for item-level
        failures.

        Instances are streamed to idle workers as results come back, so a
        slow instance never blocks the rest of the batch behind a static
        pre-partition.  Every health decision is surfaced through
        ``on_event`` (kinds: ``dispatch``, ``result``, ``retry``,
        ``quarantine``, ``kill``, ``degraded``) — the sweep engine's
        execution ledger hangs off this hook.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        items = list(items)
        ids = [item.instance_id for item in items]
        if len(set(ids)) != len(ids):
            raise ShardProtocolError("duplicate instance ids in one batch")
        report = ShardRunReport()
        if not items:
            return report

        def emit(kind: str, info: dict) -> None:
            if on_event is not None:
                on_event(kind, info)

        known = set(ids)
        supervisor = BatchSupervisor(self.policy)
        pending = list(reversed(items))  # pop() dispatches in caller order
        # Backoff parking lot: (release time, requeue order, item).  The
        # monotonically unique order field keeps the sort from ever
        # comparing two ShardItems directly.
        delayed: list[tuple[float, int, ShardItem]] = []
        delayed_seq = itertools.count()
        shard_results: dict[int, dict[Any, Any]] = {}
        done: set[Any] = set()
        total = len(items)

        self._ensure_capacity(total, report)
        self._fill_idle_workers(pending, supervisor, emit)
        while len(done) < total:
            now = time.perf_counter()
            messages = []
            try:
                messages.append(self._result_queue.get(timeout=_TICK_SECONDS))
                while True:
                    messages.append(self._result_queue.get_nowait())
            except queue_module.Empty:
                pass
            for worker_id, instance_id, status, payload in messages:
                worker = self._pool.get(worker_id)
                if status == "beat":
                    if worker is not None:
                        worker.last_beat = now
                    continue
                if worker is not None and (
                    worker.inflight is None
                    or worker.inflight.instance_id == instance_id
                ):
                    worker.inflight = None
                    worker.dispatched_at = None
                    worker.last_beat = now
                if instance_id not in known or instance_id in done:
                    # A retry raced an already-delivered result, or a
                    # stale result from a previous batch surfaced; the
                    # first arrival won, drop the duplicate.
                    continue
                done.add(instance_id)
                if status == "ok":
                    shard_results.setdefault(worker_id, {})[instance_id] = payload
                else:
                    report.errors[instance_id] = payload
                emit(
                    "result",
                    {
                        "item": instance_id,
                        "worker": worker_id,
                        "status": status,
                        "payload": payload,
                        "attempt": supervisor.attempts(instance_id),
                    },
                )
            now = time.perf_counter()
            # Health pass: reap workers that died on their own, then kill
            # the ones supervision declared overdue (item deadline blown,
            # heartbeats gone silent).
            self._reap_dead(pending, delayed, delayed_seq, supervisor, done, report, emit, now)
            for worker_id, reason, detail in overdue_workers(
                self._pool, self.policy, now
            ):
                worker = self._pool.pop(worker_id)
                _dispose_worker(worker, grace=self.policy.kill_grace)
                report.worker_kills += 1
                emit("kill", {"worker": worker_id, "reason": reason, "detail": detail})
                self._handle_loss(
                    worker, reason, detail, pending, delayed, delayed_seq,
                    supervisor, done, report, emit, now,
                )
            # Release parked retries whose backoff elapsed, oldest first.
            if delayed:
                delayed.sort()
                while delayed and delayed[0][0] <= now:
                    _release, _seq, item = delayed.pop(0)
                    pending.append(item)
            outstanding = total - len(done)
            if len(pending) + len(delayed) + self._inflight_count() < outstanding:
                raise AssertionError(
                    "shard pool lost track of instances"
                )  # pragma: no cover - invariant guard
            self._ensure_capacity(outstanding, report, emit)
            self._fill_idle_workers(pending, supervisor, emit)

        # Workers may still be grinding a superseded retry whose original
        # attempt already delivered; release them for the next batch (the
        # stale result is dropped by the `known` guard above).
        for worker in self._pool.values():
            if worker.inflight is not None and worker.inflight.instance_id in done:
                worker.inflight = None
                worker.dispatched_at = None

        report.results = merge_shard_results(shard_results.values())
        report.attempts = supervisor.attempts_map()
        return report

    def map(
        self, fn: Callable[..., Any], specs: Sequence[Any]
    ) -> list[Any]:
        """Run ``fn(spec)`` for every spec; results align with input order."""
        merged = self.run(
            [ShardItem(instance_id=i, fn=fn, args=(spec,)) for i, spec in enumerate(specs)]
        )
        return [merged[i] for i in range(len(specs))]

    # ------------------------------------------------------------ internals
    def _inflight_count(self) -> int:
        return sum(1 for w in self._pool.values() if w.inflight is not None)

    def _dispatch(
        self, worker_id: int, item: ShardItem, supervisor: BatchSupervisor, emit
    ) -> None:
        worker = self._pool[worker_id]
        attempt = supervisor.note_dispatch(item.instance_id)
        worker.inflight = item
        worker.dispatched_at = time.perf_counter()
        worker.task_queue.put(
            (item.instance_id, attempt, item.fn, tuple(item.args), dict(item.kwargs))
        )
        emit(
            "dispatch",
            {"item": item.instance_id, "worker": worker_id, "attempt": attempt},
        )

    def _fill_idle_workers(
        self, pending: list[ShardItem], supervisor: BatchSupervisor, emit
    ) -> None:
        for worker_id, worker in list(self._pool.items()):
            if not pending:
                return
            if worker.inflight is None and worker.process.is_alive():
                self._dispatch(worker_id, pending.pop(), supervisor, emit)

    def _ensure_capacity(
        self, outstanding: int, report: ShardRunReport, emit=None
    ) -> None:
        """Keep ``min(workers, outstanding)`` workers alive, degrading or
        raising per policy when the respawn budget cannot sustain it.

        The first ``self.workers`` spawns are the pool's initial fill and
        are free; only replacement spawns draw down the respawn budget.
        """
        target = min(self.workers, max(outstanding, 0))
        while len(self._pool) < target:
            is_respawn = self._next_worker_id >= self.workers
            if is_respawn and self._respawn_budget <= 0:
                self._degrade_or_raise(report, emit, "worker respawn budget exhausted")
                return
            try:
                self._spawn_worker()
            except OSError as error:  # pragma: no cover - depends on OS limits
                self._degrade_or_raise(report, emit, f"worker spawn failed: {error}")
                return
            if is_respawn:
                self._respawn_budget -= 1
                report.respawns += 1

    def _degrade_or_raise(self, report: ShardRunReport, emit, why: str) -> None:
        alive = sum(1 for w in self._pool.values() if w.process.is_alive())
        if self.policy.allow_degraded and alive >= 1:
            if not report.degraded:
                report.degraded = True
                if emit is not None:
                    emit("degraded", {"workers": alive, "reason": why})
            return
        raise ShardCrashError(f"{why}; refusing to continue with {alive} worker(s)")

    def _reap_dead(
        self, pending, delayed, delayed_seq, supervisor, done, report, emit, now
    ) -> None:
        """Collect workers whose processes died on their own."""
        for worker_id in list(self._pool):
            worker = self._pool[worker_id]
            if worker.process.is_alive():
                continue
            del self._pool[worker_id]
            report.worker_crashes += 1
            detail = describe_exit(worker.process.exitcode)
            self._handle_loss(
                worker, REASON_CRASH, detail, pending, delayed, delayed_seq,
                supervisor, done, report, emit, now,
            )

    def _handle_loss(
        self,
        worker: _Worker,
        reason: str,
        detail: str,
        pending: list[ShardItem],
        delayed: list,
        delayed_seq,
        supervisor: BatchSupervisor,
        done: set,
        report: ShardRunReport,
        emit,
        now: float,
    ) -> None:
        """Route a lost worker's in-flight instance: retry or quarantine."""
        lost = worker.inflight
        if lost is None or lost.instance_id in done:
            return
        verdict, outcome = supervisor.record_loss(lost.instance_id, reason, detail)
        if verdict == "quarantine":
            done.add(lost.instance_id)
            report.quarantined[lost.instance_id] = outcome
            emit(
                "quarantine",
                {
                    "item": lost.instance_id,
                    "reason": outcome,
                    "attempts": supervisor.attempts(lost.instance_id),
                },
            )
        else:
            delay = float(outcome)
            if delay > 0:
                delayed.append((now + delay, next(delayed_seq), lost))
            else:
                pending.append(lost)
            emit(
                "retry",
                {
                    "item": lost.instance_id,
                    "attempt": supervisor.attempts(lost.instance_id),
                    "reason": reason,
                    "delay": delay,
                },
            )


def _dispose_worker(worker: _Worker, grace: float = 1.0) -> None:
    """Escalate a worker to death: terminate, then kill, then join."""
    process = worker.process
    if not process.is_alive():
        process.join(timeout=grace)
        return
    process.terminate()
    process.join(timeout=grace)
    if process.is_alive():
        process.kill()
        process.join(timeout=grace)


def resolve_start_method(requested: str | None) -> str:
    """The effective start method a pool built with ``requested`` uses."""
    if requested is not None:
        return requested
    return multiprocessing.get_start_method()


def default_workers() -> int:
    """Worker count when the caller does not specify one."""
    env = os.environ.get("REPRO_SHARD_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1
