"""Strict equivalence of serial, parallel, cold-cache, and warm-cache runs.

The tentpole guarantee of the sweep engine: fan-out and caching are pure
performance optimisations.  Rendered figure output must be byte-identical
no matter which path produced the metrics.
"""

from repro.core.experiments import SweepEngine
from repro.core.experiments.fig7 import run_fig7_for
from repro.core.experiments.fig8 import run_fig8

FIG7_ARGS = ("kmeans", "kmeans_100mb", (8, 4))
FIG8_ARGS = dict(dataset_key="matmul_128mb", grids=(4, 2))


class TestFig7Equivalence:
    def test_all_paths_byte_identical(self, tmp_path):
        serial = run_fig7_for(*FIG7_ARGS, engine=SweepEngine.serial())
        reference = serial.render()

        parallel = run_fig7_for(
            *FIG7_ARGS, engine=SweepEngine(jobs=4, cache=False)
        )
        assert parallel.render() == reference

        cold_engine = SweepEngine(jobs=4, cache_dir=tmp_path)
        cold = run_fig7_for(*FIG7_ARGS, engine=cold_engine)
        assert cold.render() == reference
        assert cold_engine.stats.executed == 4

        warm_engine = SweepEngine(jobs=4, cache_dir=tmp_path)
        warm = run_fig7_for(*FIG7_ARGS, engine=warm_engine)
        assert warm.render() == reference
        assert warm_engine.stats.misses == 0
        assert warm_engine.stats.cache_hits == 4


class TestFig8Equivalence:
    def test_all_paths_byte_identical(self, tmp_path):
        reference = run_fig8(**FIG8_ARGS, engine=SweepEngine.serial()).render()

        parallel = run_fig8(**FIG8_ARGS, engine=SweepEngine(jobs=4, cache=False))
        assert parallel.render() == reference

        cold = run_fig8(**FIG8_ARGS, engine=SweepEngine(jobs=4, cache_dir=tmp_path))
        assert cold.render() == reference

        warm_engine = SweepEngine(jobs=4, cache_dir=tmp_path)
        warm = run_fig8(**FIG8_ARGS, engine=warm_engine)
        assert warm.render() == reference
        assert warm_engine.stats.misses == 0


class TestCliEquivalence:
    def _figures(self, argv, capsys):
        from repro.cli import main

        assert main(argv) == 0
        out = capsys.readouterr().out
        table = "\n".join(
            line for line in out.splitlines() if not line.startswith("[sweep]")
        )
        stats = next(
            line for line in out.splitlines() if line.startswith("[sweep]")
        )
        return table, stats

    def test_second_cli_run_is_all_hits(self, tmp_path, capsys):
        argv = ["figures", "fig9b", "--jobs", "2", "--cache-dir", str(tmp_path)]
        first_table, first_stats = self._figures(argv, capsys)
        assert "misses=8" in first_stats
        second_table, second_stats = self._figures(argv, capsys)
        assert "misses=0" in second_stats
        assert "hits=8" in second_stats
        assert second_table == first_table

    def test_no_cache_flag_skips_the_cache(self, tmp_path, capsys):
        argv = [
            "figures", "fig9b", "--jobs", "1",
            "--cache-dir", str(tmp_path), "--no-cache",
        ]
        _table, stats = self._figures(argv, capsys)
        assert "misses=8" in stats
        assert not any(tmp_path.iterdir())
