"""Tests for the tunable synthetic workload and the transition sweep."""

import numpy as np
import pytest

from repro.algorithms import SyntheticWorkflow
from repro.algorithms.synthetic import synthetic_cost, synthetic_stage
from repro.core.experiments import run_parallel_ratio_sweep
from repro.data import DatasetSpec
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.runtime import Backend


def _tiny(rows=256, cols=8):
    return DatasetSpec("syn", rows=rows, cols=cols)


class TestCostProfile:
    def test_ratio_splits_fixed_budget(self):
        low = synthetic_cost(1000, 100, parallel_ratio=0.2)
        high = synthetic_cost(1000, 100, parallel_ratio=0.8)
        total_low = low.serial_flops + low.parallel_flops
        total_high = high.serial_flops + high.parallel_flops
        assert total_low == pytest.approx(total_high)
        assert high.parallel_flops == pytest.approx(4 * low.parallel_flops)

    def test_extremes(self):
        serial_only = synthetic_cost(100, 10, parallel_ratio=0.0)
        assert serial_only.parallel_flops == 0
        assert serial_only.host_device_bytes == 0
        parallel_only = synthetic_cost(100, 10, parallel_ratio=1.0)
        assert parallel_only.serial_flops == 0

    def test_ratio_validated(self):
        with pytest.raises(ValueError):
            synthetic_cost(10, 10, parallel_ratio=1.5)

    def test_levels_validated(self):
        with pytest.raises(ValueError):
            SyntheticWorkflow(_tiny(), grid_rows=2, parallel_ratio=0.5, levels=0)


class TestExecution:
    def test_real_execution_matches_direct_apply(self):
        dataset = _tiny()
        workflow = SyntheticWorkflow(dataset, grid_rows=4, parallel_ratio=0.5)
        rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        refs = workflow.build(rt, materialize=True)
        result = rt.run()
        from repro.data.generator import generate_matrix

        expected = synthetic_stage.fn(generate_matrix(dataset))
        got = np.vstack([result.data[ref.ref_id] for ref in refs])
        np.testing.assert_allclose(got, expected)

    def test_levels_chain_dag(self):
        rt = Runtime(RuntimeConfig())
        SyntheticWorkflow(_tiny(), grid_rows=4, parallel_ratio=0.5, levels=3).build(rt)
        assert rt.graph.height == 3
        assert rt.graph.width == 4

    def test_simulated_run_completes(self):
        rt = Runtime(RuntimeConfig(use_gpu=True))
        SyntheticWorkflow(
            DatasetSpec("s", rows=200_000, cols=100), grid_rows=16,
            parallel_ratio=0.7,
        ).build(rt)
        assert rt.run().makespan > 0


class TestTransitionSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_parallel_ratio_sweep(
            ratios=(0.0, 0.2, 0.4, 0.7, 1.0), rows=500_000, grid_rows=16
        )

    def test_speedup_monotone_in_ratio(self, sweep):
        # Ratio 0.0 is degenerate (the task is not GPU-eligible, so the
        # "GPU" run is the CPU run); monotonicity starts once the GPU
        # actually engages.
        values = [
            p.measured_user_code_speedup
            for p in sweep.points
            if p.parallel_ratio > 0 and p.measured_user_code_speedup is not None
        ]
        assert values == sorted(values)

    def test_measured_matches_analytic_prediction(self, sweep):
        # Single-task stage metrics and the Amdahl formula share the stage
        # model, so the §5.5.1 decision method is exact at this level.
        for point in sweep.points:
            if point.predicted_user_code_speedup is None:
                continue
            assert point.measured_user_code_speedup == pytest.approx(
                point.predicted_user_code_speedup, rel=1e-3
            )

    def test_breakeven_exists_between_extremes(self, sweep):
        breakeven = sweep.breakeven_ratio()
        assert breakeven is not None
        assert 0.0 < breakeven < 1.0

    def test_render(self, sweep):
        text = sweep.render()
        assert "break-even" in text
        assert "worth GPU?" in text
