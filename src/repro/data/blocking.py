"""Grid/block partitioning: the paper's Eq. (1) and Eq. (2).

Notation (§3.5): the input dataset ``D`` has ``i x j`` elements, a block
``B`` has ``m x n`` elements, and the grid ``G`` has ``k x l`` blocks with

    i = k * m,    j = l * n            (Eq. 1)
    k = i / m,    l = j / n            (Eq. 2)

``k``/``l`` are inversely proportional to ``m``/``n`` — the block-size knob
that trades task-level against thread-level parallelism.  Two constraints
apply (§3.5): a block must fit in processor memory, and the block dimension
cannot exceed the dataset dimension.

Following §4.4.4 the task granularity is one block per task, so the number
of spawned tasks is exactly the grid size ``k * l``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.data.dataset import DatasetSpec


class InvalidBlockingError(ValueError):
    """Raised when block and dataset dimensions violate Eq. (1)."""


class ChunkingPolicy(str, enum.Enum):
    """How blocks of a grid are organised and assigned to tasks (Figure 5).

    Matmul chunks the dataset into rows *and* columns (hybrid); K-means
    chunks into rows only (§4.4.4).
    """

    ROW_WISE = "row_wise"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class GridSpec:
    """Grid dimension ``k x l``: blocks per row-axis and per column-axis."""

    k: int
    l: int  # noqa: E741 - matches the paper's notation

    def __post_init__(self) -> None:
        if self.k <= 0 or self.l <= 0:
            raise ValueError("grid dimensions must be positive")

    @property
    def num_blocks(self) -> int:
        """Total number of blocks (= number of tasks at one block/task)."""
        return self.k * self.l

    def __str__(self) -> str:
        return f"{self.k} x {self.l}"


@dataclass(frozen=True)
class BlockSpec:
    """Block dimension ``m x n``: elements per block along each axis."""

    m: int
    n: int

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0:
            raise ValueError("block dimensions must be positive")

    @property
    def elements(self) -> int:
        """Elements per block (m x n)."""
        return self.m * self.n


@dataclass(frozen=True)
class Blocking:
    """A validated (dataset, block, grid) triple satisfying Eq. (1).

    ``block`` holds the *nominal* block dimension.  When the dataset does
    not divide evenly (e.g. 12.5M K-means samples over a 256 x 1 grid),
    the last block along an axis is smaller — the same ragged-edge rule
    dislib's ``ds_array`` applies.  Eq. (1) then holds in ceiling form:
    ``(k-1) * m < i <= k * m``.
    """

    dataset: DatasetSpec
    block: BlockSpec
    grid: GridSpec

    @classmethod
    def from_block(cls, dataset: DatasetSpec, block: BlockSpec) -> "Blocking":
        """Derive the grid from the block dimension via Eq. (2)."""
        if block.m > dataset.rows or block.n > dataset.cols:
            raise InvalidBlockingError(
                f"block {block.m}x{block.n} exceeds dataset "
                f"{dataset.rows}x{dataset.cols}"
            )
        grid = GridSpec(
            k=-(-dataset.rows // block.m),
            l=-(-dataset.cols // block.n),
        )
        return cls(dataset=dataset, block=block, grid=grid)

    @classmethod
    def from_grid(cls, dataset: DatasetSpec, grid: GridSpec) -> "Blocking":
        """Derive the block dimension from the grid via Eq. (1)."""
        if grid.k > dataset.rows or grid.l > dataset.cols:
            raise InvalidBlockingError(
                f"grid {grid} exceeds dataset {dataset.rows}x{dataset.cols}"
            )
        block = BlockSpec(
            m=-(-dataset.rows // grid.k),
            n=-(-dataset.cols // grid.l),
        )
        # A grid is realizable only if ceil-sized blocks actually need all
        # k x l slots (e.g. 4 rows cannot form 3 uniform row blocks: sizes
        # would be 2, 2, 0).
        if -(-dataset.rows // block.m) != grid.k or -(-dataset.cols // block.n) != grid.l:
            raise InvalidBlockingError(
                f"grid {grid} is not realizable for dataset "
                f"{dataset.rows}x{dataset.cols}: the last block would be empty"
            )
        return cls(dataset=dataset, block=block, grid=grid)

    def __post_init__(self) -> None:
        if not (self.grid.k - 1) * self.block.m < self.dataset.rows <= self.grid.k * self.block.m:
            raise InvalidBlockingError(
                f"Eq. (1) violated on rows: grid k={self.grid.k}, block "
                f"m={self.block.m}, dataset rows={self.dataset.rows}"
            )
        if not (self.grid.l - 1) * self.block.n < self.dataset.cols <= self.grid.l * self.block.n:
            raise InvalidBlockingError(
                f"Eq. (1) violated on cols: grid l={self.grid.l}, block "
                f"n={self.block.n}, dataset cols={self.dataset.cols}"
            )

    @property
    def block_bytes(self) -> int:
        """Bytes of one block."""
        return self.block.elements * self.dataset.dtype_bytes

    @property
    def block_mb(self) -> float:
        """Block size in (decimal) megabytes, as the figures label it."""
        return self.block_bytes / 1e6

    @property
    def num_tasks(self) -> int:
        """Tasks spawned at the paper's one-block-per-task granularity."""
        return self.grid.num_blocks

    def block_rows(self, block_row: int) -> int:
        """Actual row count of the given block-row (last may be smaller)."""
        if not 0 <= block_row < self.grid.k:
            raise IndexError(f"block row {block_row} out of range")
        if block_row < self.grid.k - 1:
            return self.block.m
        return self.dataset.rows - (self.grid.k - 1) * self.block.m

    def block_cols(self, block_col: int) -> int:
        """Actual column count of the given block-column."""
        if not 0 <= block_col < self.grid.l:
            raise IndexError(f"block col {block_col} out of range")
        if block_col < self.grid.l - 1:
            return self.block.n
        return self.dataset.cols - (self.grid.l - 1) * self.block.n

    def describe(self) -> str:
        """One-line summary used in experiment reports."""
        return (
            f"{self.dataset.name}: grid {self.grid}, block "
            f"{self.block.m}x{self.block.n} ({self.block_mb:.0f} MB), "
            f"{self.num_tasks} tasks"
        )


def render_partitioning(
    blocking: Blocking,
    chunking: ChunkingPolicy = ChunkingPolicy.HYBRID,
) -> str:
    """Render a partitioning as ASCII (the paper's Figure 5 illustration).

    Each cell of the dataset matrix is labelled with the task that
    processes its block: ``ROW_WISE`` assigns one task per block-row (the
    K-means policy), ``HYBRID`` one task per block (the Matmul policy, at
    the one-block-per-task granularity of §4.4.4).

    Only sensible for small grids; refuses datasets over 64x64 elements.
    """
    dataset = blocking.dataset
    if dataset.rows > 64 or dataset.cols > 64:
        raise ValueError("render_partitioning is an illustration for tiny grids")
    grid = blocking.grid
    lines = [
        f"dataset {dataset.rows}x{dataset.cols} "
        f"({dataset.elements} elements), block "
        f"{blocking.block.m}x{blocking.block.n}, grid {grid} "
        f"({chunking.value} chunking)"
    ]
    for row in range(dataset.rows):
        block_row = min(row // blocking.block.m, grid.k - 1)
        cells = []
        for col in range(dataset.cols):
            block_col = min(col // blocking.block.n, grid.l - 1)
            if chunking is ChunkingPolicy.ROW_WISE:
                task_id = block_row
            else:
                task_id = block_row * grid.l + block_col
            cells.append(f"T{task_id + 1}")
        lines.append(" ".join(f"{cell:>3s}" for cell in cells))
    return "\n".join(lines)


def row_wise_blockings(dataset: DatasetSpec, grid_rows: list[int]) -> list[Blocking]:
    """Row-wise chunkings (grid ``k x 1``) for a list of ``k`` values.

    This is K-means' chunking strategy; §4.4.4 enforces one grid column.
    """
    return [Blocking.from_grid(dataset, GridSpec(k=k, l=1)) for k in grid_rows]


def square_blockings(dataset: DatasetSpec, grid_sizes: list[int]) -> list[Blocking]:
    """Square chunkings (grid ``g x g``) for a list of ``g`` values.

    This is Matmul's hybrid row/column chunking strategy.
    """
    return [Blocking.from_grid(dataset, GridSpec(k=g, l=g)) for g in grid_sizes]
