"""Execution backends for the task runtime.

* :class:`~repro.runtime.backends.simulated.SimulatedExecutor` — runs the
  workflow on the discrete-event cluster model, producing paper-scale
  timing traces without paper-scale data.
* :class:`~repro.runtime.backends.inprocess.InProcessExecutor` — really
  executes the task functions on NumPy data, for correctness testing of
  the algorithms and the DAG machinery.
* :class:`~repro.runtime.backends.threaded.ThreadedExecutor` — the same
  real execution on a thread pool, overlapping independent tasks (NumPy
  releases the GIL), which makes the runtime usable as a small local
  dataflow engine.
"""

from repro.runtime.backends.inprocess import InProcessExecutor
from repro.runtime.backends.simulated import SimulatedExecutor
from repro.runtime.backends.threaded import ThreadedExecutor

__all__ = ["InProcessExecutor", "SimulatedExecutor", "ThreadedExecutor"]
