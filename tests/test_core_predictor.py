"""Tests for the learned performance model (§5.4.3)."""

import pytest

from repro.core.experiments.fig11 import SamplePlan, run_fig11
from repro.core.predictor import (
    PerformancePredictor,
    fit_and_evaluate,
    samples_from_columns,
    train_test_split,
)
from repro.hardware import StorageKind
from repro.runtime import SchedulingPolicy


def _columns():
    plans = []
    shared = StorageKind.SHARED
    gen = SchedulingPolicy.GENERATION_ORDER
    for ds in ("kmeans_100mb", "kmeans_10gb"):
        for grid in (64, 32, 16, 8, 4):
            for gpu in (False, True):
                plans.append(SamplePlan("kmeans", ds, grid, 10, gpu, shared, gen))
    return run_fig11(plans).columns


@pytest.fixture(scope="module")
def columns():
    return _columns()


class TestSplitAndSamples:
    def test_samples_from_columns_shape(self, columns):
        samples = samples_from_columns(columns)
        assert len(samples) == len(columns["parallel_task_exec_time"])
        assert set(samples[0]) == set(columns)

    def test_split_partitions(self, columns):
        samples = samples_from_columns(columns)
        train, test = train_test_split(samples, test_fraction=0.25, seed=1)
        assert len(train) + len(test) == len(samples)
        assert test  # non-empty

    def test_split_deterministic(self, columns):
        samples = samples_from_columns(columns)
        a = train_test_split(samples, seed=3)
        b = train_test_split(samples, seed=3)
        assert a == b

    def test_bad_fraction_rejected(self, columns):
        samples = samples_from_columns(columns)
        with pytest.raises(ValueError):
            train_test_split(samples, test_fraction=1.5)


class TestPredictor:
    def test_unfitted_predict_rejected(self, columns):
        predictor = PerformancePredictor()
        with pytest.raises(RuntimeError):
            predictor.predict(samples_from_columns(columns)[0])

    def test_too_few_samples_rejected(self, columns):
        samples = samples_from_columns(columns)[:3]
        with pytest.raises(ValueError):
            PerformancePredictor().fit(samples)

    def test_fit_then_predict_positive(self, columns):
        samples = samples_from_columns(columns)
        predictor = PerformancePredictor().fit(samples)
        assert predictor.is_fitted
        assert predictor.predict(samples[0]) > 0

    def test_in_sample_fit_quality(self, columns):
        samples = samples_from_columns(columns)
        predictor = PerformancePredictor().fit(samples)
        report = predictor.evaluate(samples)
        assert report.r2_log > 0.8

    def test_holdout_generalisation(self, columns):
        _predictor, report = fit_and_evaluate(columns, seed=2)
        assert report.r2_log > 0.6
        assert report.mape < 1.5  # within ~2.5x on a log-linear model
        assert "MAPE" in report.render()

    def test_predictions_track_block_size_trend(self, columns):
        # Within one dataset/processor slice, the fitted model must
        # reproduce the direction of the block-size effect.
        samples = samples_from_columns(columns)
        predictor = PerformancePredictor().fit(samples)
        slice_ = sorted(
            (
                s
                for s in samples
                if s["gpu"] == 0.0 and s["dataset_size"] > 1e9
            ),
            key=lambda s: s["block_size"],
        )
        measured = [s["parallel_task_exec_time"] for s in slice_]
        predicted = [predictor.predict(s) for s in slice_]
        from repro.core.correlation import spearman

        assert spearman(measured, predicted) > 0.7
