"""Workflow-level fuzzing: random configurations must behave sanely.

Hypothesis draws (algorithm, grid, storage, policy, processor) tuples on
small datasets; every draw must either complete with consistent metrics
or fail with one of the two modelled OOM conditions — nothing else.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms import (
    KMeansWorkflow,
    LinearRegressionWorkflow,
    MatmulFmaWorkflow,
    MatmulWorkflow,
    SyntheticWorkflow,
)
from repro.core.experiments.runners import run_workflow
from repro.data import DatasetSpec
from repro.hardware import StorageKind
from repro.runtime import SchedulingPolicy

_SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

matmul_like = st.sampled_from([MatmulWorkflow, MatmulFmaWorkflow])


def _square_dataset(order):
    return DatasetSpec(f"fuzz_m{order}", rows=order, cols=order)


def _tall_dataset(rows):
    return DatasetSpec(f"fuzz_k{rows}", rows=rows, cols=50)


class TestFuzzedConfigurations:
    @given(
        workflow_cls=matmul_like,
        order_exp=st.integers(min_value=9, max_value=13),
        grid=st.sampled_from([1, 2, 4, 8]),
        storage=st.sampled_from(list(StorageKind)),
        policy=st.sampled_from(list(SchedulingPolicy)),
        use_gpu=st.booleans(),
    )
    @settings(**_SETTINGS)
    def test_matmul_family(self, workflow_cls, order_exp, grid, storage,
                           policy, use_gpu):
        workflow = workflow_cls(_square_dataset(2**order_exp), grid=grid)
        metrics = run_workflow(
            workflow_cls(_square_dataset(2**order_exp), grid=grid),
            use_gpu=use_gpu,
            storage=storage,
            scheduling=policy,
        )
        assert metrics.status in {"ok", "gpu_oom", "cpu_oom"}
        if metrics.ok:
            assert metrics.makespan > 0
            assert metrics.parallel_task_time > 0
            assert metrics.num_tasks > 0
            if grid == 1:
                # dislib Matmul: one task; FMA adds the zero accumulator.
                expected = 1 if workflow_cls is MatmulWorkflow else 2
                assert metrics.num_tasks == expected

    @given(
        rows=st.integers(min_value=10_000, max_value=5_000_000),
        grid=st.sampled_from([1, 2, 8, 32]),
        clusters=st.sampled_from([2, 10, 100]),
        storage=st.sampled_from(list(StorageKind)),
        policy=st.sampled_from(list(SchedulingPolicy)),
        use_gpu=st.booleans(),
    )
    @settings(**_SETTINGS)
    def test_kmeans(self, rows, grid, clusters, storage, policy, use_gpu):
        if grid > rows:
            return
        metrics = run_workflow(
            KMeansWorkflow(_tall_dataset(rows), grid_rows=grid,
                           n_clusters=clusters, iterations=2),
            use_gpu=use_gpu,
            storage=storage,
            scheduling=policy,
        )
        assert metrics.status in {"ok", "gpu_oom", "cpu_oom"}
        if metrics.ok:
            # Two iterations: partial_sum levels plus merges.
            assert metrics.dag_height == 4
            assert metrics.makespan >= metrics.parallel_task_time

    @given(
        rows=st.integers(min_value=50_000, max_value=2_000_000),
        grid=st.sampled_from([1, 4, 16]),
        use_gpu=st.booleans(),
    )
    @settings(**_SETTINGS)
    def test_linreg(self, rows, grid, use_gpu):
        if grid > rows:
            return
        metrics = run_workflow(
            LinearRegressionWorkflow(_tall_dataset(rows), grid_rows=grid),
            use_gpu=use_gpu,
        )
        assert metrics.status == "ok"
        assert metrics.makespan > 0

    @given(
        ratio=st.floats(min_value=0.0, max_value=1.0),
        grid=st.sampled_from([1, 8, 32]),
        use_gpu=st.booleans(),
    )
    @settings(**_SETTINGS)
    def test_synthetic(self, ratio, grid, use_gpu):
        metrics = run_workflow(
            SyntheticWorkflow(_tall_dataset(500_000), grid_rows=grid,
                              parallel_ratio=ratio),
            use_gpu=use_gpu,
        )
        assert metrics.status == "ok"
        user_code = metrics.user_code["synthetic_stage"]
        if ratio == 0.0:
            assert user_code.parallel_fraction == 0.0
        else:
            assert user_code.parallel_fraction > 0.0
