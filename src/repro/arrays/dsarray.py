"""Blocked distributed arrays over the task runtime."""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.data import Blocking
from repro.runtime import DataRef, Runtime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import WorkflowResult


class DistributedArray:
    """A matrix split into a ``k x l`` grid of blocks (dislib's ds_array).

    Each block is one :class:`DataRef` registered with the runtime.  Blocks
    are placed round-robin over the cluster nodes, as a distributed
    filesystem or a blocked ingest would spread them.
    """

    def __init__(self, blocking: Blocking, refs: list[list[DataRef]]) -> None:
        grid = blocking.grid
        if len(refs) != grid.k or any(len(row) != grid.l for row in refs):
            raise ValueError(
                f"ref grid shape {len(refs)}x{len(refs[0]) if refs else 0} "
                f"does not match blocking grid {grid}"
            )
        self.blocking = blocking
        self._refs = refs

    @classmethod
    def create(
        cls,
        runtime: Runtime,
        blocking: Blocking,
        name: str = "A",
        materialize: bool = False,
    ) -> "DistributedArray":
        """Register a block grid with the runtime.

        With ``materialize=True`` the full matrix is generated (uniform or
        skewed per the dataset spec) and sliced into real NumPy blocks —
        only sensible for the small datasets the in-process backend uses.
        """
        from repro.data.generator import generate_matrix

        matrix = generate_matrix(blocking.dataset) if materialize else None
        block = blocking.block
        refs: list[list[DataRef]] = []
        for i in range(blocking.grid.k):
            row: list[DataRef] = []
            for j in range(blocking.grid.l):
                value = None
                if matrix is not None:
                    value = matrix[
                        i * block.m : (i + 1) * block.m,
                        j * block.n : (j + 1) * block.n,
                    ].copy()
                row.append(
                    runtime.register_input(
                        size_bytes=blocking.block_bytes,
                        name=f"{name}[{i}][{j}]",
                        value=value,
                    )
                )
            refs.append(row)
        return cls(blocking, refs)

    @property
    def grid_shape(self) -> tuple[int, int]:
        """(k, l): blocks along each axis."""
        return (self.blocking.grid.k, self.blocking.grid.l)

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, cols) of the full matrix."""
        return (self.blocking.dataset.rows, self.blocking.dataset.cols)

    def block(self, i: int, j: int = 0) -> DataRef:
        """The ref of block (i, j)."""
        return self._refs[i][j]

    def blocks(self) -> list[DataRef]:
        """All block refs in row-major order."""
        return [ref for row in self._refs for ref in row]

    def gather(self, result: "WorkflowResult") -> np.ndarray:
        """Assemble the full matrix from real block values (in-process)."""
        rows = [
            np.hstack([result.data[ref.ref_id] for ref in row]) for row in self._refs
        ]
        return np.vstack(rows)

    @staticmethod
    def assemble(
        refs: list[list[DataRef]], result: "WorkflowResult"
    ) -> np.ndarray:
        """Assemble a matrix from an arbitrary grid of produced refs."""
        rows = [
            np.hstack([result.data[ref.ref_id] for ref in row]) for row in refs
        ]
        return np.vstack(rows)
