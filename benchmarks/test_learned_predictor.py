"""Extension benchmark — the §5.4.3 learned performance model.

Trains the log-linear factor model on 70% of the Figure-11 factorial
design and evaluates it on the held-out 30%: the automated-design
direction the paper proposes, made concrete.  The model captures the
multiplicative trends (high R^2 in log space, correct configuration
ranking) even though the absolute errors confirm the paper's point that
the relationships are non-linear.
"""

from repro.core.correlation import spearman
from repro.core.experiments import run_fig11
from repro.core.predictor import fit_and_evaluate, samples_from_columns


def test_learned_predictor(once):
    def measure():
        design = run_fig11()
        predictor, report = fit_and_evaluate(design.columns, seed=7)
        samples = samples_from_columns(design.columns)
        measured = [s["parallel_task_exec_time"] for s in samples]
        predicted = [predictor.predict(s) for s in samples]
        rank_rho = spearman(measured, predicted)
        return report, rank_rho

    report, rank_rho = once(measure)
    print()
    print(f"holdout: {report.render()}")
    print(f"configuration-ranking Spearman rho: {rank_rho:+.3f}")
    assert report.r2_log > 0.7
    assert rank_rho > 0.8
