"""Discrete-event execution of a workflow on the simulated cluster.

This backend reproduces the paper's execution pipeline end to end:

* a **dispatcher** process applies the scheduling policy to the ready
  queue, reserves a CPU core (plus a GPU device for GPU-eligible tasks in
  GPU mode), pays the per-task dispatch latency, and launches a task
  process — serialising scheduling decisions exactly like the PyCOMPSs
  master;
* each **task process** walks the Figure-4 stages: deserialization
  (storage read through the contended disk/network channels plus CPU-side
  decode), serial fraction, parallel fraction (CPU core or GPU device),
  CPU-GPU communication over the node's PCIe channel, and serialization
  back to storage;
* every stage emits trace records, from which the §4.2 metrics are
  aggregated.

When the DAG's width is 1 the workflow is not distributed at all — the
single task chain runs on the master with in-memory data, so storage and
(de-)serialization stages are skipped.  This mirrors the paper's
observation that the maximum block size incurs "neither task distribution
nor any overhead caused by it" (§5.3).

With a :class:`~repro.faults.FaultPlan` the same pipeline grows a failure
path: task attempts can crash at stage boundaries, nodes can die at a
simulated timestamp (killing resident tasks and leaving the schedulable
cluster), device allocations can fail at run time, and stragglers stretch
compute stages.  A :class:`~repro.faults.RetryPolicy` governs recovery —
re-queueing with exponential backoff, GPU-to-CPU fallback, failed-node
blacklisting — and every try is recorded as a
:class:`~repro.tracing.TaskAttempt`.

With ``RetryPolicy(recover_lost_blocks=True)`` the failure path grows
lineage-based recovery: a node failure marks the blocks it held as lost,
and when the dispatcher selects a task whose inputs are lost it walks the
DAG backwards, resurrects the minimal set of committed ancestors that can
recompute them, and re-enqueues those before the consumer runs.  The
authoritative copy of a block lives with its producer node (matching the
locality model); workflow inputs and refs persisted by a
:class:`~repro.faults.CheckpointPolicy` are durable and terminate the
lineage walk.  A :attr:`~repro.faults.RetryPolicy.speculation_factor`
additionally launches backup attempts for stragglers, and a
:attr:`~repro.faults.RetryPolicy.blacklist_cooldown` reboots blacklisted
nodes back into scheduling.  All of it is opt-in: with the recovery knobs
at their defaults the schedule and trace are bit-identical to the
pre-recovery executor.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Generator

import numpy as _np

from repro.faults import (
    CheckpointPolicy,
    FaultError,
    FaultPlan,
    InjectedGpuOomError,
    NodeFailureError,
    RecoveryMetrics,
    RetryPolicy,
    SpeculationCancelledError,
    TaskCrashError,
    TaskDeadlineError,
)
from repro.hardware import SimulatedCluster, StorageKind
from repro.perfmodel import CostModel, TaskCost
from repro.runtime.dag import TaskGraph
from repro.runtime.locality import LocalityIndex
from repro.runtime.scheduler import Scheduler, SchedulingPolicy, make_scheduler
from repro.runtime.task import Task
from repro.sim import (
    KERNELS,
    Process,
    SimEvent,
    Simulator,
    Timeout,
    Transfer,
    WaitEvent,
)
from repro.tracing import ATTEMPT_OK, Stage, Trace

@dataclass(frozen=True)
class ResourceStats:
    """Aggregate utilisation of the contended cluster resources."""

    peak_cores_in_use: int
    peak_gpus_in_use: int
    network_bytes: float
    shared_disk_read_bytes: float
    shared_disk_write_bytes: float
    local_disk_read_bytes: float
    local_disk_write_bytes: float
    pcie_bytes: float
    peak_concurrent_shared_reads: int


_ZERO_COST = TaskCost(
    serial_flops=0.0,
    parallel_flops=0.0,
    parallel_items=0.0,
    arithmetic_intensity=0.0,
    input_bytes=0,
    output_bytes=0,
    host_device_bytes=0,
    gpu_memory_bytes=0,
)

#: Per-task lifecycle bits of the executor's structure-of-arrays state
#: (``SimulatedExecutor._state``, a uint8 array indexed by task id).
#: ``_RUNNING`` mirrors key membership of the ``_running`` attempt map.
_COMMITTED = 0x01
_FAILED = 0x02
_RUNNING = 0x04
_BACKING_OFF = 0x08
#: Tasks carrying any of these bits are off-limits to the dependency
#: accounting: their indegree counters are frozen until recovery (if
#: ever) rebases them on live state.
_SETTLED_OR_RUNNING = _COMMITTED | _FAILED | _RUNNING
_SETTLED = _COMMITTED | _FAILED


class _ReadyView:
    """Lazy, ordered view of the ready queue as Task objects.

    The generation-order policy only inspects the head of the queue, so
    materialising the whole list on every dispatch would make dispatching
    O(n^2); this view resolves tasks on demand.
    """

    def __init__(self, executor: "SimulatedExecutor") -> None:
        self._executor = executor

    def __len__(self) -> int:
        return len(self._executor._ready)

    def __getitem__(self, index):
        ready = self._executor._ready
        graph = self._executor._graph
        if isinstance(index, slice):
            return [graph.task(task_id) for task_id in ready[index]]
        return graph.task(ready[index])

    def __iter__(self):
        # Policies never mutate the ready queue while selecting, so
        # iterating the live list directly is safe and avoids an O(ready)
        # copy on every dispatch round.
        graph = self._executor._graph
        for task_id in self._executor._ready:
            yield graph.task(task_id)


class _ClusterView:
    """Read-only cluster view handed to scheduling policies."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        cpu_cores_per_task: int = 1,
        blacklist: set[int] | None = None,
        locality_index: LocalityIndex | None = None,
        lost_refs: set[int] | None = None,
    ) -> None:
        self._cluster = cluster
        self._cpu_cores_per_task = cpu_cores_per_task
        self._blacklist = blacklist if blacklist is not None else set()
        #: O(1) per-(task, node) locality scores over the ready set; only
        #: maintained when the data-locality policy is active.
        self.locality_index = locality_index
        #: Ref ids whose blocks died with a node; shared with the executor
        #: so locality credit stops even if the node later reboots.
        self._lost_refs = lost_refs if lost_refs is not None else set()

    def num_nodes(self) -> int:
        return len(self._cluster.nodes)

    def is_blacklisted(self, node: int) -> bool:
        """Whether recovery has excluded ``node`` from scheduling."""
        return node in self._blacklist

    def resident_node(self, ref) -> int | None:
        """The node whose local disk currently holds ``ref``'s block.

        ``home_node`` records where the block *landed*; the block stays
        resident there until the node fails, at which point it is lost
        (``None``) and must not earn locality credit anymore — including
        after a :attr:`~repro.faults.RetryPolicy.blacklist_cooldown`
        reboot, because a rebooted node never resurrects data.  A home
        outside the cluster (possible when refs were registered against a
        larger cluster) resolves to ``None`` as well.
        """
        node = ref.home_node
        nodes = self._cluster.nodes
        if (
            0 <= node < len(nodes)
            and nodes[node].alive
            and ref.ref_id not in self._lost_refs
        ):
            return node
        return None

    def has_free_slot(self, node: int, needs_gpu: bool, ram_bytes: int = 0) -> bool:
        n = self._cluster.nodes[node]
        if not n.alive:
            return False
        cores_needed = 1 if needs_gpu else self._cpu_cores_per_task
        if n.cores.available < cores_needed:
            return False
        if needs_gpu and n.gpus.available < 1:
            return False
        if ram_bytes > n.ram_free:
            return False
        return True


class SimulatedExecutor:
    """Executes one workflow on a fresh simulated cluster."""

    #: Chunks of the staged host-to-device pipeline when overlap is on.
    PIPELINE_STAGES = 8

    def __init__(
        self,
        cluster_spec,
        storage: StorageKind,
        scheduling: SchedulingPolicy,
        use_gpu: bool,
        comm_overlap: bool = False,
        cpu_threads: int = 1,
        gpu_task_types: frozenset[str] | None = None,
        jitter_sigma: float = 0.0,
        jitter_seed: int = 0,
        warmup_overhead: float = 0.0,
        gpu_overflow: bool = False,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        checkpoint_policy: CheckpointPolicy | None = None,
        kernel: str = "batched",
    ) -> None:
        if cpu_threads < 1:
            raise ValueError("cpu_threads must be >= 1")
        if jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")
        if warmup_overhead < 0:
            raise ValueError("warmup_overhead must be non-negative")
        if cpu_threads > cluster_spec.node.cpu.cores_per_node:
            raise ValueError(
                "cpu_threads cannot exceed the cores of one node"
            )
        if kernel not in KERNELS:
            if kernel == "reference":
                raise ValueError(
                    "the legacy 'reference' simulation kernel was removed; "
                    "the batched kernel is differentially pinned against its "
                    "recorded traces (tests/golden/kernel_oracle_digests.json). "
                    "Use sim_kernel='batched'."
                )
            raise ValueError(
                f"unknown simulation kernel {kernel!r}; expected one of {KERNELS}"
            )
        if fault_plan is not None:
            for fault in fault_plan.node_faults:
                if fault.node >= cluster_spec.num_nodes:
                    raise ValueError(
                        f"fault plan kills node {fault.node} but the cluster "
                        f"has {cluster_spec.num_nodes} nodes"
                    )
        self.cluster_spec = cluster_spec
        self.storage = storage
        self.scheduling = scheduling
        self.use_gpu = use_gpu
        self.comm_overlap = comm_overlap
        self.cpu_threads = cpu_threads
        #: Hybrid mode: when set, only these task types use GPU devices
        #: (the rest run on CPU cores even in GPU mode).
        self.gpu_task_types = gpu_task_types
        self.jitter_sigma = jitter_sigma
        self.jitter_seed = jitter_seed
        self.warmup_overhead = warmup_overhead
        #: Heterogeneous execution (a mitigation the paper's §2 survey
        #: lists): when all GPU devices are busy, a GPU-eligible task may
        #: overflow to a free CPU core if that is expected to finish
        #: sooner than queueing for a device.
        self.gpu_overflow = gpu_overflow
        #: Injected failures (``None`` = fault-free execution).
        self.fault_plan = fault_plan
        #: Recovery rules; defaults to :class:`~repro.faults.RetryPolicy`.
        self.retry_policy = retry_policy or RetryPolicy()
        #: Barrier checkpointing of task outputs to shared storage
        #: (``None`` = no checkpoints; lineage recomputation walks all the
        #: way back to workflow inputs).
        self.checkpoint_policy = checkpoint_policy
        #: Recovery cost accounting for the last :meth:`execute` run.
        self.recovery_metrics = RecoveryMetrics()
        #: Permanently failed task ids (retries exhausted, failed
        #: dependencies, or stranded without schedulable nodes); set by
        #: :meth:`execute`.
        self.failed_task_ids: tuple[int, ...] = ()
        #: Event-core implementation (``repro.sim.KERNELS``): "batched" —
        #: the flat event heap, the fast processor-sharing settle path,
        #: and — when the run qualifies — batched ready-set dispatch.
        #: The legacy "reference" kernel was removed; its recorded traces
        #: remain the differential oracle.
        self.kernel = kernel
        self.cost_model = CostModel(cluster_spec)

    def _jitter(self, duration: float) -> float:
        """Scale a compute-stage duration by the run's log-normal noise."""
        if self.jitter_sigma == 0.0 or duration == 0.0:
            return duration
        return duration * float(self._rng.lognormal(0.0, self.jitter_sigma))

    def _gpu_intended(self, task: Task) -> bool:
        """Static device intent (processor-type factor + hybrid per-type
        placement), before any overflow decision."""
        if not self.use_gpu or not task.gpu_eligible:
            return False
        if self.gpu_task_types is not None and task.name not in self.gpu_task_types:
            return False
        return True

    def _task_on_gpu(self, task: Task) -> bool:
        """Device decision for one task at dispatch time.

        Recovery can force a task to CPU (``_forced_cpu``) after a runtime
        GPU OOM or the loss of the last GPU node.  With ``gpu_overflow``
        on, a GPU-intended task falls back to a CPU core when (a) its
        working set cannot fit the device at all, or (b) every device is
        busy and running on a core is expected to finish sooner than
        queueing: the expected device wait is approximated as
        (GPU-intended ready tasks / total devices) x the task's own device
        time.
        """
        if not self._gpu_intended(task):
            return False
        if hasattr(self, "_forced_cpu") and task.task_id in self._forced_cpu:
            return False
        if not self.gpu_overflow:
            return True
        cost = task.cost or _ZERO_COST
        if cost.gpu_memory_bytes > self.cluster_spec.node.gpu.memory_bytes:
            return False
        if not hasattr(self, "cluster"):
            return True  # pre-simulation (memory precheck) path
        if any(
            node.alive and node.gpus.available > 0 for node in self.cluster.nodes
        ):
            return True
        gpu_time = self.cost_model.user_code_time(cost, use_gpu=True)
        cpu_time = self.cost_model.user_code_time(cost, use_gpu=False)
        ready_gpu = self._ready_gpu_intended
        expected_wait = (ready_gpu / max(self.cluster_spec.total_gpus, 1)) * gpu_time
        return gpu_time + expected_wait <= cpu_time

    # ------------------------------------------------------------- driving
    def execute(self, graph: TaskGraph) -> Trace:
        """Run the workflow to completion; returns the trace.

        Raises :class:`~repro.hardware.GpuOutOfMemoryError` or
        :class:`~repro.hardware.HostOutOfMemoryError` up front when any
        task's working set cannot fit, matching the paper's "GPU OOM"
        regions (the run never starts).

        With a fault plan, tasks whose retries are exhausted (or that
        depend on such a task, or that strand when every node is gone) end
        up in :attr:`failed_task_ids` instead of aborting the simulation.
        """
        self._precheck_memory(graph)
        self._rng = _np.random.default_rng(self.jitter_seed)
        self._warmed_cores: set[tuple[int, int]] = set()
        self.sim = Simulator(kernel=self.kernel)
        self.cluster = SimulatedCluster(self.sim, self.cluster_spec)
        self.trace = Trace()
        self.scheduler: Scheduler = make_scheduler(self.scheduling)
        self._blacklist: set[int] = set()
        self._locality_index = (
            LocalityIndex()
            if self.scheduling is SchedulingPolicy.DATA_LOCALITY
            else None
        )
        #: Ref ids of blocks destroyed by node failures.  Tracked per ref
        #: and independently of node liveness: a node rebooted after a
        #: blacklist cooldown never resurrects the data it lost, and a
        #: recomputed block leaves the set only when its producer commits
        #: again (re-homing the ref).
        self._lost_refs: set[int] = set()
        self._view = _ClusterView(
            self.cluster,
            self.cpu_threads,
            self._blacklist,
            self._locality_index,
            self._lost_refs,
        )
        self._graph = graph
        tasks = graph.tasks()
        #: Per-task bookkeeping lives in dense arrays indexed by task id
        #: (ids are contiguous through the submit API; hand-built sparse
        #: graphs just leave sentinel holes).  Structure-of-arrays state
        #: replaces the former dict/set-per-concern layout: a million
        #: int32/uint8 slots beat a million boxed dict entries both on
        #: memory and on the per-commit successor walk.
        size = 1 + max((t.task_id for t in tasks), default=-1)
        levels_map = graph.levels()
        self._levels = _np.zeros(size, dtype=_np.int32)
        if levels_map:
            self._levels[list(levels_map)] = list(levels_map.values())
            level_counts = _np.bincount(
                _np.fromiter(levels_map.values(), dtype=_np.int64)
            )
            self._no_distribution = int(level_counts.max()) == 1
        else:
            self._no_distribution = False
        self._indegree = _np.full(size, -1, dtype=_np.int32)
        for t in tasks:
            self._indegree[t.task_id] = len(graph.predecessor_ids(t.task_id))
        #: Lifecycle bit flags per task (``_COMMITTED``..``_BACKING_OFF``);
        #: id holes stay 0 and are never reachable through graph edges.
        #: A bytearray rather than a numpy array: the hot paths touch one
        #: element at a time, where unboxed byte access is ~3x faster
        #: than numpy scalar indexing; whole-array scans view the same
        #: buffer through ``_np.frombuffer`` (zero copy).
        self._state = bytearray(size)
        self._attempt_counts = _np.zeros(size, dtype=_np.int32)
        #: Device intent is static per task (policy flags only), so the
        #: GPU-overflow wait estimate can count ready GPU-intended tasks
        #: with an incrementally maintained counter instead of scanning
        #: the ready queue on every dispatch decision.
        self._gpu_intended_ids = {
            t.task_id for t in tasks if self._gpu_intended(t)
        }
        self._ready: list[int] = []
        self._ready_gpu_intended = 0
        for task_id in _np.flatnonzero(self._indegree == 0).tolist():
            self._ready_insert(task_id)
        self._completed = 0
        self._failed_count = 0
        self._total = graph.num_tasks
        self._wake: SimEvent | None = None
        self._free_cores = {
            node.index: list(range(node.cores.capacity))
            for node in self.cluster.nodes
        }
        self._dispatch_latency = self.cluster_spec.scheduling_latency[
            self.scheduling.value
        ]
        self._forced_cpu: set[int] = set()
        #: task_id -> {attempt -> (process, node)}.  Usually at most one
        #: attempt per task; speculation races hold two.  Key membership
        #: is mirrored in the ``_RUNNING`` state bit for the hot paths.
        self._running: dict[int, dict[int, tuple[Process, int]]] = {}
        policy = self.retry_policy
        #: Lineage recomputation of lost blocks (opt-in; all recovery
        #: state below stays empty when disabled, preserving the
        #: pre-recovery schedule bit-for-bit).
        self._recovery_on = policy.recover_lost_blocks
        #: Ref ids persisted to shared storage by the checkpoint policy;
        #: durable against node loss, so lineage walks stop there.
        self._checkpointed_refs: set[int] = set()
        #: Resurrected tasks whose recomputation has not committed yet
        #: (their next successful attempt bills recompute_seconds).
        self._resurrected_dirty: set[int] = set()
        #: (task_id, attempt) pairs launched as speculative backups.
        self._speculative_attempts: set[tuple[int, int]] = set()
        #: Sorted committed durations per task type (speculation medians).
        self._type_durations: dict[str, list[float]] = {}
        self.recovery_metrics = RecoveryMetrics()
        self._record_attempts = (
            self.fault_plan is not None or policy.speculation_enabled
        )
        if self.fault_plan is not None:
            for fault in self.fault_plan.node_faults:
                Process(
                    self.sim,
                    self._node_killer(fault),
                    name=f"nodefault{fault.node}",
                )
        self._batch_dispatch = self._batch_dispatch_eligible(graph)
        self._prewarm_cost_model(graph)
        Process(self.sim, self._dispatcher(), name="dispatcher")
        self.sim.run()
        stranded = [
            t.task_id for t in tasks if not self._state[t.task_id] & _SETTLED
        ]
        if stranded:
            if self.fault_plan is None:
                raise RuntimeError(
                    f"simulation deadlocked: {self._completed}/{self._total} "
                    "tasks completed"
                )
            # No schedulable node left (or the dispatcher starved): the
            # workflow cannot make progress, so the remainder fails.
            for task_id in stranded:
                self._state[task_id] |= _FAILED
            self._failed_count += len(stranded)
        self.failed_task_ids = tuple(
            _np.flatnonzero(self._state_view() & _FAILED).tolist()
        )
        return self.trace

    def resource_stats(self) -> ResourceStats:
        """Utilisation counters collected during :meth:`execute`."""
        nodes = self.cluster.nodes
        return ResourceStats(
            peak_cores_in_use=sum(n.cores.peak_in_use for n in nodes),
            peak_gpus_in_use=sum(n.gpus.peak_in_use for n in nodes),
            network_bytes=self.cluster.network.bytes_transferred,
            shared_disk_read_bytes=self.cluster.shared_disk_read.bytes_transferred,
            shared_disk_write_bytes=self.cluster.shared_disk_write.bytes_transferred,
            local_disk_read_bytes=sum(
                n.disk_read.bytes_transferred for n in nodes
            ),
            local_disk_write_bytes=sum(
                n.disk_write.bytes_transferred for n in nodes
            ),
            pcie_bytes=sum(n.pcie.bytes_transferred for n in nodes),
            peak_concurrent_shared_reads=self.cluster.shared_disk_read.peak_jobs,
        )

    def _precheck_memory(self, graph: TaskGraph) -> None:
        # Large DAGs draw their costs from small palettes: check each
        # distinct (cost, device intent) pair once, in first-seen order,
        # so the first violating task still raises first.
        checked: set[tuple[TaskCost, bool]] = set()
        for task in graph.tasks():
            cost = task.cost or _ZERO_COST
            check_gpu = self._gpu_intended(task) and not self.gpu_overflow
            key = (cost, check_gpu)
            if key in checked:
                continue
            checked.add(key)
            self.cost_model.check_host_memory(cost)
            if check_gpu:
                self.cost_model.check_gpu_memory(cost)

    # ------------------------------------------------------ ready-set state
    def _state_view(self) -> "_np.ndarray":
        """Zero-copy uint8 view of the lifecycle flags, for array scans."""
        return _np.frombuffer(self._state, dtype=_np.uint8)

    def _ready_insert(self, task_id: int) -> None:
        """Add one newly runnable task, maintaining the derived state.

        All derived dispatch state — the GPU-intended counter and the
        per-node locality-bytes index — is updated here and in
        :meth:`_ready_remove`, so it always equals a from-scratch
        recomputation over the ready queue (the equivalence the property
        tests assert).
        """
        bisect.insort(self._ready, task_id)
        if task_id in self._gpu_intended_ids:
            self._ready_gpu_intended += 1
        if self._locality_index is not None:
            self._locality_index.add(
                self._graph.task(task_id), self._view.resident_node
            )

    def _ready_remove(self, task_id: int) -> bool:
        """Drop a task from the ready queue; ``False`` if it wasn't there."""
        position = bisect.bisect_left(self._ready, task_id)
        if position >= len(self._ready) or self._ready[position] != task_id:
            return False
        del self._ready[position]
        if task_id in self._gpu_intended_ids:
            self._ready_gpu_intended -= 1
        if self._locality_index is not None:
            self._locality_index.discard(task_id)
        return True

    # ----------------------------------------------------------- dispatcher
    def _outstanding(self) -> int:
        """Tasks that are neither committed nor permanently failed."""
        return self._total - self._completed - self._failed_count

    def _wake_dispatcher(self) -> None:
        if self._wake is not None and not self._wake.fired:
            self._wake.succeed()

    # ---------------------------------------------------- batched dispatch
    #: Test-only override: force every dispatch through the interleaved
    #: :meth:`_dispatch_loop` even when the run qualifies for batched
    #: ready-set drains.  The differential harness monkeypatches this to
    #: prove both dispatch modes produce bit-identical traces now that
    #: the legacy kernel they were originally compared against is gone.
    _force_dispatch_loop = False

    def _batch_dispatch_eligible(self, graph: TaskGraph) -> bool:
        """Whether this run may drain ready batches without yielding.

        The batched kernel's dispatcher skips the per-task
        ``Timeout(dispatch latency)`` and launches a whole same-instant
        ready batch from one scheduler activation.  That is provably
        trace-identical to the interleaved dispatcher only when

        * the per-decision latency is exactly zero (otherwise decisions
          occupy distinct simulated instants by construction),
        * no fault/recovery machinery can interleave with the drain
          (fault plans, speculation watchdogs, task deadlines and
          checkpoint barriers all schedule their own events around
          dispatch), and
        * every task's first suspension is strictly in the future
          (:meth:`_task_batch_safe`), so a freshly launched task cannot
          complete — and mutate the ready set — in the same instant its
          siblings are still being placed.  Staged-pipeline GPU overlap
          is excluded for the same reason: its fill sub-process starts at
          the launch instant.

        Every other configuration falls back to the interleaved dispatch
        loop, the mode the recorded oracle digests were produced under.
        """
        policy = self.retry_policy
        return (
            not self._force_dispatch_loop
            and self.kernel == "batched"
            and self.fault_plan is None
            and not policy.speculation_enabled
            and policy.task_deadline is None
            and self.checkpoint_policy is None
            and self._dispatch_latency == 0.0
            and not (self.use_gpu and self.comm_overlap)
            and (
                self.scheduling is not SchedulingPolicy.DATA_LOCALITY
                or self.cluster_spec.locality_scan_seconds_per_task == 0.0
            )
            and all(self._task_batch_safe(task) for task in graph.tasks())
        )

    def _task_batch_safe(self, task: Task) -> bool:
        """Whether the task's first suspension is strictly in the future.

        A task whose stage walk yields nothing (or only zero-delay
        timeouts) before completing would commit synchronously at its
        launch instant, changing scheduler-visible state mid-drain; any
        positive-size read, decode, compute fraction, encode or write
        guarantees the walk leaves the launch instant first.  Warm-up
        overhead is ignored — it only covers the first task per core.
        """
        cost = task.cost or _ZERO_COST
        if cost.serial_flops > 0 or cost.parallel_flops > 0:
            return True
        if not self._no_distribution:
            if cost.input_bytes > 0 or cost.output_bytes > 0:
                return True
            if any(ref.size_bytes > 0 for ref in task.inputs):
                return True
        return False

    def _prewarm_cost_model(self, graph: TaskGraph) -> None:
        """Fill the stage-time memo for the whole DAG in two batched calls.

        One vectorized evaluation per device intent replaces the first
        per-task cache miss of every distinct cost profile.  GPU profiles
        the scalar path would reject (zero device rate with a non-trivial
        parallel fraction) are skipped by ``stage_times_batch`` so the
        ``ValueError`` still surfaces at dispatch time, not here.
        """
        cpu_costs = {}
        gpu_costs = {}
        for task in graph.tasks():
            if self._gpu_intended(task):
                gpu_costs[task.cost or _ZERO_COST] = None
            else:
                cpu_costs[task.cost or _ZERO_COST] = None
        # Deduplicate via dict keys before handing off: million-task DAGs
        # draw their costs from small palettes, and the batch evaluator's
        # own per-element dedup loop runs in Python.
        if cpu_costs:
            self.cost_model.stage_times_batch(
                list(cpu_costs), False, self.cpu_threads
            )
        if gpu_costs:
            self.cost_model.stage_times_batch(
                list(gpu_costs), True, self.cpu_threads
            )

    def _reserve_assignment(self, assignment) -> tuple[Task, int, int, bool]:
        """Commit one batched-dispatch placement (no simulated time passes).

        Performs exactly the reservation sequence of the interleaved
        dispatch loop — cores, GPU device slot, RAM, core slot, ready-set
        removal — so scheduler decisions made after this one observe the
        same cluster state in either dispatch mode.
        """
        task = assignment.task
        node = self.cluster.nodes[assignment.node]
        task_on_gpu = self._task_on_gpu(task)
        cores_needed = 1 if task_on_gpu else self.cpu_threads
        if not node.cores.try_request(cores_needed):
            raise RuntimeError("scheduler chose a node without free cores")
        if task_on_gpu and not node.gpus.try_request(1):
            node.cores.release(cores_needed)
            raise RuntimeError("scheduler chose a node without free GPUs")
        task_ram = task.cost.host_memory_bytes if task.cost else 0
        node.reserve_ram(task_ram)
        core_slot = self._free_cores[node.index].pop()
        self._ready_remove(task.task_id)
        return task, node.index, core_slot, task_on_gpu

    def _drain_ready_batch(self, ready_view) -> None:
        """Launch every placeable ready task at the current instant.

        One ``select_batch`` call makes all placement decisions (each
        observing the reservations of the previous ones), one
        ``stage_times_batch`` call per device flag prewarms any cost
        profiles the batch introduces, and the task processes are then
        created in decision order — the same relative launch order the
        interleaved loop produces.
        """
        batch: list[tuple[Task, int, int, bool]] = []
        self.scheduler.select_batch(
            ready_view,
            self._view,
            self._task_on_gpu,
            lambda assignment: batch.append(self._reserve_assignment(assignment)),
        )
        if not batch:
            return
        if len(batch) >= 16:
            # Worth a vectorized evaluation; smaller batches ride the
            # memoized scalar path (the whole DAG was prewarmed at
            # execute start, so misses only occur when a GPU-intended
            # task overflowed to CPU).
            cpu_costs = [t.cost or _ZERO_COST for t, _, _, g in batch if not g]
            gpu_costs = [t.cost or _ZERO_COST for t, _, _, g in batch if g]
            if cpu_costs:
                self.cost_model.stage_times_batch(cpu_costs, False, self.cpu_threads)
            if gpu_costs:
                self.cost_model.stage_times_batch(gpu_costs, True, self.cpu_threads)
        launched = []
        for task, node_index, core_slot, task_on_gpu in batch:
            attempt = int(self._attempt_counts[task.task_id]) + 1
            self._attempt_counts[task.task_id] = attempt
            process = Process(
                self.sim,
                self._run_task(task, node_index, core_slot, task_on_gpu, attempt),
                name=f"task{task.task_id}",
                autostart=False,
            )
            self._running.setdefault(task.task_id, {})[attempt] = (
                process,
                node_index,
            )
            self._state[task.task_id] |= _RUNNING
            launched.append(process)
        # Run each process to its first suspension point now instead of
        # through a zero-delay event per task.  Legal because the drain
        # only runs when no other event shares this instant, so these
        # resumes would have been the very next events in creation order
        # anyway; _task_batch_safe guarantees none of them completes (or
        # touches scheduler-visible state) before suspending.
        for process in launched:
            process.start_now()

    def _dispatcher(self) -> Generator:
        ready_view = _ReadyView(self)
        policy = self.retry_policy
        sim = self.sim
        batch_mode = self._batch_dispatch
        while self._outstanding() > 0:
            if (
                batch_mode
                and self._ready
                and sim.cascade_depth == 0
                and sim.peek_time() != sim.now
            ):
                # No other pending event shares this instant — neither in
                # the event queue nor in a resource completion cascade
                # still firing callbacks — so the whole ready set can be
                # drained in one activation.  Any same-instant contender
                # falls through to the interleaved loop below, which
                # preserves the event ordering the oracle traces recorded.
                self._drain_ready_batch(ready_view)
            else:
                yield from self._dispatch_loop(ready_view, policy)
            if self._outstanding() > 0:
                self._wake = SimEvent(name="dispatcher.wake")
                yield WaitEvent(self._wake)

    def _dispatch_loop(self, ready_view, policy) -> Generator:
        """Interleaved dispatch: one decision, one latency yield, one launch."""
        while True:
            assignment = self.scheduler.select(
                ready_view, self._view, self._task_on_gpu
            )
            if assignment is None:
                break
            task = assignment.task
            if (
                self._recovery_on
                and self._lost_refs
                and any(r.ref_id in self._lost_refs for r in task.inputs)
            ):
                # An input block died with its node: recover the
                # lineage instead of dispatching a task that cannot
                # read its inputs.
                self._recover_inputs(task)
                continue
            node = self.cluster.nodes[assignment.node]
            task_on_gpu = self._task_on_gpu(task)
            cores_needed = 1 if task_on_gpu else self.cpu_threads
            if not node.cores.try_request(cores_needed):
                raise RuntimeError("scheduler chose a node without free cores")
            if task_on_gpu and not node.gpus.try_request(1):
                node.cores.release(cores_needed)
                raise RuntimeError("scheduler chose a node without free GPUs")
            task_ram = task.cost.host_memory_bytes if task.cost else 0
            node.reserve_ram(task_ram)
            core_slot = self._free_cores[node.index].pop()
            self._ready_remove(task.task_id)
            yield Timeout(self._dispatch_latency + self._scan_latency())
            attempt = int(self._attempt_counts[task.task_id]) + 1
            self._attempt_counts[task.task_id] = attempt
            process = Process(
                self.sim,
                self._run_task(task, node.index, core_slot, task_on_gpu, attempt),
                name=f"task{task.task_id}",
            )
            self._running.setdefault(task.task_id, {})[attempt] = (
                process,
                node.index,
            )
            self._state[task.task_id] |= _RUNNING
            if policy.speculation_enabled:
                median = self._median_duration(task.name)
                if median is not None:
                    Process(
                        self.sim,
                        self._speculation_watchdog(
                            task, attempt, median * policy.speculation_factor
                        ),
                        name=f"spec{task.task_id}",
                    )

    def _scan_latency(self) -> float:
        """Queue-length-dependent decision cost of the locality policy."""
        if self.scheduling is not SchedulingPolicy.DATA_LOCALITY:
            return 0.0
        scanned = min(len(self._ready), self.cluster_spec.locality_scan_cap)
        return scanned * self.cluster_spec.locality_scan_seconds_per_task

    def _on_task_done(self, task: Task) -> None:
        self._completed += 1
        state = self._state
        indegree = self._indegree
        for sid in self._graph.successor_ids(task.task_id):
            # The live-indegree invariant — indegree equals the number of
            # non-committed predecessors — only covers tasks that are
            # still *waiting*.  Committed, failed, and in-flight
            # successors (all impossible without lineage recovery) keep
            # their counters untouched; a recovery pass recomputes them
            # if they ever matter again.
            if state[sid] & _SETTLED_OR_RUNNING:
                continue
            indegree[sid] -= 1
            if indegree[sid] == 0 and not state[sid] & _BACKING_OFF:
                self._ready_insert(sid)
        if self._ready or self._outstanding() == 0:
            # Nothing became runnable and work remains in flight: the
            # dispatcher would wake, find an empty queue, and re-arm.
            # Skipping the no-op wake removes one event round-trip per
            # commit without changing any scheduling decision.
            self._wake_dispatcher()

    # ------------------------------------------------------ lineage recovery
    def _live_indegree(self, task_id: int) -> int:
        """Predecessors whose outputs do not exist (non-committed)."""
        state = self._state
        return sum(
            1
            for pid in self._graph.predecessor_ids(task_id)
            if not state[pid] & _COMMITTED
        )

    def _recover_inputs(self, consumer: Task) -> None:
        """Resurrect the lineage that recomputes ``consumer``'s lost inputs.

        Walks producer edges backwards from every lost input ref,
        collecting committed ancestors whose outputs are gone; the walk
        terminates at durable refs (workflow inputs, checkpointed blocks,
        blocks still resident on a live node) and at ancestors that are
        already pending again from an earlier recovery pass.  The
        resurrected set leaves ``_committed``, re-enters the dependency
        accounting, and the ready queue picks it up in task-id order.

        If the walk reaches a permanently failed producer the lineage is
        unrecoverable and ``consumer`` fails instead (cascading to its
        dependents) — failing fast beats deadlocking the dispatcher.
        """
        graph = self._graph
        state = self._state
        resurrect: set[int] = set()
        stack = [
            ref.ref_id for ref in consumer.inputs if ref.ref_id in self._lost_refs
        ]
        while stack:
            ref_id = stack.pop()
            producer_id = graph.producer_of(ref_id)
            if producer_id is None:
                # Workflow input: durable by definition (never lost, but
                # kept defensive so a bad plan cannot loop the walk).
                continue
            if state[producer_id] & _FAILED:
                self._fail_permanently(consumer)
                return
            if producer_id in resurrect or not state[producer_id] & _COMMITTED:
                # Already queued this pass, or already pending again
                # (ready / running / backing off) from an earlier pass.
                continue
            resurrect.add(producer_id)
            for ref in graph.task(producer_id).inputs:
                if ref.ref_id in self._lost_refs:
                    stack.append(ref.ref_id)
        now = self.sim.now
        for task_id in sorted(resurrect):
            state[task_id] &= 0xFF ^ _COMMITTED
            self._completed -= 1
            self._resurrected_dirty.add(task_id)
            self.recovery_metrics.tasks_resurrected += 1
            resurrected = graph.task(task_id)
            # Zero-duration master-side marker: the moment recovery
            # decided to recompute this task (its re-execution then shows
            # up as a second TaskRecord with a higher attempt number).
            self.trace.add_stage_row(
                task_id,
                resurrected.name,
                Stage.RECOMPUTE,
                now,
                now,
                -1,
                -1,
                self._levels[task_id],
                False,
                int(self._attempt_counts[task_id]) or 1,
            )
        # Re-establish the live-indegree invariant.  The consumer and the
        # resurrected tasks are recomputed from scratch; every other
        # waiting successor of a resurrected task gains one edge per
        # resurrected predecessor.
        self._ready_remove(consumer.task_id)
        self._indegree[consumer.task_id] = self._live_indegree(consumer.task_id)
        for task_id in sorted(resurrect):
            self._indegree[task_id] = self._live_indegree(task_id)
            for sid in graph.successor_ids(task_id):
                if (
                    sid == consumer.task_id
                    or sid in resurrect
                    or state[sid] & _SETTLED_OR_RUNNING
                ):
                    continue
                self._ready_remove(sid)
                self._indegree[sid] += 1
        for task_id in sorted(resurrect):
            if self._indegree[task_id] == 0:
                self._ready_insert(task_id)
        self._wake_dispatcher()

    # ---------------------------------------------------------- speculation
    def _note_duration(self, task_type: str, duration: float) -> None:
        """Record a committed attempt duration for the running median."""
        bisect.insort(self._type_durations.setdefault(task_type, []), duration)

    def _median_duration(self, task_type: str) -> float | None:
        """Running median of committed durations; ``None`` below the
        ``speculation_min_samples`` threshold (too little evidence to
        call anything a straggler)."""
        durations = self._type_durations.get(task_type)
        if (
            durations is None
            or len(durations) < self.retry_policy.speculation_min_samples
        ):
            return None
        mid = len(durations) // 2
        if len(durations) % 2:
            return durations[mid]
        return 0.5 * (durations[mid - 1] + durations[mid])

    def _speculation_watchdog(
        self, task: Task, primary_attempt: int, delay: float
    ) -> Generator:
        """Launch a backup attempt if the primary is still running late.

        Armed at dispatch with ``speculation_factor x`` the running
        median of the task type; when it fires and the watched attempt is
        still the only one in flight, a backup launches on the
        lowest-indexed other node with a free slot.  First finisher wins
        (``_run_task`` cancels the sibling); no free slot elsewhere means
        no speculation this round.
        """
        yield Timeout(delay)
        if self._state[task.task_id] & _SETTLED:
            return
        attempts = self._running.get(task.task_id)
        if attempts is None or set(attempts) != {primary_attempt}:
            return
        _process, primary_node = attempts[primary_attempt]
        task_on_gpu = self._task_on_gpu(task)
        task_ram = task.cost.host_memory_bytes if task.cost else 0
        backup_node = None
        for index in range(len(self.cluster.nodes)):
            if index == primary_node or self._view.is_blacklisted(index):
                continue
            if self._view.has_free_slot(index, task_on_gpu, task_ram):
                backup_node = index
                break
        if backup_node is None:
            return
        node = self.cluster.nodes[backup_node]
        cores_needed = 1 if task_on_gpu else self.cpu_threads
        if not node.cores.try_request(cores_needed):
            return
        if task_on_gpu and not node.gpus.try_request(1):
            node.cores.release(cores_needed)
            return
        node.reserve_ram(task_ram)
        core_slot = self._free_cores[backup_node].pop()
        backup_attempt = int(self._attempt_counts[task.task_id]) + 1
        self._attempt_counts[task.task_id] = backup_attempt
        now = self.sim.now
        # Zero-duration master-side marker: the speculation decision.
        self.trace.add_stage_row(
            task.task_id,
            task.name,
            Stage.SPECULATIVE,
            now,
            now,
            -1,
            -1,
            self._levels[task.task_id],
            task_on_gpu,
            backup_attempt,
        )
        self._speculative_attempts.add((task.task_id, backup_attempt))
        self.recovery_metrics.speculative_launches += 1
        process = Process(
            self.sim,
            self._run_task(task, backup_node, core_slot, task_on_gpu, backup_attempt),
            name=f"task{task.task_id}b{backup_attempt}",
        )
        self._running[task.task_id][backup_attempt] = (process, backup_node)

    # ----------------------------------------------------------- fault path
    def _node_killer(self, fault) -> Generator:
        """Fail one node at its planned timestamp.

        All resident task processes are interrupted (they fail with a
        ``node_failure`` outcome and re-enter the retry path), the blocks
        the node held become lost, and the node is blacklisted from
        scheduling when the policy says so — permanently, or until a
        ``blacklist_cooldown`` reboot.
        """
        if fault.at_time > 0:
            yield Timeout(fault.at_time)
        node = self.cluster.nodes[fault.node]
        if not node.alive:
            return
        node.fail()
        if self._locality_index is not None:
            # Blocks on the dead node are gone: ready tasks must stop
            # earning locality credit for them (mirrors resident_node
            # resolving to None for refs homed on a dead node).
            self._locality_index.drop_node(fault.node)
        if self.retry_policy.blacklist_failed_nodes:
            self._blacklist.add(fault.node)
        # Every committed output homed here is destroyed, except blocks
        # the checkpoint policy persisted to shared storage.
        for task_id in _np.flatnonzero(self._state_view() & _COMMITTED).tolist():
            for ref in self._graph.task(task_id).outputs:
                if (
                    ref.home_node == fault.node
                    and ref.ref_id not in self._lost_refs
                    and ref.ref_id not in self._checkpointed_refs
                ):
                    self._lost_refs.add(ref.ref_id)
                    self.recovery_metrics.blocks_lost += 1
        for attempts in list(self._running.values()):
            for process, node_index in list(attempts.values()):
                if (
                    node_index == fault.node
                    and process.started
                    and not process.done.fired
                ):
                    process.interrupt(NodeFailureError(fault.node))
        if self.retry_policy.blacklist_cooldown is not None:
            Process(
                self.sim,
                self._node_rebooter(fault.node),
                name=f"nodereboot{fault.node}",
            )
        self._wake_dispatcher()

    def _node_rebooter(self, node_index: int) -> Generator:
        """Return a failed node to service after the blacklist cooldown.

        The reboot restores schedulability only: cores and devices come
        back cold (warm-up overhead applies again) and every block the
        node held stays in ``_lost_refs``.
        """
        yield Timeout(self.retry_policy.blacklist_cooldown)
        node = self.cluster.nodes[node_index]
        if node.alive:
            return
        node.recover()
        self._blacklist.discard(node_index)
        self._warmed_cores = {
            (warm_node, core)
            for (warm_node, core) in sorted(self._warmed_cores)
            if warm_node != node_index
        }
        self._wake_dispatcher()

    def _check_fault(
        self,
        task: Task,
        attempt: int,
        stage: Stage,
        planned_crash: Stage | None,
        attempt_start: float,
    ) -> None:
        """Raise at a stage boundary if the attempt dies here."""
        if planned_crash is stage:
            raise TaskCrashError(task.task_id, stage)
        deadline = self.retry_policy.task_deadline
        if deadline is not None and self.sim.now - attempt_start > deadline:
            raise TaskDeadlineError(task.task_id, deadline)

    def _handle_failure(
        self,
        task: Task,
        failure: FaultError,
        attempt: int,
        level: int,
        task_on_gpu: bool,
    ) -> None:
        """Recovery decision after a failed attempt: retry or give up."""
        policy = self.retry_policy
        if policy.gpu_fallback_to_cpu and task_on_gpu:
            if isinstance(failure, InjectedGpuOomError):
                self._forced_cpu.add(task.task_id)
            elif isinstance(failure, NodeFailureError) and not any(
                node.alive and node.gpus.capacity > 0
                for node in self.cluster.nodes
            ):
                # The last GPU-bearing node is gone: degrade to CPU.
                self._forced_cpu.add(task.task_id)
        if task.task_id in self._running:
            # A concurrent speculative attempt is still in flight; it
            # carries the task, so this failure needs no retry of its own.
            return
        if attempt < policy.max_attempts:
            rng = (
                self.fault_plan.rng_for("backoff", task.task_id, attempt)
                if self.fault_plan is not None
                else None
            )
            delay = policy.backoff_delay(attempt, rng)
            Process(
                self.sim,
                self._requeue_after(task, delay, attempt, level),
                name=f"retry{task.task_id}",
            )
        else:
            self._fail_permanently(task)

    def _requeue_after(
        self, task: Task, delay: float, failed_attempt: int, level: int
    ) -> Generator:
        """Master-side backoff, then put the task back on the ready queue."""
        start = self.sim.now
        self._state[task.task_id] |= _BACKING_OFF
        if self._recovery_on:
            # A recovery pass that ran while this attempt was in flight
            # skipped the counter (in-flight tasks hold their inputs), so
            # it may be stale relative to resurrected producers.  Rebase
            # it on live state now that the task is visible to the commit
            # path again; from here on commits decrement it as usual.
            self._indegree[task.task_id] = self._live_indegree(task.task_id)
        if delay > 0:
            yield Timeout(delay)
            # The wait occupies no core; node/core -1 marks it master-side.
            self.trace.add_stage_row(
                task.task_id,
                task.name,
                Stage.RETRY_WAIT,
                start,
                self.sim.now,
                -1,
                -1,
                level,
                False,
                failed_attempt,
            )
        self._state[task.task_id] &= 0xFF ^ _BACKING_OFF
        if self._state[task.task_id] & _FAILED or self._indegree[task.task_id] != 0:
            # A recovery pass failed this task (lineage unrecoverable) or
            # resurrected one of its inputs' producers while the backoff
            # timer ran; the commit path re-inserts it when ready.
            return
        self._ready_insert(task.task_id)
        self._wake_dispatcher()

    def _fail_permanently(self, task: Task) -> None:
        """Mark a task and every transitive dependent as failed.

        Dependents that already committed keep their outputs (an
        in-flight execution holds its inputs, so data they produced is
        real); dependents still running are spared for the same reason —
        if their own attempt later fails, their retry path decides.
        """
        stack = [task.task_id]
        state = self._state
        while stack:
            task_id = stack.pop()
            if state[task_id] & _SETTLED_OR_RUNNING:
                continue
            state[task_id] |= _FAILED
            self._failed_count += 1
            self._ready_remove(task_id)
            stack.extend(self._graph.successor_ids(task_id))
        self._wake_dispatcher()

    # -------------------------------------------------------- task process
    def _run_task(
        self,
        task: Task,
        node_index: int,
        core_slot: int,
        task_on_gpu: bool,
        attempt: int,
    ) -> Generator:
        node = self.cluster.nodes[node_index]
        cost = task.cost or _ZERO_COST
        level = self._levels[task.task_id]
        task_start = self.sim.now
        failure: FaultError | None = None
        try:
            if not node.alive:
                # Dispatched in the same instant the node died.
                raise NodeFailureError(node_index)
            if self._state[task.task_id] & _COMMITTED:
                # A speculative sibling won the race before this attempt
                # even started (an unstarted process cannot be
                # interrupted, so the loser cancels itself here and the
                # normal bookkeeping below returns its resources).
                raise SpeculationCancelledError(task.task_id)
            yield from self._attempt_stages(
                task, node, core_slot, task_on_gpu, attempt, task_start
            )
        except FaultError as error:
            failure = error

        # --- resource bookkeeping (both outcomes) -----------------------
        attempts = self._running.get(task.task_id)
        if attempts is not None:
            attempts.pop(attempt, None)
            if not attempts:
                del self._running[task.task_id]
                self._state[task.task_id] &= 0xFF ^ _RUNNING
        self._free_cores[node_index].append(core_slot)
        node.cores.release(1 if task_on_gpu else self.cpu_threads)
        node.release_ram(cost.host_memory_bytes if task.cost else 0)
        if task_on_gpu:
            node.gpus.release(1)

        if failure is None:
            siblings = self._running.pop(task.task_id, None)
            self._state[task.task_id] &= 0xFF ^ _RUNNING
            if siblings is not None:
                # First finisher wins the speculative race: cancel every
                # still-running sibling attempt (an unstarted one cancels
                # itself through the committed check above).
                for process, _sibling_node in siblings.values():
                    if process.started and not process.done.fired:
                        process.interrupt(SpeculationCancelledError(task.task_id))
            for ref in task.outputs:
                ref.home_node = node_index
            self._state[task.task_id] |= _COMMITTED
            if self._lost_refs:
                # A recomputed block exists again, homed on this node.
                for ref in task.outputs:
                    self._lost_refs.discard(ref.ref_id)
            if (task.task_id, attempt) in self._speculative_attempts:
                self.recovery_metrics.speculation_wins += 1
            if task.task_id in self._resurrected_dirty:
                self._resurrected_dirty.discard(task.task_id)
                self.recovery_metrics.recompute_seconds += self.sim.now - task_start
            if self.retry_policy.speculation_enabled:
                self._note_duration(task.name, self.sim.now - task_start)
            self.trace.add_task_row(
                task.task_id,
                task.name,
                task_start,
                self.sim.now,
                node_index,
                core_slot,
                level,
                task_on_gpu,
                attempt,
            )
            if self._record_attempts:
                self.trace.add_attempt_row(
                    task.task_id,
                    task.name,
                    attempt,
                    task_start,
                    self.sim.now,
                    node_index,
                    core_slot,
                    level,
                    task_on_gpu,
                    ATTEMPT_OK,
                )
            self._on_task_done(task)
        else:
            now = self.sim.now
            self.trace.add_stage_row(
                task.task_id,
                task.name,
                Stage.FAILURE,
                now,
                now,
                node_index,
                core_slot,
                level,
                task_on_gpu,
                attempt,
            )
            if self._record_attempts:
                self.trace.add_attempt_row(
                    task.task_id,
                    task.name,
                    attempt,
                    task_start,
                    now,
                    node_index,
                    core_slot,
                    level,
                    task_on_gpu,
                    failure.kind,
                )
            if isinstance(failure, SpeculationCancelledError):
                # Not a real failure: the task committed through a
                # sibling attempt, so no retry — just hand the freed
                # resources back to the dispatcher.
                if (task.task_id, attempt) in self._speculative_attempts:
                    self.recovery_metrics.speculation_losses += 1
                self._wake_dispatcher()
            else:
                self._handle_failure(task, failure, attempt, level, task_on_gpu)

    def _attempt_stages(
        self,
        task: Task,
        node,
        core_slot: int,
        task_on_gpu: bool,
        attempt: int,
        attempt_start: float,
    ) -> Generator:
        """One attempt's walk through the Figure-4 stages."""
        node_index = node.index
        cost = task.cost or _ZERO_COST
        #: One memoized lookup covers every closed-form stage duration of
        #: this attempt; jitter and straggler factors are applied per
        #: attempt on top of the cached base values.
        times = self.cost_model.stage_times(cost, task_on_gpu, self.cpu_threads)
        level = self._levels[task.task_id]
        plan = self.fault_plan
        planned_crash = (
            plan.crash_stage_for(task.task_id, task.name, attempt)
            if plan is not None
            else None
        )
        straggle = (
            plan.straggler_factor(task.name, node_index)
            if plan is not None
            else 1.0
        )

        def record(stage: Stage, start: float) -> None:
            self.trace.add_stage_row(
                task.task_id,
                task.name,
                stage,
                start,
                self.sim.now,
                node_index,
                core_slot,
                level,
                task_on_gpu,
                attempt,
            )

        #: With no planned crash and no deadline a checkpoint can never
        #: raise; skipping the call (four per task) keeps the fault-free
        #: hot path free of pure-overhead function calls.
        deadline = self.retry_policy.task_deadline
        faultable = planned_crash is not None or deadline is not None

        def checkpoint(stage: Stage) -> None:
            self._check_fault(task, attempt, stage, planned_crash, attempt_start)

        # --- warm-up: first task on a core loads modules / compiles -----
        if self.warmup_overhead > 0 and (node_index, core_slot) not in self._warmed_cores:
            self._warmed_cores.add((node_index, core_slot))
            start = self.sim.now
            yield Timeout(self.warmup_overhead)
            record(Stage.SCHEDULING, start)

        # --- deserialization: storage read + CPU-side decode ------------
        if not self._no_distribution:
            start = self.sim.now
            for ref in task.inputs:
                if ref.ref_id in self._checkpointed_refs and not self._node_alive(
                    ref.home_node
                ):
                    # The producer's copy died with its node; the durable
                    # checkpoint on shared storage serves the read.
                    yield from self._read_checkpoint(ref.size_bytes)
                else:
                    yield from self._read_input(
                        node_index, ref.home_node, ref.size_bytes
                    )
            decode = self._jitter(times.deserialization_cpu)
            if decode > 0:
                yield Timeout(decode)
            if self.sim.now > start:
                # Zero-byte inputs with a zero decode cost did nothing —
                # don't log an empty stage (plain dependency-only DAGs
                # would otherwise pay two no-op records per task).
                record(Stage.DESERIALIZATION, start)
            if faultable:
                checkpoint(Stage.DESERIALIZATION)

        # --- serial fraction --------------------------------------------
        serial = self._jitter(times.serial_fraction) * straggle
        if serial > 0:
            start = self.sim.now
            yield Timeout(serial)
            record(Stage.SERIAL_FRACTION, start)
        if faultable:
            checkpoint(Stage.SERIAL_FRACTION)

        # --- parallel fraction (+ CPU-GPU communication on GPU) ---------
        if task_on_gpu:
            if plan is not None and plan.gpu_oom_for(
                task.task_id, task.name, attempt
            ):
                raise InjectedGpuOomError(task.task_id)
            device = node.claim_gpu()
            device.allocate(cost.gpu_memory_bytes)
            try:
                d2h = min(cost.output_bytes, cost.host_device_bytes)
                h2d = cost.host_device_bytes - d2h
                pf = self._jitter(times.parallel_fraction) * straggle
                if self.comm_overlap and h2d > 0 and pf > 0:
                    yield from self._overlapped_gpu_phase(node, h2d, pf, record)
                else:
                    if h2d > 0:
                        start = self.sim.now
                        yield Transfer(node.pcie, h2d)
                        record(Stage.CPU_GPU_COMM, start)
                    if pf > 0:
                        start = self.sim.now
                        yield Timeout(pf)
                        record(Stage.PARALLEL_FRACTION, start)
                if d2h > 0:
                    start = self.sim.now
                    yield Transfer(node.pcie, d2h)
                    record(Stage.CPU_GPU_COMM, start)
            finally:
                device.release(cost.gpu_memory_bytes)
        else:
            pf = self._jitter(times.parallel_fraction) * straggle
            if pf > 0:
                start = self.sim.now
                yield Timeout(pf)
                record(Stage.PARALLEL_FRACTION, start)
        if faultable:
            checkpoint(Stage.PARALLEL_FRACTION)

        # --- serialization: CPU-side encode + storage write --------------
        if not self._no_distribution:
            start = self.sim.now
            encode = self._jitter(times.serialization_cpu)
            if encode > 0:
                yield Timeout(encode)
            if cost.output_bytes > 0:
                yield from self._write_output(node_index, cost.output_bytes)
            if self.sim.now > start:
                record(Stage.SERIALIZATION, start)
            if faultable:
                checkpoint(Stage.SERIALIZATION)

        # --- checkpoint write: persist outputs to shared storage ---------
        if (
            self.checkpoint_policy is not None
            and not self._no_distribution
            and self.checkpoint_policy.applies(task.name, level)
        ):
            start = self.sim.now
            nbytes = sum(ref.size_bytes for ref in task.outputs)
            if nbytes > 0:
                # The GPFS round-trip regardless of the working storage
                # backend: checkpoints exist to survive local-disk loss.
                yield Transfer(self.cluster.network, nbytes)
                yield Transfer(self.cluster.shared_disk_write, nbytes)
            for ref in task.outputs:
                self._checkpointed_refs.add(ref.ref_id)
            record(Stage.CHECKPOINT_WRITE, start)
            self.recovery_metrics.checkpoint_writes += 1
            self.recovery_metrics.checkpoint_write_seconds += self.sim.now - start

    def _overlapped_gpu_phase(self, node, h2d: int, pf: float, record) -> Generator:
        """Staged-pipeline host-to-device transfer overlapping the kernel.

        The transfer streams in :attr:`PIPELINE_STAGES` chunks; the kernel
        starts once the first chunk has landed and the two proceed
        concurrently.  Only the *exposed* communication (pipeline fill and
        any post-kernel drain) is recorded as CPU-GPU communication, which
        is what Python-side timers would observe.
        """
        pcie = self.cluster_spec.node.interconnect
        fill_start = self.sim.now
        transfer = Process(
            self.sim,
            self._stream_h2d(node, h2d),
            name="h2d-pipeline",
        )
        fill = pcie.latency + (h2d / self.PIPELINE_STAGES) / pcie.bandwidth_per_transfer
        yield Timeout(fill)
        record(Stage.CPU_GPU_COMM, fill_start)
        kernel_start = self.sim.now
        yield Timeout(pf)
        record(Stage.PARALLEL_FRACTION, kernel_start)
        drain_start = self.sim.now
        yield WaitEvent(transfer.done)
        if self.sim.now > drain_start:
            record(Stage.CPU_GPU_COMM, drain_start)

    def _stream_h2d(self, node, nbytes: int) -> Generator:
        yield Transfer(node.pcie, nbytes)

    # ------------------------------------------------------------- storage
    def _node_alive(self, node_index: int) -> bool:
        nodes = self.cluster.nodes
        return 0 <= node_index < len(nodes) and nodes[node_index].alive

    def _read_checkpoint(self, nbytes: int) -> Generator:
        """Read a checkpointed block back from shared storage (GPFS)."""
        if nbytes <= 0:
            return
        yield Transfer(self.cluster.network, nbytes)
        yield Transfer(self.cluster.shared_disk_read, nbytes)

    def _read_input(self, node_index: int, home_node: int, nbytes: int) -> Generator:
        if nbytes <= 0:
            return
        if self.storage is StorageKind.SHARED:
            yield Transfer(self.cluster.network, nbytes)
            yield Transfer(self.cluster.shared_disk_read, nbytes)
        else:
            owner = self.cluster.nodes[home_node]
            yield Transfer(owner.disk_read, nbytes)
            if home_node != node_index:
                yield Transfer(self.cluster.network, nbytes)

    def _write_output(self, node_index: int, nbytes: int) -> Generator:
        if nbytes <= 0:
            return
        if self.storage is StorageKind.SHARED:
            yield Transfer(self.cluster.network, nbytes)
            yield Transfer(self.cluster.shared_disk_write, nbytes)
        else:
            yield Transfer(self.cluster.nodes[node_index].disk_write, nbytes)
