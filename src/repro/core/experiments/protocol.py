"""The paper's measurement protocol (§5).

"We ran each experiment six times and discarded the first run to avoid
fluctuations due to warm up processing, such as loading required modules,
compile the GPU kernel, etc."

:func:`run_with_protocol` reproduces that procedure on the simulated
cluster: the first repetition carries the warm-up overhead (module loads
and kernel compilation on every core's first task) and is discarded; the
remaining repetitions run with independent jitter seeds and are averaged.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from statistics import mean, pstdev
from typing import Callable

from repro.runtime import Runtime, RuntimeConfig
from repro.tracing import parallel_task_metrics

#: Default warm-up cost per core's first task: module imports plus CUDA
#: kernel compilation land in the low seconds on real deployments.
DEFAULT_WARMUP_OVERHEAD = 2.0


@dataclass
class ProtocolResult:
    """Outcome of one repeated-measurement experiment."""

    warmup_makespan: float
    makespans: list[float] = field(default_factory=list)
    parallel_task_times: list[float] = field(default_factory=list)

    @property
    def mean_makespan(self) -> float:
        """Mean makespan over the kept repetitions."""
        return mean(self.makespans)

    @property
    def std_makespan(self) -> float:
        """Population standard deviation over the kept repetitions."""
        return pstdev(self.makespans)

    @property
    def mean_parallel_task_time(self) -> float:
        """Mean parallel-task time over the kept repetitions."""
        return mean(self.parallel_task_times)

    @property
    def warmup_excess(self) -> float:
        """How much slower the discarded warm-up run was (fraction)."""
        if self.mean_makespan == 0:
            return 0.0
        return self.warmup_makespan / self.mean_makespan - 1.0


def run_with_protocol(
    workflow_factory: Callable[[], object],
    config: RuntimeConfig | None = None,
    runs: int = 6,
    jitter_sigma: float = 0.02,
    warmup_overhead: float = DEFAULT_WARMUP_OVERHEAD,
    base_seed: int = 1,
) -> ProtocolResult:
    """Run an experiment the way the paper did.

    ``runs`` total executions: the first carries ``warmup_overhead`` and
    is discarded; the rest use warm workers and independent jitter seeds.
    """
    if runs < 2:
        raise ValueError("the protocol needs at least two runs")
    base = config or RuntimeConfig()
    result: ProtocolResult | None = None
    makespans: list[float] = []
    parallel_times: list[float] = []
    warmup_makespan = 0.0
    for repetition in range(runs):
        run_config = dataclasses.replace(
            base,
            jitter_sigma=jitter_sigma,
            jitter_seed=base_seed + repetition,
            warmup_overhead=warmup_overhead if repetition == 0 else 0.0,
        )
        workflow = workflow_factory()
        runtime = Runtime(run_config)
        workflow.build(runtime)
        outcome = runtime.run()
        if repetition == 0:
            warmup_makespan = outcome.makespan
            continue
        makespans.append(outcome.makespan)
        parallel_times.append(
            parallel_task_metrics(
                outcome.trace, set(workflow.parallel_task_types)
            ).average_parallel_time
        )
    result = ProtocolResult(
        warmup_makespan=warmup_makespan,
        makespans=makespans,
        parallel_task_times=parallel_times,
    )
    return result
