"""Figure 7 — end-to-end performance analysis (§5.1).

For each algorithm and dataset, sweep the block dimension (grid sizes of
§4.4.5) on both processor types and report the stage-level GPU speedups
(parallel fraction, user code, parallel tasks) plus the execution times
they derive from, including the (de-)serialization overheads and GPU OOM
regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms import KMeansWorkflow, MatmulWorkflow
from repro.core.experiments.engine import SweepEngine, cells_product
from repro.core.experiments.runners import RunMetrics, speedup
from repro.core.report import Table, format_seconds, format_speedup
from repro.data import paper_datasets

#: Grid sizes of §4.4.5 (square for Matmul, rows for K-means).
MATMUL_GRIDS = (16, 8, 4, 2, 1)
KMEANS_GRIDS = (256, 128, 64, 32, 16, 8, 4, 2, 1)


@dataclass
class Fig7Point:
    """One block-dimension configuration of one dataset."""

    grid_label: str
    block_mb: float
    num_tasks: int
    cpu: RunMetrics
    gpu: RunMetrics
    primary_task_type: str

    @property
    def status(self) -> str:
        """'ok' unless either processor run hit an OOM condition."""
        if not self.cpu.ok:
            return self.cpu.status
        if not self.gpu.ok:
            return self.gpu.status
        return "ok"

    def _stage(self, metrics: RunMetrics, attr: str) -> float | None:
        if not metrics.ok:
            return None
        return getattr(metrics.user_code[self.primary_task_type], attr)

    @property
    def parallel_fraction_speedup(self) -> float | None:
        """GPU speedup of the parallel fraction (primary task type)."""
        cpu = self._stage(self.cpu, "parallel_fraction")
        gpu = self._stage(self.gpu, "parallel_fraction")
        if cpu is None or gpu is None:
            return None
        return speedup(cpu, gpu)

    @property
    def user_code_speedup(self) -> float | None:
        """GPU speedup of the full task user code (primary task type)."""
        cpu = self._stage(self.cpu, "user_code")
        gpu = self._stage(self.gpu, "user_code")
        if cpu is None or gpu is None:
            return None
        return speedup(cpu, gpu)

    @property
    def parallel_tasks_speedup(self) -> float | None:
        """GPU speedup of the distributed parallel-task execution."""
        if not (self.cpu.ok and self.gpu.ok):
            return None
        return speedup(self.cpu.parallel_task_time, self.gpu.parallel_task_time)

    @property
    def user_code_speedup_decrease(self) -> float | None:
        """How much the user-code speedup falls short of the parallel-
        fraction speedup (§5.1: ~35% fine-grained vs ~20% coarse for the
        8 GB Matmul) — the cost of communication and serial time."""
        pf = self.parallel_fraction_speedup
        uc = self.user_code_speedup
        if pf is None or uc is None or pf <= 0:
            return None
        return 1.0 - uc / pf

    def movement_per_core(self, metrics: RunMetrics) -> float | None:
        """Average (de-)serialization time per CPU core."""
        if not metrics.ok or metrics.movement is None:
            return None
        return metrics.movement.total_per_core


@dataclass
class Fig7Series:
    """The full block-dimension sweep of one dataset."""

    algorithm: str
    dataset: str
    points: list[Fig7Point] = field(default_factory=list)

    def speedup_by_block(self, attr: str) -> dict[float, float | None]:
        """Map block MB -> one of the three speedups."""
        return {p.block_mb: getattr(p, attr) for p in self.points}

    def chart(self) -> str:
        """The panel's three speedup curves as an ASCII chart."""
        from repro.core.plotting import speedup_chart

        return speedup_chart(
            {
                "P.Frac": self.speedup_by_block("parallel_fraction_speedup"),
                "Usr.Code": self.speedup_by_block("user_code_speedup"),
                "P.Task": self.speedup_by_block("parallel_tasks_speedup"),
            },
            f"Figure 7 shape: {self.algorithm} {self.dataset}",
        )

    def render(self) -> str:
        """One Figure 7 panel as a table."""
        table = Table(
            title=f"Figure 7 panel: {self.algorithm}, {self.dataset}",
            headers=(
                "block MB",
                "grid",
                "tasks",
                "P.Frac speedup",
                "Usr.Code speedup",
                "uc decrease",
                "P.Task speedup",
                "CPU P.Task",
                "GPU P.Task",
                "deser+ser/core",
                "status",
            ),
        )
        for p in self.points:
            decrease = p.user_code_speedup_decrease
            table.add_row(
                f"{p.block_mb:.0f}",
                p.grid_label,
                p.num_tasks,
                format_speedup(p.parallel_fraction_speedup),
                format_speedup(p.user_code_speedup),
                f"{decrease:.0%}" if decrease is not None else "-",
                format_speedup(p.parallel_tasks_speedup),
                format_seconds(p.cpu.parallel_task_time if p.cpu.ok else None),
                format_seconds(p.gpu.parallel_task_time if p.gpu.ok else None),
                format_seconds(p.movement_per_core(p.cpu)),
                p.status,
            )
        return table.render()


@dataclass
class Fig7Result:
    """All four Figure 7 panels."""

    panels: list[Fig7Series]

    def panel(self, algorithm: str, dataset: str) -> Fig7Series:
        """Look up one panel."""
        for series in self.panels:
            if series.algorithm == algorithm and series.dataset == dataset:
                return series
        raise KeyError(f"no panel for {algorithm}/{dataset}")

    def render(self) -> str:
        """All panels, concatenated."""
        return "\n\n".join(series.render() for series in self.panels)


def _matmul_workflow(dataset, grid: int):
    return MatmulWorkflow(dataset, grid=grid)


def _kmeans_workflow(dataset, grid: int):
    return KMeansWorkflow(dataset, grid_rows=grid, n_clusters=10, iterations=3)


def run_fig7_for(
    algorithm: str,
    dataset_key: str,
    grids: tuple[int, ...],
    engine: SweepEngine | None = None,
) -> Fig7Series:
    """Sweep one (algorithm, dataset) panel.

    ``algorithm`` is ``"matmul"`` or ``"kmeans"``; ``dataset_key`` indexes
    :func:`repro.data.paper_datasets`.  Cells are submitted through the
    sweep ``engine`` (a private serial engine when ``None``).
    """
    engine = engine if engine is not None else SweepEngine.serial()
    datasets = paper_datasets()
    dataset = datasets[dataset_key]
    make = _matmul_workflow if algorithm == "matmul" else _kmeans_workflow
    series = Fig7Series(algorithm=algorithm, dataset=dataset_key)
    # One workflow per grid point, built solely for its blocking metadata;
    # the executions themselves reconstruct it from the cell spec.
    workflows = [make(dataset, grid) for grid in grids]
    results = engine.run_cells(
        cells_product(
            algorithm,
            grids,
            dataset_key=dataset_key,
            n_clusters=10 if algorithm == "kmeans" else 0,
        )
    )
    for index, (grid, workflow) in enumerate(zip(grids, workflows)):
        cpu, gpu = results[2 * index], results[2 * index + 1]
        grid_label = (
            f"{grid} x {grid}" if algorithm == "matmul" else f"{grid} x 1"
        )
        series.points.append(
            Fig7Point(
                grid_label=grid_label,
                block_mb=workflow.block_mb,
                num_tasks=workflow.blocking.num_tasks,
                cpu=cpu,
                gpu=gpu,
                primary_task_type=workflow.primary_task_type,
            )
        )
    return series


def run_fig7(engine: SweepEngine | None = None) -> Fig7Result:
    """The full Figure 7: both algorithms, both dataset sizes."""
    engine = engine if engine is not None else SweepEngine.serial()
    panels = [
        run_fig7_for("matmul", "matmul_8gb", MATMUL_GRIDS, engine=engine),
        run_fig7_for("matmul", "matmul_32gb", MATMUL_GRIDS, engine=engine),
        run_fig7_for("kmeans", "kmeans_10gb", KMEANS_GRIDS, engine=engine),
        run_fig7_for("kmeans", "kmeans_100gb", KMEANS_GRIDS, engine=engine),
    ]
    return Fig7Result(panels=panels)
