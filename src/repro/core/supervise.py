"""Worker supervision for :class:`~repro.core.shard.ShardPool`.

The pool's original failure contract handled exactly one mode: a worker
that *dies cleanly* gets its in-flight instance re-dispatched once.  A
worker that hangs (stops responding while its process stays alive) or
merely runs far past any reasonable budget wedged ``ShardPool.run()``
forever.  This module supplies the host-side health layer:

* **Per-item deadlines** — every dispatched instance carries a
  wall-clock budget; an overrun escalates to a worker kill
  (terminate → kill → respawn) and a re-dispatch.
* **Worker heartbeats** — workers beat over the result queue from a
  daemon thread; a worker whose beats stop (SIGSTOP, a C extension
  holding the GIL, a chaos-injected freeze) is presumed hung and killed
  even if its item deadline has not elapsed.
* **Retry budget with exponential backoff** — a lost instance is
  re-dispatched after ``backoff_base * backoff_factor**(n-1)`` seconds,
  at most ``max_attempts`` dispatches in total.
* **Poison quarantine** — an instance that keeps killing or hanging
  workers is *quarantined* (reported failed) once its attempt budget is
  spent, instead of cycling through the pool's respawn budget forever.
* **Graceful degradation** — with ``allow_degraded=True`` a pool whose
  respawn budget runs dry keeps draining the batch on the workers it
  still has and surfaces ``ShardRunReport.degraded`` instead of raising.

The policy and the per-batch bookkeeping live here so they can be unit
tested without processes; the process surgery itself (spawning, killing,
queue plumbing) stays in :mod:`repro.core.shard`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

#: Loss reasons the pool reports to the supervisor.
REASON_CRASH = "crash"
REASON_DEADLINE = "deadline"
REASON_HEARTBEAT = "heartbeat"


@dataclass(frozen=True)
class SupervisionPolicy:
    """Health rules one :class:`~repro.core.shard.ShardPool` enforces.

    The default policy reproduces the pool's legacy contract exactly: no
    deadlines, no heartbeats, two dispatches per instance (the original
    "re-dispatch a crashed worker's item exactly once"), immediate
    re-dispatch, and a hard error instead of degradation.
    """

    #: Wall-clock budget per dispatched instance; ``None`` disables the
    #: deadline (a hung worker is then only caught by heartbeats).
    item_deadline: float | None = None
    #: Worker heartbeat period in seconds; ``None`` disables heartbeats.
    heartbeat_interval: float | None = None
    #: Multiples of ``heartbeat_interval`` a worker may stay silent
    #: before it is presumed hung and killed.
    heartbeat_grace: float = 3.0
    #: Total dispatches one instance may consume before quarantine.
    max_attempts: int = 2
    #: Exponential re-dispatch backoff: ``base * factor**(n-1)`` seconds
    #: after the n-th loss, capped at ``backoff_max``.
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    #: Keep draining on fewer workers when respawn fails or the respawn
    #: budget is spent (surfacing ``degraded``) instead of raising.
    allow_degraded: bool = False
    #: Seconds to wait between terminate and kill when escalating.
    kill_grace: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.item_deadline is not None and self.item_deadline <= 0:
            raise ValueError("item_deadline must be positive when set")
        if self.heartbeat_interval is not None and self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive when set")

    def backoff(self, losses: int) -> float:
        """Re-dispatch delay after the ``losses``-th loss (1-based)."""
        if losses < 1 or self.backoff_base <= 0:
            return 0.0
        delay = self.backoff_base * self.backoff_factor ** (losses - 1)
        return min(delay, self.backoff_max)

    @property
    def heartbeat_timeout(self) -> float | None:
        """Silence window after which a worker is presumed hung."""
        if self.heartbeat_interval is None:
            return None
        return self.heartbeat_interval * self.heartbeat_grace


@dataclass
class ShardRunReport:
    """Everything one supervised batch produced, without raising.

    ``results`` holds the instances that completed, merged in id order;
    ``errors`` the instances whose function raised inside a worker (as
    ``(kind, message)``); ``quarantined`` the instances failed by the
    supervisor with a human-readable reason; ``attempts`` the dispatch
    count of every instance that needed more than one.
    """

    results: dict[Any, Any] = field(default_factory=dict)
    errors: dict[Any, tuple[str, str]] = field(default_factory=dict)
    quarantined: dict[Any, str] = field(default_factory=dict)
    attempts: dict[Any, int] = field(default_factory=dict)
    #: Workers killed by the supervisor (deadline or heartbeat), plus
    #: workers that died on their own.
    worker_kills: int = 0
    worker_crashes: int = 0
    respawns: int = 0
    #: The pool finished the batch below its configured worker count.
    degraded: bool = False

    @property
    def ok(self) -> bool:
        """Whether every instance completed normally."""
        return not self.errors and not self.quarantined


class BatchSupervisor:
    """Per-batch item bookkeeping: attempts, backoff, quarantine.

    Pure bookkeeping over an injected clock value — no processes, no
    queues — so the retry/quarantine state machine is directly unit
    testable.  The pool calls :meth:`note_dispatch` when it hands an
    instance to a worker and :meth:`record_loss` when the worker holding
    it died or was killed; ``record_loss`` answers either a re-dispatch
    delay or a quarantine verdict.
    """

    def __init__(self, policy: SupervisionPolicy) -> None:
        self.policy = policy
        self._attempts: dict[Any, int] = {}
        self._losses: dict[Any, list[str]] = {}

    def note_dispatch(self, instance_id: Any) -> int:
        """Record one dispatch; returns the 1-based attempt number."""
        attempt = self._attempts.get(instance_id, 0) + 1
        self._attempts[instance_id] = attempt
        return attempt

    def attempts(self, instance_id: Any) -> int:
        return self._attempts.get(instance_id, 0)

    def attempts_map(self) -> dict[Any, int]:
        """Dispatch counts of instances that needed more than one."""
        return {k: n for k, n in self._attempts.items() if n > 1}

    def record_loss(
        self, instance_id: Any, reason: str, detail: str = ""
    ) -> tuple[str, float | str]:
        """Decide what happens to an instance whose worker was lost.

        Returns ``("retry", delay_seconds)`` while the attempt budget
        lasts, ``("quarantine", reason_text)`` once it is spent.
        """
        losses = self._losses.setdefault(instance_id, [])
        losses.append(reason)
        if self._attempts.get(instance_id, 0) >= self.policy.max_attempts:
            return "quarantine", self.quarantine_reason(instance_id, detail)
        return "retry", self.policy.backoff(len(losses))

    def quarantine_reason(self, instance_id: Any, detail: str = "") -> str:
        """Human-readable verdict for a poison instance."""
        losses = self._losses.get(instance_id, [])
        counts = []
        for reason, verb in (
            (REASON_CRASH, "killed its worker"),
            (REASON_DEADLINE, "exceeded its deadline"),
            (REASON_HEARTBEAT, "froze its worker"),
        ):
            n = sum(1 for r in losses if r == reason)
            if n:
                counts.append(f"{verb} {n} time(s)")
        what = " and ".join(counts) or "was lost"
        suffix = f" ({detail})" if detail else ""
        return (
            f"instance {instance_id!r} {what}{suffix}; quarantined after "
            f"{self._attempts.get(instance_id, 0)} of "
            f"{self.policy.max_attempts} attempt(s)"
        )


def describe_exit(exitcode: int | None) -> str:
    """Render a worker exit code for loss messages."""
    if exitcode is None:
        return "exit code unknown"
    if exitcode < 0:
        return f"killed by signal {-exitcode}"
    return f"exit code {exitcode}"


def overdue_workers(
    workers: Mapping[int, Any], policy: SupervisionPolicy, now: float
) -> list[tuple[int, str, str]]:
    """Workers the supervisor should kill, as ``(id, reason, detail)``.

    ``workers`` maps worker ids to objects exposing ``inflight``,
    ``dispatched_at``, ``last_beat``, and a live ``process``; the pool's
    ``_Worker`` satisfies this.  A worker is overdue when its in-flight
    item blew the deadline, or when heartbeats are enabled and it has
    been silent past the grace window (idle workers beat too, so silence
    always means a frozen process, not an empty queue).
    """
    verdicts: list[tuple[int, str, str]] = []
    timeout = policy.heartbeat_timeout
    for worker_id in sorted(workers):
        worker = workers[worker_id]
        if not worker.process.is_alive():
            continue
        if (
            policy.item_deadline is not None
            and worker.inflight is not None
            and worker.dispatched_at is not None
            and now - worker.dispatched_at > policy.item_deadline
        ):
            verdicts.append(
                (
                    worker_id,
                    REASON_DEADLINE,
                    f"no result after {policy.item_deadline:g}s",
                )
            )
            continue
        if timeout is not None and now - worker.last_beat > timeout:
            verdicts.append(
                (
                    worker_id,
                    REASON_HEARTBEAT,
                    f"no heartbeat for {timeout:g}s",
                )
            )
    return verdicts
