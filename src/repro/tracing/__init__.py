"""Execution tracing and metric aggregation.

The paper instruments every task-processing stage (Python performance
counters, CUDA events, and Paraver traces — §4.4.3) and aggregates them
into the metrics of §4.2.  This package plays the same role for both
execution backends: the runtime emits :class:`StageRecord` entries into a
:class:`Trace`, and :mod:`repro.tracing.aggregate` computes the per-task-
type, per-core, and per-DAG-level metrics the figures are built from.
"""

from repro.tracing.aggregate import (
    DataMovementMetrics,
    FaultMetrics,
    ParallelTaskMetrics,
    UserCodeMetrics,
    data_movement_metrics,
    fault_metrics,
    parallel_task_metrics,
    user_code_metrics,
)
from repro.tracing.decompose import OverheadBreakdown, decompose_overheads
from repro.tracing.export import dump_trace, gantt, load_trace
from repro.tracing.golden import (
    trace_canonical_lines,
    trace_digest,
    trace_fingerprint,
)
from repro.tracing.trace import (
    ATTEMPT_OK,
    ATTEMPT_SPECULATION_CANCELLED,
    Stage,
    StageRecord,
    TaskAttempt,
    TaskRecord,
    Trace,
)

__all__ = [
    "ATTEMPT_OK",
    "ATTEMPT_SPECULATION_CANCELLED",
    "DataMovementMetrics",
    "FaultMetrics",
    "OverheadBreakdown",
    "ParallelTaskMetrics",
    "Stage",
    "decompose_overheads",
    "dump_trace",
    "fault_metrics",
    "gantt",
    "load_trace",
    "StageRecord",
    "TaskAttempt",
    "TaskRecord",
    "Trace",
    "UserCodeMetrics",
    "data_movement_metrics",
    "parallel_task_metrics",
    "trace_canonical_lines",
    "trace_digest",
    "trace_fingerprint",
    "user_code_metrics",
]
