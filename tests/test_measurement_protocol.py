"""Tests for jitter, warm-up, and the §5 measurement protocol."""

import pytest

from repro.algorithms import KMeansWorkflow
from repro.core.experiments.protocol import ProtocolResult, run_with_protocol
from repro.data import paper_datasets
from repro.perfmodel import TaskCost
from repro.runtime import Runtime, RuntimeConfig
from repro.tracing import Stage


def _simple_runtime(**config):
    rt = Runtime(RuntimeConfig(**config))
    cost = TaskCost(
        serial_flops=16e9, parallel_flops=0, parallel_items=0,
        arithmetic_intensity=0, input_bytes=10**6, output_bytes=10**5,
        host_device_bytes=0, gpu_memory_bytes=0,
    )
    for i in range(12):
        ref = rt.register_input(10**6, name=f"in{i}")
        rt.submit(name="w", inputs=[ref], cost=cost)
    return rt


class TestJitter:
    def test_zero_sigma_is_deterministic(self):
        a = _simple_runtime().run().makespan
        b = _simple_runtime().run().makespan
        assert a == b

    def test_same_seed_same_result(self):
        a = _simple_runtime(jitter_sigma=0.1, jitter_seed=5).run().makespan
        b = _simple_runtime(jitter_sigma=0.1, jitter_seed=5).run().makespan
        assert a == b

    def test_different_seeds_differ(self):
        a = _simple_runtime(jitter_sigma=0.1, jitter_seed=1).run().makespan
        b = _simple_runtime(jitter_sigma=0.1, jitter_seed=2).run().makespan
        assert a != b

    def test_jitter_stays_near_nominal(self):
        nominal = _simple_runtime().run().makespan
        jittered = _simple_runtime(jitter_sigma=0.02, jitter_seed=3).run().makespan
        assert jittered == pytest.approx(nominal, rel=0.15)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            _simple_runtime(jitter_sigma=-0.1).run()


class TestWarmup:
    def test_warmup_slows_first_run(self):
        cold = _simple_runtime(warmup_overhead=2.0).run().makespan
        warm = _simple_runtime().run().makespan
        assert cold > warm + 1.9

    def test_warmup_charged_once_per_core(self):
        result = _simple_runtime(warmup_overhead=2.0).run()
        warmups = [r for r in result.trace.stages if r.stage is Stage.SCHEDULING]
        cores_used = {(t.node, t.core) for t in result.trace.tasks}
        assert len(warmups) == len(cores_used)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            _simple_runtime(warmup_overhead=-1.0).run()


class TestProtocol:
    @pytest.fixture(scope="class")
    def outcome(self) -> ProtocolResult:
        datasets = paper_datasets()
        return run_with_protocol(
            lambda: KMeansWorkflow(
                datasets["kmeans_10gb"], grid_rows=64, n_clusters=10,
                iterations=1,
            ),
            runs=6,
        )

    def test_five_kept_repetitions(self, outcome):
        assert len(outcome.makespans) == 5
        assert len(outcome.parallel_task_times) == 5

    def test_warmup_run_is_slower(self, outcome):
        assert outcome.warmup_makespan > max(outcome.makespans)
        assert outcome.warmup_excess > 0.0

    def test_jitter_produces_spread(self, outcome):
        assert outcome.std_makespan > 0.0
        # ... but small relative to the mean (sigma = 2%).
        assert outcome.std_makespan < 0.1 * outcome.mean_makespan

    def test_mean_is_representative(self, outcome):
        assert min(outcome.makespans) <= outcome.mean_makespan <= max(
            outcome.makespans
        )

    def test_too_few_runs_rejected(self):
        with pytest.raises(ValueError):
            run_with_protocol(lambda: None, runs=1)
