"""Dataset specifications.

A :class:`DatasetSpec` describes a dense matrix dataset by shape, element
width, and distribution, without materialising it — the simulated backend
only needs sizes, while the real-execution backend materialises small specs
through :mod:`repro.data.generator`.

:func:`paper_datasets` returns the exact sizing scenarios of §4.4.5 plus
the smaller datasets added for the correlation analysis (§5.4) and the
skewed datasets of §5.2.3.
"""

from __future__ import annotations

from dataclasses import dataclass

_FLOAT64_BYTES = 8


@dataclass(frozen=True)
class DatasetSpec:
    """A dense ``rows x cols`` matrix of fixed-width elements."""

    name: str
    rows: int
    cols: int
    dtype_bytes: int = _FLOAT64_BYTES
    #: Fraction of elements relocated into dense regions (0.0 = uniform).
    skew: float = 0.0
    #: Seed for reproducible generation (§4.4.5 fixes the random state).
    seed: int = 42

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("dataset dimensions must be positive")
        if self.dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")
        if not 0.0 <= self.skew < 1.0:
            raise ValueError("skew must be in [0, 1)")

    @property
    def elements(self) -> int:
        """Total number of elements (i x j in the paper's notation)."""
        return self.rows * self.cols

    @property
    def size_bytes(self) -> int:
        """Total dataset size in bytes."""
        return self.elements * self.dtype_bytes

    @property
    def size_mb(self) -> float:
        """Dataset size in (decimal) megabytes, as the paper reports sizes."""
        return self.size_bytes / 1e6

    def scaled_to(self, rows: int, cols: int, name: str | None = None) -> "DatasetSpec":
        """A same-distribution spec with different dimensions."""
        return DatasetSpec(
            name=name or f"{self.name}-{rows}x{cols}",
            rows=rows,
            cols=cols,
            dtype_bytes=self.dtype_bytes,
            skew=self.skew,
            seed=self.seed,
        )


def paper_datasets() -> dict[str, DatasetSpec]:
    """The sizing scenarios of §4.4.5, §5.2.3, and §5.4.

    Matmul datasets are square; K-means datasets have 100 feature columns.
    Sizes follow the paper's labels (8 GB = 32K x 32K float64, etc.).
    """
    return {
        # Matmul (§4.4.5): 8 GB and 32 GB square matrices.
        "matmul_8gb": DatasetSpec("matmul_8gb", rows=32_768, cols=32_768),
        "matmul_32gb": DatasetSpec("matmul_32gb", rows=65_536, cols=65_536),
        # K-means (§4.4.5): 10 GB and 100 GB, 100 features.
        "kmeans_10gb": DatasetSpec("kmeans_10gb", rows=12_500_000, cols=100),
        "kmeans_100gb": DatasetSpec("kmeans_100gb", rows=125_000_000, cols=100),
        # Correlation-analysis extras (§5.4): 128 MB and 100 MB.
        "matmul_128mb": DatasetSpec("matmul_128mb", rows=4_000, cols=4_000),
        "kmeans_100mb": DatasetSpec("kmeans_100mb", rows=125_000, cols=100),
        # Skew experiment (§5.2.3): 2 GB Matmul and 1 GB K-means, 50% skew.
        "matmul_2gb_skew": DatasetSpec(
            "matmul_2gb_skew", rows=16_384, cols=16_384, skew=0.5
        ),
        "kmeans_1gb_skew": DatasetSpec(
            "kmeans_1gb_skew", rows=1_250_000, cols=100, skew=0.5
        ),
        "matmul_2gb": DatasetSpec("matmul_2gb", rows=16_384, cols=16_384),
        "kmeans_1gb": DatasetSpec("kmeans_1gb", rows=1_250_000, cols=100),
    }
