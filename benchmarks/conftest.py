"""Shared benchmark configuration.

Every benchmark regenerates one paper artefact (figure or table) through
the experiment runners and prints the resulting series, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the whole evaluation section as ASCII tables.  The benches run
one round each: the experiments are deterministic simulations, so repeat
timing adds nothing.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single deterministic round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture wrapping :func:`run_once` for terseness in benches."""

    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
