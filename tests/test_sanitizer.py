"""Dynamic trace sanitizer: clean runs pass, tampered traces are caught.

The tamper tests are the sanitizer's seeded-mutation suite: each one
takes a genuinely clean execution and corrupts its trace the way a
specific executor bug would (a consumer dispatched before its producer
committed, two records on one core, a resource overcommit, ...), then
asserts the matching check fires."""

import dataclasses

import pytest

from repro.analysis import SanitizerReport, TraceSanitizerError, sanitize_result
from repro.faults import FaultPlan, NodeFault, RetryPolicy, TaskCrash
from repro.perfmodel import TaskCost
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.runtime import Backend
from repro.tracing import Stage


def _cost() -> TaskCost:
    return TaskCost(
        serial_flops=1e9,
        parallel_flops=1e10,
        parallel_items=1e6,
        arithmetic_intensity=10.0,
        input_bytes=1_000_000,
        output_bytes=1_000_000,
        host_device_bytes=0,
        gpu_memory_bytes=0,
        host_memory_bytes=64 * 2**20,
    )


def _chain_runtime(config: RuntimeConfig | None = None) -> Runtime:
    """input -> stage0 -> stage1 -> stage2, plus a parallel side task."""
    runtime = Runtime(config or RuntimeConfig())
    block = runtime.register_input(1_000_000, name="in")
    [a] = runtime.submit("stage0", inputs=(block,), cost=_cost())
    [b] = runtime.submit("stage1", inputs=(a,), cost=_cost())
    runtime.submit("stage2", inputs=(b,), cost=_cost())
    runtime.submit("side", inputs=(block,), cost=_cost())
    return runtime


def _violations(result, check: str):
    report = sanitize_result(result)
    return [v for v in report.violations if v.check == check]


class TestCleanRuns:
    def test_clean_run_attaches_report(self):
        result = _chain_runtime().run(sanitize=True)
        assert isinstance(result.sanitizer, SanitizerReport)
        assert result.sanitizer.ok
        assert "clean" in result.sanitizer.render()
        assert result.sanitizer.events_checked > 0

    def test_config_flag_equivalent(self):
        result = _chain_runtime(RuntimeConfig(sanitize=True)).run()
        assert result.sanitizer is not None and result.sanitizer.ok

    def test_unsanitized_run_has_no_report(self):
        assert _chain_runtime().run().sanitizer is None

    def test_faulted_run_sanitizes_clean(self):
        config = RuntimeConfig(
            fault_plan=FaultPlan(
                task_crashes=(
                    TaskCrash(
                        task_id=1, stage=Stage.SERIAL_FRACTION, attempts=(1,)
                    ),
                ),
                node_faults=(NodeFault(node=1, at_time=0.05),),
            ),
            retry_policy=RetryPolicy(max_attempts=3, backoff_base=0.01),
        )
        result = _chain_runtime(config).run(sanitize=True)
        assert result.sanitizer.ok

    def test_non_simulated_backend_refused(self):
        runtime = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        with pytest.raises(ValueError, match="simulated backend"):
            runtime.run(sanitize=True)


class TestTamperedTraces:
    """Each tamper models one executor bug class."""

    def test_consumer_before_producer(self):
        result = _chain_runtime().run()
        trace = result.trace
        # stage1 committed before stage0 ever ended: a dependency leak.
        victim = next(t for t in trace.tasks if t.task_type == "stage1")
        index = trace.tasks.index(victim)
        trace.tasks[index] = dataclasses.replace(victim, start=0.0, end=0.0)
        found = _violations(result, "happens_before")
        assert found
        assert any("before any commit" in v.message for v in found)

    def test_missing_producer_record(self):
        result = _chain_runtime().run()
        trace = result.trace
        trace.tasks[:] = [t for t in trace.tasks if t.task_type != "stage0"]
        assert _violations(result, "happens_before")
        # ... and the dropped task is now neither committed nor failed.
        assert _violations(result, "attempt_machine")

    def test_double_occupancy_of_one_core(self):
        result = _chain_runtime().run()
        trace = result.trace
        first = trace.tasks[0]
        clone = dataclasses.replace(first, task_id=trace.tasks[1].task_id)
        trace.tasks.append(clone)
        found = _violations(result, "conservation")
        assert any("at once" in v.message for v in found)

    def test_ram_overcommit(self):
        # A task whose cost demands more RAM than the node has, forged
        # into the trace without the executor's admission control.
        runtime = _chain_runtime()
        result = runtime.run()
        huge = dataclasses.replace(
            _cost(), host_memory_bytes=2 * runtime.config.cluster.node.ram_bytes
        )
        runtime.graph.task(0).cost = huge
        found = _violations(result, "conservation")
        assert any("host RAM" in v.message for v in found)

    def test_placement_outside_cluster(self):
        result = _chain_runtime().run()
        trace = result.trace
        trace.tasks[0] = dataclasses.replace(trace.tasks[0], node=99)
        found = _violations(result, "placement")
        assert any("outside the cluster" in v.message for v in found)

    def test_gpu_use_without_gpu_config(self):
        result = _chain_runtime().run()
        trace = result.trace
        trace.tasks[0] = dataclasses.replace(trace.tasks[0], used_gpu=True)
        found = _violations(result, "placement")
        assert any("forbids GPU" in v.message for v in found)

    def test_commit_straddles_node_death(self):
        config = RuntimeConfig(
            fault_plan=FaultPlan(node_faults=(NodeFault(node=0, at_time=0.5),)),
            retry_policy=RetryPolicy(max_attempts=3, backoff_base=0.01),
        )
        result = _chain_runtime(config).run()
        trace = result.trace
        record = trace.tasks[0]
        trace.tasks[0] = dataclasses.replace(
            record, node=0, start=0.1, end=2.0
        )
        found = _violations(result, "placement")
        assert any("planned death" in v.message for v in found)

    def test_attempt_numbers_must_be_contiguous(self):
        config = RuntimeConfig(
            fault_plan=FaultPlan(
                task_crashes=(
                    TaskCrash(
                        task_id=0, stage=Stage.SERIAL_FRACTION, attempts=(1,)
                    ),
                ),
            ),
            retry_policy=RetryPolicy(max_attempts=3, backoff_base=0.01),
        )
        result = _chain_runtime(config).run()
        trace = result.trace
        assert trace.attempts  # the crash produced attempt records
        victim = next(a for a in trace.attempts if a.attempt == 2)
        index = trace.attempts.index(victim)
        trace.attempts[index] = dataclasses.replace(victim, attempt=5)
        found = _violations(result, "attempt_machine")
        assert any("not contiguous" in v.message for v in found)

    def test_double_commit_without_resurrection(self):
        config = RuntimeConfig(
            fault_plan=FaultPlan(
                task_crashes=(
                    TaskCrash(
                        task_id=0, stage=Stage.SERIAL_FRACTION, attempts=(1,)
                    ),
                ),
            ),
            retry_policy=RetryPolicy(max_attempts=3, backoff_base=0.01),
        )
        result = _chain_runtime(config).run()
        trace = result.trace
        winner = next(a for a in trace.attempts if a.ok)
        trace.attempts.append(
            dataclasses.replace(winner, attempt=winner.attempt + 1)
        )
        found = _violations(result, "attempt_machine")
        assert any("resurrection" in v.message for v in found)

    def test_backwards_record(self):
        result = _chain_runtime().run()
        trace = result.trace
        record = trace.tasks[0]
        # TaskRecord has no constructor guard, so a buggy executor could
        # emit this; the sanitizer must still catch it.
        trace.tasks[0] = dataclasses.replace(
            record, start=record.end + 1.0, end=record.end
        )
        assert _violations(result, "monotonicity")

    def test_run_raises_on_dirty_trace(self):
        result = _chain_runtime().run()
        trace = result.trace
        trace.tasks[0] = dataclasses.replace(trace.tasks[0], node=99)
        report = sanitize_result(result)
        error = TraceSanitizerError(report)
        assert "placement" in str(error)
        assert error.report is report
