"""Block-access race rules (``WF4xx``): static data-hazard detection.

The executor moves blocks, not just tasks: every output ref is a block
with one authoritative replica (homed where its producer ran), node
faults destroy replicas, lineage recovery resurrects producers, the
checkpoint policy clones blocks to shared storage, and speculation runs
two attempts of one producer concurrently.  Each of those mechanisms is
individually deterministic, but their *compositions* can race on a block
id.  These rules find the three hazard classes statically, from the DAG
plus the fault/recovery configuration alone:

* **WF401** — write-write: two dependency-unordered tasks produce the
  same ref id, so the surviving replica depends on scheduling order.
* **WF402** — read-after-free: a lineage walk triggered by a lost block
  can reach a producer whose retries a crash plan provably exhausts; the
  consumer then reads a block that can never exist again.
* **WF403** — checkpoint/lineage inconsistency: a checkpointed block
  whose producer can be speculatively re-executed writes the durable
  copy twice, and the loser's write may land after the winner re-homed
  the authoritative replica.
* **WF404** — a checkpoint policy restricted to task types the graph
  does not contain protects nothing (a typo silently disables it).

All four stay quiet on the golden-trace matrix (``tests/golden_matrix.py``),
whose fault cells retry without lineage recovery, checkpoints, or
speculation — the interplay tests pin that down.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.registry import register
from repro.analysis.rules import RuleContext, _grouped, _ids
from repro.runtime.dag import CycleError


def _reachable(graph, source: int, target: int) -> bool:
    """Whether ``target`` is a (transitive) successor of ``source``."""
    seen = {source}
    frontier = deque([source])
    while frontier:
        task_id = frontier.popleft()
        for successor in graph.successors(task_id):
            sid = successor.task_id
            if sid == target:
                return True
            if sid not in seen:
                seen.add(sid)
                frontier.append(sid)
    return False


@register("WF401", severity=Severity.ERROR, category="races")
def check_write_write_race(ctx: RuleContext) -> list[Diagnostic]:
    """WF401 — two dependency-unordered tasks write the same block id.

    Refines WF002: duplicate producers that are at least *ordered* by a
    dependency path overwrite deterministically (still wrong, but
    reproducibly so); unordered producers race, and which replica
    consumers observe depends on the scheduling policy and timing.
    """
    producers: dict[int, list] = {}
    for task in ctx.graph.tasks():
        for ref in task.outputs:
            producers.setdefault(ref.ref_id, []).append(task)
    findings: list[Diagnostic] = []
    for ref_id, writers in sorted(producers.items()):
        if len(writers) < 2:
            continue
        for i, first in enumerate(writers):
            for second in writers[i + 1 :]:
                a, b = first.task_id, second.task_id
                if _reachable(ctx.graph, a, b) or _reachable(ctx.graph, b, a):
                    continue  # ordered: WF002 covers the duplicate producer
                findings.append(
                    Diagnostic(
                        code="WF401",
                        severity=Severity.ERROR,
                        message=(
                            f"block #{ref_id} is written by task #{a} and "
                            f"task #{b} with no dependency path between "
                            "them; the surviving replica depends on "
                            "scheduling order, so consumers read a "
                            "nondeterministic value"
                        ),
                        task_ids=tuple(sorted((a, b))),
                        task_type=first.name if first.name == second.name else "",
                        hint="give each writer its own output ref, or order "
                        "the writers with a dependency edge",
                    )
                )
    return findings


def _crash_exhausts_retries(plan, policy, task) -> bool:
    """Whether a planned crash provably fails ``task`` permanently.

    True when some TaskCrash matches the task and its ``attempts`` tuple
    covers every attempt the retry budget allows — the task cannot ever
    commit, no matter how the schedule unfolds.
    """
    max_attempts = getattr(policy, "max_attempts", 3) if policy else 3
    budget = set(range(1, max_attempts + 1))
    for crash in getattr(plan, "task_crashes", ()):
        if crash.task_id is not None and crash.task_id != task.task_id:
            continue
        if crash.task_type is not None and crash.task_type != task.name:
            continue
        if crash.task_id is None and crash.task_type is None:
            continue
        if budget <= set(crash.attempts):
            return True
    return False


@register("WF402", severity=Severity.WARNING, category="races")
def check_read_after_free(ctx: RuleContext) -> list[Diagnostic]:
    """WF402 — lineage recovery can walk into a permanently failed producer.

    With ``recover_lost_blocks=True`` a node fault marks resident blocks
    lost; when a consumer of a lost block is dispatched, the executor
    walks the lineage backwards to resurrect producers.  If that walk
    reaches a producer whose retries a crash plan provably exhausts, the
    block can never be recomputed: the consumer reads-after-free and
    fails, cascading to its dependents.  Checkpointed producers are safe
    — the durable copy terminates the walk before the doomed task.
    """
    plan = ctx.fault_plan
    policy = ctx.retry_policy
    if plan is None or getattr(plan, "is_empty", True):
        return []
    if not getattr(plan, "node_faults", ()):
        return []  # no node death, no lost blocks, no lineage walk
    if policy is None or not getattr(policy, "recover_lost_blocks", False):
        return []  # recovery off: losses fail fast, nothing resurrects
    checkpoint = ctx.checkpoint_policy
    try:
        levels = ctx.graph.levels()
    except CycleError:
        return []  # WF001 already covers an unschedulable graph
    consumed = {
        ref.ref_id for task in ctx.graph.tasks() for ref in task.inputs
    }
    doomed = []
    for task in ctx.graph.tasks():
        if not any(ref.ref_id in consumed for ref in task.outputs):
            continue  # nothing downstream ever walks into this producer
        if not _crash_exhausts_retries(plan, policy, task):
            continue
        if checkpoint is not None and checkpoint.applies(
            task.name, levels[task.task_id]
        ):
            continue  # durable copy terminates the lineage walk
        doomed.append(task)
    findings = []
    for name, tasks in _grouped(doomed).items():
        findings.append(
            Diagnostic(
                code="WF402",
                severity=Severity.WARNING,
                message=(
                    f"{len(tasks)} {name!r} producer task(s) are crashed on "
                    "every allowed attempt while node faults plus "
                    "recover_lost_blocks=True can send a lineage walk "
                    "through them; consumers of their blocks read-after-free "
                    "and fail permanently"
                ),
                task_ids=_ids(tasks),
                task_type=name,
                hint="raise max_attempts past the crash plan, drop the "
                "crash entries, or checkpoint the producer's task type",
            )
        )
    return findings


@register("WF403", severity=Severity.WARNING, category="races")
def check_checkpoint_speculation_divergence(ctx: RuleContext) -> list[Diagnostic]:
    """WF403 — a checkpointed producer can be speculatively re-executed.

    Speculation races two attempts of one task; each committing attempt
    walks the checkpoint-write stage, so a checkpointed task type pays
    the GPFS round-trip twice, and the losing attempt's write can land
    *after* the winner re-homed the authoritative replica — the durable
    copy and the live block then disagree about where the block lives
    (and, with jitter, about its content timeline).
    """
    checkpoint = ctx.checkpoint_policy
    policy = ctx.retry_policy
    if checkpoint is None or policy is None:
        return []
    if getattr(policy, "speculation_factor", None) is None:
        return []
    try:
        levels = ctx.graph.levels()
    except CycleError:
        return []
    exposed = [
        task
        for task in ctx.graph.tasks()
        if checkpoint.applies(task.name, levels[task.task_id])
    ]
    findings = []
    for name, tasks in _grouped(exposed).items():
        findings.append(
            Diagnostic(
                code="WF403",
                severity=Severity.WARNING,
                message=(
                    f"{len(tasks)} {name!r} task(s) are both checkpointed "
                    "and eligible for speculative re-execution; a "
                    "speculation race checkpoints the same block twice and "
                    "the loser's durable write can disagree with the "
                    "winner's authoritative replica"
                ),
                task_ids=_ids(tasks),
                task_type=name,
                hint="exclude the checkpointed types from speculation "
                "(or vice versa): set CheckpointPolicy(task_types=...) "
                "disjoint from the straggler-prone types",
            )
        )
    return findings


@register("WF404", severity=Severity.WARNING, category="races")
def check_checkpoint_types_exist(ctx: RuleContext) -> list[Diagnostic]:
    """WF404 — the checkpoint policy names task types the graph lacks.

    ``CheckpointPolicy(task_types={...})`` restricted to names that no
    task carries persists nothing: recovery then walks the full lineage
    exactly as if checkpointing were off, which is almost certainly a
    typo rather than an intent.
    """
    checkpoint = ctx.checkpoint_policy
    if checkpoint is None:
        return []
    wanted = getattr(checkpoint, "task_types", None)
    if not wanted:
        return []
    present = {task.name for task in ctx.graph.tasks()}
    missing = sorted(set(wanted) - present)
    if not missing:
        return []
    shown = ", ".join(repr(name) for name in missing)
    return [
        Diagnostic(
            code="WF404",
            severity=Severity.WARNING,
            message=(
                f"checkpoint policy names task type(s) {shown} that the "
                "workflow does not contain"
                + (
                    "; no block is ever checkpointed"
                    if len(missing) == len(wanted)
                    else ""
                )
            ),
            hint="fix the type names (see TaskGraph task names) or drop "
            "task_types to checkpoint every type",
        )
    ]
