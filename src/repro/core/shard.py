"""Persistent-worker shard pool for independent simulation instances.

Every experiment in this repository is embarrassingly parallel at the
*instance* level: a figure cell, a fault Monte-Carlo replica, a what-if
query, or a scale-bench replay is one independent, deterministic workflow
simulation.  This module fans batches of such instances out across
long-lived worker processes:

* **Persistent workers** — each worker imports :mod:`repro` once at
  start-up and then streams picklable instance specs over a task queue,
  so the ~1 second interpreter + numpy warm-up is paid per *worker*, not
  per instance (the overhead that makes a ``ProcessPoolExecutor`` per
  call uneconomical for sub-second cells).
* **Deterministic merge** — results are keyed by caller-chosen instance
  ids and merged in id order (:func:`merge_shard_results`), so a sharded
  run is bit-identical to a serial run of the same instances regardless
  of worker count, start method, or completion order.
* **Crash isolation** — a worker that dies mid-instance (segfault,
  ``os._exit``, OOM-kill) takes only its in-flight instance with it; the
  pool respawns the worker and re-dispatches that instance exactly once.
  An instance that kills its worker twice raises
  :class:`ShardCrashError` instead of looping.

Workers advertise themselves through :func:`in_worker`, which the sweep
engine uses to degrade nested fan-out to serial execution instead of
spawning a process pool inside a pool worker.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

#: Set in worker processes before the first instance runs; read through
#: :func:`in_worker` by code that must not nest process pools.
_IN_WORKER = False

#: How many crashed-worker respawns one pool tolerates before giving up;
#: scaled by worker count at construction time.
_RESPAWNS_PER_WORKER = 4


def in_worker() -> bool:
    """Whether this process is a :class:`ShardPool` worker."""
    return _IN_WORKER


class ShardCrashError(RuntimeError):
    """A worker died while running an instance, twice for the same one."""


class ShardTaskError(RuntimeError):
    """An instance raised inside its worker; carries the remote traceback."""

    def __init__(self, instance_id: Any, kind: str, message: str) -> None:
        super().__init__(
            f"shard instance {instance_id!r} raised {kind}: {message}"
        )
        self.instance_id = instance_id
        self.kind = kind
        self.remote_message = message


@dataclass(frozen=True)
class ShardItem:
    """One unit of pool work: ``fn(*args, **kwargs)`` under ``instance_id``.

    ``fn`` must be picklable under the pool's start method (a module-level
    function for ``spawn``); ``instance_id`` must be hashable, sortable
    against the batch's other ids, and unique within one batch.
    """

    instance_id: Any
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)


def merge_shard_results(shards: Iterable[Mapping[Any, Any]]) -> dict[Any, Any]:
    """Merge per-shard ``{instance_id: result}`` maps deterministically.

    The merged dict is built in ascending instance-id order, so its
    iteration order — and anything serialised from it — is independent of
    how instances were assigned to shards and of shard arrival order.
    Duplicate ids across shards are a protocol violation and raise.
    """
    combined: dict[Any, Any] = {}
    for shard in shards:
        for instance_id, result in shard.items():
            if instance_id in combined:
                raise ValueError(
                    f"instance {instance_id!r} appears in more than one shard"
                )
            combined[instance_id] = result
    return {instance_id: combined[instance_id] for instance_id in sorted(combined)}


def _worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Worker loop: warm up once, then stream instances until the sentinel.

    Instance exceptions are caught and shipped back as results — only the
    process dying (never a Python-level error) counts as a crash.  The
    exception crosses the process boundary as ``(type name, str)`` so an
    unpicklable exception object cannot wedge the protocol.
    """
    global _IN_WORKER
    _IN_WORKER = True
    import repro  # noqa: F401  - one warm-up import per worker lifetime

    while True:
        item = task_queue.get()
        if item is None:
            return
        instance_id, fn, args, kwargs = item
        try:
            result = fn(*args, **kwargs)
        except BaseException as error:  # noqa: BLE001 - shipped to the parent
            result_queue.put(
                (
                    worker_id,
                    instance_id,
                    "error",
                    (type(error).__name__, str(error)),
                )
            )
        else:
            result_queue.put((worker_id, instance_id, "ok", result))


class _Worker:
    """One pool worker: its process, private task queue, in-flight item."""

    __slots__ = ("process", "task_queue", "inflight")

    def __init__(self, ctx, worker_id: int, result_queue) -> None:
        # A private task queue per worker pins each dispatched instance to
        # one process, which is what makes crash attribution exact: when a
        # worker dies, precisely its ``inflight`` item is affected.
        self.task_queue = ctx.SimpleQueue()
        self.inflight: ShardItem | None = None
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, self.task_queue, result_queue),
            daemon=True,
        )
        self.process.start()


class ShardPool:
    """A reusable pool of persistent simulation workers.

    One pool is meant to span one logical invocation (a whole
    ``figures all`` run, a bench suite): workers survive across
    :meth:`run` calls, so only the first batch pays process start-up.
    Use as a context manager, or call :meth:`close` explicitly.

    ``start_method`` picks the :mod:`multiprocessing` context (``spawn``,
    ``fork``, ``forkserver``); ``None`` uses the platform default.
    Dispatch keeps exactly one instance in flight per worker — instance
    granularity is whole simulations, so there is nothing to win from
    deeper queues, and crash attribution stays exact.
    """

    def __init__(self, workers: int, start_method: str | None = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.start_method = start_method
        self._ctx = multiprocessing.get_context(start_method)
        self._result_queue = self._ctx.Queue()
        self._pool: dict[int, _Worker] = {}
        self._next_worker_id = 0
        self._respawn_budget = _RESPAWNS_PER_WORKER * workers
        self._closed = False

    # ------------------------------------------------------------ lifecycle
    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Send every worker its shutdown sentinel and reap the processes."""
        if self._closed:
            return
        self._closed = True
        for worker in self._pool.values():
            if worker.process.is_alive():
                try:
                    worker.task_queue.put(None)
                except (OSError, ValueError):  # pragma: no cover - teardown race
                    pass
        for worker in self._pool.values():
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=5.0)
        self._pool.clear()

    def _spawn_worker(self) -> int:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        self._pool[worker_id] = _Worker(self._ctx, worker_id, self._result_queue)
        return worker_id

    # ------------------------------------------------------------- dispatch
    def run(self, items: Sequence[ShardItem]) -> dict[Any, Any]:
        """Execute a batch; returns ``{instance_id: result}`` in id order.

        Instances are streamed to idle workers as results come back, so
        a slow instance never blocks the rest of the batch behind a
        static pre-partition.  Worker crashes are absorbed per the class
        contract; instance-level exceptions re-raise here as
        :class:`ShardTaskError` after the whole batch settled.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        items = list(items)
        ids = [item.instance_id for item in items]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate instance ids in one batch")
        if not items:
            return {}

        while len(self._pool) < min(self.workers, len(items)):
            self._spawn_worker()

        pending = list(reversed(items))  # pop() dispatches in caller order
        crash_counts: dict[Any, int] = {}
        shard_results: dict[int, dict[Any, Any]] = {}
        errors: list[tuple[Any, str, str]] = []
        done: set[Any] = set()
        total = len(items)

        self._fill_idle_workers(pending)
        while len(done) < total:
            messages = []
            try:
                messages.append(self._result_queue.get(timeout=0.1))
                while True:
                    messages.append(self._result_queue.get_nowait())
            except queue_module.Empty:
                pass
            if not messages:
                # The queue idled: any dead worker's in-flight instance is
                # genuinely lost (its result would have arrived by now).
                self._reap_crashes(pending, crash_counts, done)
            for worker_id, instance_id, status, payload in messages:
                worker = self._pool.get(worker_id)
                if worker is not None:
                    worker.inflight = None
                if instance_id in done:
                    # A crash-requeue raced an already-delivered result;
                    # the first arrival won, drop the duplicate.
                    continue
                done.add(instance_id)
                if status == "ok":
                    shard_results.setdefault(worker_id, {})[instance_id] = payload
                else:
                    kind, message = payload
                    errors.append((instance_id, kind, message))
            self._fill_idle_workers(pending)

        if errors:
            errors.sort(key=lambda entry: str(entry[0]))
            instance_id, kind, message = errors[0]
            raise ShardTaskError(instance_id, kind, message)
        return merge_shard_results(shard_results.values())

    def map(
        self, fn: Callable[..., Any], specs: Sequence[Any]
    ) -> list[Any]:
        """Run ``fn(spec)`` for every spec; results align with input order."""
        merged = self.run(
            [ShardItem(instance_id=i, fn=fn, args=(spec,)) for i, spec in enumerate(specs)]
        )
        return [merged[i] for i in range(len(specs))]

    def _dispatch(self, worker_id: int, item: ShardItem) -> None:
        worker = self._pool[worker_id]
        worker.inflight = item
        worker.task_queue.put(
            (item.instance_id, item.fn, tuple(item.args), dict(item.kwargs))
        )

    def _fill_idle_workers(self, pending: list[ShardItem]) -> None:
        for worker_id, worker in list(self._pool.items()):
            if not pending:
                return
            if worker.inflight is None and worker.process.is_alive():
                self._dispatch(worker_id, pending.pop())

    def _reap_crashes(
        self,
        pending: list[ShardItem],
        crash_counts: dict[Any, int],
        done: set[Any],
    ) -> None:
        """Respawn dead workers; requeue their in-flight instances once.

        Called only when the result queue idled, so a worker observed
        dead here almost certainly died before producing a result for its
        in-flight instance; the ``done`` check in the receive loop mops
        up the residual race where the result was already on the wire.
        """
        for worker_id in list(self._pool):
            worker = self._pool[worker_id]
            if worker.process.is_alive():
                continue
            lost = worker.inflight
            del self._pool[worker_id]
            if lost is not None and lost.instance_id not in done:
                count = crash_counts.get(lost.instance_id, 0) + 1
                crash_counts[lost.instance_id] = count
                if count > 1:
                    raise ShardCrashError(
                        f"instance {lost.instance_id!r} killed its worker "
                        f"{count} times (exit code "
                        f"{worker.process.exitcode}); not re-dispatching"
                    )
                pending.append(lost)
            if self._respawn_budget <= 0:
                raise ShardCrashError(
                    "worker respawn budget exhausted; refusing to continue"
                )
            self._respawn_budget -= 1
            self._spawn_worker()


def resolve_start_method(requested: str | None) -> str:
    """The effective start method a pool built with ``requested`` uses."""
    if requested is not None:
        return requested
    return multiprocessing.get_start_method()


def default_workers() -> int:
    """Worker count when the caller does not specify one."""
    env = os.environ.get("REPRO_SHARD_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1
