"""Determinism across the full configuration matrix.

docs/architecture.md promises bit-for-bit reproducibility with the
default (jitter-free) configuration; this test sweeps every storage,
scheduling, and processor combination and compares full trace
fingerprints across repeated runs.
"""

import pytest

from repro.algorithms import KMeansWorkflow
from repro.data import paper_datasets
from repro.hardware import StorageKind
from repro.runtime import Runtime, RuntimeConfig, SchedulingPolicy


def _fingerprint(trace):
    return [
        (r.task_id, r.stage, round(r.start, 12), round(r.end, 12),
         r.node, r.core)
        for r in trace.stages
    ]


def _run(storage, policy, use_gpu):
    rt = Runtime(
        RuntimeConfig(storage=storage, scheduling=policy, use_gpu=use_gpu)
    )
    KMeansWorkflow(
        paper_datasets()["kmeans_10gb"], grid_rows=32, n_clusters=10,
        iterations=2,
    ).build(rt)
    return rt.run().trace


@pytest.mark.parametrize("storage", list(StorageKind))
@pytest.mark.parametrize("policy", list(SchedulingPolicy))
@pytest.mark.parametrize("use_gpu", [False, True])
def test_trace_identical_across_runs(storage, policy, use_gpu):
    first = _run(storage, policy, use_gpu)
    second = _run(storage, policy, use_gpu)
    assert _fingerprint(first) == _fingerprint(second)


def test_configurations_actually_differ_from_each_other():
    # Sanity that the matrix isn't trivially identical: distinct
    # configurations produce distinct schedules.
    baseline = _fingerprint(
        _run(StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER, False)
    )
    local = _fingerprint(
        _run(StorageKind.LOCAL, SchedulingPolicy.GENERATION_ORDER, False)
    )
    gpu = _fingerprint(
        _run(StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER, True)
    )
    assert baseline != local
    assert baseline != gpu
