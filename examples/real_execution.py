"""Real in-process execution: the runtime as an actual dataflow engine.

Everything in the other examples runs on the simulated cluster; this one
uses the in-process backend to really execute the task functions on NumPy
data, verifying that the blocked algorithms compute correct results:

* blocked Matmul and its FMA variant against ``numpy.matmul``;
* distributed K-means against a single-machine reference implementation
  (and against itself under different blockings).

Run:  python examples/real_execution.py
"""

import numpy as np

from repro import (
    DatasetSpec,
    DistributedArray,
    KMeansWorkflow,
    MatmulFmaWorkflow,
    MatmulWorkflow,
    Runtime,
    RuntimeConfig,
    kmeans_reference,
)
from repro.data.generator import generate_matrix
from repro.runtime.runtime import Backend


def check(label: str, ok: bool) -> None:
    print(f"  [{'ok' if ok else 'FAIL'}] {label}")
    if not ok:
        raise SystemExit(1)


def main():
    print("Blocked Matmul vs numpy:")
    dataset = DatasetSpec("demo_matmul", rows=96, cols=96)
    full = generate_matrix(dataset)
    for grid in (1, 2, 4):
        runtime = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        _a, _b, c_refs = MatmulWorkflow(dataset, grid=grid).build(
            runtime, materialize=True
        )
        result = runtime.run()
        got = DistributedArray.assemble(c_refs, result)
        check(
            f"grid {grid}x{grid}: {runtime.graph.num_tasks} tasks",
            np.allclose(got, full @ full),
        )

    print("Matmul FMA vs numpy:")
    runtime = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
    _a, _b, c_refs = MatmulFmaWorkflow(dataset, grid=4).build(
        runtime, materialize=True
    )
    got = DistributedArray.assemble(c_refs, runtime.run())
    check(f"grid 4x4: {runtime.graph.num_tasks} tasks", np.allclose(got, full @ full))

    print("Distributed K-means vs single-machine reference:")
    kdataset = DatasetSpec("demo_kmeans", rows=2_000, cols=8)
    kdata = generate_matrix(kdataset)
    reference = None
    for grid_rows in (1, 4, 7):
        workflow = KMeansWorkflow(kdataset, grid_rows=grid_rows, n_clusters=5,
                                  iterations=4)
        runtime = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        _data, centroids_ref = workflow.build(runtime, materialize=True)
        centroids = runtime.run().value_of(centroids_ref)
        if reference is None:
            reference = kmeans_reference(
                kdata, workflow.initial_centroids(), iterations=4
            )
        check(
            f"grid {grid_rows}x1 matches reference",
            np.allclose(centroids, reference),
        )
    print("\nAll real executions agree with their references — the DAG")
    print("machinery, chunking, and reductions are computationally faithful.")


if __name__ == "__main__":
    main()
