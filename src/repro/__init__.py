"""repro — a reproduction of "Performance Analysis of Distributed
GPU-Accelerated Task-Based Workflows" (EDBT 2024).

The package rebuilds the paper's entire experimental stack in Python:

* :mod:`repro.sim` — a deterministic discrete-event simulation engine;
* :mod:`repro.hardware` — the Minotauro-like CPU-GPU cluster model
  (cores, devices with memory ceilings, PCIe, local/shared storage,
  network);
* :mod:`repro.perfmodel` — the calibrated per-stage task cost model;
* :mod:`repro.runtime` — a PyCOMPSs-like task runtime (automatic DAG
  construction, two scheduling policies, simulated and real backends);
* :mod:`repro.arrays` / :mod:`repro.data` — the dislib-like blocked
  distributed array and the grid/block partitioning formalism;
* :mod:`repro.algorithms` — Matmul, Matmul FMA, and K-means workloads;
* :mod:`repro.tracing` — the §4.2 metrics over execution traces;
* :mod:`repro.core` — the paper's analysis layer: Table-1 factors,
  per-figure experiment runners, Spearman correlation, and the O1-O6
  observation checkers.

Quickstart::

    from repro import Runtime, RuntimeConfig, KMeansWorkflow, paper_datasets
    from repro.tracing import user_code_metrics

    wf = KMeansWorkflow(paper_datasets()["kmeans_10gb"], grid_rows=256)
    rt = Runtime(RuntimeConfig(use_gpu=True))
    wf.build(rt)
    result = rt.run()
    print(user_code_metrics(result.trace)["partial_sum"].user_code)
"""

from repro.algorithms import (
    KMeansWorkflow,
    MatmulFmaWorkflow,
    MatmulWorkflow,
    kmeans_reference,
)
from repro.arrays import DistributedArray
from repro.data import (
    BlockSpec,
    Blocking,
    DatasetSpec,
    GridSpec,
    paper_datasets,
)
from repro.hardware import (
    ClusterSpec,
    GpuOutOfMemoryError,
    HostOutOfMemoryError,
    StorageKind,
    minotauro,
)
from repro.perfmodel import CostModel, TaskCost
from repro.runtime import (
    DataRef,
    Runtime,
    RuntimeConfig,
    SchedulingPolicy,
    TaskGraph,
    WorkflowResult,
    task,
)

__version__ = "1.0.0"

__all__ = [
    "BlockSpec",
    "Blocking",
    "ClusterSpec",
    "CostModel",
    "DataRef",
    "DatasetSpec",
    "DistributedArray",
    "GpuOutOfMemoryError",
    "GridSpec",
    "HostOutOfMemoryError",
    "KMeansWorkflow",
    "MatmulFmaWorkflow",
    "MatmulWorkflow",
    "Runtime",
    "RuntimeConfig",
    "SchedulingPolicy",
    "StorageKind",
    "TaskCost",
    "TaskGraph",
    "WorkflowResult",
    "__version__",
    "kmeans_reference",
    "minotauro",
    "paper_datasets",
    "task",
]
