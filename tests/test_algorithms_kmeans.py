"""Tests for the distributed K-means workflow."""

import numpy as np
import pytest

from repro.algorithms import KMeansWorkflow, kmeans_reference
from repro.algorithms.kmeans import merge_cost, partial_sum, partial_sum_cost
from repro.data import DatasetSpec, paper_datasets
from repro.data.generator import generate_matrix
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.runtime import Backend


def _tiny(rows=600, cols=5):
    return DatasetSpec("tinyk", rows=rows, cols=cols)


class TestCorrectness:
    @pytest.mark.parametrize("grid_rows", [1, 2, 5])
    def test_matches_single_machine_reference(self, grid_rows):
        dataset = _tiny()
        workflow = KMeansWorkflow(dataset, grid_rows=grid_rows, n_clusters=4,
                                  iterations=3)
        rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        _data, centroids_ref = workflow.build(rt, materialize=True)
        result = rt.run()
        expected = kmeans_reference(
            generate_matrix(dataset), workflow.initial_centroids(), iterations=3
        )
        np.testing.assert_allclose(result.value_of(centroids_ref), expected)

    def test_blocking_invariance(self):
        # Different grids must give identical centroids.
        dataset = _tiny()
        outcomes = []
        for grid_rows in (1, 3, 6):
            workflow = KMeansWorkflow(dataset, grid_rows=grid_rows, n_clusters=3,
                                      iterations=2)
            rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
            _d, ref = workflow.build(rt, materialize=True)
            outcomes.append(rt.run().value_of(ref))
        np.testing.assert_allclose(outcomes[0], outcomes[1])
        np.testing.assert_allclose(outcomes[0], outcomes[2])

    def test_partial_sum_output_shape(self):
        block = np.random.default_rng(0).random((50, 4))
        centroids = np.random.default_rng(1).random((3, 4))
        partials = partial_sum(block, centroids)
        assert partials.shape == (3, 5)
        assert partials[:, -1].sum() == 50  # all samples assigned

    def test_skew_does_not_change_task_work(self):
        # Figure 9b at real-execution scale: same shapes, skewed values.
        uniform = _tiny()
        skewed = DatasetSpec("tinyk_skew", rows=600, cols=5, skew=0.5)
        costs = []
        for dataset in (uniform, skewed):
            workflow = KMeansWorkflow(dataset, grid_rows=4, n_clusters=3)
            costs.append(workflow.task_costs()["partial_sum"])
        assert costs[0] == costs[1]


class TestDagShape:
    def test_narrow_and_deep(self):
        rt = Runtime(RuntimeConfig())
        KMeansWorkflow(_tiny(), grid_rows=4, n_clusters=3, iterations=3).build(rt)
        assert rt.graph.width == 4
        assert rt.graph.height == 6  # partial_sum + merge per iteration

    def test_task_counts(self):
        rt = Runtime(RuntimeConfig())
        KMeansWorkflow(_tiny(), grid_rows=4, n_clusters=3, iterations=3).build(rt)
        names = [t.name for t in rt.graph.tasks()]
        assert names.count("partial_sum") == 12
        assert names.count("merge") == 3

    def test_iterations_chain_through_centroids(self):
        rt = Runtime(RuntimeConfig())
        KMeansWorkflow(_tiny(), grid_rows=2, n_clusters=3, iterations=2).build(rt)
        merges = [t for t in rt.graph.tasks() if t.name == "merge"]
        second_iteration_partials = rt.graph.successors(merges[0].task_id)
        assert len(second_iteration_partials) == 2
        assert all(t.name == "partial_sum" for t in second_iteration_partials)


class TestCosts:
    def test_parallel_flops_quadratic_in_clusters(self):
        base = partial_sum_cost(1000, 100, 10)
        heavy = partial_sum_cost(1000, 100, 100)
        assert heavy.parallel_flops == pytest.approx(100 * base.parallel_flops)

    def test_serial_flops_subquadratic_in_clusters(self):
        base = partial_sum_cost(1000, 100, 10)
        heavy = partial_sum_cost(1000, 100, 100)
        # Serial fraction grows with K but much slower than K^2.
        ratio = heavy.serial_flops / base.serial_flops
        assert 1.0 < ratio < 100.0

    def test_partially_parallel(self):
        cost = partial_sum_cost(1000, 100, 10)
        assert cost.serial_flops > 0
        assert cost.parallel_flops > 0

    def test_gpu_memory_grows_with_clusters(self):
        small = partial_sum_cost(10**6, 100, 10)
        large = partial_sum_cost(10**6, 100, 1000)
        assert large.gpu_memory_bytes > small.gpu_memory_bytes

    def test_paper_oom_staircase(self):
        # 10 GB dataset: K=10 never OOMs, K=100 only at the maximum block,
        # K=1000 from mid-size blocks (paper Figure 9a annotations).
        from repro.hardware import minotauro
        from repro.perfmodel import CostModel

        model = CostModel(minotauro())
        dataset = paper_datasets()["kmeans_10gb"]

        def ooms(grid_rows, clusters):
            workflow = KMeansWorkflow(dataset, grid_rows=grid_rows,
                                      n_clusters=clusters)
            cost = workflow.task_costs()["partial_sum"]
            return cost.gpu_memory_bytes > model.gpu.memory_bytes

        assert not ooms(1, 10)
        assert ooms(1, 100)
        assert ooms(2, 100)
        assert not ooms(4, 100)
        assert ooms(8, 1000)
        assert ooms(16, 1000)
        assert not ooms(32, 1000)

    def test_100gb_ooms_beyond_16x1(self):
        # §5.1.3: the 100 GB dataset cannot run blocks larger than the
        # 16x1 grid on the 12 GB device.
        from repro.hardware import minotauro
        from repro.perfmodel import CostModel

        model = CostModel(minotauro())
        dataset = paper_datasets()["kmeans_100gb"]
        fits = {}
        for grid_rows in (8, 16):
            cost = KMeansWorkflow(dataset, grid_rows=grid_rows).task_costs()[
                "partial_sum"
            ]
            fits[grid_rows] = cost.gpu_memory_bytes <= model.gpu.memory_bytes
        assert fits == {8: False, 16: True}

    def test_merge_cost_scales_with_partials(self):
        small = merge_cost(4, 100, 10)
        large = merge_cost(256, 100, 10)
        assert large.serial_flops > small.serial_flops
        assert large.parallel_flops == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            KMeansWorkflow(_tiny(), grid_rows=2, n_clusters=0)
        with pytest.raises(ValueError):
            KMeansWorkflow(_tiny(), grid_rows=2, n_clusters=3, iterations=0)
