"""Canonical trace digests for the golden-trace equivalence suite.

The simulator is deterministic: one configuration always yields one
trace, bit for bit.  That property is what lets hot-path optimisations —
indexed dispatch, incremental ready sets, cost-model memoization — be
*proved* behaviour-preserving: record a digest of the reference trace
once, check it in, and assert every later executor reproduces it.

The digest is a SHA-256 over a canonical text serialisation of the whole
execution: every stage record, every task record, every attempt record
(in emission order, which the deterministic event loop fixes), the
makespan, and the permanently failed task ids.  Floats are rendered with
:func:`repr`, i.e. the shortest round-tripping decimal form, so digests
are stable across platforms and Python versions as long as the simulated
arithmetic itself is IEEE-754 double precision.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.tracing.trace import StageRecord, TaskAttempt, TaskRecord, Trace


def _stage_line(r: StageRecord) -> str:
    return (
        f"S|{r.task_id}|{r.task_type}|{r.stage.value}|{r.start!r}|{r.end!r}"
        f"|{r.node}|{r.core}|{r.level}|{int(r.used_gpu)}|{r.attempt}"
    )


def _task_line(r: TaskRecord) -> str:
    return (
        f"T|{r.task_id}|{r.task_type}|{r.start!r}|{r.end!r}"
        f"|{r.node}|{r.core}|{r.level}|{int(r.used_gpu)}|{r.attempt}"
    )


def _attempt_line(r: TaskAttempt) -> str:
    return (
        f"A|{r.task_id}|{r.task_type}|{r.attempt}|{r.start!r}|{r.end!r}"
        f"|{r.node}|{r.core}|{r.level}|{int(r.used_gpu)}|{r.outcome}"
    )


def trace_canonical_lines(
    trace: Trace, failed_task_ids: Iterable[int] = ()
) -> list[str]:
    """The digest's canonical serialisation, one record per line.

    Exposed separately from :func:`trace_digest` so a mismatch can be
    diffed record by record instead of comparing opaque hashes.
    """
    lines = [_stage_line(r) for r in trace.stages]
    lines += [_task_line(r) for r in trace.tasks]
    lines += [_attempt_line(r) for r in trace.attempts]
    lines.append(f"M|{trace.makespan!r}")
    lines.append("F|" + ",".join(str(t) for t in sorted(failed_task_ids)))
    return lines


def trace_digest(trace: Trace, failed_task_ids: Iterable[int] = ()) -> str:
    """SHA-256 hex digest of the canonical trace serialisation."""
    payload = "\n".join(trace_canonical_lines(trace, failed_task_ids))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def trace_fingerprint(
    trace: Trace, failed_task_ids: Iterable[int] = ()
) -> dict:
    """Digest plus human-readable context, for checked-in fixtures.

    The extra fields are redundant with the digest but turn a bare hash
    mismatch into an actionable diff ("same task count, different
    makespan" vs "different dispatch order").
    """
    failed = tuple(sorted(failed_task_ids))
    return {
        "digest": trace_digest(trace, failed),
        "num_tasks": len(trace.tasks),
        "num_stages": len(trace.stages),
        "num_attempts": len(trace.attempts),
        "makespan": repr(trace.makespan),
        "task_order": [t.task_id for t in trace.tasks[:64]],
        "failed_task_ids": list(failed),
    }
