"""Incremental per-node locality-bytes index for ready tasks (``docs/performance.md``).

``DataLocalityScheduler`` scores a ``(task, node)`` pair by the input
bytes resident on the node.  Summing over the task's inputs on every
dispatch round makes locality dispatch O(ready x nodes x inputs); this
index makes the score an O(1) dictionary lookup by aggregating each
ready task's input bytes **once**, when the task enters the ready set.

Correctness rests on two facts about the simulated executor:

* a task enters the ready set only after every producer has committed,
  so the residency of its inputs is final at insertion time — blocks
  never *move* while a consumer is ready;
* the only later residency change is *loss*: a node failure destroys
  the blocks it held, which :meth:`LocalityIndex.drop_node` applies to
  every affected ready task in one sweep.

Scores are therefore identical to recomputing
``sum(ref.size_bytes for ref in task.inputs if resolve(ref) == node)``
from scratch after every completion event — the property test in
``tests/test_scheduler_properties.py`` asserts exactly that equivalence
on random generated DAGs.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.runtime.data import DataRef
from repro.runtime.task import Task

#: Resolves a ref to the node its block currently resides on, or ``None``
#: when the block is off-cluster (lost with a failed node, or on shared
#: storage from the scheduler's point of view).
ResidencyResolver = Callable[[DataRef], "int | None"]

_EMPTY: Mapping[int, int] = {}


class LocalityIndex:
    """Per-(ready task, node) input-byte totals, maintained incrementally."""

    def __init__(self) -> None:
        #: task_id -> {node -> resident input bytes} (sparse: only nodes
        #: holding at least one input block appear).
        self._per_task: dict[int, dict[int, int]] = {}
        #: node -> ids of indexed tasks with bytes on that node (reverse
        #: index, so a node failure invalidates in one sweep).
        self._node_tasks: dict[int, set[int]] = {}

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._per_task

    def __len__(self) -> int:
        return len(self._per_task)

    def add(self, task: Task, resolve: ResidencyResolver) -> None:
        """Index one task entering the ready set.

        Duplicate input refs count once per occurrence, matching the
        scheduler's direct sum over ``task.inputs``.
        """
        by_node: dict[int, int] = {}
        for ref in task.inputs:
            node = resolve(ref)
            if node is not None:
                by_node[node] = by_node.get(node, 0) + ref.size_bytes
        self._per_task[task.task_id] = by_node
        for node in by_node:
            self._node_tasks.setdefault(node, set()).add(task.task_id)

    def discard(self, task_id: int) -> None:
        """Drop a task leaving the ready set (dispatched or failed)."""
        by_node = self._per_task.pop(task_id, None)
        if not by_node:
            return
        for node in by_node:
            tasks = self._node_tasks.get(node)
            if tasks is not None:
                tasks.discard(task_id)

    def drop_node(self, node: int) -> None:
        """Forget every block on ``node`` (the node failed, blocks lost)."""
        for task_id in self._node_tasks.pop(node, ()):
            self._per_task[task_id].pop(node, None)

    def bytes_map(self, task_id: int) -> Mapping[int, int] | None:
        """The task's per-node byte totals, or ``None`` when not indexed."""
        return self._per_task.get(task_id)

    def bytes_for(self, task_id: int, node: int) -> int:
        """Resident input bytes of ``task_id`` on ``node`` (O(1))."""
        return self._per_task.get(task_id, _EMPTY).get(node, 0)

    def snapshot(self) -> dict[int, dict[int, int]]:
        """Deep copy of the per-task state (for equivalence tests)."""
        return {
            task_id: dict(by_node) for task_id, by_node in self._per_task.items()
        }
