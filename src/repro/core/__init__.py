"""The paper's primary contribution: the systematic performance analysis.

This package layers the analysis method of §4 over the substrates:

* :mod:`repro.core.factors` — the factor/parameter framework of Table 1
  (the evaluated metrics of §4.2 live in :mod:`repro.tracing`);
* :mod:`repro.core.correlation` — Spearman rank correlation with one-hot
  encoding of categorical factors (§5.4, Figure 11);
* :mod:`repro.core.observations` — executable checkers for the paper's
  observations O1-O6;
* :mod:`repro.core.experiments` — one runner per figure of the evaluation
  section, each returning structured series plus an ASCII rendering;
* :mod:`repro.core.report` — table/series rendering shared by the
  experiment runners and the benchmark harness.
"""

from repro.core.correlation import CorrelationMatrix, one_hot, spearman, spearman_matrix
from repro.core.factors import (
    Dimension,
    Factor,
    SystemFunction,
    TABLE1_FACTORS,
    factors_table,
)
from repro.core.observations import ObservationCheck
from repro.core.report import Table, format_seconds, format_speedup

__all__ = [
    "CorrelationMatrix",
    "Dimension",
    "Factor",
    "ObservationCheck",
    "SystemFunction",
    "TABLE1_FACTORS",
    "Table",
    "factors_table",
    "format_seconds",
    "format_speedup",
    "one_hot",
    "spearman",
    "spearman_matrix",
]
