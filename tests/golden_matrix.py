"""The golden-trace matrix: {workload x scheduler x faults} cells.

Shared by ``scripts/record_golden_traces.py`` (which records reference
fingerprints into ``tests/golden/simulator_digests.json``) and
``tests/test_golden_traces.py`` (which asserts the current executor still
reproduces them bit for bit).

The three workloads are chosen to cover every hot code path the fast
dispatch work touches:

* ``matmul4`` — GPU mode with communication overlap and per-core warm-up
  (PCIe transfers, pipeline fill/drain, warm-up stages);
* ``kmeans40`` — GPU mode with overflow-to-CPU and an injected device
  OOM (the ready-queue scan that estimates device wait, forced-CPU
  retries);
* ``wide16`` — a seeded WfBench-style generated DAG on CPUs with
  log-normal jitter (wide ready sets, jittered stage durations).

Fault cells add deterministic task crashes, a node failure, a straggler,
and a probabilistic crash stream, so retry/backoff, blacklisting, and
failure bookkeeping are locked down too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.algorithms import GeneratedDagWorkflow, KMeansWorkflow, MatmulWorkflow
from repro.data import paper_datasets
from repro.faults import (
    FaultPlan,
    GpuOomFault,
    NodeFault,
    RetryPolicy,
    Straggler,
    TaskCrash,
)
from repro.hardware import StorageKind
from repro.runtime import Runtime, RuntimeConfig, SchedulingPolicy, WorkflowResult
from repro.tracing import Stage

POLICIES = (
    SchedulingPolicy.GENERATION_ORDER,
    SchedulingPolicy.DATA_LOCALITY,
    SchedulingPolicy.LIFO,
)

#: One deterministic fault plan shared by every faulted cell; entries
#: that match nothing in a given workload simply never fire.
GOLDEN_FAULT_PLAN = FaultPlan(
    task_crashes=(
        TaskCrash(task_id=3, stage=Stage.SERIAL_FRACTION, attempts=(1,)),
        TaskCrash(
            task_type="partial_sum",
            stage=Stage.PARALLEL_FRACTION,
            attempts=(1,),
        ),
    ),
    node_faults=(NodeFault(node=2, at_time=0.3),),
    gpu_ooms=(GpuOomFault(task_id=12, attempts=(1,)),),
    stragglers=(Straggler(factor=2.0, node=1),),
    crash_probability=0.02,
    seed=13,
)

GOLDEN_RETRY_POLICY = RetryPolicy(
    max_attempts=3,
    backoff_base=0.05,
    backoff_jitter=0.5,
)

#: Fault plan for the 10^4-task scale cells.  Unlike the small-matrix
#: plan there is no node loss: without lineage recovery a dead node's
#: blocks fail most of a 10^4-task DAG transitively, which would anchor
#: the fixture on failure bookkeeping instead of large-DAG dispatch.
#: Targeted crashes plus a low-rate probabilistic stream and a straggler
#: keep retry/backoff and jittered re-execution in the digest while the
#: DAG still completes.
SCALE_FAULT_PLAN = FaultPlan(
    task_crashes=(
        TaskCrash(task_id=7, stage=Stage.SERIAL_FRACTION, attempts=(1,)),
        TaskCrash(task_id=1042, stage=Stage.DESERIALIZATION, attempts=(1, 2)),
    ),
    stragglers=(Straggler(factor=1.5, node=1),),
    crash_probability=0.003,
    seed=17,
)


@dataclass(frozen=True)
class GoldenCase:
    """One cell of the golden matrix."""

    key: str
    workload: str
    policy: SchedulingPolicy
    faults: bool
    build: Callable[[Runtime], object]
    config: RuntimeConfig

    def run(self) -> WorkflowResult:
        """Execute the cell's workflow and return the result."""
        runtime = Runtime(self.config)
        self.build(runtime)
        return runtime.run()


def _workloads() -> dict[str, tuple[Callable[[Runtime], object], dict]]:
    datasets = paper_datasets()

    def matmul4(runtime: Runtime):
        return MatmulWorkflow(datasets["matmul_8gb"], grid=4).build(runtime)

    def kmeans40(runtime: Runtime):
        return KMeansWorkflow(
            datasets["kmeans_10gb"], grid_rows=40, n_clusters=10, iterations=3
        ).build(runtime)

    def wide16(runtime: Runtime):
        return GeneratedDagWorkflow(
            width=16, depth=4, fan_in=3, block_mb=4.0, seed=7
        ).build(runtime)

    def scale10k(runtime: Runtime):
        return GeneratedDagWorkflow(
            width=50, depth=200, fan_in=2, block_mb=0.25, seed=21
        ).build(runtime)

    return {
        "matmul4": (
            matmul4,
            dict(
                storage=StorageKind.LOCAL,
                use_gpu=True,
                comm_overlap=True,
                warmup_overhead=0.01,
            ),
        ),
        "kmeans40": (
            kmeans40,
            dict(
                storage=StorageKind.SHARED,
                use_gpu=True,
                gpu_overflow_to_cpu=True,
            ),
        ),
        "wide16": (
            wide16,
            dict(
                storage=StorageKind.LOCAL,
                use_gpu=False,
                jitter_sigma=0.02,
                jitter_seed=123,
            ),
        ),
        "scale10k": (
            scale10k,
            dict(
                storage=StorageKind.LOCAL,
                use_gpu=False,
            ),
        ),
    }


#: Per-workload fault-plan overrides for the faulted cells; workloads
#: not listed use :data:`GOLDEN_FAULT_PLAN`.
WORKLOAD_FAULT_PLANS = {
    "scale10k": SCALE_FAULT_PLAN,
}


def golden_cases() -> list[GoldenCase]:
    """Every cell of the {workload x scheduler x faults} matrix."""
    cases = []
    for workload, (build, overrides) in _workloads().items():
        plan = WORKLOAD_FAULT_PLANS.get(workload, GOLDEN_FAULT_PLAN)
        for policy in POLICIES:
            for faults in (False, True):
                config = RuntimeConfig(
                    scheduling=policy,
                    fault_plan=plan if faults else None,
                    retry_policy=GOLDEN_RETRY_POLICY if faults else None,
                    **overrides,
                )
                key = f"{workload}|{policy.value}|{'faults' if faults else 'clean'}"
                cases.append(
                    GoldenCase(
                        key=key,
                        workload=workload,
                        policy=policy,
                        faults=faults,
                        build=build,
                        config=config,
                    )
                )
    return cases
