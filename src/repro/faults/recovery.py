"""Lineage-based recovery: checkpoints, recovery metrics, speculation.

PR 2's fault layer retries *running* attempts; this module adds the
pieces that let the simulated runtime survive losing blocks produced by
already-*completed* tasks, the way lineage-based task runtimes (Spark,
Dask, Ray) do:

* **Lineage recomputation** — when a task's input block resolves to a
  dead node, the executor walks the :class:`~repro.runtime.dag.TaskGraph`
  backwards, resurrects the minimal set of committed ancestors whose
  outputs are lost, and re-enqueues them before the consumer runs.  The
  walk terminates at workflow inputs (durable by definition) and at
  checkpointed refs.  Opt in with
  ``RetryPolicy(recover_lost_blocks=True)``.
* **:class:`CheckpointPolicy`** — barrier/interval checkpointing of
  block refs to shared storage (GPFS in the Minotauro preset) with a
  modeled write cost, cutting the recovery depth at the last checkpoint.
* **Speculative re-execution** — when a running attempt exceeds
  ``speculation_factor x`` the running median duration of its task type,
  a backup copy launches on another node; the first finisher wins and
  the loser is cancelled (outcome
  :data:`~repro.tracing.ATTEMPT_SPECULATION_CANCELLED`).

:class:`RecoveryMetrics` aggregates what recovery cost: blocks lost,
tasks resurrected, recomputation time, checkpoint overhead, and
speculation wins/losses.  It is surfaced on
:class:`~repro.runtime.WorkflowResult` and mirrored (trace-derived)
through :func:`~repro.tracing.fault_metrics`.  See ``docs/faults.md``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from repro.faults.plan import FaultError


class SpeculationCancelledError(FaultError):
    """A speculative race lost: a sibling attempt committed first.

    Not a real failure — the task succeeded through the winning attempt
    — so the retry path never fires for this outcome; the attempt is
    recorded with outcome ``"speculation_cancelled"`` and its
    core-seconds count as wasted (speculation's cost).
    """

    kind = "speculation_cancelled"

    def __init__(self, task_id: int) -> None:
        self.task_id = task_id
        super().__init__(
            f"task {task_id}: speculative race lost, attempt cancelled"
        )


@dataclass(frozen=True)
class CheckpointPolicy:
    """Barrier checkpointing of task outputs to shared storage.

    Every ``every_levels``-th DAG level acts as a checkpoint barrier: a
    task on such a level pays an extra write of its output bytes through
    the cluster network and the shared-disk write channel (the modeled
    GPFS cost), and its output refs become *durable* — a later node
    failure cannot lose them, so lineage recomputation stops there.

    ``every_levels=1`` checkpoints every level (maximum overhead, minimum
    recovery depth); larger intervals trade recovery depth for write
    cost.  ``task_types`` restricts checkpointing to the named types
    (``None`` = all types), e.g. only the reduction barriers of an
    iterative algorithm.
    """

    #: Checkpoint every n-th DAG level (levels k*n - 1 for k = 1, 2, ...).
    every_levels: int = 1
    #: Only checkpoint these task types (``None`` = every type).
    task_types: frozenset[str] | None = None

    def __post_init__(self) -> None:
        if self.every_levels < 1:
            raise ValueError("every_levels must be >= 1")
        if self.task_types is not None:
            object.__setattr__(self, "task_types", frozenset(self.task_types))

    def applies(self, task_type: str, level: int) -> bool:
        """Whether a task of ``task_type`` on ``level`` checkpoints."""
        if (level + 1) % self.every_levels != 0:
            return False
        return self.task_types is None or task_type in self.task_types

    # -------------------------------------------------------- (de)serialise
    def to_dict(self) -> dict:
        """JSON-ready representation (:meth:`from_dict` inverse)."""
        return {
            "every_levels": self.every_levels,
            "task_types": (
                sorted(self.task_types) if self.task_types is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CheckpointPolicy":
        """Build a policy from :meth:`to_dict` output (or hand-written JSON)."""
        task_types = payload.get("task_types")
        return cls(
            every_levels=payload.get("every_levels", 1),
            task_types=frozenset(task_types) if task_types is not None else None,
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialise the policy as JSON."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CheckpointPolicy":
        """Parse a policy from a JSON string."""
        return cls.from_dict(json.loads(text))


@dataclass
class RecoveryMetrics:
    """What lineage recovery, checkpointing, and speculation cost one run.

    All counters are zero for a fault-free execution (and for any run
    with recovery features disabled), so the object is defined for every
    :class:`~repro.runtime.WorkflowResult`.
    """

    #: Output blocks destroyed by node failures (checkpointed refs are
    #: durable and never counted).
    blocks_lost: int = 0
    #: Committed tasks re-enqueued because their outputs were lost.
    tasks_resurrected: int = 0
    #: Simulated seconds spent in the successful recomputation attempts
    #: of resurrected tasks (the recovery time the makespan absorbed).
    recompute_seconds: float = 0.0
    #: Checkpoint writes performed.
    checkpoint_writes: int = 0
    #: Simulated seconds spent writing checkpoints to shared storage.
    checkpoint_write_seconds: float = 0.0
    #: Speculative backup attempts launched.
    speculative_launches: int = 0
    #: Races a speculative backup won (backup committed the task).
    speculation_wins: int = 0
    #: Races a speculative backup lost (backup cancelled).
    speculation_losses: int = 0

    @property
    def any_recovery(self) -> bool:
        """Whether the run exercised any recovery machinery at all."""
        return any(value != 0 for value in asdict(self).values())

    def to_dict(self) -> dict:
        """JSON-ready representation (used by ``repro bench --suite faults``)."""
        return asdict(self)
