"""Golden-trace equivalence suite.

Every cell of the {workload x scheduler x faults} matrix in
``tests/golden_matrix.py`` must reproduce the reference fingerprint
checked in at ``tests/golden/simulator_digests.json`` — task dispatch
order, per-stage times, attempt histories, makespan, and failed-task
sets, bit for bit.

The fixtures were recorded on the pre-optimisation executor (see
``scripts/record_golden_traces.py``), so these tests are the proof that
the fast dispatch path — incremental ready sets, the per-node locality
index, memoized cost-model evaluation — is behaviour-preserving.  A
digest mismatch here means execution semantics changed; re-record the
fixtures only when that change is intentional.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.tracing import trace_canonical_lines, trace_digest
from tests.golden_matrix import golden_cases

FIXTURE_PATH = Path(__file__).parent / "golden" / "simulator_digests.json"

CASES = golden_cases()


@pytest.fixture(scope="module")
def recorded() -> dict:
    return json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))


def test_fixture_covers_full_matrix(recorded):
    assert sorted(recorded) == sorted(case.key for case in CASES)


@pytest.mark.parametrize("case", CASES, ids=lambda case: case.key)
def test_trace_matches_reference(case, recorded):
    reference = recorded[case.key]
    result = case.run()
    digest = trace_digest(result.trace, result.failed_task_ids)
    if digest == reference["digest"]:
        return
    # Rebuild enough context for an actionable failure message: the
    # digest alone cannot say *what* diverged.
    lines = trace_canonical_lines(result.trace, result.failed_task_ids)
    summary = {
        "num_tasks": len(result.trace.tasks),
        "num_stages": len(result.trace.stages),
        "num_attempts": len(result.trace.attempts),
        "makespan": repr(result.trace.makespan),
        "task_order_head": [t.task_id for t in result.trace.tasks[:64]],
    }
    expectations = {
        "num_tasks": reference["num_tasks"],
        "num_stages": reference["num_stages"],
        "num_attempts": reference["num_attempts"],
        "makespan": reference["makespan"],
        "task_order_head": reference["task_order"],
    }
    diverging = {
        field: (expectations[field], summary[field])
        for field in summary
        if summary[field] != expectations[field]
    }
    pytest.fail(
        f"{case.key}: trace digest diverged from the recorded reference\n"
        f"  expected {reference['digest']}\n"
        f"  got      {digest}\n"
        f"  differing summary fields (expected, got): {diverging or 'none — '}"
        f"{'' if diverging else 'timing-only divergence inside records'}\n"
        f"  first canonical lines: {lines[:3]}"
    )


def test_faulted_cells_really_inject_failures(recorded):
    # Guard against the matrix silently degenerating: the faulted cells
    # must carry attempt records (i.e. the plan actually fired) so the
    # digests keep covering the recovery path.
    faulted = [reference for key, reference in recorded.items() if "faults" in key]
    assert faulted and all(ref["num_attempts"] > 0 for ref in faulted)
