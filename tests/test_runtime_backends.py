"""Tests for the in-process and simulated executors."""

import numpy as np
import pytest

from repro.hardware import (
    GpuOutOfMemoryError,
    HostOutOfMemoryError,
    StorageKind,
    minotauro,
)
from repro.perfmodel import TaskCost
from repro.runtime import Runtime, RuntimeConfig, SchedulingPolicy
from repro.runtime.runtime import Backend
from repro.tracing import Stage


def _cost(
    serial=1e9,
    parallel=0.0,
    items=0.0,
    in_bytes=10**6,
    out_bytes=10**5,
    gpu_mem=0,
    host_mem=0,
):
    return TaskCost(
        serial_flops=serial,
        parallel_flops=parallel,
        parallel_items=items,
        arithmetic_intensity=10.0,
        input_bytes=in_bytes,
        output_bytes=out_bytes,
        host_device_bytes=(in_bytes + out_bytes) if parallel else 0,
        gpu_memory_bytes=gpu_mem,
        host_memory_bytes=host_mem,
    )


class TestInProcessExecutor:
    def test_executes_real_functions_in_dependency_order(self):
        rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        x = rt.register_input(8, value=np.array([1.0, 2.0]))
        (doubled,) = rt.submit(name="double", inputs=[x], fn=lambda a: a * 2)
        (squared,) = rt.submit(name="square", inputs=[doubled], fn=lambda a: a**2)
        result = rt.run()
        np.testing.assert_array_equal(result.value_of(squared), [4.0, 16.0])

    def test_multi_output_binding(self):
        rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        x = rt.register_input(8, value=5)
        lo, hi = rt.submit(
            name="split",
            inputs=[x],
            fn=lambda a: (a - 1, a + 1),
            n_outputs=2,
            output_bytes=[8, 8],
        )
        result = rt.run()
        assert result.value_of(lo) == 4
        assert result.value_of(hi) == 6

    def test_wrong_output_arity_raises(self):
        rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        x = rt.register_input(8, value=1)
        rt.submit(
            name="bad", inputs=[x], fn=lambda a: a, n_outputs=2, output_bytes=[8, 8]
        )
        with pytest.raises(ValueError, match="declared 2 outputs"):
            rt.run()

    def test_task_without_function_rejected(self):
        rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        x = rt.register_input(8, value=1)
        rt.submit(name="nofn", inputs=[x])
        with pytest.raises(ValueError, match="no function"):
            rt.run()

    def test_trace_has_one_record_per_task(self):
        rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        x = rt.register_input(8, value=1)
        (y,) = rt.submit(name="inc", inputs=[x], fn=lambda a: a + 1)
        rt.submit(name="inc", inputs=[y], fn=lambda a: a + 1)
        result = rt.run()
        assert len(result.trace.tasks) == 2


class TestSimulatedExecutor:
    def _run(self, n_tasks=8, use_gpu=False, cost=None, **config_overrides):
        config = RuntimeConfig(use_gpu=use_gpu, **config_overrides)
        rt = Runtime(config)
        for i in range(n_tasks):
            ref = rt.register_input(10**6, name=f"in{i}")
            rt.submit(name="work", inputs=[ref], cost=cost or _cost())
        return rt.run()

    def test_all_tasks_complete(self):
        result = self._run(n_tasks=20)
        assert len(result.trace.tasks) == 20
        assert result.makespan > 0

    def test_deterministic_across_runs(self):
        a = self._run(n_tasks=20)
        b = self._run(n_tasks=20)
        assert a.makespan == b.makespan

    def test_parallelism_bounded_by_cores(self):
        # 200 serial 1-second tasks on 128 cores need at least two waves.
        cost = _cost(serial=16e9, in_bytes=0, out_bytes=0)
        result = self._run(n_tasks=200, cost=cost)
        assert result.makespan >= 2.0

    def test_gpu_mode_limits_parallel_tasks_to_gpus(self):
        # GPU-eligible 1-second tasks: 32 devices -> 64 tasks need 2 waves;
        # on CPUs the same 64 tasks fit one 128-core wave.
        gpu_cost = TaskCost(
            serial_flops=0.0,
            parallel_flops=420e9 * 10,
            parallel_items=1e12,
            arithmetic_intensity=1e9,
            input_bytes=0,
            output_bytes=0,
            host_device_bytes=0,
            gpu_memory_bytes=1,
        )
        gpu_result = self._run(n_tasks=64, use_gpu=True, cost=gpu_cost)
        waves = gpu_result.makespan / 10.0
        assert waves >= 2.0

    def test_gpu_oom_raised_before_simulation(self):
        cost = _cost(parallel=1e9, items=1e6, gpu_mem=13 * 1024**3)
        with pytest.raises(GpuOutOfMemoryError):
            self._run(use_gpu=True, cost=cost)

    def test_gpu_oom_not_raised_in_cpu_mode(self):
        cost = _cost(parallel=1e9, items=1e6, gpu_mem=13 * 1024**3)
        result = self._run(use_gpu=False, cost=cost)
        assert len(result.trace.tasks) == 8

    def test_host_oom_raised_in_both_modes(self):
        cost = _cost(host_mem=200 * 1024**3)
        with pytest.raises(HostOutOfMemoryError):
            self._run(use_gpu=False, cost=cost)

    def test_stage_records_cover_figure4(self):
        cost = _cost(parallel=1e10, items=1e7, gpu_mem=10**7)
        result = self._run(n_tasks=4, use_gpu=True, cost=cost)
        stages = {r.stage for r in result.trace.stages}
        assert Stage.DESERIALIZATION in stages
        assert Stage.SERIAL_FRACTION in stages
        assert Stage.PARALLEL_FRACTION in stages
        assert Stage.CPU_GPU_COMM in stages
        assert Stage.SERIALIZATION in stages

    def test_cpu_tasks_have_no_comm_stage(self):
        result = self._run(n_tasks=4, use_gpu=False)
        assert not [r for r in result.trace.stages if r.stage is Stage.CPU_GPU_COMM]

    def test_single_task_runs_without_distribution_overhead(self):
        # DAG width 1 => no (de-)serialization stages (the paper's 1x1 case).
        config = RuntimeConfig()
        rt = Runtime(config)
        ref = rt.register_input(10**9)
        rt.submit(name="solo", inputs=[ref], cost=_cost(in_bytes=10**9))
        result = rt.run()
        stages = {r.stage for r in result.trace.stages}
        assert Stage.DESERIALIZATION not in stages
        assert Stage.SERIALIZATION not in stages

    def test_local_storage_faster_than_shared_for_many_readers(self):
        cost = _cost(serial=1e6, in_bytes=50 * 10**6, out_bytes=0)
        local = self._run(n_tasks=128, cost=cost, storage=StorageKind.LOCAL)
        shared = self._run(n_tasks=128, cost=cost, storage=StorageKind.SHARED)
        # 8 local disks aggregate 4 GB/s vs 2 GB/s GPFS.
        assert local.makespan < shared.makespan

    def test_scheduling_policies_both_complete(self):
        for policy in SchedulingPolicy:
            result = self._run(n_tasks=16, scheduling=policy)
            assert len(result.trace.tasks) == 16

    def test_locality_policy_no_slower_dispatch_free_run(self):
        # Sanity: both policies execute the same DAG with the same task set.
        gen = self._run(n_tasks=16, scheduling=SchedulingPolicy.GENERATION_ORDER)
        loc = self._run(n_tasks=16, scheduling=SchedulingPolicy.DATA_LOCALITY)
        assert len(gen.trace.tasks) == len(loc.trace.tasks)

    def test_dependencies_sequence_execution(self):
        rt = Runtime(RuntimeConfig())
        ref = rt.register_input(0)
        cost = _cost(serial=16e9, in_bytes=0, out_bytes=0)  # 1 s serial
        (a,) = rt.submit(name="first", inputs=[ref], cost=cost)
        rt.submit(name="second", inputs=[a], cost=cost)
        result = rt.run()
        # Chain of two 1-second tasks cannot finish in under 2 seconds.
        assert result.makespan >= 2.0

    def test_outputs_move_home_to_executing_node(self):
        rt = Runtime(RuntimeConfig(storage=StorageKind.LOCAL))
        ref = rt.register_input(10**6, home_node=5)
        (out,) = rt.submit(name="w", inputs=[ref], cost=_cost())
        rt.run()
        assert 0 <= out.home_node < 8

    def test_trace_invariants_hold(self):
        from tests.trace_invariants import assert_trace_invariants

        result = self._run(n_tasks=40)
        assert_trace_invariants(result.trace)

    def test_trace_invariants_hold_on_gpu(self):
        from tests.trace_invariants import assert_trace_invariants

        cost = _cost(parallel=1e10, items=1e6, gpu_mem=10**6)
        result = self._run(n_tasks=40, use_gpu=True, cost=cost)
        assert_trace_invariants(result.trace)
