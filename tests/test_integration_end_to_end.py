"""End-to-end integration tests crossing multiple subsystems."""

import io

import numpy as np
import pytest

from repro.algorithms import KMeansWorkflow, LinearRegressionWorkflow
from repro.core.advisor import WorkflowAdvisor
from repro.core.persistence import load_result, save_result, to_jsonable
from repro.data import DatasetSpec, paper_datasets
from repro.hardware import StorageKind
from repro.runtime import Runtime, RuntimeConfig, SchedulingPolicy
from repro.tracing import (
    decompose_overheads,
    dump_trace,
    gantt,
    load_trace,
    parallel_task_metrics,
    user_code_metrics,
)


class TestTracePipeline:
    """Run -> export -> reload -> analyse must be lossless."""

    @pytest.fixture(scope="class")
    def result(self):
        rt = Runtime(RuntimeConfig(use_gpu=True))
        KMeansWorkflow(
            paper_datasets()["kmeans_10gb"], grid_rows=32, n_clusters=10,
            iterations=2,
        ).build(rt)
        return rt.run()

    def test_metrics_survive_roundtrip(self, result):
        buffer = io.StringIO()
        dump_trace(result.trace, buffer)
        buffer.seek(0)
        reloaded = load_trace(buffer)
        original = user_code_metrics(result.trace)["partial_sum"]
        restored = user_code_metrics(reloaded)["partial_sum"]
        assert restored == original
        assert parallel_task_metrics(reloaded, {"partial_sum"}).level_wall_times == \
            parallel_task_metrics(result.trace, {"partial_sum"}).level_wall_times

    def test_decomposition_survives_roundtrip(self, result):
        buffer = io.StringIO()
        dump_trace(result.trace, buffer)
        buffer.seek(0)
        reloaded = load_trace(buffer)
        assert decompose_overheads(reloaded) == decompose_overheads(result.trace)

    def test_gantt_renders_from_reloaded_trace(self, result):
        buffer = io.StringIO()
        dump_trace(result.trace, buffer)
        buffer.seek(0)
        text = gantt(load_trace(buffer), width=40, max_rows=5)
        assert "Gantt" in text


class TestAdvisorOverNewWorkloads:
    def test_advisor_recommends_for_linear_regression(self):
        dataset = DatasetSpec("lin_e2e", rows=10_000_000, cols=100)
        advisor = WorkflowAdvisor()
        recommendation = advisor.recommend(
            lambda grid: LinearRegressionWorkflow(dataset, grid_rows=grid),
            grids=(64, 8),
            storages=(StorageKind.LOCAL,),
            policies=(SchedulingPolicy.GENERATION_ORDER,),
        )
        assert recommendation.best.parallel_task_time is not None
        labels = {c.label for c in recommendation.candidates}
        assert len(labels) == len(recommendation.candidates)

    def test_hybrid_plan_feeds_runtime_config(self):
        dataset = DatasetSpec("lin_e2e2", rows=10_000_000, cols=100)
        workflow = LinearRegressionWorkflow(dataset, grid_rows=64)
        plan = WorkflowAdvisor().plan_hybrid(workflow)
        rt = Runtime(RuntimeConfig(use_gpu=True, gpu_task_types=plan))
        LinearRegressionWorkflow(dataset, grid_rows=64).build(rt)
        result = rt.run()
        gpu_types = {t.task_type for t in result.trace.tasks if t.used_gpu}
        assert gpu_types == set(plan)


class TestResultPersistenceFlow:
    def test_figure_save_load_matches_in_memory(self, tmp_path):
        from repro.core.experiments import run_fig8

        result = run_fig8(grids=(4, 2))
        path = save_result(result, tmp_path / "fig8.json")
        loaded = load_result(path)["result"]
        in_memory = to_jsonable(result)
        assert loaded == in_memory

    def test_scheduler_comparison_recorded(self, tmp_path):
        datasets = paper_datasets()
        record = {}
        for policy in SchedulingPolicy:
            rt = Runtime(RuntimeConfig(scheduling=policy))
            KMeansWorkflow(
                datasets["kmeans_10gb"], grid_rows=32, n_clusters=10,
                iterations=1,
            ).build(rt)
            record[policy.value] = rt.run().makespan
        path = save_result(record, tmp_path / "schedulers.json")
        loaded = load_result(path)["result"]
        assert set(loaded) == {p.value for p in SchedulingPolicy}
        assert all(v > 0 for v in loaded.values())


class TestLifoVsFifoBehaviour:
    def test_lifo_prefers_new_tasks_in_trace_order(self):
        # Build two waves of tasks where wave-2 tasks are generated last;
        # with more tasks than cores, LIFO should start late tasks before
        # some early ones, while FIFO preserves generation order.
        from repro.perfmodel import TaskCost

        def build(policy):
            rt = Runtime(RuntimeConfig(scheduling=policy))
            cost = TaskCost(
                serial_flops=16e9, parallel_flops=0, parallel_items=0,
                arithmetic_intensity=0, input_bytes=0, output_bytes=0,
                host_device_bytes=0, gpu_memory_bytes=0,
            )
            for i in range(200):
                ref = rt.register_input(0, name=f"in{i}")
                rt.submit(name="w", inputs=[ref], cost=cost)
            result = rt.run()
            start_order = [
                t.task_id for t in sorted(result.trace.tasks, key=lambda t: t.start)
            ]
            return start_order

        fifo_order = build(SchedulingPolicy.GENERATION_ORDER)
        lifo_order = build(SchedulingPolicy.LIFO)
        assert fifo_order == sorted(fifo_order)
        assert lifo_order != sorted(lifo_order)


class TestRealAndSimulatedAgree:
    def test_same_dag_from_both_backends(self):
        from repro.runtime.runtime import Backend

        dataset = DatasetSpec("agree", rows=120, cols=6)

        def graph_shape(backend):
            rt = Runtime(RuntimeConfig(backend=backend))
            KMeansWorkflow(dataset, grid_rows=4, n_clusters=3, iterations=2).build(
                rt, materialize=backend is Backend.IN_PROCESS
            )
            return (rt.graph.num_tasks, rt.graph.width, rt.graph.height)

        assert graph_shape(Backend.IN_PROCESS) == graph_shape(Backend.SIMULATED)
