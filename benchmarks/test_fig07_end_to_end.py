"""Benchmarks E3/E4 — Figure 7: end-to-end analysis, all four panels.

Paper shapes per panel: parallel-fraction and user-code speedups scale
with the block size for Matmul but stay flat for K-means (O1);
parallel-task speedups peak when (de-)serialization is fully parallel and
never at the coarsest grain (O2); GPU OOM truncates the large datasets
(32 GB Matmul beyond the 4x4 grid, 100 GB K-means beyond 16x1).
"""

from repro.core.experiments import run_fig7_for
from repro.core.experiments.fig7 import KMEANS_GRIDS, MATMUL_GRIDS
from repro.core.observations import check_o1, check_o2


def test_fig7_matmul_8gb(once):
    series = once(run_fig7_for, "matmul", "matmul_8gb", MATMUL_GRIDS)
    print()
    print(series.render())
    speedups = series.speedup_by_block("user_code_speedup")
    valid = {k: v for k, v in speedups.items() if v is not None}
    assert max(valid.values()) / min(valid.values()) > 2.0  # scales with block
    assert series.points[-1].status == "gpu_oom"  # 8192 MB block


def test_fig7_matmul_32gb(once):
    series = once(run_fig7_for, "matmul", "matmul_32gb", MATMUL_GRIDS)
    print()
    print(series.render())
    statuses = {p.grid_label: p.status for p in series.points}
    assert statuses["4 x 4"] == "ok"
    assert statuses["2 x 2"] == "gpu_oom"


def test_fig7_kmeans_10gb(once):
    series = once(run_fig7_for, "kmeans", "kmeans_10gb", KMEANS_GRIDS)
    print()
    print(series.render())
    print()
    print(series.chart())
    o1 = check_o1(series)
    o2 = check_o2(series)
    print(o1)
    print(o2)
    assert o1.passed
    assert o2.passed


def test_fig7_kmeans_100gb(once):
    series = once(run_fig7_for, "kmeans", "kmeans_100gb", KMEANS_GRIDS)
    print()
    print(series.render())
    statuses = {p.grid_label: p.status for p in series.points}
    assert statuses["16 x 1"] == "ok"
    assert statuses["8 x 1"] == "gpu_oom"
    # §5.1.3: larger dataset -> higher stage-level GPU speedups.
    small = run_fig7_for("kmeans", "kmeans_10gb", (64,))
    large = next(p for p in series.points if p.grid_label == "64 x 1")
    assert (
        large.parallel_fraction_speedup
        > small.points[0].parallel_fraction_speedup
    )
