"""Task-based operations over distributed arrays.

dislib exposes array operations (matmul, transpose, elementwise kernels,
reductions) that all decompose into per-block tasks; this module provides
the same vocabulary over :class:`~repro.arrays.DistributedArray`, each
operation submitting tasks with both a real NumPy implementation (for the
in-process backend) and a :class:`~repro.perfmodel.TaskCost` (for the
simulated backend).  The composite data-science pipeline example builds
on these.
"""

from __future__ import annotations

import numpy as np

from repro.arrays.dsarray import DistributedArray
from repro.perfmodel import TaskCost
from repro.runtime import DataRef, Runtime, task

_ELEM = 8


def elementwise_cost(
    m: int, n: int, flops_per_element: float = 1.0, n_inputs: int = 1
) -> TaskCost:
    """Cost of a fully parallel elementwise kernel over an ``m x n`` block.

    Memory-bound by construction (like ``add_func``): the arithmetic
    intensity is the per-element FLOP count over the streamed bytes.
    """
    elements = m * n
    flops = flops_per_element * elements
    in_bytes = n_inputs * _ELEM * elements
    out_bytes = _ELEM * elements
    return TaskCost(
        serial_flops=0.0,
        parallel_flops=flops,
        parallel_items=float(elements),
        arithmetic_intensity=flops / (in_bytes + out_bytes),
        input_bytes=in_bytes,
        output_bytes=out_bytes,
        host_device_bytes=in_bytes + out_bytes,
        gpu_memory_bytes=in_bytes + out_bytes,
        host_memory_bytes=2 * (in_bytes + out_bytes),
    )


def reduction_cost(m: int, n: int, out_elements: int) -> TaskCost:
    """Cost of a per-block reduction producing ``out_elements`` values."""
    elements = m * n
    flops = float(2 * elements)
    in_bytes = _ELEM * elements
    out_bytes = _ELEM * out_elements
    return TaskCost(
        serial_flops=0.0,
        parallel_flops=flops,
        parallel_items=float(elements),
        arithmetic_intensity=flops / (in_bytes + out_bytes),
        input_bytes=in_bytes,
        output_bytes=out_bytes,
        host_device_bytes=in_bytes + out_bytes,
        gpu_memory_bytes=in_bytes + out_bytes,
        host_memory_bytes=2 * in_bytes,
    )


@task(returns=1, name="block_scale")
def block_scale(block: np.ndarray, factor: float) -> np.ndarray:
    """Multiply a block by a scalar."""
    return block * factor


@task(returns=1, name="block_add")
def block_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Add two blocks."""
    return a + b


@task(returns=1, name="block_transpose")
def block_transpose(block: np.ndarray) -> np.ndarray:
    """Transpose one block."""
    return block.T


@task(returns=1, name="block_colsum")
def block_colsum(block: np.ndarray) -> np.ndarray:
    """Per-block column sums plus a row count, shape ``(1, n + 1)``."""
    sums = block.sum(axis=0)
    return np.concatenate([sums, [block.shape[0]]])[None, :]


@task(returns=1, name="merge_colsums")
def merge_colsums(*partials: np.ndarray) -> np.ndarray:
    """Combine per-block column sums (one column stripe) into means."""
    total = np.sum(np.vstack(partials), axis=0)
    return total[:-1] / max(total[-1], 1.0)


@task(returns=1, name="concat_means")
def concat_means(*stripe_means: np.ndarray) -> np.ndarray:
    """Concatenate per-stripe means into the full feature-means vector."""
    return np.concatenate(stripe_means)


@task(returns=1, name="block_center")
def block_center(block: np.ndarray, means: np.ndarray, col_offset: int = 0) -> np.ndarray:
    """Subtract the block's slice of the global column means."""
    stripe = means[col_offset : col_offset + block.shape[1]]
    return block - stripe[None, :]


def matmul_grids(
    runtime: Runtime,
    a_refs: list[list[DataRef]],
    b_refs: list[list[DataRef]],
    a_block: tuple[int, int],
    b_block: tuple[int, int],
) -> list[list[DataRef]]:
    """General blocked matmul over two ref grids: ``C = A @ B``.

    ``a_refs`` is a ``k x q`` grid of ``(m x p)`` blocks and ``b_refs`` a
    ``q x l`` grid of ``(p x n)`` blocks; the result is a ``k x l`` grid.
    Partial products reduce through a binary add tree, the dislib shape
    of the paper's Figure 6b, generalised to rectangular grids.
    """
    from repro.algorithms.matmul import add_cost, add_func, matmul_cost, matmul_func

    k = len(a_refs)
    q = len(a_refs[0]) if a_refs else 0
    if any(len(row) != q for row in a_refs):
        raise ValueError("a_refs is not rectangular")
    if len(b_refs) != q:
        raise ValueError(
            f"inner grid dimensions differ: A has {q} block columns, "
            f"B has {len(b_refs)} block rows"
        )
    l = len(b_refs[0]) if b_refs else 0
    if any(len(row) != l for row in b_refs):
        raise ValueError("b_refs is not rectangular")
    m, p = a_block
    p2, n = b_block
    if p != p2:
        raise ValueError(f"inner block dimensions differ: {p} vs {p2}")
    mm_cost = matmul_cost(m, p, n)
    ad_cost = add_cost(m, n)
    result: list[list[DataRef]] = []
    with runtime:
        for i in range(k):
            row: list[DataRef] = []
            for j in range(l):
                partials = [
                    matmul_func(a_refs[i][x], b_refs[x][j], _cost=mm_cost)
                    for x in range(q)
                ]
                while len(partials) > 1:
                    next_round = [
                        add_func(left, right, _cost=ad_cost)
                        for left, right in zip(partials[::2], partials[1::2])
                    ]
                    if len(partials) % 2:
                        next_round.append(partials[-1])
                    partials = next_round
                row.append(partials[0])
            result.append(row)
    return result


def scale(runtime: Runtime, array: DistributedArray, factor: float) -> list[list[DataRef]]:
    """Elementwise scalar multiply; returns the output block grid."""
    m, n = array.blocking.block.m, array.blocking.block.n
    cost = elementwise_cost(m, n, flops_per_element=1.0)
    k, l = array.grid_shape
    with runtime:
        return [
            [block_scale(array.block(i, j), factor, _cost=cost) for j in range(l)]
            for i in range(k)
        ]


def add(
    runtime: Runtime, a: DistributedArray, b: DistributedArray
) -> list[list[DataRef]]:
    """Elementwise addition of two identically blocked arrays."""
    if a.grid_shape != b.grid_shape or a.shape != b.shape:
        raise ValueError("arrays must share shape and blocking")
    m, n = a.blocking.block.m, a.blocking.block.n
    cost = elementwise_cost(m, n, flops_per_element=1.0, n_inputs=2)
    k, l = a.grid_shape
    with runtime:
        return [
            [
                block_add(a.block(i, j), b.block(i, j), _cost=cost)
                for j in range(l)
            ]
            for i in range(k)
        ]


def transpose(runtime: Runtime, array: DistributedArray) -> list[list[DataRef]]:
    """Blocked transpose: transpose each block and flip the grid."""
    m, n = array.blocking.block.m, array.blocking.block.n
    cost = elementwise_cost(m, n, flops_per_element=0.5)
    k, l = array.grid_shape
    with runtime:
        transposed = [
            [block_transpose(array.block(i, j), _cost=cost) for j in range(l)]
            for i in range(k)
        ]
    return [[transposed[i][j] for i in range(k)] for j in range(l)]


def column_means(runtime: Runtime, array: DistributedArray) -> DataRef:
    """Global column means: per-block partial sums, merged per column
    stripe, concatenated into the full feature vector."""
    m, n = array.blocking.block.m, array.blocking.block.n
    k, l = array.grid_shape
    partial_cost = reduction_cost(m, n, out_elements=n + 1)
    merge_cost = TaskCost(
        serial_flops=float(k * (n + 1)) * 4.0,
        parallel_flops=0.0,
        parallel_items=0.0,
        arithmetic_intensity=0.0,
        input_bytes=_ELEM * k * (n + 1),
        output_bytes=_ELEM * n,
        host_device_bytes=0,
        gpu_memory_bytes=0,
    )
    total_cols = array.blocking.dataset.cols
    concat_cost = TaskCost(
        serial_flops=float(total_cols),
        parallel_flops=0.0,
        parallel_items=0.0,
        arithmetic_intensity=0.0,
        input_bytes=_ELEM * total_cols,
        output_bytes=_ELEM * total_cols,
        host_device_bytes=0,
        gpu_memory_bytes=0,
    )
    with runtime:
        stripe_means = []
        for j in range(l):
            partials = [
                block_colsum(array.block(i, j), _cost=partial_cost)
                for i in range(k)
            ]
            stripe_means.append(merge_colsums(*partials, _cost=merge_cost))
        if l == 1:
            return stripe_means[0]
        return concat_means(*stripe_means, _cost=concat_cost)


def center(
    runtime: Runtime, array: DistributedArray, means: DataRef
) -> list[list[DataRef]]:
    """Subtract column means from every block (feature centering)."""
    m, n = array.blocking.block.m, array.blocking.block.n
    cost = elementwise_cost(m, n, flops_per_element=1.0, n_inputs=1)
    k, l = array.grid_shape
    with runtime:
        return [
            [
                block_center(
                    array.block(i, j), means, j * array.blocking.block.n,
                    _cost=cost,
                )
                for j in range(l)
            ]
            for i in range(k)
        ]
