"""Tests for predictor-driven (no-simulation) advisor recommendations."""

import pytest

from repro.algorithms import KMeansWorkflow
from repro.core.advisor import WorkflowAdvisor
from repro.core.experiments.fig11 import SamplePlan, run_fig11
from repro.core.predictor import PerformancePredictor, samples_from_columns
from repro.data import paper_datasets
from repro.hardware import StorageKind
from repro.runtime import SchedulingPolicy


@pytest.fixture(scope="module")
def fitted_predictor():
    plans = [
        SamplePlan("kmeans", dataset, grid, 10, gpu,
                   StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER)
        for dataset in ("kmeans_100mb", "kmeans_10gb")
        for grid in (128, 64, 32, 16, 8, 4)
        for gpu in (False, True)
    ]
    design = run_fig11(plans)
    return PerformancePredictor().fit(samples_from_columns(design.columns))


@pytest.fixture(scope="module")
def advisor():
    return WorkflowAdvisor()


def _family(grid):
    return KMeansWorkflow(
        paper_datasets()["kmeans_10gb"], grid_rows=grid, n_clusters=10,
        iterations=3,
    )


class TestLearnedRecommendation:
    def test_ranking_sorted_by_prediction(self, advisor, fitted_predictor):
        ranking = advisor.recommend_learned(
            _family, grids=(64, 16, 4), predictor=fitted_predictor, use_gpu=False
        )
        times = [t for _g, t in ranking]
        assert times == sorted(times)
        assert {g for g, _t in ranking} == {64, 16, 4}

    def test_agrees_with_simulation_on_the_winner(self, advisor, fitted_predictor):
        grids = (128, 16, 2)
        learned = advisor.recommend_learned(
            _family, grids=grids, predictor=fitted_predictor, use_gpu=False
        )
        simulated = advisor.recommend(
            _family,
            grids=grids,
            processors=(False,),
            storages=(StorageKind.SHARED,),
            policies=(SchedulingPolicy.GENERATION_ORDER,),
        )
        assert learned[0][0] == simulated.best.grid

    def test_oom_grids_excluded_on_gpu(self, advisor, fitted_predictor):
        from repro.algorithms import MatmulWorkflow

        def matmul_family(grid):
            return MatmulWorkflow(paper_datasets()["matmul_8gb"], grid=grid)

        ranking = advisor.recommend_learned(
            matmul_family, grids=(4, 1), predictor=fitted_predictor, use_gpu=True
        )
        assert [g for g, _t in ranking] == [4]

    def test_predictions_positive(self, advisor, fitted_predictor):
        ranking = advisor.recommend_learned(
            _family, grids=(32,), predictor=fitted_predictor, use_gpu=True
        )
        assert ranking[0][1] > 0
