"""Regression tests: processor-sharing completion at large simulated times.

At simulated clocks around 1e4-1e5 seconds, the float residue left on a
job's remaining volume by :meth:`BandwidthResource._settle` can exceed the
absolute completion threshold while the time needed to drain it falls
below the clock's representable resolution — the completion event then
re-fires at the same instant forever.  This hit the Figure 9a sweep
(K-means with 1000 clusters simulates hours).  The fix treats a job as
done when its residue is negligible relative to its size, or when its
drain time cannot advance the clock.
"""

import pytest

from repro.sim import BandwidthResource, Simulator


class TestLargeClockCompletion:
    @pytest.mark.parametrize("start_time", [0.0, 1e4, 1e5, 1e6])
    def test_transfer_completes_at_any_clock_offset(self, start_time):
        sim = Simulator()
        resource = BandwidthResource(sim, 3.0e9, per_job_cap=2.0e9)
        done = []
        # Start the transfer deep into simulated time.
        sim.schedule(start_time, resource.submit, 39e6, lambda: done.append(sim.now))
        sim.run(until=start_time + 10.0)
        assert len(done) == 1
        assert done[0] == pytest.approx(start_time + 39e6 / 2.0e9, rel=1e-6)

    def test_interleaved_jobs_at_large_clock(self):
        sim = Simulator()
        resource = BandwidthResource(sim, 2.0e9, per_job_cap=0.25e9)
        done = []
        for i in range(16):
            sim.schedule(
                1e5 + i * 0.001, resource.submit, 1e7, lambda: done.append(sim.now)
            )
        sim.run(until=1e5 + 100.0)
        assert len(done) == 16

    def test_event_count_stays_bounded(self):
        # The livelock manifested as unbounded event processing.
        sim = Simulator()
        resource = BandwidthResource(sim, 3.0e9)
        completions = []
        for i in range(64):
            sim.schedule(
                5e4 + i * 0.01,
                resource.submit,
                8e5,
                lambda: completions.append(None),
            )
        sim.run(until=6e4)
        assert len(completions) == 64
        assert sim.processed_events < 10_000

    def test_long_chain_of_transfers_terminates(self):
        # Sequential dependent transfers pushing the clock far out.
        sim = Simulator()
        resource = BandwidthResource(sim, 1.0e9)
        count = {"n": 0}

        def next_transfer():
            count["n"] += 1
            if count["n"] < 200:
                resource.submit(5e8, next_transfer)

        resource.submit(5e8, next_transfer)
        sim.run(until=1e9)
        assert count["n"] == 200
