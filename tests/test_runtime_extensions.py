"""Tests for the comm-overlap and multi-threaded-CPU-task extensions."""

import pytest

from repro.algorithms import KMeansWorkflow, MatmulWorkflow
from repro.data import paper_datasets
from repro.hardware import minotauro
from repro.perfmodel import CostModel
from repro.runtime import Runtime, RuntimeConfig
from repro.tracing import user_code_metrics


@pytest.fixture(scope="module")
def datasets():
    return paper_datasets()


def _matmul_metrics(datasets, **config):
    rt = Runtime(RuntimeConfig(use_gpu=True, **config))
    MatmulWorkflow(datasets["matmul_8gb"], grid=8).build(rt)
    return user_code_metrics(rt.run().trace)


class TestCommOverlap:
    def test_overlap_reduces_exposed_comm(self, datasets):
        plain = _matmul_metrics(datasets)["matmul_func"]
        overlapped = _matmul_metrics(datasets, comm_overlap=True)["matmul_func"]
        assert overlapped.cpu_gpu_comm < plain.cpu_gpu_comm
        assert overlapped.user_code < plain.user_code

    def test_overlap_cannot_rescue_transfer_bound_tasks(self, datasets):
        # add_func's kernel is too small to hide the transfer behind — the
        # mitigation helps only compute-heavy tasks (paper §2).
        plain = _matmul_metrics(datasets)["add_func"]
        overlapped = _matmul_metrics(datasets, comm_overlap=True)["add_func"]
        assert overlapped.user_code > 0.9 * plain.user_code

    def test_overlap_never_slower(self, datasets):
        for task_type in ("matmul_func", "add_func"):
            plain = _matmul_metrics(datasets)[task_type]
            overlapped = _matmul_metrics(datasets, comm_overlap=True)[task_type]
            assert overlapped.user_code <= plain.user_code * 1.01

    def test_overlap_without_gpu_is_noop(self, datasets):
        rt_a = Runtime(RuntimeConfig(use_gpu=False, comm_overlap=True))
        MatmulWorkflow(datasets["matmul_8gb"], grid=4).build(rt_a)
        rt_b = Runtime(RuntimeConfig(use_gpu=False, comm_overlap=False))
        MatmulWorkflow(datasets["matmul_8gb"], grid=4).build(rt_b)
        assert rt_a.run().makespan == rt_b.run().makespan


class TestCpuThreads:
    def test_thread_efficiency_curve(self):
        model = CostModel(minotauro())
        assert model.cpu_thread_efficiency(1) == 1.0
        assert model.cpu_thread_efficiency(16) < model.cpu_thread_efficiency(2)
        with pytest.raises(ValueError):
            model.cpu_thread_efficiency(0)

    def test_multithreading_speeds_up_one_task(self):
        model = CostModel(minotauro())
        from repro.algorithms.kmeans import partial_sum_cost

        cost = partial_sum_cost(10**6, 100, 100)
        single = model.parallel_fraction_time_cpu(cost, threads=1)
        multi = model.parallel_fraction_time_cpu(cost, threads=8)
        assert multi < single
        # ... but with sub-linear scaling.
        assert multi > single / 8

    def test_oversubscription_hurts_throughput(self, datasets):
        # The paper's §3.3 practice: one task per core beats fat tasks.
        def makespan(threads):
            rt = Runtime(
                RuntimeConfig(use_gpu=False, cpu_threads_per_task=threads)
            )
            KMeansWorkflow(
                datasets["kmeans_10gb"], grid_rows=128, n_clusters=100,
                iterations=1,
            ).build(rt)
            return rt.run().makespan

        assert makespan(1) < makespan(4) < makespan(16)

    def test_threads_validated(self, datasets):
        rt = Runtime(RuntimeConfig(cpu_threads_per_task=0))
        KMeansWorkflow(datasets["kmeans_10gb"], grid_rows=8).build(rt)
        with pytest.raises(ValueError):
            rt.run()
        rt = Runtime(RuntimeConfig(cpu_threads_per_task=17))
        KMeansWorkflow(datasets["kmeans_10gb"], grid_rows=8).build(rt)
        with pytest.raises(ValueError, match="cores of one node"):
            rt.run()

    def test_gpu_tasks_unaffected_by_thread_setting(self, datasets):
        def gpu_makespan(threads):
            rt = Runtime(
                RuntimeConfig(use_gpu=True, cpu_threads_per_task=threads)
            )
            MatmulWorkflow(datasets["matmul_8gb"], grid=4).build(rt)
            return rt.run().makespan

        assert gpu_makespan(1) == gpu_makespan(4)
