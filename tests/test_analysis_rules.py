"""Static analyzer tests: one test per diagnostic rule code, plus the
Figure 9a regression — the 'CPU GPU OOM' configuration must be flagged
*statically*, before any execution."""

import json

import pytest

from repro.algorithms import KMeansWorkflow
from repro.analysis import (
    CODES,
    AnalysisOptions,
    AnalysisReport,
    Diagnostic,
    Severity,
    WorkflowValidationError,
    analyze,
    analyze_runtime,
    collect_ref_ids,
)
from repro.data import paper_datasets
from repro.hardware import cpu_only, minotauro
from repro.perfmodel import TaskCost
from repro.runtime import DataRef, Runtime, RuntimeConfig, Task, TaskGraph


def _cost(**overrides) -> TaskCost:
    base = dict(
        serial_flops=1e6,
        parallel_flops=1e9,
        parallel_items=1e6,
        arithmetic_intensity=10.0,
        input_bytes=1_000_000,
        output_bytes=1_000_000,
        host_device_bytes=2_000_000,
        gpu_memory_bytes=4_000_000,
        host_memory_bytes=4_000_000,
    )
    base.update(overrides)
    return TaskCost(**base)


def _task(task_id, inputs=(), n_outputs=1, name="t", cost=None, out_bytes=8):
    outputs = tuple(
        DataRef(size_bytes=out_bytes, name=f"{name}{task_id}.o{i}")
        for i in range(n_outputs)
    )
    return Task(
        task_id=task_id, name=name, inputs=tuple(inputs), outputs=outputs, cost=cost
    )


def _graph(*tasks) -> TaskGraph:
    graph = TaskGraph()
    for task in tasks:
        graph.add_task(task)
    return graph


def _codes(report: AnalysisReport) -> set[str]:
    return report.codes()


class TestGraphHazards:
    def test_wf001_cycle(self):
        ref_a = DataRef(size_bytes=8)
        ref_b = DataRef(size_bytes=8)
        graph = _graph(
            Task(task_id=0, name="a", inputs=(ref_b,), outputs=(ref_a,)),
            Task(task_id=1, name="b", inputs=(ref_a,), outputs=()),
        )
        graph._successors[1].append(0)
        graph._predecessors[0].append(1)
        report = analyze(graph)
        assert "WF001" in _codes(report)
        [finding] = [d for d in report.errors if d.code == "WF001"]
        assert set(finding.task_ids) == {0, 1}

    def test_wf002_duplicate_producer(self):
        first = _task(0)
        graph = _graph(first)
        # Hand-inject a second producer of the same ref (add_task refuses).
        imposter = Task(
            task_id=1, name="imposter", inputs=(), outputs=first.outputs
        )
        graph._tasks[1] = imposter
        graph._successors[1] = []
        graph._predecessors[1] = []
        report = analyze(graph)
        [finding] = [d for d in report.errors if d.code == "WF002"]
        assert finding.task_ids == (0, 1)

    def test_wf003_self_dependency(self):
        ref = DataRef(size_bytes=8)
        graph = _graph(Task(task_id=0, name="ouro", inputs=(ref,), outputs=(ref,)))
        report = analyze(graph)
        [finding] = [d for d in report.errors if d.code == "WF003"]
        assert finding.task_ids == (0,)

    def test_wf004_duplicate_edge(self):
        producer = _task(0)
        consumer = _task(1, inputs=producer.outputs)
        graph = _graph(producer, consumer)
        graph._successors[0].append(1)
        graph._predecessors[1].append(0)
        report = analyze(graph)
        [finding] = [d for d in report.warnings if d.code == "WF004"]
        assert 1 in finding.task_ids

    def test_wf005_dead_task_interior(self):
        head = _task(0)
        tail = _task(1, inputs=head.outputs)
        dead = _task(2, name="dead")
        graph = _graph(head, tail, dead)
        report = analyze(graph)
        [finding] = [d for d in report.warnings if d.code == "WF005"]
        assert finding.task_ids == (2,)
        assert finding.task_type == "dead"

    def test_wf005_returned_outputs_are_alive(self):
        head = _task(0)
        tail = _task(1, inputs=head.outputs)
        kept = _task(2, name="kept")
        graph = _graph(head, tail, kept)
        report = analyze(graph, returned=[kept.outputs, tail.outputs])
        assert "WF005" not in _codes(report)
        # Declaring returned refs removes the final-level benefit of the
        # doubt: an unreturned terminal task is genuinely dead.
        partial = analyze(graph, returned=list(kept.outputs))
        [finding] = [d for d in partial.warnings if d.code == "WF005"]
        assert finding.task_ids == (1,)

    def test_wf005_final_level_presumed_alive_without_returned(self):
        head = _task(0)
        tail = _task(1, inputs=head.outputs)
        report = analyze(_graph(head, tail))
        assert "WF005" not in _codes(report)

    def test_wf006_missing_cost(self):
        report = analyze(_graph(_task(0, cost=None)), backend="simulated")
        [finding] = [d for d in report.warnings if d.code == "WF006"]
        assert finding.task_ids == (0,)

    def test_wf006_skipped_for_real_backends(self):
        report = analyze(_graph(_task(0, cost=None)), backend="in_process")
        assert "WF006" not in _codes(report)


class TestFeasibility:
    def test_wf101_host_oom(self):
        cluster = minotauro()
        big = _cost(host_memory_bytes=cluster.node.ram_bytes + 1)
        report = analyze(_graph(_task(0, cost=big)), cluster)
        [finding] = [d for d in report.errors if d.code == "WF101"]
        assert finding.severity is Severity.ERROR
        assert "GiB" in finding.message

    def test_wf102_gpu_oom(self):
        cluster = minotauro()
        big = _cost(gpu_memory_bytes=cluster.node.gpu.memory_bytes + 1)
        report = analyze(_graph(_task(0, cost=big)), cluster, use_gpu=True)
        assert "WF102" in {d.code for d in report.errors}
        # CPU-only execution never touches device memory: no finding.
        cpu_report = analyze(_graph(_task(0, cost=big)), cluster, use_gpu=False)
        assert "WF102" not in _codes(cpu_report)

    def test_wf103_gpu_less_cluster(self):
        cluster = cpu_only()
        assert not cluster.has_gpus
        report = analyze(_graph(_task(0, cost=_cost())), cluster, use_gpu=True)
        [finding] = [d for d in report.errors if d.code == "WF103"]
        assert finding.task_ids == (0,)
        # A CPU run of the same workflow is fine.
        assert "WF103" not in _codes(
            analyze(_graph(_task(0, cost=_cost())), cluster, use_gpu=False)
        )

    def test_wf104_output_block_exceeds_device_memory(self):
        cluster = minotauro()
        task = _task(
            0, cost=_cost(), out_bytes=cluster.node.gpu.memory_bytes + 1
        )
        report = analyze(_graph(task), cluster, use_gpu=True)
        [finding] = [d for d in report.warnings if d.code == "WF104"]
        assert finding.task_ids == (0,)


class TestPerformanceSmells:
    def test_wf201_launch_overhead_dominates(self):
        cluster = minotauro()
        tiny = _cost(
            parallel_flops=100.0,
            parallel_items=100.0,
            host_device_bytes=0,
        )
        report = analyze(_graph(_task(0, cost=tiny)), cluster, use_gpu=True)
        assert "WF201" in {d.code for d in report.warnings}

    def test_wf201_quiet_for_big_kernels(self):
        cluster = minotauro()
        big = _cost(parallel_flops=1e13, parallel_items=1e9)
        report = analyze(_graph(_task(0, cost=big)), cluster, use_gpu=True)
        assert "WF201" not in _codes(report)

    def test_wf202_transfer_bound(self):
        cluster = minotauro()
        chatty = _cost(host_device_bytes=10**9, parallel_flops=1e6)
        report = analyze(_graph(_task(0, cost=chatty)), cluster, use_gpu=True)
        assert "WF202" in {d.code for d in report.warnings}

    def test_wf203_narrow_dag(self):
        cluster = minotauro()
        head = _task(0, cost=_cost())
        tail = _task(1, inputs=head.outputs, cost=_cost())
        report = analyze(_graph(head, tail), cluster)
        [finding] = [
            d for d in report.by_severity(Severity.INFO) if d.code == "WF203"
        ]
        assert "width 1" in finding.message

    def test_wf203_quiet_for_wide_dags(self):
        cluster = minotauro()
        tasks = [_task(i, cost=_cost()) for i in range(cluster.total_cpu_cores)]
        report = analyze(_graph(*tasks), cluster)
        assert "WF203" not in _codes(report)


class TestFig9aRegression:
    """The paper's 'CPU GPU OOM' point must be predicted without running."""

    def _fig9a_runtime(self, use_gpu: bool) -> tuple[Runtime, object]:
        workflow = KMeansWorkflow(
            paper_datasets()["kmeans_10gb"],
            grid_rows=1,  # maximum block size: the whole 10 GB in one block
            n_clusters=1000,
            iterations=3,
        )
        runtime = Runtime(RuntimeConfig(cluster=minotauro(), use_gpu=use_gpu))
        returned = workflow.build(runtime)
        return runtime, returned

    def test_host_oom_flagged_statically(self):
        runtime, returned = self._fig9a_runtime(use_gpu=False)
        report = analyze_runtime(runtime, returned=returned)
        assert report.has_errors
        [finding] = [d for d in report.errors if d.code == "WF101"]
        assert finding.task_type == "partial_sum"
        assert "CPU GPU OOM" in finding.message

    def test_gpu_mode_additionally_flags_device_oom(self):
        runtime, returned = self._fig9a_runtime(use_gpu=True)
        report = analyze_runtime(runtime, returned=returned)
        assert {"WF101", "WF102"} <= {d.code for d in report.errors}

    def test_validate_refuses_dispatch(self):
        runtime, _ = self._fig9a_runtime(use_gpu=False)
        with pytest.raises(WorkflowValidationError) as excinfo:
            runtime.run(validate=True)
        assert excinfo.value.report.has_errors
        assert "WF101" in str(excinfo.value)

    def test_config_validate_flag(self):
        workflow = KMeansWorkflow(
            paper_datasets()["kmeans_10gb"], grid_rows=1, n_clusters=1000
        )
        runtime = Runtime(RuntimeConfig(validate=True))
        workflow.build(runtime)
        with pytest.raises(WorkflowValidationError):
            runtime.run()

    def test_feasible_configuration_passes_validation(self):
        workflow = KMeansWorkflow(
            paper_datasets()["kmeans_10gb"], grid_rows=64, n_clusters=10
        )
        runtime = Runtime(RuntimeConfig(validate=True))
        workflow.build(runtime)
        result = runtime.run()
        assert result.makespan > 0


class TestReportAndPlumbing:
    def test_every_code_documented_and_tested_codes_match(self):
        from repro.analysis import all_rules

        assert {code for code, _ in all_rules()} == set(CODES)

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="WF999", severity=Severity.INFO, message="x")

    def test_json_roundtrip(self):
        cluster = minotauro()
        big = _cost(host_memory_bytes=cluster.node.ram_bytes + 1)
        report = analyze(_graph(_task(0, cost=big)), cluster)
        payload = json.loads(report.to_json())
        assert payload["cluster"] == cluster.name
        assert payload["summary"]["errors"] == 1
        assert payload["diagnostics"][0]["code"] == "WF101"

    def test_render_orders_errors_first(self):
        cluster = minotauro()
        bad = _task(0, cost=_cost(host_memory_bytes=cluster.node.ram_bytes + 1))
        lonely = _task(1, inputs=bad.outputs, cost=_cost())
        text = analyze(_graph(bad, lonely), cluster).render()
        assert text.index("WF101") < text.index("WF203")

    def test_structure_only_analysis_without_cluster(self):
        report = analyze(_graph(_task(0, cost=None)))
        assert report.cluster == ""
        assert _codes(report) <= {"WF005", "WF006"}

    def test_collect_ref_ids_walks_nesting(self):
        refs = [DataRef(size_bytes=8) for _ in range(3)]

        class FakeArray:
            def blocks(self):
                return refs[1:]

        found = collect_ref_ids({"a": refs[0], "b": (FakeArray(), None)})
        assert found == {r.ref_id for r in refs}

    def test_options_validation(self):
        with pytest.raises(ValueError):
            AnalysisOptions(launch_overhead_share=0.0)
        with pytest.raises(ValueError):
            AnalysisOptions(width_slot_share=2.0)

    def test_json_output_is_byte_stable(self):
        cluster = minotauro()
        bad = _task(0, cost=_cost(host_memory_bytes=cluster.node.ram_bytes + 1))
        lonely = _task(1, inputs=bad.outputs, cost=_cost())
        graph = _graph(bad, lonely)
        first = analyze(graph, cluster).to_json()
        second = analyze(graph, cluster).to_json()
        assert first == second
        assert first.endswith("\n")
        # Ordered by code regardless of rule-emission order, and every
        # entry carries its severity.
        payload = json.loads(first)
        codes = [d["code"] for d in payload["diagnostics"]]
        assert codes == sorted(codes)
        assert all(d["severity"] for d in payload["diagnostics"])


class TestStructuralRules:
    def test_wf007_unreachable_task(self):
        head = _task(0, cost=_cost())
        tail = _task(1, inputs=head.outputs, cost=_cost())
        island = _task(2, name="island", cost=_cost())
        report = analyze(_graph(head, tail, island))
        [finding] = [d for d in report.warnings if d.code == "WF007"]
        assert finding.task_ids == (2,)
        assert finding.task_type == "island"

    def test_wf007_returned_island_is_reachable(self):
        head = _task(0, cost=_cost())
        tail = _task(1, inputs=head.outputs, cost=_cost())
        island = _task(2, name="island", cost=_cost())
        report = analyze(
            _graph(head, tail, island), returned=list(island.outputs)
        )
        assert "WF007" not in _codes(report)

    def test_wf007_quiet_on_edgeless_graphs(self):
        # A bag of independent tasks (a pure map) has no "rest of the
        # DAG" to be disconnected from.
        tasks = [_task(i, cost=_cost()) for i in range(4)]
        assert "WF007" not in _codes(analyze(_graph(*tasks)))

    def test_wf008_zero_cost_task(self):
        zero = TaskCost(
            serial_flops=0,
            parallel_flops=0,
            parallel_items=0,
            arithmetic_intensity=1.0,
            input_bytes=0,
            output_bytes=0,
            host_device_bytes=0,
            gpu_memory_bytes=0,
            host_memory_bytes=0,
        )
        report = analyze(_graph(_task(0, name="noop", cost=zero)))
        [finding] = [d for d in report.warnings if d.code == "WF008"]
        assert finding.task_type == "noop"

    def test_wf008_quiet_without_cost_and_off_simulator(self):
        assert "WF008" not in _codes(analyze(_graph(_task(0, cost=None))))
        zero = TaskCost(
            serial_flops=0,
            parallel_flops=0,
            parallel_items=0,
            arithmetic_intensity=1.0,
            input_bytes=0,
            output_bytes=0,
            host_device_bytes=0,
            gpu_memory_bytes=0,
            host_memory_bytes=0,
        )
        report = analyze(
            _graph(_task(0, cost=zero)), backend="in_process"
        )
        assert "WF008" not in _codes(report)


class TestSuppressions:
    def test_options_ignore_drops_code_globally(self):
        head = _task(0, cost=_cost())
        tail = _task(1, inputs=head.outputs, cost=_cost())
        island = _task(2, cost=_cost())
        graph = _graph(head, tail, island)
        assert "WF007" in _codes(analyze(graph))
        quiet = analyze(graph, options=AnalysisOptions(ignore={"WF007"}))
        assert "WF007" not in _codes(quiet)

    def test_task_level_ignore(self):
        head = _task(0, cost=_cost())
        tail = _task(1, inputs=head.outputs, cost=_cost())
        island = Task(
            task_id=2,
            name="island",
            inputs=(),
            outputs=(DataRef(size_bytes=8),),
            cost=_cost(),
            ignore=frozenset({"WF005", "WF007"}),
        )
        report = analyze(_graph(head, tail, island))
        assert "WF007" not in _codes(report)
        assert "WF005" not in _codes(report)

    def test_task_ignore_requires_every_named_task(self):
        # A finding naming several tasks survives unless all of them
        # waive it.
        waived = _task(0, name="noop", cost=None)
        waived.ignore = frozenset({"WF006"})
        kept = _task(1, name="noop", cost=None)
        report = analyze(_graph(waived, kept), backend="simulated")
        [finding] = [d for d in report.warnings if d.code == "WF006"]
        assert finding.task_ids == (0, 1)

    def test_submit_and_decorator_ignore_plumbing(self):
        from repro.runtime import task as task_decorator

        runtime = Runtime(RuntimeConfig())
        runtime.submit("a", inputs=(), cost=_cost(), ignore=("WF203",))
        assert runtime.graph.task(0).ignore == frozenset({"WF203"})

        @task_decorator(returns=1, ignore={"WF201"})
        def tiny_kernel(x):
            return x

        with runtime:
            tiny_kernel(None, _cost=_cost())
        assert runtime.graph.task(1).ignore == frozenset({"WF201"})
