"""Data references: the tokens tasks exchange.

A :class:`DataRef` stands for one data object (typically one block of a
distributed array).  It records enough metadata for both backends: the
byte size and home node drive the simulated storage model; the producer
task id drives automatic dependency detection; and the in-process backend
binds each ref to a real NumPy array in its data store.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_ref_counter = itertools.count()


def _next_ref_id() -> int:
    return next(_ref_counter)


@dataclass(eq=False)
class DataRef:
    """A handle to one data object flowing through the workflow."""

    size_bytes: int
    name: str = ""
    #: Node index whose local disk holds the object (local-disk storage).
    home_node: int = 0
    #: Task id that produces this object, or ``None`` for workflow inputs.
    producer: int | None = None
    ref_id: int = field(default_factory=_next_ref_id)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")

    def __hash__(self) -> int:
        return hash(self.ref_id)

    def __repr__(self) -> str:
        origin = "input" if self.producer is None else f"task {self.producer}"
        return (
            f"DataRef(#{self.ref_id} {self.name!r}, {self.size_bytes} B, "
            f"node {self.home_node}, from {origin})"
        )
