"""Simulator throughput benchmark — ``python -m repro bench`` (see ``docs/performance.md``).

The figure experiments measure *simulated* time; this module measures the
wall-clock cost of producing it, as a regression guard over the fast
dispatch path (incremental ready sets, the per-node locality index,
memoized cost-model evaluation).  A fixed three-workload matrix covers
the hot paths with different shapes:

* ``matmul16`` — Matmul 16x16, the heaviest single configuration of the
  figure suite (7936 tasks, full storage contention);
* ``kmeans_deep`` — a deep K-means run (many short levels), stressing
  the completion-event path and the ready-set churn of iterative DAGs;
* ``wide_dag`` — a seeded WfBench-style generated DAG with wide levels
  under the data-locality policy, stressing placement scoring.

``run_bench`` returns a JSON-serialisable report and (optionally) writes
it to ``BENCH_simulator.json``; ``benchmarks/test_simulator_performance.py``
enforces per-workload throughput floors on the same matrix.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.algorithms import GeneratedDagWorkflow, KMeansWorkflow, MatmulWorkflow
from repro.data import paper_datasets
from repro.runtime import Runtime, RuntimeConfig, SchedulingPolicy

#: Report format version; bump when the JSON layout changes.
SCHEMA = "repro-bench/1"

#: Default output file name, also uploaded as a CI artifact.
DEFAULT_OUTPUT = "BENCH_simulator.json"

#: Sweep-engine suite format version (``--suite sweeps``).
SWEEP_SCHEMA = "repro-sweeps-bench/1"

#: Default output of the sweeps suite, also uploaded as a CI artifact.
DEFAULT_SWEEPS_OUTPUT = "BENCH_sweeps.json"

#: Fault-recovery suite format version (``--suite faults``).
FAULTS_SCHEMA = "repro-faults-bench/1"

#: Default output of the faults suite, also uploaded as a CI artifact.
DEFAULT_FAULTS_OUTPUT = "BENCH_faults.json"

#: Scale suite format version (``--suite scale``).  Version 2 added the
#: sharded ``*_x4`` cells (worker count, aggregate rate, speedup versus
#: the matching single-process cell) and raised the ``scale_1m`` floor
#: from 6,000 to 9,000 tasks/s after the array-backed bookkeeping
#: rewrite.
SCALE_SCHEMA = "repro-scale-bench/2"

#: Default output of the scale suite, also uploaded as a CI artifact.
DEFAULT_SCALE_OUTPUT = "BENCH_scale.json"


@dataclass(frozen=True)
class BenchWorkload:
    """One cell of the fixed benchmark matrix."""

    name: str
    description: str
    build: Callable[[Runtime], object]
    make_config: Callable[[], RuntimeConfig]

    def run_once(self) -> tuple[int, float, float]:
        """Build and execute once; returns (tasks, wall seconds, makespan).

        DAG construction happens outside the timed region: the benchmark
        guards the simulation loop, not workflow generation.
        """
        runtime = Runtime(self.make_config())
        self.build(runtime)
        started = time.perf_counter()
        result = runtime.run()
        elapsed = time.perf_counter() - started
        return result.trace.num_task_records, elapsed, result.makespan


def plain_replay_config() -> RuntimeConfig:
    """The zero-overhead cluster the replay benchmarks run against.

    Scheduling latency and locality scan cost are zeroed so the
    measurement isolates the simulator kernel itself — dependency
    resolution, scheduling decisions and the event core — which is the
    path the batched kernel accelerates (and the one the ``>= 15,000``
    tasks/s floor guards).
    """
    import dataclasses

    from repro.hardware import StorageKind, minotauro

    cluster = dataclasses.replace(
        minotauro(num_nodes=8),
        scheduling_latency={policy: 0.0 for policy in SchedulingPolicy},
        locality_scan_seconds_per_task=0.0,
    )
    return RuntimeConfig(
        cluster=cluster,
        storage=StorageKind.LOCAL,
        scheduling=SchedulingPolicy.GENERATION_ORDER,
    )


def build_plain_replay(
    runtime: Runtime, width: int, depth: int, seed: int = 11
) -> None:
    """Submit a dependency-only layered DAG of ``width * depth`` tasks.

    Tasks carry seeded serial-compute costs (drawn from a small palette,
    so the cost-model memo stays bounded at million-task scale) and move
    no data: every event the run produces comes from scheduling and
    compute, making this the purest replay measurement of the simulator
    kernel.  Each task depends on two distinct tasks of the previous
    level; edge sampling is vectorized so DAG construction keeps up with
    million-task shapes (construction is outside the timed region
    regardless).
    """
    import numpy as np

    from repro.perfmodel import TaskCost

    if width < 2 or depth < 1:
        raise ValueError("plain replay needs width >= 2 and depth >= 1")
    rng = np.random.default_rng(seed)
    palette = [
        TaskCost(
            serial_flops=float(flops),
            parallel_flops=0.0,
            parallel_items=0.0,
            arithmetic_intensity=1e-6,
            input_bytes=0,
            output_bytes=0,
            host_device_bytes=0,
            gpu_memory_bytes=0,
        )
        for flops in rng.uniform(1e7, 4e7, size=64)
    ]
    num_tasks = width * depth
    cost_ix = rng.integers(0, len(palette), size=num_tasks)
    # Two distinct predecessors per task without a per-task choice()
    # call: a uniform first pick plus a nonzero modular offset.
    first = rng.integers(0, width, size=num_tasks)
    second = (first + rng.integers(1, width, size=num_tasks)) % width
    previous = [
        runtime.register_input(1, name=f"replay_in{i}") for i in range(width)
    ]
    at = 0
    for _ in range(depth):
        current = []
        for _ in range(width):
            a, b = int(first[at]), int(second[at])
            if a > b:
                a, b = b, a
            (out,) = runtime.submit(
                name="replay",
                inputs=[previous[a], previous[b]],
                cost=palette[int(cost_ix[at])],
                output_bytes=[0],
            )
            current.append(out)
            at += 1
        previous = current


def bench_workloads() -> tuple[BenchWorkload, ...]:
    """The fixed workload matrix, in reporting order."""
    datasets = paper_datasets()

    def matmul16(runtime: Runtime):
        return MatmulWorkflow(datasets["matmul_8gb"], grid=16).build(runtime)

    def kmeans_deep(runtime: Runtime):
        return KMeansWorkflow(
            datasets["kmeans_10gb"], grid_rows=64, n_clusters=10, iterations=8
        ).build(runtime)

    def wide_dag(runtime: Runtime):
        return GeneratedDagWorkflow(
            width=64, depth=24, fan_in=3, block_mb=4.0, seed=11
        ).build(runtime)

    return (
        BenchWorkload(
            name="matmul16",
            description="Matmul 16x16 on CPUs with storage contention",
            build=matmul16,
            make_config=lambda: RuntimeConfig(use_gpu=False),
        ),
        BenchWorkload(
            name="kmeans_deep",
            description="K-means 64x1 blocks, 8 iterations, GPU mode",
            build=kmeans_deep,
            make_config=lambda: RuntimeConfig(use_gpu=True),
        ),
        BenchWorkload(
            name="wide_dag",
            description=(
                "generated 64-wide/24-deep DAG under the data-locality policy"
            ),
            build=wide_dag,
            make_config=lambda: RuntimeConfig(
                use_gpu=False, scheduling=SchedulingPolicy.DATA_LOCALITY
            ),
        ),
        BenchWorkload(
            name="plain_replay",
            description=(
                "dependency-only 128-wide/80-deep DAG on the zero-latency "
                "cluster (batched-kernel hot path)"
            ),
            build=lambda runtime: build_plain_replay(runtime, 128, 80),
            make_config=plain_replay_config,
        ),
    )


def run_bench(
    repeats: int = 3,
    workloads: Sequence[BenchWorkload] | None = None,
    out_path: str | Path | None = None,
) -> dict:
    """Run the matrix ``repeats`` times per workload and build the report.

    Rates are computed from the *best* repeat — wall-clock noise only ever
    slows a run down, so the minimum is the cleanest throughput estimate.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    rows = []
    for workload in workloads if workloads is not None else bench_workloads():
        walls: list[float] = []
        num_tasks = 0
        makespan = 0.0
        for _ in range(repeats):
            num_tasks, elapsed, makespan = workload.run_once()
            walls.append(elapsed)
        best = min(walls)
        rows.append(
            {
                "name": workload.name,
                "description": workload.description,
                "num_tasks": num_tasks,
                "repeats": repeats,
                "wall_seconds": [round(w, 6) for w in walls],
                "best_wall_seconds": round(best, 6),
                "tasks_per_second": round(num_tasks / best, 1),
                "simulated_makespan": round(makespan, 6),
            }
        )
    report = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": rows,
    }
    if out_path is not None:
        from repro.core.persistence import dumps_deterministic

        Path(out_path).write_text(dumps_deterministic(report), encoding="utf-8")
    return report


def render_report(report: dict) -> str:
    """Human-readable summary of a :func:`run_bench` report."""
    lines = [f"simulator throughput ({report['schema']}, "
             f"python {report['python']}/{report['machine']})"]
    for row in report["workloads"]:
        lines.append(
            f"  {row['name']:<12} {row['num_tasks']:>6} tasks  "
            f"{row['best_wall_seconds']:>8.3f}s best of {row['repeats']}  "
            f"{row['tasks_per_second']:>10,.0f} tasks/s"
        )
    return "\n".join(lines)


# ---------------------------------------------------------- scale suite


#: The scale-suite cell matrix:
#: ``(name, width, depth, workers, base floor tasks/s)``.
#: ``workers == 1`` replays the whole ``width * depth`` DAG in-process;
#: ``workers > 1`` splits the same task budget into ``workers`` replica
#: instances (``width x depth/workers`` each) and fans them out over a
#: :class:`~repro.core.shard.ShardPool`, reporting the *aggregate* rate
#: (total tasks over batch wall-clock).  Base floors are conservative
#: versus the measured batched-kernel rates so CI noise does not trip
#: them, but an order-of-magnitude regression — the batched drain
#: disengaging, or the bookkeeping sliding back to per-task dicts —
#: still fails reliably.  Sharded floors are additionally scaled by the
#: machine's core count (:func:`_sharded_floor`), because aggregate
#: throughput cannot exceed one in-process rate on a single core.
#: Width 125 keeps the DAG just under the 8-node cluster's 128 concurrent
#: tasks, so drained rounds empty the ready set instead of ending in a
#: full saturated-node scan per round.
SCALE_CELLS = (
    ("scale_100k", 125, 800, 1, 8000.0),
    ("scale_1m", 125, 8000, 1, 9000.0),
    ("scale_100k_x4", 125, 800, 4, 8000.0),
    ("scale_1m_x4", 125, 8000, 4, 9000.0),
)


def _sharded_floor(base_floor: float, workers: int) -> float:
    """Effective floor of a sharded cell on this machine.

    Half of ``min(workers, cores)`` times the base floor: on a 4-core CI
    runner a 4-worker cell must beat 2x the single-process floor (the
    ">= 3x aggregate at 4 workers" target with headroom for runner
    noise), while on a single core the cell only has to stay within 2x
    of the in-process rate — sharding cannot speed anything up there,
    the guard just bounds pool overhead.
    """
    import os

    cores = os.cpu_count() or 1
    return base_floor * 0.5 * min(workers, cores)


def _scale_shard(spec: tuple[int, int, int]) -> tuple[int, float]:
    """One sharded-cell instance: replay ``width x depth`` from ``seed``.

    Module-level so it pickles under the ``spawn`` start method; returns
    ``(tasks committed, wall seconds inside the worker)``.
    """
    width, depth, seed = spec
    runtime = Runtime(plain_replay_config())
    build_plain_replay(runtime, width, depth, seed=seed)
    started = time.perf_counter()
    result = runtime.run()
    elapsed = time.perf_counter() - started
    return result.trace.num_task_records, elapsed


def _run_scale_cell(
    width: int, depth: int, workers: int
) -> tuple[int, float, float | None]:
    """Execute one cell; returns (total tasks, wall seconds, makespan).

    Single-worker cells replay in-process with DAG construction outside
    the timed region.  Sharded cells split the depth across ``workers``
    replica instances and time the whole batch through a
    :class:`~repro.core.shard.ShardPool`; the pool is warmed first (one
    trivial instance per worker) so process spawn and the per-worker
    interpreter+numpy import stay outside the timed region, mirroring
    how a persistent pool amortises start-up across a long run.  Sharded
    makespan is reported as ``None`` — the replicas are independent
    simulations, so no single simulated clock describes the batch.
    """
    if workers == 1:
        runtime = Runtime(plain_replay_config())
        build_plain_replay(runtime, width, depth)
        started = time.perf_counter()
        result = runtime.run()
        elapsed = time.perf_counter() - started
        return result.trace.num_task_records, elapsed, result.makespan

    from repro.core.shard import ShardPool

    depth_per_worker = max(1, depth // workers)
    specs = [(width, depth_per_worker, 11 + i) for i in range(workers)]
    with ShardPool(workers=workers) as pool:
        pool.map(_scale_shard, [(2, 1, 0)] * workers)  # spawn + import warm-up
        started = time.perf_counter()
        results = pool.map(_scale_shard, specs)
        elapsed = time.perf_counter() - started
    total_tasks = sum(tasks for tasks, _ in results)
    return total_tasks, elapsed, None


def run_scale_bench(
    out_path: str | Path | None = None,
    cells: Sequence[tuple[str, int, int, int, float]] | None = None,
    jobs: int | None = None,
) -> dict:
    """Run the 10^5..10^6-task replay cells and build the report.

    Each cell builds dependency-only DAGs (construction and pool warm-up
    are untimed) and replays them once on the zero-latency cluster; the
    report records the wall-clock rate against the cell's floor, and for
    sharded cells the speedup over the single-process cell of the same
    shape.  One run per cell — at these task counts a single replay
    already averages away per-event noise, and the 10^6 cells are too
    expensive to repeat by default.  ``jobs`` overrides the worker count
    of every sharded cell (single-process cells are unaffected).
    """
    serial_rates: dict[tuple[int, int], float] = {}
    rows = []
    for name, width, depth, workers, base_floor in (
        cells if cells is not None else SCALE_CELLS
    ):
        if workers > 1 and jobs is not None:
            workers = max(1, jobs)
        num_tasks, elapsed, makespan = _run_scale_cell(width, depth, workers)
        rate = num_tasks / elapsed
        if workers == 1:
            serial_rates[(width, depth)] = rate
            floor = base_floor
            speedup = None
        else:
            floor = _sharded_floor(base_floor, workers)
            serial = serial_rates.get((width, depth))
            speedup = round(rate / serial, 2) if serial else None
        rows.append(
            {
                "name": name,
                "width": width,
                "depth": depth,
                "workers": workers,
                "num_tasks": num_tasks,
                "wall_seconds": round(elapsed, 6),
                "tasks_per_second": round(rate, 1),
                "floor_tasks_per_second": round(floor, 1),
                "meets_floor": rate >= floor,
                "speedup_vs_serial": speedup,
                "simulated_makespan": (
                    round(makespan, 6) if makespan is not None else None
                ),
            }
        )
    report = {
        "schema": SCALE_SCHEMA,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": rows,
    }
    if out_path is not None:
        from repro.core.persistence import dumps_deterministic

        Path(out_path).write_text(dumps_deterministic(report), encoding="utf-8")
    return report


def render_scale_report(report: dict) -> str:
    """Human-readable summary of a :func:`run_scale_bench` report."""
    lines = [f"replay scale ({report['schema']}, "
             f"python {report['python']}/{report['machine']})"]
    for row in report["workloads"]:
        verdict = "ok" if row["meets_floor"] else "BELOW FLOOR"
        speedup = row.get("speedup_vs_serial")
        extra = f"  {speedup:.2f}x vs serial" if speedup is not None else ""
        lines.append(
            f"  {row['name']:<13} {row['num_tasks']:>9,} tasks  "
            f"x{row['workers']}  "
            f"{row['wall_seconds']:>9.3f}s  "
            f"{row['tasks_per_second']:>10,.0f} tasks/s  "
            f"(floor {row['floor_tasks_per_second']:,.0f}: {verdict})"
            f"{extra}"
        )
    return "\n".join(lines)


# --------------------------------------------------------- sweeps suite


def sweep_bench_cells() -> list:
    """The fixed sweeps-suite cell matrix (small figure-subset shapes).

    A scaled-down cross-section of the figure sweeps: both algorithms,
    several grids, both processors, plus storage / scheduling / cluster
    variants, all on the small 128 MB / 100 MB datasets so a cold pass
    stays in CI-friendly territory.
    """
    from repro.core.experiments.engine import CellSpec, cells_product
    from repro.hardware import StorageKind
    from repro.runtime import SchedulingPolicy

    cells = []
    cells += cells_product("matmul", (8, 4, 2), dataset_key="matmul_128mb")
    cells += cells_product(
        "kmeans", (16, 8, 4), dataset_key="kmeans_100mb", n_clusters=10
    )
    cells += cells_product(
        "matmul", (4,), dataset_key="matmul_128mb", storage=StorageKind.LOCAL
    )
    cells += cells_product(
        "matmul",
        (4,),
        dataset_key="matmul_128mb",
        scheduling=SchedulingPolicy.DATA_LOCALITY,
    )
    cells += cells_product(
        "kmeans", (8,), dataset_key="kmeans_100mb", n_clusters=100
    )
    cells.append(
        CellSpec(algorithm="matmul_fma", grid=4, dataset_key="matmul_128mb")
    )
    cells.append(
        CellSpec(
            algorithm="matmul_fma", grid=4, dataset_key="matmul_128mb",
            use_gpu=True,
        )
    )
    return cells


def run_sweep_bench(
    jobs: int | None = None,
    out_path: str | Path | None = None,
    cache_dir: str | Path | None = None,
    cells: Sequence | None = None,
) -> dict:
    """Measure sweep-engine throughput: a cold pass, then a warm pass.

    Both passes run the same cell matrix against the same cache
    directory (a temporary one unless ``cache_dir`` is given).  The cold
    pass simulates everything; the warm pass must answer 100% from the
    cache.  The report records cells/second for both, the warm-over-cold
    speedup, and whether the two passes produced identical results.
    """
    import tempfile

    from repro.core.experiments.cache import metrics_to_record
    from repro.core.experiments.engine import SweepEngine

    cells = list(cells) if cells is not None else sweep_bench_cells()
    with tempfile.TemporaryDirectory() as scratch:
        root = Path(cache_dir) if cache_dir is not None else Path(scratch)

        with SweepEngine(jobs=jobs, cache_dir=root) as cold_engine:
            started = time.perf_counter()
            cold_results = cold_engine.run_cells(cells)
            cold_wall = time.perf_counter() - started

        with SweepEngine(jobs=jobs, cache_dir=root) as warm_engine:
            started = time.perf_counter()
            warm_results = warm_engine.run_cells(cells)
            warm_wall = time.perf_counter() - started

    cold_records = [metrics_to_record(m) for m in cold_results]
    warm_records = [metrics_to_record(m) for m in warm_results]
    byte_identical = json.dumps(cold_records, sort_keys=True) == json.dumps(
        warm_records, sort_keys=True
    )
    report = {
        "schema": SWEEP_SCHEMA,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "jobs": cold_engine.jobs,
        "num_cells": len(cells),
        "cold": {
            "wall_seconds": round(cold_wall, 6),
            "cells_per_second": round(len(cells) / cold_wall, 2),
            "hits": cold_engine.stats.hits,
            "misses": cold_engine.stats.misses,
        },
        "warm": {
            "wall_seconds": round(warm_wall, 6),
            "cells_per_second": round(len(cells) / warm_wall, 2),
            "hits": warm_engine.stats.hits,
            "misses": warm_engine.stats.misses,
        },
        "warm_speedup": round(cold_wall / warm_wall, 2) if warm_wall > 0 else None,
        "byte_identical": byte_identical,
    }
    if out_path is not None:
        from repro.core.persistence import dumps_deterministic

        Path(out_path).write_text(dumps_deterministic(report), encoding="utf-8")
    return report


# --------------------------------------------------------- faults suite


def run_fault_bench(
    workloads: Sequence[BenchWorkload] | None = None,
    out_path: str | Path | None = None,
    at_fraction: float = 0.25,
) -> dict:
    """Measure fault-recovery cost on the fixed workload matrix.

    Each workload runs twice: once fault-free to establish the clean
    makespan, then again with one node killed at ``at_fraction`` of that
    makespan and lineage recovery enabled.  The report records whether
    the faulted run completed, how many tasks were resurrected, and the
    makespan overhead the recovery cost (faulted over clean).
    """
    import dataclasses

    from repro.faults import FaultPlan, NodeFault, RetryPolicy

    rows = []
    for workload in workloads if workloads is not None else bench_workloads():
        runtime = Runtime(workload.make_config())
        workload.build(runtime)
        clean = runtime.run()

        plan = FaultPlan(
            node_faults=(
                NodeFault(node=1, at_time=at_fraction * clean.makespan),
            )
        )
        config = dataclasses.replace(
            workload.make_config(),
            fault_plan=plan,
            retry_policy=RetryPolicy(recover_lost_blocks=True, max_attempts=3),
        )
        runtime = Runtime(config)
        workload.build(runtime)
        faulted = runtime.run()
        metrics = faulted.recovery_metrics
        rows.append(
            {
                "name": workload.name,
                "description": workload.description,
                "num_tasks": clean.trace.num_task_records,
                "clean_makespan": round(clean.makespan, 6),
                "fault_at": round(at_fraction * clean.makespan, 6),
                "faulted_makespan": round(faulted.makespan, 6),
                "recovery_overhead": round(
                    faulted.makespan / clean.makespan, 4
                ),
                "failed": faulted.failed,
                "blocks_lost": metrics.blocks_lost,
                "tasks_resurrected": metrics.tasks_resurrected,
                "recompute_seconds": round(metrics.recompute_seconds, 6),
            }
        )
    report = {
        "schema": FAULTS_SCHEMA,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": rows,
    }
    if out_path is not None:
        from repro.core.persistence import dumps_deterministic

        Path(out_path).write_text(dumps_deterministic(report), encoding="utf-8")
    return report


def render_fault_report(report: dict) -> str:
    """Human-readable summary of a :func:`run_fault_bench` report."""
    lines = [f"fault recovery ({report['schema']}, "
             f"python {report['python']}/{report['machine']})"]
    for row in report["workloads"]:
        status = "FAILED" if row["failed"] else "recovered"
        lines.append(
            f"  {row['name']:<12} {row['num_tasks']:>6} tasks  "
            f"{status:<9}  {row['blocks_lost']:>4} blocks lost  "
            f"{row['tasks_resurrected']:>4} resurrected  "
            f"{row['recovery_overhead']:>6.2f}x overhead"
        )
    return "\n".join(lines)


def render_sweep_report(report: dict) -> str:
    """Human-readable summary of a :func:`run_sweep_bench` report."""
    cold, warm = report["cold"], report["warm"]
    return "\n".join(
        [
            f"sweep-engine throughput ({report['schema']}, "
            f"python {report['python']}/{report['machine']}, "
            f"jobs={report['jobs']})",
            f"  cold  {report['num_cells']:>4} cells  "
            f"{cold['wall_seconds']:>8.3f}s  "
            f"{cold['cells_per_second']:>8.2f} cells/s  "
            f"(hits={cold['hits']} misses={cold['misses']})",
            f"  warm  {report['num_cells']:>4} cells  "
            f"{warm['wall_seconds']:>8.3f}s  "
            f"{warm['cells_per_second']:>8.2f} cells/s  "
            f"(hits={warm['hits']} misses={warm['misses']})",
            f"  warm speedup {report['warm_speedup']}x, results identical: "
            f"{report['byte_identical']}",
        ]
    )


# ---------------------------------------------------------- chaos suite

CHAOS_SCHEMA = "repro-chaos-bench/1"

#: Default report path of ``repro bench --suite chaos``.
DEFAULT_CHAOS_OUTPUT = "BENCH_chaos.json"

#: Replay shape of each chaos instance: small enough that a retried
#: instance costs milliseconds, large enough that a kill or hang lands
#: mid-batch rather than after everything finished.
CHAOS_REPLAY_SHAPE = (48, 40)
CHAOS_INSTANCES = 8


def _chaos_replay(seed: int) -> str:
    """One chaos-suite instance: replay a seeded DAG, return its digest.

    Module-level so it pickles under ``spawn``; returns the golden trace
    digest, the strongest bit-identity witness the repo has (every task's
    timing, placement, and event schedule feeds the hash).
    """
    from repro.tracing.golden import trace_digest

    width, depth = CHAOS_REPLAY_SHAPE
    runtime = Runtime(plain_replay_config())
    build_plain_replay(runtime, width, depth, seed=seed)
    result = runtime.run()
    return trace_digest(result.trace, result.failed_task_ids)


def chaos_policy():
    """The supervision policy the chaos suite (and its CI job) runs under.

    The 10 s item deadline is the suite's "never blocks longer than"
    guarantee — each replay takes well under a second, so only a chaos
    hang can reach it; 1 s heartbeats with a 5-interval grace catch
    frozen workers sooner.  Three attempts against single-attempt faults
    guarantee convergence; ``allow_degraded`` keeps the batch draining
    even if the respawn budget empties.
    """
    from repro.core.supervise import SupervisionPolicy

    return SupervisionPolicy(
        item_deadline=10.0,
        heartbeat_interval=1.0,
        heartbeat_grace=5.0,
        max_attempts=3,
        backoff_base=0.05,
        allow_degraded=True,
    )


def chaos_plan(seed: int = 23):
    """The seeded fault mix of the chaos suite.

    Roughly a quarter of first attempts die, an eighth hang (for longer
    than the item deadline, so only supervision can reclaim them), a
    quarter straggle; faults fire on the first attempt only, so every
    instance converges within the policy's three attempts.
    """
    from repro.core.chaos import ChaosPlan

    return ChaosPlan(
        seed=seed,
        kill_probability=0.25,
        hang_probability=0.125,
        slow_probability=0.25,
        hang_seconds=60.0,
        slow_seconds=(0.05, 0.2),
        fault_attempts=1,
    )


def run_chaos_bench(
    out_path: str | Path | None = None,
    jobs: int | None = None,
    seed: int = 23,
) -> dict:
    """Replay the chaos instances serially and under a chaotic pool.

    Serial digests are computed in-process first (the ground truth),
    then the same instances run through a :class:`ShardPool` whose
    workers are killed, hung, and slowed by the seeded
    :func:`chaos_plan`.  The report's headline claim is
    ``bit_identical``: per-instance golden trace digests from the
    supervised chaotic run equal the serial ones, i.e. host-level
    failures never leak into simulated results.
    """
    from repro.core.shard import ShardItem, ShardPool

    workers = max(1, jobs) if jobs is not None else 2
    seeds = [100 + i for i in range(CHAOS_INSTANCES)]
    serial = {s: _chaos_replay(s) for s in seeds}

    plan = chaos_plan(seed)
    events: list[tuple[str, dict]] = []
    started = time.perf_counter()
    with ShardPool(
        workers=workers, policy=chaos_policy(), chaos=plan
    ) as pool:
        report_run = pool.run_report(
            [ShardItem(instance_id=s, fn=_chaos_replay, args=(s,)) for s in seeds],
            on_event=lambda kind, info: events.append((kind, info)),
        )
    elapsed = time.perf_counter() - started

    mismatches = sorted(
        s for s, digest in report_run.results.items() if serial[s] != digest
    )
    injected = {
        kind: sum(1 for k, _ in events if k == kind)
        for kind in ("dispatch", "retry", "quarantine", "kill")
    }
    report = {
        "schema": CHAOS_SCHEMA,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workers": workers,
        "instances": CHAOS_INSTANCES,
        "replay_shape": list(CHAOS_REPLAY_SHAPE),
        "chaos_plan": json.loads(plan.to_json()),
        "bit_identical": (
            not mismatches
            and not report_run.errors
            and not report_run.quarantined
            and len(report_run.results) == len(seeds)
        ),
        "mismatched_instances": mismatches,
        "errors": sorted(map(str, report_run.errors)),
        "quarantined": sorted(map(str, report_run.quarantined)),
        "worker_crashes": report_run.worker_crashes,
        "worker_kills": report_run.worker_kills,
        "respawns": report_run.respawns,
        "retried_instances": len(report_run.attempts),
        "dispatches": injected["dispatch"],
        "degraded": report_run.degraded,
        "wall_seconds": round(elapsed, 6),
    }
    if out_path is not None:
        from repro.core.persistence import dumps_deterministic

        Path(out_path).write_text(dumps_deterministic(report), encoding="utf-8")
    return report


def render_chaos_report(report: dict) -> str:
    """Human-readable summary of a :func:`run_chaos_bench` report."""
    verdict = "bit-identical" if report["bit_identical"] else "DIVERGED"
    return "\n".join(
        [
            f"chaos shard suite ({report['schema']}, "
            f"python {report['python']}/{report['machine']}, "
            f"workers={report['workers']})",
            f"  {report['instances']} instances  "
            f"{report['wall_seconds']:>8.3f}s  "
            f"crashes={report['worker_crashes']} "
            f"kills={report['worker_kills']} "
            f"respawns={report['respawns']} "
            f"retried={report['retried_instances']} "
            f"degraded={report['degraded']}",
            f"  serial vs chaotic-sharded: {verdict} "
            f"(errors={len(report['errors'])} "
            f"quarantined={len(report['quarantined'])})",
        ]
    )
