"""Golden-output snapshots of small deterministic renders.

The simulator is deterministic, so these exact-text snapshots guard
against silent changes to the public renders that the benches print as
the reproduction's artefacts.  If an intentional change trips one, update
the expected text alongside the change.
"""

from repro.core.experiments import run_fig6
from repro.core.factors import factors_table
from repro.data import Blocking, ChunkingPolicy, DatasetSpec, GridSpec
from repro.data.blocking import render_partitioning

FIG6_SNAPSHOT = """\
Figure 6: DAG shapes (K-means 4x1 x3 iters vs Matmul 4x4)

algorithm                    tasks  edges  width  height  width/height  per type
---------------------------  -----  -----  -----  ------  ------------  ---------------------------
K-means (4x1, 3 iterations)     15     20      4       6          0.67      partial_sum=12, merge=3
               Matmul (4x4)    112     96     64       3         21.33  matmul_func=64, add_func=48"""

FIG5_ROW_WISE_SNAPSHOT = """\
dataset 8x8 (64 elements), block 2x4, grid 4 x 2 (row_wise chunking)
 T1  T1  T1  T1  T1  T1  T1  T1
 T1  T1  T1  T1  T1  T1  T1  T1
 T2  T2  T2  T2  T2  T2  T2  T2
 T2  T2  T2  T2  T2  T2  T2  T2
 T3  T3  T3  T3  T3  T3  T3  T3
 T3  T3  T3  T3  T3  T3  T3  T3
 T4  T4  T4  T4  T4  T4  T4  T4
 T4  T4  T4  T4  T4  T4  T4  T4"""


def _rstripped(text: str) -> list[str]:
    return [line.rstrip() for line in text.splitlines()]


class TestSnapshots:
    def test_fig6_render_snapshot(self):
        assert _rstripped(run_fig6().render()) == _rstripped(FIG6_SNAPSHOT)

    def test_fig5_partitioning_snapshot(self):
        blocking = Blocking.from_grid(
            DatasetSpec("fig5", rows=8, cols=8), GridSpec(k=4, l=2)
        )
        text = render_partitioning(blocking, ChunkingPolicy.ROW_WISE)
        assert text == FIG5_ROW_WISE_SNAPSHOT

    def test_table1_row_count_snapshot(self):
        lines = factors_table().render().splitlines()
        # Title, blank, header, rule, 8 factor rows.
        assert len(lines) == 12
