"""End-to-end proof of crash recovery: SIGKILL a chaotic sweep, resume it.

The CI ``chaos-shard`` job runs this script.  It

1. launches a child process that sweeps the bench cell matrix through a
   sharded :class:`~repro.core.experiments.engine.SweepEngine` under a
   seeded :class:`~repro.core.chaos.ChaosPlan` (worker kills + slowdowns,
   so the run both loses workers and takes long enough to be killed),
2. SIGKILLs the child's whole process group once the execution ledger
   shows a few cells DONE but not all of them — the hard mid-sweep death
   the ledger exists for,
3. replays the journal, then runs the same sweep again in-process with
   ``resume=True`` and asserts

   * every ledger-finished cell is answered from the journal
     (``stats.resumed`` == cells DONE before the kill: 100%
     ledger-driven skip),
   * no finished cell is ever re-dispatched after the RESUME marker,
   * only the unfinished remainder is simulated, and
   * the resumed run completes every cell.

Run it directly (no arguments) from the repository root:

    PYTHONPATH=src python scripts/chaos_resume_check.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import sweep_bench_cells  # noqa: E402
from repro.core import ledger as ledger_module  # noqa: E402
from repro.core.chaos import ChaosPlan  # noqa: E402
from repro.core.experiments.engine import (  # noqa: E402
    SweepEngine,
    cell_digest,
    model_fingerprint,
)
from repro.core.supervise import SupervisionPolicy  # noqa: E402

#: Kill the child once this many cells are DONE (and not all of them).
KILL_AFTER_DONE = 3

#: Give up if the child makes no progress for this long.
CHILD_TIMEOUT = 180.0


def chaos_plan() -> ChaosPlan:
    """Kills + heavy slowdowns: real crashes, and enough wall-clock that
    the parent reliably lands its SIGKILL mid-sweep."""
    return ChaosPlan(
        seed=13,
        kill_probability=0.25,
        slow_probability=0.5,
        slow_seconds=(0.3, 0.8),
        fault_attempts=1,
    )


def policy() -> SupervisionPolicy:
    return SupervisionPolicy(
        item_deadline=30.0,
        heartbeat_interval=1.0,
        heartbeat_grace=5.0,
        max_attempts=3,
        backoff_base=0.05,
        allow_degraded=True,
    )


def child_main(cache_dir: str) -> int:
    """The victim: a chaotic sharded sweep that expects to be killed."""
    with SweepEngine(
        jobs=2, cache_dir=cache_dir, policy=policy(), chaos=chaos_plan()
    ) as engine:
        engine.run_cells(sweep_bench_cells())
        print(engine.stats.line())
    return 0


def wait_for_done(ledger_path: Path, child: subprocess.Popen, want: int) -> int:
    """Poll the journal until ``want`` cells are DONE; returns the count."""
    deadline = time.monotonic() + CHILD_TIMEOUT
    while time.monotonic() < deadline:
        done = len(ledger_module.replay_ledger(ledger_path).done)
        if done >= want:
            return done
        if child.poll() is not None:
            return len(ledger_module.replay_ledger(ledger_path).done)
        time.sleep(0.05)
    raise SystemExit(f"child made no progress within {CHILD_TIMEOUT:.0f}s")


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "--child":
        return child_main(sys.argv[2])

    cells = sweep_bench_cells()
    fingerprint = model_fingerprint()
    digests = {cell_digest(spec, fingerprint) for spec in cells}

    with tempfile.TemporaryDirectory(prefix="repro-chaos-resume-") as tmp:
        cache_dir = str(Path(tmp) / "sweeps")
        ledger_path = Path(cache_dir) / "ledger.jsonl"

        # New session so the SIGKILL reaches the child's pool workers too,
        # exactly like an OOM-killer or job-scheduler kill would.
        child = subprocess.Popen(
            [sys.executable, __file__, "--child", cache_dir],
            start_new_session=True,
        )
        try:
            done_count = wait_for_done(ledger_path, child, KILL_AFTER_DONE)
            if child.poll() is None:
                os.killpg(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup path
                os.killpg(child.pid, signal.SIGKILL)

        before = ledger_module.replay_ledger(ledger_path)
        done_before = set(before.done)
        print(
            f"[parent] killed child after {done_count} DONE cells "
            f"(journal: {before.events} events, torn={before.torn}, "
            f"unfinished={len(before.unfinished)})"
        )
        assert done_before, "child was killed before finishing any cell"
        assert done_before <= digests, "ledger holds cells the sweep never ran"
        if done_before == digests:
            raise SystemExit(
                "child finished every cell before the kill; nothing to "
                "resume — lower KILL_AFTER_DONE or slow the chaos plan"
            )

        with SweepEngine(jobs=2, cache_dir=cache_dir, resume=True) as engine:
            results = engine.run_cells(cells)
            stats = engine.stats
            print(stats.line())

        assert len(results) == len(cells), "resumed run did not complete"
        assert stats.resumed == len(done_before), (
            f"ledger-driven skip was not 100%: {stats.resumed} resumed "
            f"vs {len(done_before)} DONE in the journal"
        )
        assert stats.executed == len(digests) - len(done_before) - stats.cache_hits, (
            "resumed run re-simulated cells the ledger or cache already held"
        )

        # No finished cell may be re-dispatched after the RESUME marker.
        redispatched = set()
        in_resumed_session = False
        for entry in ledger_module.iter_events(ledger_path):
            if entry["state"] == ledger_module.RESUME:
                in_resumed_session = True
            elif (
                in_resumed_session
                and entry["state"] == ledger_module.DISPATCHED
                and entry["item"] in done_before
            ):
                redispatched.add(entry["item"])
        assert not redispatched, (
            f"{len(redispatched)} finished cell(s) re-dispatched after resume"
        )

        after = ledger_module.replay_ledger(ledger_path)
        assert set(after.done) == digests, "journal does not show a full sweep"

    print(
        f"[parent] OK: resume skipped {stats.resumed}/{len(digests)} cells "
        f"from the ledger and simulated the remaining {stats.executed}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
