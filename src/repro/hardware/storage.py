"""Storage architectures (§3.4 of the paper).

HPC deployments typically decouple processing from storage through a shared
file system (GPFS on Minotauro), but node-local disks are also available.
The choice changes where (de-)serialization traffic lands:

* ``LOCAL`` — blocks live on the disks of their owner nodes; a task reading a
  block it does not own first pulls it over the network from the owner.
* ``SHARED`` — every read/write crosses the network to the shared file
  system, which is a single contended resource for the whole cluster.
"""

from __future__ import annotations

import enum


class StorageKind(str, enum.Enum):
    """Which storage architecture the workflow runs against."""

    LOCAL = "local_disk"
    SHARED = "shared_disk"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def label(self) -> str:
        """Human-readable name as used in the paper's figures."""
        return "Local disk" if self is StorageKind.LOCAL else "Shared disk"
