"""Real in-process execution of a workflow.

Tasks run their actual Python functions on real (NumPy) data in
topological order, resolving :class:`DataRef` arguments through a data
store.  This backend exists for correctness: the algorithm tests compare
blocked Matmul against ``numpy.matmul`` and distributed K-means against a
single-machine reference implementation through it.

Wall-clock timings are recorded for completeness but carry no performance
meaning at laptop scale — the simulated backend is the instrument for the
paper's experiments.
"""

from __future__ import annotations

import time
from typing import Any

from repro.runtime.dag import TaskGraph
from repro.runtime.data import DataRef
from repro.tracing import Stage, StageRecord, TaskRecord, Trace


class MissingDataError(KeyError):
    """Raised when a task consumes a ref nothing produced or registered."""


class InProcessExecutor:
    """Executes a workflow's real task functions sequentially."""

    def execute(self, graph: TaskGraph, data: dict[int, Any]) -> Trace:
        """Run all tasks; ``data`` maps ref ids to values and is updated
        in place with every produced output."""
        trace = Trace()
        levels = graph.levels()
        for task in graph.topological_order():
            if task.fn is None:
                raise ValueError(
                    f"task {task.name} has no function; the in-process "
                    "backend requires real task functions"
                )
            args = tuple(self._resolve(a, data, task.name) for a in task.args)
            kwargs = {
                key: self._resolve(value, data, task.name)
                for key, value in task.kwargs.items()
            }
            started = time.perf_counter()
            result = task.fn(*args, **kwargs)
            ended = time.perf_counter()
            self._bind_outputs(task.outputs, result, data, task.name)
            level = levels[task.task_id]
            trace.add_stage(
                StageRecord(
                    task_id=task.task_id,
                    task_type=task.name,
                    stage=Stage.SERIAL_FRACTION,
                    start=started,
                    end=ended,
                    node=0,
                    core=0,
                    level=level,
                    used_gpu=False,
                )
            )
            trace.add_task(
                TaskRecord(
                    task_id=task.task_id,
                    task_type=task.name,
                    start=started,
                    end=ended,
                    node=0,
                    core=0,
                    level=level,
                    used_gpu=False,
                )
            )
        return trace

    @staticmethod
    def _resolve(value: Any, data: dict[int, Any], task_name: str) -> Any:
        if isinstance(value, DataRef):
            if value.ref_id not in data:
                raise MissingDataError(
                    f"task {task_name} consumes unresolved ref {value!r}"
                )
            return data[value.ref_id]
        return value

    @staticmethod
    def _bind_outputs(
        outputs: tuple[DataRef, ...],
        result: Any,
        data: dict[int, Any],
        task_name: str,
    ) -> None:
        if not outputs:
            return
        if len(outputs) == 1:
            data[outputs[0].ref_id] = result
            return
        if not isinstance(result, tuple) or len(result) != len(outputs):
            raise ValueError(
                f"task {task_name} declared {len(outputs)} outputs but "
                f"returned {type(result).__name__}"
            )
        for ref, value in zip(outputs, result):
            data[ref.ref_id] = value
