"""Documentation-code consistency guards.

The README promises a bench per artefact and an example per scenario;
these tests keep the promises true as the repository evolves.
"""

from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def readme() -> str:
    return (REPO / "README.md").read_text()


class TestReadme:
    def test_mentions_every_benchmark_file(self, readme):
        for path in sorted((REPO / "benchmarks").glob("test_*.py")):
            if path.name in (
                "test_simulator_performance.py",
                "test_sweep_performance.py",
            ):
                continue  # meta-benchmarks, not paper artefacts
            assert path.name in readme, f"README does not mention {path.name}"

    def test_mentions_every_example(self, readme):
        for path in sorted((REPO / "examples").glob("*.py")):
            assert path.name in readme, f"README does not mention {path.name}"

    def test_install_instructions_present(self, readme):
        assert "pip install -e ." in readme
        assert "pytest benchmarks/ --benchmark-only" in readme


class TestDesignDoc:
    def test_every_paper_figure_has_an_index_row(self):
        design = (REPO / "DESIGN.md").read_text()
        for figure in ("Figure 1", "Figure 2", "Figure 4", "Figure 5",
                       "Figure 6", "Figure 7", "Figure 8", "Figure 9",
                       "Figure 10", "Figure 11", "Figure 12", "Table 1"):
            assert figure in design, f"DESIGN.md misses {figure}"

    def test_paper_identity_check_present(self):
        design = (REPO / "DESIGN.md").read_text()
        assert "10.48786/edbt.2024.59" in design


class TestExperimentsDoc:
    def test_records_known_divergences(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        assert "Known divergence" in text

    def test_covers_observations(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        assert "O1-O6" in text


class TestDocsDirectory:
    def test_expected_documents_exist(self):
        for name in ("architecture.md", "calibration.md", "reproducing.md",
                     "workloads.md"):
            assert (REPO / "docs" / name).exists(), name

    def test_calibration_doc_matches_code_notes(self):
        from repro.perfmodel.calibration import CALIBRATION_NOTES

        text = (REPO / "docs" / "calibration.md").read_text()
        # Spot-check headline constants appear in the prose.
        assert "16 GFLOP/s" in text
        assert "420 GFLOP/s" in text
        assert CALIBRATION_NOTES["cpu.flops_per_core"][0] == 16.0e9


class TestLintingDoc:
    def test_rule_table_is_current(self):
        """The registry-generated rule table in docs/linting.md matches
        repro.analysis.rule_table() byte for byte."""
        from repro.analysis import rule_table

        text = (REPO / "docs" / "linting.md").read_text()
        start = "<!-- rule-table:start -->"
        end = "<!-- rule-table:end -->"
        assert start in text and end in text
        embedded = text.split(start, 1)[1].split(end, 1)[0].strip()
        assert embedded == rule_table(), (
            "docs/linting.md rule table drifted from the registry — "
            "regenerate it with repro.analysis.rule_table()"
        )

    def test_every_workflow_rule_has_a_prose_section(self):
        from repro.analysis import CODES

        text = (REPO / "docs" / "linting.md").read_text()
        for code in sorted(CODES):
            assert f"#### {code}" in text, (
                f"docs/linting.md has no section for {code}"
            )


class TestApiReference:
    def test_api_doc_is_current(self):
        """docs/api.md matches the current public surface."""
        import sys

        sys.path.insert(0, str(REPO / "scripts"))
        try:
            import build_api_docs
        finally:
            sys.path.pop(0)
        assert (REPO / "docs" / "api.md").read_text() == build_api_docs.build()
