"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_info_prints_cluster(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "minotauro-8" in out
        assert "128 total" in out
        assert "calibration:" in out


class TestRun:
    def test_run_kmeans_cpu(self, capsys):
        code = main(["run", "--algorithm", "kmeans", "--grid", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "partial_sum" in out
        assert "makespan" in out

    def test_run_matmul_gpu_with_gantt(self, capsys):
        code = main(
            ["run", "--algorithm", "matmul", "--dataset", "matmul_128mb",
             "--grid", "4", "--gpu", "--gantt"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "matmul_func" in out
        assert "Gantt" in out

    def test_run_fma(self, capsys):
        code = main(
            ["run", "--algorithm", "matmul_fma", "--dataset", "matmul_128mb",
             "--grid", "2"]
        )
        assert code == 0
        assert "fma_func" in capsys.readouterr().out

    def test_run_local_storage_locality_policy(self, capsys):
        code = main(
            ["run", "--algorithm", "kmeans", "--grid", "8",
             "--storage", "local", "--policy", "data_locality"]
        )
        assert code == 0


class TestFigures:
    def test_fig6(self, capsys):
        assert main(["figures", "fig6"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["figures", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figures", "fig99"])


class TestAdvise:
    def test_advise_kmeans(self, capsys):
        code = main(
            ["advise", "--algorithm", "kmeans", "--dataset", "kmeans_100mb",
             "--grids", "8,2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended:" in out
        assert "Advisor ranking" in out


class TestParser:
    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestDecompose:
    def test_decompose_kmeans(self, capsys):
        code = main(["decompose", "--algorithm", "kmeans", "--grid", "16",
                     "--gpu"])
        assert code == 0
        out = capsys.readouterr().out
        assert "data movement" in out
        assert "idle" in out

    def test_decompose_matmul_local(self, capsys):
        code = main(["decompose", "--algorithm", "matmul", "--dataset",
                     "matmul_128mb", "--grid", "4", "--storage", "local"])
        assert code == 0
        assert "compute" in capsys.readouterr().out


class TestCsvExport:
    def test_table_render_csv(self):
        from repro.core.report import Table

        table = Table("T", headers=("a", "b"))
        table.add_row(1, "x,y")
        text = table.render_csv()
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == '1,"x,y"'


class TestFiguresMore:
    def test_fig1_via_cli(self, capsys):
        assert main(["figures", "fig1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_fig9b_via_cli(self, capsys):
        assert main(["figures", "fig9b"]) == 0
        assert "skew" in capsys.readouterr().out

    def test_save_writes_json(self, capsys, tmp_path):
        assert main(["figures", "fig6", "--save", str(tmp_path)]) == 0
        assert (tmp_path / "fig6.json").exists()
        assert "saved" in capsys.readouterr().out


class TestLint:
    def test_lint_clean_configuration_exits_zero(self, capsys):
        code = main(["lint", "--algorithm", "kmeans", "--grid", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "workflow analysis" in out
        assert "minotauro-8" in out

    def test_lint_fig9a_oom_exits_nonzero(self, capsys):
        code = main(["lint", "--algorithm", "kmeans", "--grid", "1",
                     "--clusters", "1000"])
        assert code == 1
        out = capsys.readouterr().out
        assert "WF101" in out
        assert "ERROR" in out

    def test_lint_json_format(self, capsys):
        import json

        code = main(["lint", "--algorithm", "kmeans", "--grid", "1",
                     "--clusters", "1000", "--gpu", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] >= 1
        codes = {d["code"] for d in payload["diagnostics"]}
        assert {"WF101", "WF102"} <= codes

    def test_lint_gpu_on_cpu_only_preset(self, capsys):
        code = main(["lint", "--algorithm", "kmeans", "--grid", "64",
                     "--gpu", "--preset", "cpu_only"])
        assert code == 1
        assert "WF103" in capsys.readouterr().out

    def test_lint_matmul_smoke(self, capsys):
        code = main(["lint", "--algorithm", "matmul", "--dataset",
                     "matmul_8gb", "--grid", "8"])
        assert code == 0


class TestAdviseMatmul:
    def test_advise_matmul(self, capsys):
        code = main(
            ["advise", "--algorithm", "matmul", "--dataset", "matmul_128mb",
             "--grids", "4,2"]
        )
        assert code == 0
        assert "recommended:" in capsys.readouterr().out


class TestBench:
    def test_bench_writes_report(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_simulator.json"
        code = main(["bench", "--repeats", "1", "--out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "tasks/s" in stdout
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["schema"] == "repro-bench/1"
        names = [row["name"] for row in report["workloads"]]
        assert names == ["matmul16", "kmeans_deep", "wide_dag", "plain_replay"]
        for row in report["workloads"]:
            assert row["num_tasks"] > 0
            assert row["tasks_per_second"] > 0
            assert len(row["wall_seconds"]) == row["repeats"] == 1

    def test_bench_scale_suite_writes_report(self, capsys, tmp_path, monkeypatch):
        import json

        from repro import bench as bench_module

        out = tmp_path / "BENCH_scale.json"
        # The real cells replay 10^5-10^6 tasks; a shrunk cell keeps the
        # CLI wiring (suite selection, report schema, floor evaluation)
        # under test at unit-test cost.
        monkeypatch.setattr(
            bench_module, "SCALE_CELLS", (("scale_tiny", 16, 40, 1, 100.0),)
        )
        code = main(["bench", "--suite", "scale", "--out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "tasks/s" in stdout
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["schema"] == "repro-scale-bench/2"
        (row,) = report["workloads"]
        assert row["name"] == "scale_tiny"
        assert row["workers"] == 1
        assert row["num_tasks"] == 16 * 40
        assert row["floor_tasks_per_second"] == 100.0
        assert row["meets_floor"] is True
        assert row["speedup_vs_serial"] is None

    def test_bench_sweeps_suite_writes_report(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_sweeps.json"
        code = main(["bench", "--suite", "sweeps", "--jobs", "1",
                     "--out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "cells/s" in stdout
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["schema"] == "repro-sweeps-bench/1"
        assert report["warm"]["misses"] == 0
        assert report["byte_identical"] is True
