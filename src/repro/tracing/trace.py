"""Trace records for task-processing stages.

Each task goes through the stages of the paper's Figure 4; the runtime
emits one :class:`StageRecord` per stage plus a :class:`TaskRecord`
summarising the whole task.  Times are simulated seconds for the simulated
backend and wall-clock seconds for the in-process backend.

Storage is columnar: the hot append paths (``add_stage_row`` and
friends, used by the simulated executor) write primitive values into
typed :mod:`array` buffers with task-type and outcome strings interned
to small integer ids, and the record objects are materialised lazily on
first access of :attr:`Trace.stages` / :attr:`Trace.tasks` /
:attr:`Trace.attempts`.  A million-task replay that only reads the
makespan and record counts therefore never builds a single record
object; analysis passes that do iterate records see exactly the objects
the eager API would have produced, in the same order.
"""

from __future__ import annotations

import enum
import math
from array import array
from dataclasses import dataclass


class Stage(str, enum.Enum):
    """Task-processing stages (Figure 4 of the paper).

    ``FAILURE`` and ``RETRY_WAIT`` extend the figure with the fault path
    of :mod:`repro.faults`: a zero-duration failure marker at the instant
    an attempt dies, and the master-side backoff before the task is
    re-queued.  The recovery path adds three more: ``RECOMPUTE`` marks a
    committed task being resurrected because its output blocks were lost
    with a node, ``CHECKPOINT_WRITE`` is the modeled cost of persisting a
    task's outputs to shared storage under a
    :class:`~repro.faults.CheckpointPolicy`, and ``SPECULATIVE`` marks
    the launch of a speculative backup attempt for a straggling task.
    """

    SCHEDULING = "scheduling"
    DESERIALIZATION = "deserialization"
    SERIAL_FRACTION = "serial_fraction"
    PARALLEL_FRACTION = "parallel_fraction"
    CPU_GPU_COMM = "cpu_gpu_comm"
    SERIALIZATION = "serialization"
    FAILURE = "failure"
    RETRY_WAIT = "retry_wait"
    RECOMPUTE = "recompute"
    CHECKPOINT_WRITE = "checkpoint_write"
    SPECULATIVE = "speculative"


#: Dense stage ids for the columnar buffers (enum order is stable).
_STAGES = tuple(Stage)
_STAGE_INDEX = {stage: index for index, stage in enumerate(_STAGES)}


@dataclass(frozen=True, slots=True)
class StageRecord:
    """One stage of one task attempt."""

    task_id: int
    task_type: str
    stage: Stage
    start: float
    end: float
    node: int
    core: int
    level: int
    used_gpu: bool
    #: 1-based attempt number the stage belongs to (1 = first try).
    attempt: int = 1

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"stage {self.stage} of task {self.task_id} ends before it starts"
            )

    @property
    def duration(self) -> float:
        """Stage duration in seconds."""
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class TaskRecord:
    """Whole-task summary (the successful attempt)."""

    task_id: int
    task_type: str
    start: float
    end: float
    node: int
    core: int
    level: int
    used_gpu: bool
    #: 1-based number of the attempt that succeeded (1 = no retries).
    attempt: int = 1

    @property
    def duration(self) -> float:
        """Task duration in seconds, scheduling included."""
        return self.end - self.start


#: Outcome label of a successful attempt; failures carry the fault kind
#: ("crash", "node_failure", "gpu_oom", "timeout") and speculative
#: attempts cancelled after losing the race carry
#: :data:`ATTEMPT_SPECULATION_CANCELLED`.
ATTEMPT_OK = "success"

#: Outcome label of a speculative attempt cancelled because a sibling
#: attempt of the same task committed first.
ATTEMPT_SPECULATION_CANCELLED = "speculation_cancelled"


@dataclass(frozen=True, slots=True)
class TaskAttempt:
    """One try of one task, successful or not.

    Attempt records are emitted only by fault-injecting executions (a
    fault-free trace carries the same information in its task records);
    ``outcome`` is :data:`ATTEMPT_OK` or the failure kind.
    """

    task_id: int
    task_type: str
    attempt: int
    start: float
    end: float
    node: int
    core: int
    level: int
    used_gpu: bool
    outcome: str

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"attempt {self.attempt} of task {self.task_id} "
                "ends before it starts"
            )
        if self.attempt < 1:
            raise ValueError("attempt numbers are 1-based")

    @property
    def ok(self) -> bool:
        """Whether the attempt completed the task."""
        return self.outcome == ATTEMPT_OK

    @property
    def duration(self) -> float:
        """Attempt duration in seconds."""
        return self.end - self.start


class _Columns:
    """Typed column buffers for not-yet-materialised records.

    One instance backs one record kind; ``kind`` holds the stage id for
    stage rows and the outcome id for attempt rows (unused for task
    rows).  Every column is an :mod:`array` of primitives, so a pending
    record costs ~50 bytes instead of a boxed dataclass.
    """

    __slots__ = (
        "task_id", "type_id", "kind", "start", "end",
        "node", "core", "level", "used_gpu", "attempt",
    )

    def __init__(self) -> None:
        self.task_id = array("q")
        self.type_id = array("i")
        self.kind = array("i")
        self.start = array("d")
        self.end = array("d")
        self.node = array("i")
        self.core = array("i")
        self.level = array("i")
        self.used_gpu = array("b")
        self.attempt = array("i")

    def __len__(self) -> int:
        return len(self.task_id)


class Trace:
    """An append-only collection of stage, task, and attempt records."""

    def __init__(self) -> None:
        # Materialised record prefix + pending columnar suffix per kind.
        # Appending a record object first drains the pending columns, so
        # the two append styles can interleave without reordering.
        self._stage_records: list[StageRecord] = []
        self._stage_cols = _Columns()
        self._task_records: list[TaskRecord] = []
        self._task_cols = _Columns()
        self._attempt_records: list[TaskAttempt] = []
        self._attempt_cols = _Columns()
        #: Interned string table shared by task types and outcomes.
        self._names: list[str] = []
        self._name_ids: dict[str, int] = {}

    def _intern(self, name: str) -> int:
        name_id = self._name_ids.get(name)
        if name_id is None:
            name_id = len(self._names)
            self._name_ids[name] = name_id
            self._names.append(name)
        return name_id

    # ---------------------------------------------------------- fast appends
    def add_stage_row(
        self,
        task_id: int,
        task_type: str,
        stage: Stage,
        start: float,
        end: float,
        node: int,
        core: int,
        level: int,
        used_gpu: bool,
        attempt: int = 1,
    ) -> None:
        """Append one stage as primitive columns (no record object)."""
        if end < start:
            raise ValueError(
                f"stage {stage} of task {task_id} ends before it starts"
            )
        cols = self._stage_cols
        cols.task_id.append(task_id)
        cols.type_id.append(self._intern(task_type))
        cols.kind.append(_STAGE_INDEX[stage])
        cols.start.append(start)
        cols.end.append(end)
        cols.node.append(node)
        cols.core.append(core)
        cols.level.append(level)
        cols.used_gpu.append(used_gpu)
        cols.attempt.append(attempt)

    def add_task_row(
        self,
        task_id: int,
        task_type: str,
        start: float,
        end: float,
        node: int,
        core: int,
        level: int,
        used_gpu: bool,
        attempt: int = 1,
    ) -> None:
        """Append one whole-task summary as primitive columns."""
        cols = self._task_cols
        cols.task_id.append(task_id)
        cols.type_id.append(self._intern(task_type))
        cols.kind.append(0)
        cols.start.append(start)
        cols.end.append(end)
        cols.node.append(node)
        cols.core.append(core)
        cols.level.append(level)
        cols.used_gpu.append(used_gpu)
        cols.attempt.append(attempt)

    def add_attempt_row(
        self,
        task_id: int,
        task_type: str,
        attempt: int,
        start: float,
        end: float,
        node: int,
        core: int,
        level: int,
        used_gpu: bool,
        outcome: str,
    ) -> None:
        """Append one task attempt as primitive columns."""
        if end < start:
            raise ValueError(
                f"attempt {attempt} of task {task_id} ends before it starts"
            )
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        cols = self._attempt_cols
        cols.task_id.append(task_id)
        cols.type_id.append(self._intern(task_type))
        cols.kind.append(self._intern(outcome))
        cols.start.append(start)
        cols.end.append(end)
        cols.node.append(node)
        cols.core.append(core)
        cols.level.append(level)
        cols.used_gpu.append(used_gpu)
        cols.attempt.append(attempt)

    # -------------------------------------------------------- record appends
    def add_stage(self, record: StageRecord) -> None:
        """Append a stage record."""
        self.stages.append(record)

    def add_task(self, record: TaskRecord) -> None:
        """Append a whole-task record."""
        self.tasks.append(record)

    def add_attempt(self, record: TaskAttempt) -> None:
        """Append a task-attempt record."""
        self.attempts.append(record)

    # ------------------------------------------------------- materialisation
    @property
    def stages(self) -> list[StageRecord]:
        """All stage records, materialising any pending columns."""
        cols = self._stage_cols
        if len(cols):
            names = self._names
            self._stage_records.extend(
                StageRecord(
                    task_id=cols.task_id[i],
                    task_type=names[cols.type_id[i]],
                    stage=_STAGES[cols.kind[i]],
                    start=cols.start[i],
                    end=cols.end[i],
                    node=cols.node[i],
                    core=cols.core[i],
                    level=cols.level[i],
                    used_gpu=bool(cols.used_gpu[i]),
                    attempt=cols.attempt[i],
                )
                for i in range(len(cols))
            )
            self._stage_cols = _Columns()
        return self._stage_records

    @property
    def tasks(self) -> list[TaskRecord]:
        """All whole-task records, materialising any pending columns."""
        cols = self._task_cols
        if len(cols):
            names = self._names
            self._task_records.extend(
                TaskRecord(
                    task_id=cols.task_id[i],
                    task_type=names[cols.type_id[i]],
                    start=cols.start[i],
                    end=cols.end[i],
                    node=cols.node[i],
                    core=cols.core[i],
                    level=cols.level[i],
                    used_gpu=bool(cols.used_gpu[i]),
                    attempt=cols.attempt[i],
                )
                for i in range(len(cols))
            )
            self._task_cols = _Columns()
        return self._task_records

    @property
    def attempts(self) -> list[TaskAttempt]:
        """All attempt records, materialising any pending columns."""
        cols = self._attempt_cols
        if len(cols):
            names = self._names
            self._attempt_records.extend(
                TaskAttempt(
                    task_id=cols.task_id[i],
                    task_type=names[cols.type_id[i]],
                    attempt=cols.attempt[i],
                    start=cols.start[i],
                    end=cols.end[i],
                    node=cols.node[i],
                    core=cols.core[i],
                    level=cols.level[i],
                    used_gpu=bool(cols.used_gpu[i]),
                    outcome=names[cols.kind[i]],
                )
                for i in range(len(cols))
            )
            self._attempt_cols = _Columns()
        return self._attempt_records

    # ---------------------------------------------------------- cheap counts
    @property
    def num_stage_records(self) -> int:
        """Stage-record count without materialising pending columns."""
        return len(self._stage_records) + len(self._stage_cols)

    @property
    def num_task_records(self) -> int:
        """Task-record count without materialising pending columns."""
        return len(self._task_records) + len(self._task_cols)

    @property
    def num_attempt_records(self) -> int:
        """Attempt-record count without materialising pending columns."""
        return len(self._attempt_records) + len(self._attempt_cols)

    # -------------------------------------------------------------- analysis
    @property
    def makespan(self) -> float:
        """Wall time from the first task start to the last task end.

        Counts successful tasks only; :attr:`recovered_span` additionally
        covers failed attempts and retry waits.  Computed straight from
        the column buffers, so reading it does not materialise records.
        """
        lo = math.inf
        hi = -math.inf
        for record in self._task_records:
            lo = min(lo, record.start)
            hi = max(hi, record.end)
        cols = self._task_cols
        if len(cols):
            lo = min(lo, min(cols.start))
            hi = max(hi, max(cols.end))
        if lo is math.inf:
            return 0.0
        return hi - lo

    @property
    def recovered_span(self) -> float:
        """Wall time including failed attempts and retry backoff.

        Equals :attr:`makespan` for fault-free traces; for a run that
        failed permanently (no successful record of some task) this is
        the only span covering the work actually performed.
        """
        points = [(t.start, t.end) for t in self.tasks]
        points += [(a.start, a.end) for a in self.attempts]
        points += [
            (r.start, r.end)
            for r in self.stages
            if r.stage in (Stage.FAILURE, Stage.RETRY_WAIT)
        ]
        if not points:
            return 0.0
        return max(end for _, end in points) - min(start for start, _ in points)

    def occupancy(self) -> list["TaskAttempt"] | list["TaskRecord"]:
        """The records that describe core occupancy over time.

        Fault-injecting executions record every try as a
        :class:`TaskAttempt`; fault-free executions carry the same
        information in their task records.  Resource-accounting passes
        (per-core overlap, RAM/GPU conservation) should sweep these
        records rather than picking one of the two lists themselves.
        """
        if self.num_attempt_records:
            return self.attempts
        return self.tasks

    def attempts_of(self, task_id: int) -> list["TaskAttempt"]:
        """All attempts of one task, ordered by attempt number."""
        return sorted(
            (a for a in self.attempts if a.task_id == task_id),
            key=lambda a: a.attempt,
        )

    def attempt_counts(self) -> dict[int, int]:
        """Tries per task id.

        Falls back to the task records (one attempt each) when the trace
        carries no attempt records — i.e. for fault-free executions.
        """
        if not self.num_attempt_records:
            return {t.task_id: 1 for t in self.tasks}
        counts: dict[int, int] = {}
        for attempt in self.attempts:
            counts[attempt.task_id] = max(
                counts.get(attempt.task_id, 0), attempt.attempt
            )
        return counts

    def stages_of(self, stage: Stage) -> list[StageRecord]:
        """All records of one stage kind."""
        return [r for r in self.stages if r.stage is stage]

    def stages_of_task_type(self, task_type: str) -> list[StageRecord]:
        """All stage records belonging to one task type."""
        return [r for r in self.stages if r.task_type == task_type]

    def task_types(self) -> list[str]:
        """Distinct task types in first-seen order."""
        seen: dict[str, None] = {}
        for record in self.tasks:
            seen.setdefault(record.task_type, None)
        return list(seen)

    def levels(self) -> list[int]:
        """Distinct DAG levels present, ascending."""
        return sorted({t.level for t in self.tasks})
