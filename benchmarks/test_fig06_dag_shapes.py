"""Benchmark E2 — Figure 6: DAG shapes of the two algorithm families.

Paper shape: the PyCOMPSs DAG for Matmul 4x4 holds 112 tasks (64
matmul_func + 48 add_func) and is wide-shallow; K-means 4x1 x 3
iterations is narrow-deep.
"""

from repro.core.experiments import run_fig6


def test_fig6_dag_shapes(once):
    result = once(run_fig6)
    print()
    print(result.render())
    assert result.matmul.num_tasks == 112
    assert result.matmul.tasks_per_type == {"matmul_func": 64, "add_func": 48}
    assert result.matmul.aspect > 1.0
    assert result.kmeans.aspect < 1.0
