"""Factor correlation analysis on a custom design (§5.4 as a tool).

Builds a small factorial design over the Table-1 factors, executes every
sample on the simulated cluster, and prints the Spearman correlation of
each factor with the parallel-task execution time — the same procedure
behind the paper's Figure 11, usable on any workload mix.

Run:  python examples/correlation_analysis.py
"""

from repro.core.experiments.fig11 import SamplePlan, run_fig11
from repro.core.report import Table
from repro.hardware import StorageKind
from repro.runtime import SchedulingPolicy


def small_design():
    """A ~60-sample design that runs in a few seconds."""
    plans = []
    shared = StorageKind.SHARED
    local = StorageKind.LOCAL
    gen = SchedulingPolicy.GENERATION_ORDER
    loc = SchedulingPolicy.DATA_LOCALITY
    for grid in (8, 4, 2):
        for gpu in (False, True):
            for storage, sched in ((shared, gen), (local, gen), (shared, loc)):
                plans.append(
                    SamplePlan("matmul", "matmul_8gb", grid, 0, gpu, storage, sched)
                )
    for grid in (128, 32, 8, 2):
        for gpu in (False, True):
            for clusters in (10, 100):
                plans.append(
                    SamplePlan(
                        "kmeans", "kmeans_10gb", grid, clusters, gpu, shared, gen
                    )
                )
    return plans


def main():
    result = run_fig11(small_design())
    print(
        f"executed {result.n_samples} samples "
        f"({result.n_oom} OOM of {result.n_planned} planned)\n"
    )
    table = Table(
        title="Spearman correlation with parallel-task execution time",
        headers=("factor / parameter", "rho"),
    )
    column = result.matrix.column("parallel_task_exec_time")
    for feature, rho in sorted(column.items(), key=lambda kv: -abs(kv[1])):
        table.add_row(feature, f"{rho:+.3f}")
    print(table.render())
    print(
        "\nComputational complexity, parallel fraction, and block size "
        "dominate; no single\nfactor explains the execution time alone — "
        "the paper's core claim."
    )


if __name__ == "__main__":
    main()
