"""Supervision contracts: the policy/bookkeeping state machine without
processes, the overdue-worker detector against stub workers, and the
process-level paths a policy changes — a hung worker reclaimed by its
item deadline, and a pool degrading (or refusing to) when its respawn
budget runs dry."""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

import pytest

from repro.core.shard import ShardCrashError, ShardItem, ShardPool
from repro.core.supervise import (
    REASON_CRASH,
    REASON_DEADLINE,
    REASON_HEARTBEAT,
    BatchSupervisor,
    ShardRunReport,
    SupervisionPolicy,
    describe_exit,
    overdue_workers,
)


class TestPolicy:
    def test_defaults_reproduce_the_legacy_contract(self):
        policy = SupervisionPolicy()
        assert policy.item_deadline is None
        assert policy.heartbeat_interval is None
        assert policy.heartbeat_timeout is None
        assert policy.max_attempts == 2
        assert policy.backoff(1) == 0.0
        assert policy.allow_degraded is False

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            SupervisionPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="item_deadline"):
            SupervisionPolicy(item_deadline=0.0)
        with pytest.raises(ValueError, match="heartbeat_interval"):
            SupervisionPolicy(heartbeat_interval=-1.0)

    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = SupervisionPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3
        )
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.3)  # capped, not 0.4
        assert policy.backoff(0) == 0.0

    def test_heartbeat_timeout_is_interval_times_grace(self):
        policy = SupervisionPolicy(heartbeat_interval=0.5, heartbeat_grace=4.0)
        assert policy.heartbeat_timeout == pytest.approx(2.0)


class TestBatchSupervisor:
    def test_dispatch_counting_and_attempts_map(self):
        sup = BatchSupervisor(SupervisionPolicy(max_attempts=3))
        assert sup.note_dispatch("a") == 1
        assert sup.note_dispatch("a") == 2
        assert sup.note_dispatch("b") == 1
        assert sup.attempts("a") == 2
        assert sup.attempts("missing") == 0
        # Only instances that needed more than one dispatch are reported.
        assert sup.attempts_map() == {"a": 2}

    def test_losses_retry_until_the_attempt_budget_then_quarantine(self):
        sup = BatchSupervisor(
            SupervisionPolicy(max_attempts=2, backoff_base=0.1)
        )
        sup.note_dispatch("a")
        verdict, delay = sup.record_loss("a", REASON_CRASH)
        assert verdict == "retry"
        assert delay == pytest.approx(0.1)
        sup.note_dispatch("a")
        verdict, reason = sup.record_loss("a", REASON_CRASH, "exit code 42")
        assert verdict == "quarantine"
        assert "killed its worker 2 time(s)" in reason
        assert "exit code 42" in reason
        assert "2 of 2 attempt(s)" in reason

    def test_quarantine_reason_names_every_loss_mode(self):
        sup = BatchSupervisor(SupervisionPolicy(max_attempts=3))
        for reason in (REASON_CRASH, REASON_DEADLINE, REASON_HEARTBEAT):
            sup.note_dispatch("a")
            sup.record_loss("a", reason)
        text = sup.quarantine_reason("a")
        assert "killed its worker 1 time(s)" in text
        assert "exceeded its deadline 1 time(s)" in text
        assert "froze its worker 1 time(s)" in text


class TestDescribeExit:
    def test_renders_all_exit_shapes(self):
        assert describe_exit(None) == "exit code unknown"
        assert describe_exit(-9) == "killed by signal 9"
        assert describe_exit(3) == "exit code 3"


# --------------------------------------------------- overdue detection

class _StubProcess:
    def __init__(self, alive: bool = True) -> None:
        self._alive = alive

    def is_alive(self) -> bool:
        return self._alive


class _StubWorker:
    def __init__(
        self,
        alive: bool = True,
        inflight=None,
        dispatched_at: float | None = None,
        last_beat: float = 0.0,
    ) -> None:
        self.process = _StubProcess(alive)
        self.inflight = inflight
        self.dispatched_at = dispatched_at
        self.last_beat = last_beat


class TestOverdueWorkers:
    def test_default_policy_never_flags_anyone(self):
        workers = {0: _StubWorker(inflight="x", dispatched_at=0.0)}
        assert overdue_workers(workers, SupervisionPolicy(), now=1e9) == []

    def test_blown_item_deadline_is_flagged(self):
        policy = SupervisionPolicy(item_deadline=1.0)
        workers = {
            0: _StubWorker(inflight="x", dispatched_at=0.0, last_beat=2.0),
            1: _StubWorker(inflight=None, last_beat=2.0),  # idle: no deadline
        }
        verdicts = overdue_workers(workers, policy, now=2.0)
        assert verdicts == [(0, REASON_DEADLINE, "no result after 1s")]

    def test_silent_worker_is_flagged_even_when_idle(self):
        policy = SupervisionPolicy(heartbeat_interval=0.5, heartbeat_grace=3.0)
        workers = {
            0: _StubWorker(inflight=None, last_beat=0.0),
            1: _StubWorker(inflight=None, last_beat=1.9),
        }
        verdicts = overdue_workers(workers, policy, now=2.0)
        assert verdicts == [(0, REASON_HEARTBEAT, "no heartbeat for 1.5s")]

    def test_deadline_wins_when_both_trip(self):
        policy = SupervisionPolicy(
            item_deadline=1.0, heartbeat_interval=0.1, heartbeat_grace=2.0
        )
        workers = {0: _StubWorker(inflight="x", dispatched_at=0.0, last_beat=0.0)}
        ((_, reason, _),) = overdue_workers(workers, policy, now=5.0)
        assert reason == REASON_DEADLINE

    def test_dead_processes_are_someone_elses_problem(self):
        """Crash reaping owns dead workers; the overdue detector only
        judges processes that are still alive."""
        policy = SupervisionPolicy(item_deadline=0.5, heartbeat_interval=0.1)
        workers = {0: _StubWorker(alive=False, inflight="x", dispatched_at=0.0)}
        assert overdue_workers(workers, policy, now=100.0) == []


# --------------------------------------------- process-level supervision

def _hang_once(marker: str) -> str:
    """Wedge (sleep far past any deadline) on the first invocation only.

    The process stays alive and — because only the main thread sleeps —
    keeps heartbeating, so exactly the item deadline must reclaim it.
    """
    with open(marker, "a") as handle:
        handle.write("x")
    if os.path.getsize(marker) == 1:
        time.sleep(60.0)
    return "finished"


def _crash_once(marker: str) -> str:
    with open(marker, "a") as handle:
        handle.write("x")
    if os.path.getsize(marker) == 1:
        os._exit(42)
    return "survived"


def _identity(value: int) -> int:
    return value


def _slow_identity(value: int) -> int:
    time.sleep(0.4)
    return value


class TestSupervisedPool:
    def test_hung_worker_is_reclaimed_by_the_item_deadline(self):
        policy = SupervisionPolicy(
            item_deadline=1.0, max_attempts=3, kill_grace=0.5
        )
        events = []
        with tempfile.TemporaryDirectory() as scratch:
            marker = str(Path(scratch) / "invocations")
            started = time.perf_counter()
            with ShardPool(workers=2, start_method="fork", policy=policy) as pool:
                report = pool.run_report(
                    [
                        ShardItem(instance_id=0, fn=_identity, args=(10,)),
                        ShardItem(instance_id=1, fn=_hang_once, args=(marker,)),
                    ],
                    on_event=lambda kind, info: events.append((kind, info)),
                )
            wall = time.perf_counter() - started
            assert report.ok
            assert report.results == {0: 10, 1: "finished"}
            assert Path(marker).stat().st_size == 2
        assert report.worker_kills >= 1
        assert report.attempts == {1: 2}
        kills = [info for kind, info in events if kind == "kill"]
        assert any(k["reason"] == REASON_DEADLINE for k in kills)
        # The whole point: nothing waited out the 60 s sleep.
        assert wall < 30.0

    def test_spent_respawn_budget_degrades_when_allowed(self):
        policy = SupervisionPolicy(max_attempts=3, allow_degraded=True)
        events = []
        with tempfile.TemporaryDirectory() as scratch:
            marker = str(Path(scratch) / "invocations")
            with ShardPool(workers=2, start_method="fork", policy=policy) as pool:
                pool._respawn_budget = 0
                # The surviving items are slow so the batch is still
                # outstanding when the crash is reaped — the pool must
                # actually *want* a replacement worker to hit the budget.
                report = pool.run_report(
                    [
                        ShardItem(instance_id=0, fn=_crash_once, args=(marker,)),
                        ShardItem(instance_id=1, fn=_slow_identity, args=(20,)),
                        ShardItem(instance_id=2, fn=_slow_identity, args=(30,)),
                    ],
                    on_event=lambda kind, info: events.append((kind, info)),
                )
        assert report.ok
        assert report.degraded is True
        assert report.respawns == 0
        assert report.worker_crashes == 1
        assert report.results == {0: "survived", 1: 20, 2: 30}
        degraded = [info for kind, info in events if kind == "degraded"]
        assert degraded and degraded[0]["reason"] == "worker respawn budget exhausted"

    def test_spent_respawn_budget_raises_by_default(self):
        with tempfile.TemporaryDirectory() as scratch:
            marker = str(Path(scratch) / "invocations")
            with ShardPool(workers=1, start_method="fork") as pool:
                pool._respawn_budget = 0
                with pytest.raises(
                    ShardCrashError, match="respawn budget exhausted"
                ):
                    pool.run(
                        [ShardItem(instance_id=0, fn=_crash_once, args=(marker,))]
                    )

    def test_run_report_collects_errors_without_raising(self):
        with ShardPool(workers=1, start_method="fork") as pool:
            report = pool.run_report(
                [
                    ShardItem(instance_id=0, fn=_raise_value_error, args=("bad",)),
                    ShardItem(instance_id=1, fn=_identity, args=(7,)),
                ]
            )
        assert not report.ok
        assert report.results == {1: 7}
        assert report.errors == {0: ("ValueError", "bad")}
        assert report.quarantined == {}


def _raise_value_error(payload: str) -> None:
    raise ValueError(payload)


class TestShardRunReport:
    def test_ok_reflects_errors_and_quarantine(self):
        assert ShardRunReport().ok
        assert not ShardRunReport(errors={1: ("E", "m")}).ok
        assert not ShardRunReport(quarantined={1: "poison"}).ok
