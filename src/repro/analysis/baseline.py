"""Baseline files: land strict rules without breaking existing code.

A baseline is a committed JSON file holding the *fingerprints* of known,
reviewed findings.  A lint run then fails only on findings whose
fingerprint is not in the baseline, so a new rule can ship error-strict
while the pre-existing, audited hits are burned down over time — the
workflow ``repro devlint --write-baseline`` regenerates the file after a
hit is fixed or a new one is accepted.

Fingerprints are chosen to survive unrelated edits:

* devlint findings fingerprint as ``path|code|symbol`` (the enclosing
  function/class qualname, not the line number, so reflowing a module
  does not invalidate the baseline);
* workflow diagnostics fingerprint as ``code|task_type`` (task ids are
  build-order artifacts).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

#: Format marker so future fingerprint schemes can migrate old files.
BASELINE_VERSION = 1


def load_baseline(path: str | Path) -> set[str]:
    """The fingerprints recorded in a baseline file.

    A missing file is an empty baseline (every finding is new), so CI
    can run the same command before and after the file first lands.
    """
    path = Path(path)
    if not path.exists():
        return set()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has unsupported version "
            f"{payload.get('version')!r} (expected {BASELINE_VERSION})"
        )
    return set(payload.get("fingerprints", []))


def save_baseline(path: str | Path, fingerprints: Iterable[str]) -> Path:
    """Write a baseline file (deterministic bytes, sorted fingerprints)."""
    from repro.core.persistence import dumps_deterministic

    path = Path(path)
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": sorted(set(fingerprints)),
    }
    path.write_text(dumps_deterministic(payload), encoding="utf-8")
    return path


def filter_new(
    findings: Iterable, baseline: set[str]
) -> tuple[list, list]:
    """Split findings into (new, baselined) by their ``fingerprint()``."""
    new, known = [], []
    for finding in findings:
        if finding.fingerprint() in baseline:
            known.append(finding)
        else:
            new.append(finding)
    return new, known
