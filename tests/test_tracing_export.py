"""Tests for trace export/import and the ASCII Gantt view."""

import io

import pytest

from repro.perfmodel import TaskCost
from repro.runtime import Runtime, RuntimeConfig
from repro.tracing import Stage, Trace, dump_trace, gantt, load_trace


def _sample_trace() -> Trace:
    cost = TaskCost(
        serial_flops=16e9,
        parallel_flops=32e9,
        parallel_items=1e7,
        arithmetic_intensity=10.0,
        input_bytes=10**7,
        output_bytes=10**6,
        host_device_bytes=0,
        gpu_memory_bytes=0,
    )
    rt = Runtime(RuntimeConfig())
    for i in range(6):
        ref = rt.register_input(10**7, name=f"in{i}")
        rt.submit(name="work", inputs=[ref], cost=cost)
    return rt.run().trace


class TestRoundTrip:
    def test_lossless_through_stream(self):
        trace = _sample_trace()
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert loaded.stages == trace.stages
        assert loaded.tasks == trace.tasks

    def test_lossless_through_file(self, tmp_path):
        trace = _sample_trace()
        path = tmp_path / "trace.jsonl"
        dump_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.makespan == trace.makespan
        assert len(loaded.stages) == len(trace.stages)

    def test_blank_lines_ignored(self):
        trace = _sample_trace()
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        text = buffer.getvalue() + "\n\n"
        loaded = load_trace(io.StringIO(text))
        assert len(loaded.tasks) == len(trace.tasks)

    def test_unknown_kind_rejected(self):
        bad = io.StringIO('{"kind": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record kind"):
            load_trace(bad)

    def test_stage_enum_survives(self):
        trace = _sample_trace()
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert all(isinstance(r.stage, Stage) for r in loaded.stages)


class TestGantt:
    def test_empty_trace(self):
        assert gantt(Trace()) == "(empty trace)"

    def test_rows_per_active_core(self):
        trace = _sample_trace()
        text = gantt(trace, width=60)
        active_cores = {(r.node, r.core) for r in trace.stages}
        # Header line + one line per core.
        assert len(text.splitlines()) == 1 + len(active_cores)

    def test_glyphs_present(self):
        trace = _sample_trace()
        text = gantt(trace, width=60)
        assert "d" in text  # deserialization happened
        assert "F" in text  # serial fraction happened

    def test_max_rows_truncation(self):
        trace = _sample_trace()
        active_cores = {(r.node, r.core) for r in trace.stages}
        if len(active_cores) > 2:
            text = gantt(trace, width=40, max_rows=2)
            assert "more cores" in text

    def test_row_width_fixed(self):
        trace = _sample_trace()
        for line in gantt(trace, width=50).splitlines()[1:]:
            if line.startswith("n"):
                body = line.split("|")[1]
                assert len(body) == 50
