"""Concurrent real execution of a workflow on a thread pool.

The sequential in-process backend is the correctness oracle; this backend
executes the same real task functions *concurrently*, respecting the DAG:
a task is submitted to the pool as soon as its inputs are bound.  NumPy
kernels release the GIL, so independent blocks genuinely overlap — which
makes the runtime usable as a small local dataflow engine, not only a
test harness.

Determinism note: results are deterministic (each ref is written exactly
once, by its producer), but stage timestamps are wall-clock and vary
between runs.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.runtime.backends.inprocess import InProcessExecutor, MissingDataError
from repro.runtime.dag import TaskGraph
from repro.runtime.data import DataRef
from repro.runtime.task import Task
from repro.tracing import Stage, StageRecord, TaskRecord, Trace


class ThreadedExecutor:
    """Executes a workflow's real task functions on a thread pool."""

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def execute(self, graph: TaskGraph, data: dict[int, Any]) -> Trace:
        """Run all tasks; ``data`` is updated in place with every output."""
        trace = Trace()
        levels = graph.levels()
        lock = threading.Lock()
        # Stable worker-thread -> core-slot mapping, so concurrent tasks
        # are stamped on distinct cores and the per-core non-overlap
        # trace invariant holds for this backend too.
        core_of_thread: dict[int, int] = {}

        def core_slot_locked() -> int:
            ident = threading.get_ident()
            if ident not in core_of_thread:
                core_of_thread[ident] = len(core_of_thread)
            return core_of_thread[ident]
        indegree = {
            t.task_id: len(graph.predecessors(t.task_id)) for t in graph.tasks()
        }
        failed: list[BaseException] = []
        done = threading.Event()
        remaining = {"count": graph.num_tasks}
        if remaining["count"] == 0:
            return trace

        pool = ThreadPoolExecutor(max_workers=self.max_workers)

        def submit_ready_locked() -> list[Task]:
            ready = [
                graph.task(task_id)
                for task_id, degree in indegree.items()
                if degree == 0
            ]
            for task in ready:
                indegree[task.task_id] = -1  # claimed
            return ready

        def run_task(task: Task) -> None:
            try:
                args = tuple(
                    InProcessExecutor._resolve(a, data, task.name)
                    for a in task.args
                )
                kwargs = {
                    key: InProcessExecutor._resolve(value, data, task.name)
                    for key, value in task.kwargs.items()
                }
                if task.fn is None:
                    raise ValueError(
                        f"task {task.name} has no function; the threaded "
                        "backend requires real task functions"
                    )
                started = time.perf_counter()
                result = task.fn(*args, **kwargs)
                ended = time.perf_counter()
                with lock:
                    InProcessExecutor._bind_outputs(
                        task.outputs, result, data, task.name
                    )
                    level = levels[task.task_id]
                    core = core_slot_locked()
                    trace.add_stage(
                        StageRecord(
                            task_id=task.task_id,
                            task_type=task.name,
                            stage=Stage.SERIAL_FRACTION,
                            start=started,
                            end=ended,
                            node=0,
                            core=core,
                            level=level,
                            used_gpu=False,
                        )
                    )
                    trace.add_task(
                        TaskRecord(
                            task_id=task.task_id,
                            task_type=task.name,
                            start=started,
                            end=ended,
                            node=0,
                            core=core,
                            level=level,
                            used_gpu=False,
                        )
                    )
                    for successor in graph.successors(task.task_id):
                        if indegree[successor.task_id] > 0:
                            indegree[successor.task_id] -= 1
                    newly_ready = submit_ready_locked()
                    remaining["count"] -= 1
                    if remaining["count"] == 0:
                        done.set()
                for next_task in newly_ready:
                    pool.submit(run_task, next_task)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                with lock:
                    failed.append(error)
                done.set()

        with lock:
            roots = submit_ready_locked()
        if not roots:
            pool.shutdown(wait=False)
            raise MissingDataError("workflow has tasks but no runnable roots")
        for task in roots:
            pool.submit(run_task, task)
        done.wait()
        pool.shutdown(wait=True)
        if failed:
            raise failed[0]
        if remaining["count"] != 0:
            raise RuntimeError(
                f"threaded execution stalled with {remaining['count']} tasks left"
            )
        return trace
