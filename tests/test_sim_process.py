"""Unit tests for the generator-based process layer."""

import pytest

from repro.sim import (
    Acquire,
    AllOf,
    BandwidthResource,
    CapacityResource,
    Process,
    Release,
    SimEvent,
    SimulationError,
    Simulator,
    Timeout,
    Transfer,
    WaitEvent,
)


class TestProcessBasics:
    def test_timeout_advances_clock(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.5)
            yield Timeout(0.5)

        p = Process(sim, proc())
        sim.run()
        assert p.done.fired
        assert sim.now == 2.0

    def test_return_value_propagates_through_done_event(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            return "result"

        p = Process(sim, proc())
        sim.run()
        assert p.done.value == "result"

    def test_exception_fails_done_event(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            raise ValueError("boom")

        p = Process(sim, proc())
        sim.run()
        assert p.done.fired
        assert isinstance(p.done.error, ValueError)
        with pytest.raises(ValueError):
            _ = p.done.value

    def test_unknown_command_raises_inside_process(self):
        sim = Simulator()

        def proc():
            yield "not a command"

        p = Process(sim, proc())
        sim.run()
        assert isinstance(p.done.error, SimulationError)


class TestResourceCommands:
    def test_acquire_release_roundtrip(self):
        sim = Simulator()
        res = CapacityResource(sim, 1)
        order = []

        def proc(name, hold):
            yield Acquire(res)
            order.append((name, "in", sim.now))
            yield Timeout(hold)
            yield Release(res)
            order.append((name, "out", sim.now))

        Process(sim, proc("a", 1.0))
        Process(sim, proc("b", 1.0))
        sim.run()
        assert order[0][:2] == ("a", "in")
        b_in = [o for o in order if o[:2] == ("b", "in")][0]
        assert b_in[2] == pytest.approx(1.0)

    def test_transfer_through_bandwidth_resource(self):
        sim = Simulator()
        disk = BandwidthResource(sim, 10.0)
        times = []

        def proc():
            yield Transfer(disk, 20.0)
            times.append(sim.now)

        Process(sim, proc())
        sim.run()
        assert times == [pytest.approx(2.0)]


class TestEventCommands:
    def test_wait_event_receives_value(self):
        sim = Simulator()
        gate = SimEvent()
        got = []

        def waiter():
            value = yield WaitEvent(gate)
            got.append((value, sim.now))

        Process(sim, waiter())
        sim.schedule(2.0, gate.succeed, 42)
        sim.run()
        assert got == [(42, 2.0)]

    def test_wait_on_already_fired_event(self):
        sim = Simulator()
        gate = SimEvent()
        gate.succeed("early")
        got = []

        def waiter():
            value = yield WaitEvent(gate)
            got.append(value)

        Process(sim, waiter())
        sim.run()
        assert got == ["early"]

    def test_failed_event_raises_in_waiter(self):
        sim = Simulator()
        gate = SimEvent()
        caught = []

        def waiter():
            try:
                yield WaitEvent(gate)
            except RuntimeError as error:
                caught.append(str(error))

        Process(sim, waiter())
        sim.schedule(1.0, gate.fail, RuntimeError("bad"))
        sim.run()
        assert caught == ["bad"]

    def test_all_of_waits_for_every_event(self):
        sim = Simulator()
        gates = [SimEvent() for _ in range(3)]
        got = []

        def waiter():
            values = yield AllOf(gates)
            got.append((values, sim.now))

        Process(sim, waiter())
        for i, gate in enumerate(gates):
            sim.schedule(float(i + 1), gate.succeed, i)
        sim.run()
        assert got == [([0, 1, 2], 3.0)]

    def test_all_of_empty_completes_immediately(self):
        sim = Simulator()
        got = []

        def waiter():
            values = yield AllOf([])
            got.append(values)

        Process(sim, waiter())
        sim.run()
        assert got == [[]]

    def test_processes_wait_on_each_other(self):
        sim = Simulator()

        def producer():
            yield Timeout(2.0)
            return "payload"

        prod = Process(sim, producer())
        got = []

        def consumer():
            value = yield WaitEvent(prod.done)
            got.append((value, sim.now))

        Process(sim, consumer())
        sim.run()
        assert got == [("payload", 2.0)]


class TestSimEvent:
    def test_double_fire_rejected(self):
        gate = SimEvent()
        gate.succeed()
        with pytest.raises(SimulationError):
            gate.succeed()

    def test_value_before_fire_rejected(self):
        with pytest.raises(SimulationError):
            _ = SimEvent().value

    def test_ok_property(self):
        gate = SimEvent()
        assert not gate.ok
        gate.succeed()
        assert gate.ok
        failed = SimEvent()
        failed.fail(RuntimeError("x"))
        assert failed.fired and not failed.ok
