"""Tests for experiment result persistence."""

import math

import numpy as np
import pytest

from repro.core.experiments import run_fig6, run_fig8
from repro.core.persistence import (
    diff_scalars,
    dumps_deterministic,
    load_result,
    save_result,
    to_jsonable,
)
from repro.hardware import StorageKind


class TestToJsonable:
    def test_primitives(self):
        assert to_jsonable(3) == 3
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None
        assert to_jsonable(2.5) == 2.5

    def test_nan_and_inf_encoded(self):
        assert to_jsonable(float("nan")) == "nan"
        assert to_jsonable(math.inf) == "inf"
        assert to_jsonable(-math.inf) == "-inf"

    def test_enum(self):
        assert to_jsonable(StorageKind.LOCAL) == "local_disk"

    def test_numpy(self):
        assert to_jsonable(np.float64(1.5)) == 1.5
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_dataclass_tagged(self):
        result = run_fig6()
        payload = to_jsonable(result)
        assert payload["__dataclass__"] == "Fig6Result"
        assert payload["matmul"]["num_tasks"] == 112

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        result = run_fig6()
        path = save_result(result, tmp_path / "fig6.json", metadata={"run": 1})
        loaded = load_result(path)
        assert loaded["metadata"]["run"] == 1
        assert loaded["result"]["kmeans"]["width"] == 4

    def test_directories_created(self, tmp_path):
        path = save_result({"a": 1}, tmp_path / "nested" / "dir" / "r.json")
        assert path.exists()

    def test_figure_with_oom_points_serialises(self, tmp_path):
        result = run_fig8(grids=(2,))
        path = save_result(result, tmp_path / "fig8.json")
        loaded = load_result(path)
        assert loaded["result"]["__dataclass__"] == "Fig8Result"


class TestDiff:
    def test_identical(self):
        assert diff_scalars({"a": 1}, {"a": 1}) == []

    def test_changed_leaf(self):
        diffs = diff_scalars({"a": {"b": 1}}, {"a": {"b": 2}})
        assert diffs == ["a.b: 1 -> 2"]

    def test_added_and_removed_keys(self):
        diffs = diff_scalars({"a": 1}, {"b": 1})
        assert "a: removed" in diffs
        assert "b: added" in diffs

    def test_list_length_change(self):
        diffs = diff_scalars({"xs": [1, 2]}, {"xs": [1]})
        assert diffs == ["xs: length 2 -> 1"]

    def test_list_elementwise(self):
        diffs = diff_scalars([1, 2, 3], [1, 9, 3])
        assert diffs == ["[1]: 2 -> 9"]

    def test_real_results_diff_on_calibration_change(self, tmp_path):
        a = to_jsonable(run_fig6())
        b = to_jsonable(run_fig6())
        assert diff_scalars(a, b) == []


class TestDeterministicEncoding:
    def test_key_order_is_irrelevant(self):
        assert dumps_deterministic({"b": 1, "a": 2}) == dumps_deterministic(
            {"a": 2, "b": 1}
        )

    def test_ends_with_newline(self):
        assert dumps_deterministic({}).endswith("\n")

    def test_save_result_is_byte_stable(self, tmp_path):
        result = run_fig8(dataset_key="matmul_128mb", grids=(4, 2))
        first = save_result(result, tmp_path / "a.json").read_bytes()
        second = save_result(result, tmp_path / "b.json").read_bytes()
        assert first == second

    def test_save_result_stable_across_runs(self, tmp_path):
        """Two independent executions of the same figure serialise to the
        same bytes — what ``repro figures --save`` relies on."""
        kwargs = dict(dataset_key="matmul_128mb", grids=(4, 2))
        first = save_result(run_fig8(**kwargs), tmp_path / "a.json").read_bytes()
        second = save_result(run_fig8(**kwargs), tmp_path / "b.json").read_bytes()
        assert first == second
