"""Benchmark E12 — Table 1: the factor/parameter inventory.

Regenerates the paper's Table 1 from the factor framework and checks its
structure: eight factors across four dimensions, with the block dimension
stressing all five system functions.
"""

from repro.core import Dimension, SystemFunction, TABLE1_FACTORS, factors_table


def test_table1_factors(once):
    table = once(factors_table)
    print()
    print(table.render())
    assert len(TABLE1_FACTORS) == 8
    assert {f.dimension for f in TABLE1_FACTORS} == set(Dimension)
    block = next(f for f in TABLE1_FACTORS if f.name == "block dimension")
    assert block.affects == frozenset(SystemFunction)
