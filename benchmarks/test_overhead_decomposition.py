"""Extension benchmark — overhead decomposition across granularities.

Quantifies the paper's bottleneck narrative from the traces themselves:
how the occupied core-seconds split between user-code compute, data
movement ((de-)serialization), CPU-GPU communication, scheduling, and
idle time, as the block dimension moves from fine to coarse.  Fine grains
drown in movement and scheduling; coarse grains idle most of the cluster.
"""

from repro.algorithms import KMeansWorkflow
from repro.core.report import Table
from repro.data import paper_datasets
from repro.runtime import Runtime, RuntimeConfig
from repro.tracing import decompose_overheads


def test_overhead_decomposition(once):
    datasets = paper_datasets()

    def measure():
        rows = {}
        for grid in (256, 64, 16, 4):
            rt = Runtime(RuntimeConfig(use_gpu=True))
            KMeansWorkflow(
                datasets["kmeans_10gb"], grid_rows=grid, n_clusters=10,
                iterations=3,
            ).build(rt)
            rows[grid] = decompose_overheads(rt.run().trace)
        return rows

    rows = once(measure)
    table = Table(
        title="Overhead decomposition: K-means 10GB, GPU, shared disk",
        headers=("grid", "compute", "movement", "comm", "sched", "idle"),
    )
    for grid, breakdown in rows.items():
        table.add_row(
            f"{grid} x 1",
            f"{breakdown.compute_share:.0%}",
            f"{breakdown.movement_share:.0%}",
            f"{breakdown.comm_share:.0%}",
            f"{breakdown.scheduling_share:.0%}",
            f"{breakdown.idle_share:.0%}",
        )
    print()
    print(table.render())
    # Movement dominates compute at every distributed granularity (§5.1.2)
    for breakdown in rows.values():
        assert breakdown.movement_share > breakdown.compute_share
    # Idle share grows as task parallelism is starved at coarse grains.
    assert rows[4].idle_share > rows[256].idle_share
