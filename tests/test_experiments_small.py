"""Fast experiment-runner tests on reduced parameter sets.

The full paper-scale sweeps live in ``benchmarks/``; these tests exercise
the same code paths on subsets small enough for the unit suite.
"""

import pytest

from repro.core.experiments import (
    run_fig1,
    run_fig6,
    run_fig7_for,
    run_fig8,
    run_fig9a,
    run_fig9b,
    run_fig10_for,
    run_fig12,
)
from repro.core.experiments.fig11 import SamplePlan, run_fig11
from repro.hardware import StorageKind
from repro.runtime import SchedulingPolicy


class TestFig1:
    def test_headline_shape(self):
        result = run_fig1(grid_rows=64)
        assert result.parallel_fraction_speedup > result.user_code_speedup > 1.0
        assert "Figure 1" in result.render()


class TestFig6:
    def test_shapes_match_paper(self):
        result = run_fig6()
        # Matmul 4x4: 64 matmul_func + 48 add_func (Figure 6b).
        assert result.matmul.tasks_per_type == {"matmul_func": 64, "add_func": 48}
        assert result.matmul.aspect > 1.0  # wide-shallow
        assert result.kmeans.aspect < 1.0  # narrow-deep
        assert result.kmeans.tasks_per_type["partial_sum"] == 12


class TestFig7:
    def test_kmeans_subset(self):
        series = run_fig7_for("kmeans", "kmeans_10gb", grids=(64, 8))
        assert len(series.points) == 2
        speedups = series.speedup_by_block("parallel_fraction_speedup")
        assert all(v is not None and v > 1 for v in speedups.values())
        assert "Figure 7" in series.render()

    def test_matmul_oom_point_reported(self):
        series = run_fig7_for("matmul", "matmul_8gb", grids=(1,))
        assert series.points[0].status == "gpu_oom"
        assert series.points[0].parallel_tasks_speedup is None


class TestFig8:
    def test_complexity_inversion(self):
        result = run_fig8(grids=(8, 4))
        matmul_speedups = [v for v in result.speedups("matmul_func").values()]
        add_speedups = [v for v in result.speedups("add_func").values()]
        assert all(v > 1 for v in matmul_speedups)
        assert all(v < 1 for v in add_speedups)


class TestFig9:
    def test_cluster_scaling(self):
        result = run_fig9a(clusters=(10, 100), grids=(64,))
        assert result.best_speedup(100) > result.best_speedup(10)

    def test_oom_cells_have_status(self):
        result = run_fig9a(clusters=(1000,), grids=(8,))
        assert result.points[0].status in {"gpu_oom", "cpu_oom"}
        assert result.points[0].user_code_speedup is None

    def test_skew_has_no_effect(self):
        result = run_fig9b(grid=8)
        for algorithm in ("matmul", "kmeans"):
            times = result.times_for(algorithm)
            assert times[0.0] == pytest.approx(times[0.5])


class TestFig10:
    def test_local_beats_shared(self):
        panel = run_fig10_for("kmeans", "kmeans_10gb", grids=(64,))
        local = panel.series(
            StorageKind.LOCAL, SchedulingPolicy.GENERATION_ORDER, False
        )[64]
        shared = panel.series(
            StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER, False
        )[64]
        assert local < shared

    def test_single_task_drop(self):
        panel = run_fig10_for(
            "kmeans",
            "kmeans_10gb",
            grids=(2, 1),
            combos=((StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER),),
        )
        series = panel.series(
            StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER, False
        )
        assert series[1] < series[2]

    def test_render_marks_oom(self):
        panel = run_fig10_for(
            "matmul",
            "matmul_8gb",
            grids=(1,),
            combos=((StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER),),
        )
        assert "OOM" in panel.render()


class TestFig11:
    def test_small_design(self):
        plans = [
            SamplePlan("kmeans", "kmeans_100mb", grid, 10, gpu,
                       StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER)
            for grid in (8, 4, 2)
            for gpu in (False, True)
        ] + [
            SamplePlan("matmul", "matmul_128mb", grid, 0, gpu,
                       StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER)
            for grid in (4, 2)
            for gpu in (False, True)
        ]
        result = run_fig11(plans)
        assert result.n_samples == len(plans)
        # Block size and grid dimension are inversely related by Eq. (2).
        assert result.value("block_size", "grid_dimension") < 0
        # CPU and GPU one-hots are perfectly anti-correlated.
        assert result.value("cpu", "gpu") == pytest.approx(-1.0)
        assert "samples" in result.render()


class TestFig12:
    def test_fma_trends_match_matmul(self):
        fma = run_fig12(grids=(8, 4))
        speedups = list(fma.speedups().values())
        assert all(v > 1 for v in speedups)
        assert speedups == sorted(speedups)  # grows with block size


class TestSpeedupDecrease:
    def test_fine_grained_decrease_exceeds_coarse(self):
        # §5.1: communication eats a larger share of the gain at fine
        # grains (~35% vs ~20% in the paper's Matmul panel).
        series = run_fig7_for("matmul", "matmul_8gb", grids=(16, 2))
        by_block = {p.block_mb: p.user_code_speedup_decrease
                    for p in series.points}
        fine = by_block[min(by_block)]
        coarse = by_block[max(by_block)]
        assert fine > coarse > 0.0
        assert 0.1 < fine < 0.5
