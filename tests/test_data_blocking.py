"""Unit and property tests for the grid/block math of Eq. (1)-(2)."""

import pytest
from hypothesis import given, strategies as st

from repro.data import (
    BlockSpec,
    Blocking,
    DatasetSpec,
    GridSpec,
    InvalidBlockingError,
)
from repro.data.blocking import row_wise_blockings, square_blockings


def _dataset(rows=1024, cols=512):
    return DatasetSpec("d", rows=rows, cols=cols)


class TestGridAndBlockSpecs:
    def test_grid_num_blocks(self):
        assert GridSpec(k=4, l=2).num_blocks == 8

    def test_grid_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            GridSpec(k=0, l=1)

    def test_block_elements(self):
        assert BlockSpec(m=8, n=4).elements == 32

    def test_block_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BlockSpec(m=1, n=0)


class TestEquationOne:
    def test_from_grid_divisible(self):
        blocking = Blocking.from_grid(_dataset(), GridSpec(k=4, l=2))
        assert blocking.block.m == 256
        assert blocking.block.n == 256
        assert blocking.num_tasks == 8

    def test_from_block_divisible(self):
        blocking = Blocking.from_block(_dataset(), BlockSpec(m=256, n=256))
        assert blocking.grid.k == 4
        assert blocking.grid.l == 2

    def test_inverse_relationship(self):
        # Eq. (2): k and l are inversely proportional to m and n.
        small = Blocking.from_grid(_dataset(), GridSpec(k=8, l=8))
        large = Blocking.from_grid(_dataset(), GridSpec(k=2, l=2))
        assert small.block.elements < large.block.elements
        assert small.num_tasks > large.num_tasks

    def test_grid_larger_than_dataset_rejected(self):
        with pytest.raises(InvalidBlockingError):
            Blocking.from_grid(_dataset(rows=4, cols=4), GridSpec(k=8, l=1))

    def test_block_larger_than_dataset_rejected(self):
        # Constraint of §3.5: block dimension bounded by dataset dimension.
        with pytest.raises(InvalidBlockingError):
            Blocking.from_block(_dataset(), BlockSpec(m=2048, n=1))

    def test_inconsistent_triple_rejected(self):
        with pytest.raises(InvalidBlockingError):
            Blocking(_dataset(), BlockSpec(m=100, n=512), GridSpec(k=2, l=1))


class TestRaggedBlocks:
    def test_non_divisible_rows_get_smaller_last_block(self):
        # The paper's 12.5M-sample K-means over 256 row blocks.
        dataset = DatasetSpec("k", rows=12_500_000, cols=100)
        blocking = Blocking.from_grid(dataset, GridSpec(k=256, l=1))
        assert blocking.block.m == 48829
        assert blocking.block_rows(0) == 48829
        assert blocking.block_rows(255) == 12_500_000 - 255 * 48829
        assert blocking.block_rows(255) <= blocking.block.m

    def test_row_counts_sum_to_dataset(self):
        dataset = DatasetSpec("k", rows=1000, cols=7)
        blocking = Blocking.from_grid(dataset, GridSpec(k=3, l=1))
        total = sum(blocking.block_rows(i) for i in range(3))
        assert total == 1000

    def test_block_cols_ragged(self):
        dataset = DatasetSpec("k", rows=10, cols=10)
        blocking = Blocking.from_grid(dataset, GridSpec(k=1, l=3))
        assert [blocking.block_cols(j) for j in range(3)] == [4, 4, 2]

    def test_out_of_range_block_row(self):
        blocking = Blocking.from_grid(_dataset(), GridSpec(k=4, l=2))
        with pytest.raises(IndexError):
            blocking.block_rows(4)


class TestConvenience:
    def test_block_bytes(self):
        blocking = Blocking.from_grid(_dataset(), GridSpec(k=4, l=2))
        assert blocking.block_bytes == 256 * 256 * 8

    def test_row_wise_blockings(self):
        dataset = DatasetSpec("k", rows=1024, cols=100)
        blockings = row_wise_blockings(dataset, [1, 2, 4])
        assert [b.grid.k for b in blockings] == [1, 2, 4]
        assert all(b.grid.l == 1 for b in blockings)

    def test_square_blockings(self):
        dataset = _dataset(rows=1024, cols=1024)
        blockings = square_blockings(dataset, [1, 2, 4])
        assert [(b.grid.k, b.grid.l) for b in blockings] == [(1, 1), (2, 2), (4, 4)]

    def test_describe_mentions_tasks(self):
        blocking = Blocking.from_grid(_dataset(), GridSpec(k=4, l=2))
        assert "8 tasks" in blocking.describe()


class TestBlockingProperties:
    @given(
        rows=st.integers(min_value=1, max_value=10_000),
        cols=st.integers(min_value=1, max_value=10_000),
        k=st.integers(min_value=1, max_value=64),
        l=st.integers(min_value=1, max_value=64),
    )
    def test_ceiling_form_of_eq1_always_holds(self, rows, cols, k, l):
        dataset = DatasetSpec("p", rows=rows, cols=cols)
        if k > rows or l > cols:
            with pytest.raises(InvalidBlockingError):
                Blocking.from_grid(dataset, GridSpec(k=k, l=l))
            return
        try:
            blocking = Blocking.from_grid(dataset, GridSpec(k=k, l=l))
        except InvalidBlockingError:
            # Unrealizable grid (ceil blocks would leave an empty slot).
            m = -(-rows // k)
            n = -(-cols // l)
            assert -(-rows // m) != k or -(-cols // n) != l
            return
        m, n = blocking.block.m, blocking.block.n
        assert (k - 1) * m < rows <= k * m
        assert (l - 1) * n < cols <= l * n

    @given(
        rows=st.integers(min_value=1, max_value=10_000),
        k=st.integers(min_value=1, max_value=64),
    )
    def test_row_counts_partition_the_dataset(self, rows, k):
        if k > rows:
            return
        dataset = DatasetSpec("p", rows=rows, cols=3)
        try:
            blocking = Blocking.from_grid(dataset, GridSpec(k=k, l=1))
        except InvalidBlockingError:
            return  # unrealizable grid; covered by the Eq. (1) property
        counts = [blocking.block_rows(i) for i in range(k)]
        assert sum(counts) == rows
        assert all(c >= 1 for c in counts)
        assert max(counts) == blocking.block.m

    @given(
        rows=st.integers(min_value=2, max_value=4096),
        m=st.integers(min_value=1, max_value=4096),
    )
    def test_from_block_then_block_rows_consistent(self, rows, m):
        if m > rows:
            return
        dataset = DatasetSpec("p", rows=rows, cols=2)
        blocking = Blocking.from_block(dataset, BlockSpec(m=m, n=2))
        assert blocking.grid.k == -(-rows // m)
        total = sum(blocking.block_rows(i) for i in range(blocking.grid.k))
        assert total == rows


class TestRenderPartitioning:
    def test_row_wise_task_labels(self):
        from repro.data.blocking import render_partitioning
        from repro.data import ChunkingPolicy

        blocking = Blocking.from_grid(
            DatasetSpec("f", rows=8, cols=8), GridSpec(k=4, l=2)
        )
        text = render_partitioning(blocking, ChunkingPolicy.ROW_WISE)
        # 4 block-rows -> 4 tasks; every row repeats one label.
        rows = text.splitlines()[1:]
        assert len(rows) == 8
        assert len(set(rows[0].split())) == 1

    def test_hybrid_has_one_task_per_block(self):
        from repro.data.blocking import render_partitioning
        from repro.data import ChunkingPolicy

        blocking = Blocking.from_grid(
            DatasetSpec("f", rows=8, cols=8), GridSpec(k=4, l=2)
        )
        text = render_partitioning(blocking, ChunkingPolicy.HYBRID)
        labels = {cell for line in text.splitlines()[1:] for cell in line.split()}
        assert labels == {f"T{i}" for i in range(1, 9)}

    def test_refuses_large_datasets(self):
        from repro.data.blocking import render_partitioning

        blocking = Blocking.from_grid(
            DatasetSpec("big", rows=1000, cols=1000), GridSpec(k=2, l=2)
        )
        with pytest.raises(ValueError, match="tiny"):
            render_partitioning(blocking)
