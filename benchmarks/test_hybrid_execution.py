"""Extension benchmark — hybrid heterogeneous CPU-GPU execution.

The paper's taxonomy (Figure 2) covers heterogeneous CPU-GPU usage, and
its Figure 8 exposes the tension inside one workflow: ``matmul_func``
loves the GPU, ``add_func`` never profits from it.  Hybrid execution —
GPU for the Amdahl-worthy task types, CPU for the rest, planned
analytically by the advisor — resolves the tension without touching the
block size and beats both pure modes.
"""

from repro.algorithms import MatmulWorkflow
from repro.core.advisor import WorkflowAdvisor
from repro.core.report import Table, format_seconds, format_speedup
from repro.data import paper_datasets
from repro.runtime import Runtime, RuntimeConfig
from repro.tracing import parallel_task_metrics


def test_hybrid_execution(once):
    datasets = paper_datasets()
    advisor = WorkflowAdvisor()
    plan = advisor.plan_hybrid(MatmulWorkflow(datasets["matmul_8gb"], grid=4))

    def measure():
        times = {}
        for label, config in (
            ("CPU only", RuntimeConfig(use_gpu=False)),
            ("GPU all types", RuntimeConfig(use_gpu=True)),
            ("hybrid (advisor plan)", RuntimeConfig(use_gpu=True,
                                                    gpu_task_types=plan)),
        ):
            rt = Runtime(config)
            MatmulWorkflow(datasets["matmul_8gb"], grid=4).build(rt)
            result = rt.run()
            times[label] = parallel_task_metrics(
                result.trace, {"matmul_func", "add_func"}
            ).average_parallel_time
        return times

    times = once(measure)
    table = Table(
        title=f"Hybrid execution: Matmul 8GB 4x4, GPU plan = {sorted(plan)}",
        headers=("mode", "parallel-task time", "vs CPU"),
    )
    for label, value in times.items():
        table.add_row(
            label, format_seconds(value), format_speedup(times["CPU only"] / value)
        )
    print()
    print(table.render())
    assert plan == frozenset({"matmul_func"})
    assert times["hybrid (advisor plan)"] < times["GPU all types"]
    assert times["GPU all types"] < times["CPU only"]
