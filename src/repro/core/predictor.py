"""A learned performance model (§5.4.3: "put learning models into play").

The paper closes by suggesting that learning models could "identify and
predict non-linear trends, as for example, the ideal block size to
maximize the efficiency of each processor".  This module is a minimal,
dependency-free instance: ridge-regularised linear regression on
log-transformed factor features, trained on executed samples (the same
rows the Figure 11 correlation analysis consumes) and able to rank
configurations by predicted parallel-task time.

It is intentionally simple — the point is the pipeline (factors in,
prediction out, validated against held-out simulations), not model
sophistication.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

#: Numeric features used by the model, in design-matrix order.  All are
#: log-transformed (the factor-performance relationships the paper shows
#: are multiplicative), the one-hots enter untransformed.
LOG_FEATURES = (
    "block_size",
    "grid_dimension",
    "parallel_fraction",
    "computational_complexity",
    "dag_max_width",
    "dag_max_height",
    "dataset_size",
)
BINARY_FEATURES = (
    "gpu",
    "shared_disk_storage",
    "data_locality_scheduling",
)
TARGET = "parallel_task_exec_time"


def _design_row(sample: Mapping[str, float]) -> list[float]:
    row = [1.0]
    for name in LOG_FEATURES:
        value = float(sample[name])
        row.append(math.log(max(value, 1e-12)))
    for name in BINARY_FEATURES:
        row.append(float(sample[name]))
    return row


@dataclass
class EvaluationReport:
    """Hold-out quality of a fitted predictor."""

    n_train: int
    n_test: int
    mape: float
    median_ape: float
    r2_log: float

    def render(self) -> str:
        """One-line textual summary."""
        return (
            f"trained on {self.n_train}, tested on {self.n_test}: "
            f"MAPE {self.mape:.1%}, median APE {self.median_ape:.1%}, "
            f"R^2(log) {self.r2_log:.3f}"
        )


@dataclass
class PerformancePredictor:
    """Log-linear ridge model over the Table-1 factor features."""

    ridge: float = 1e-3
    _weights: np.ndarray | None = field(default=None, repr=False)

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self._weights is not None

    def fit(self, samples: Sequence[Mapping[str, float]]) -> "PerformancePredictor":
        """Fit on executed samples (each a feature->value mapping)."""
        if len(samples) < len(LOG_FEATURES) + len(BINARY_FEATURES) + 2:
            raise ValueError(
                f"need more samples than features, got {len(samples)}"
            )
        design = np.array([_design_row(s) for s in samples])
        target = np.log(
            np.maximum([float(s[TARGET]) for s in samples], 1e-12)
        )
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        self._weights = np.linalg.solve(gram, design.T @ target)
        return self

    def predict(self, sample: Mapping[str, float]) -> float:
        """Predicted parallel-task time (seconds) for one configuration."""
        if self._weights is None:
            raise RuntimeError("predictor is not fitted")
        return float(math.exp(np.dot(_design_row(sample), self._weights)))

    def evaluate(
        self, samples: Sequence[Mapping[str, float]]
    ) -> EvaluationReport:
        """Absolute-percentage-error statistics on held-out samples."""
        if self._weights is None:
            raise RuntimeError("predictor is not fitted")
        truths = np.array([float(s[TARGET]) for s in samples])
        predictions = np.array([self.predict(s) for s in samples])
        ape = np.abs(predictions - truths) / np.maximum(truths, 1e-12)
        log_truth = np.log(np.maximum(truths, 1e-12))
        log_pred = np.log(np.maximum(predictions, 1e-12))
        ss_res = float(np.sum((log_truth - log_pred) ** 2))
        ss_tot = float(np.sum((log_truth - log_truth.mean()) ** 2)) or 1e-12
        return EvaluationReport(
            n_train=0,
            n_test=len(samples),
            mape=float(ape.mean()),
            median_ape=float(np.median(ape)),
            r2_log=1.0 - ss_res / ss_tot,
        )


def samples_from_columns(
    columns: Mapping[str, Sequence[float]],
) -> list[dict[str, float]]:
    """Convert Figure-11-style feature columns into per-sample dicts."""
    names = list(columns)
    length = len(columns[names[0]])
    return [
        {name: float(columns[name][index]) for name in names}
        for index in range(length)
    ]


def train_test_split(
    samples: Sequence[Mapping[str, float]],
    test_fraction: float = 0.3,
    seed: int = 0,
) -> tuple[list, list]:
    """Deterministic shuffled split."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    order = np.random.default_rng(seed).permutation(len(samples))
    cut = max(1, int(len(samples) * test_fraction))
    test_idx = set(order[:cut].tolist())
    train = [s for i, s in enumerate(samples) if i not in test_idx]
    test = [s for i, s in enumerate(samples) if i in test_idx]
    return train, test


def fit_and_evaluate(
    columns: Mapping[str, Sequence[float]],
    test_fraction: float = 0.3,
    seed: int = 0,
) -> tuple[PerformancePredictor, EvaluationReport]:
    """End-to-end: split Figure-11 columns, fit, evaluate on the holdout."""
    samples = samples_from_columns(columns)
    train, test = train_test_split(samples, test_fraction, seed)
    predictor = PerformancePredictor().fit(train)
    report = predictor.evaluate(test)
    report.n_train = len(train)
    return predictor, report
