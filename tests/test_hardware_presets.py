"""Tests for the additional cluster presets."""

import pytest

from repro.algorithms import MatmulWorkflow
from repro.core.experiments.runners import run_workflow
from repro.data import paper_datasets
from repro.hardware import fat_storage, minotauro, modern


class TestModernPreset:
    def test_same_topology_as_minotauro(self):
        assert modern().total_cpu_cores == minotauro().total_cpu_cores
        assert modern().total_gpus == minotauro().total_gpus

    def test_device_generation_upgraded(self):
        assert modern().node.gpu.flops > 10 * minotauro().node.gpu.flops
        assert modern().node.gpu.memory_bytes > minotauro().node.gpu.memory_bytes

    def test_modern_fits_the_8gib_matmul_block(self):
        # 3 x 8 GiB = 24 GiB fits a 40 GiB device, unlike the K80.
        workflow = MatmulWorkflow(paper_datasets()["matmul_8gb"], grid=1)
        metrics = run_workflow(workflow, use_gpu=True, cluster=modern())
        assert metrics.status == "ok"

    def test_modern_widens_user_code_speedup(self):
        datasets = paper_datasets()

        def speedup(cluster):
            cpu = run_workflow(
                MatmulWorkflow(datasets["matmul_8gb"], grid=4),
                use_gpu=False, cluster=cluster,
            )
            gpu = run_workflow(
                MatmulWorkflow(datasets["matmul_8gb"], grid=4),
                use_gpu=True, cluster=cluster,
            )
            return (
                cpu.user_code["matmul_func"].user_code
                / gpu.user_code["matmul_func"].user_code
            )

        assert speedup(modern()) > 2 * speedup(minotauro())


class TestFatStoragePreset:
    def test_storage_upgraded_only(self):
        preset = fat_storage()
        assert preset.shared_disk.read_bandwidth > minotauro().shared_disk.read_bandwidth
        assert preset.node.gpu == minotauro().node.gpu

    def test_fat_storage_cuts_movement_bound_times(self):
        from repro.algorithms import KMeansWorkflow

        datasets = paper_datasets()

        def ptask(cluster):
            return run_workflow(
                KMeansWorkflow(datasets["kmeans_10gb"], grid_rows=128,
                               n_clusters=10, iterations=1),
                use_gpu=False,
                cluster=cluster,
            ).parallel_task_time

        assert ptask(fat_storage()) < 0.7 * ptask(minotauro())

    def test_node_count_parameter(self):
        assert fat_storage(num_nodes=2).total_cpu_cores == 32
        assert modern(num_nodes=4).total_gpus == 16
