"""Benchmark — Figure 5: the data partitioning / task parallelisation example.

Regenerates the paper's illustration: an 8x8 dataset (64 elements) split
into 2x4 blocks forming a 4x2 grid, assigned to tasks under row-wise
chunking (4 tasks, the K-means policy) and hybrid row/column chunking
(8 tasks, the Matmul policy).
"""

from repro.data import Blocking, ChunkingPolicy, DatasetSpec, GridSpec
from repro.data.blocking import render_partitioning


def test_fig5_partitioning(once):
    dataset = DatasetSpec("fig5", rows=8, cols=8)
    blocking = once(Blocking.from_grid, dataset, GridSpec(k=4, l=2))
    # The paper's numbers: 64 elements, 8 blocks of 8 elements each.
    assert dataset.elements == 64
    assert blocking.grid.num_blocks == 8
    assert blocking.block.elements == 8

    row_wise = render_partitioning(blocking, ChunkingPolicy.ROW_WISE)
    hybrid = render_partitioning(blocking, ChunkingPolicy.HYBRID)
    print()
    print(row_wise)
    print()
    print(hybrid)

    # Row-wise: 4 tasks, one per block-row.
    assert "T4" in row_wise and "T5" not in row_wise
    # Hybrid: 8 tasks, one per block.
    assert "T8" in hybrid and "T9" not in hybrid
