"""Unit and property tests for the Spearman correlation implementation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import one_hot, spearman, spearman_matrix
from repro.core.correlation import rank_with_ties

scipy_stats = pytest.importorskip("scipy.stats")


class TestRanks:
    def test_simple_ranks(self):
        np.testing.assert_array_equal(rank_with_ties([30, 10, 20]), [3, 1, 2])

    def test_ties_get_midrank(self):
        np.testing.assert_array_equal(rank_with_ties([1, 2, 2, 3]), [1, 2.5, 2.5, 4])

    def test_all_equal(self):
        np.testing.assert_array_equal(rank_with_ties([5, 5, 5]), [2, 2, 2])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            rank_with_ties(np.zeros((2, 2)))


class TestSpearman:
    def test_perfect_monotone(self):
        assert spearman([1, 2, 3, 4], [10, 100, 1000, 10000]) == pytest.approx(1.0)

    def test_perfect_inverse(self):
        assert spearman([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_column_is_nan(self):
        assert np.isnan(spearman([1, 1, 1], [1, 2, 3]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman([1, 2], [1, 2, 3])

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            spearman([1], [1])

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=3,
            max_size=50,
        ),
        st.randoms(use_true_random=False),
    )
    def test_matches_scipy(self, xs, rng):
        ys = [rng.uniform(-100, 100) for _ in xs]
        ours = spearman(xs, ys)
        theirs = scipy_stats.spearmanr(xs, ys).statistic
        if np.isnan(theirs):
            assert np.isnan(ours)
        else:
            assert ours == pytest.approx(theirs, abs=1e-9)

    @given(
        st.lists(st.integers(min_value=0, max_value=5), min_size=4, max_size=40)
    )
    def test_ties_match_scipy(self, xs):
        ys = list(reversed(xs))
        ours = spearman(xs, ys)
        theirs = scipy_stats.spearmanr(xs, ys).statistic
        if np.isnan(theirs):
            assert np.isnan(ours)
        else:
            assert ours == pytest.approx(theirs, abs=1e-9)

    def test_symmetry(self):
        xs = [3.0, 1.0, 4.0, 1.0, 5.0]
        ys = [2.0, 7.0, 1.0, 8.0, 2.0]
        assert spearman(xs, ys) == pytest.approx(spearman(ys, xs))


class TestOneHot:
    def test_encoding(self):
        encoded = one_hot(["a", "b", "a"], categories=["a", "b"])
        assert encoded == {"a": [1, 0, 1], "b": [0, 1, 0]}

    def test_unknown_value_rejected(self):
        with pytest.raises(ValueError):
            one_hot(["a", "z"], categories=["a", "b"])

    def test_complementary_columns_anticorrelate(self):
        encoded = one_hot(["a", "b", "a", "b"], categories=["a", "b"])
        assert spearman(encoded["a"], encoded["b"]) == pytest.approx(-1.0)


class TestSpearmanMatrix:
    def test_diagonal_is_one(self):
        matrix = spearman_matrix({"x": [1, 2, 3], "y": [3, 1, 2]})
        assert matrix.value("x", "x") == 1.0

    def test_symmetric(self):
        matrix = spearman_matrix({"x": [1, 2, 3], "y": [3, 1, 2]})
        assert matrix.value("x", "y") == matrix.value("y", "x")

    def test_column_lookup(self):
        matrix = spearman_matrix({"x": [1, 2, 3], "y": [1, 2, 3], "z": [3, 2, 1]})
        column = matrix.column("x")
        assert column["y"] == pytest.approx(1.0)
        assert column["z"] == pytest.approx(-1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            spearman_matrix({"x": [1, 2], "y": [1, 2, 3]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            spearman_matrix({})

    def test_render_contains_features(self):
        matrix = spearman_matrix({"alpha": [1, 2, 3], "beta": [3, 2, 1]})
        text = matrix.render()
        assert "alpha" in text
        assert "-1.000" in text
