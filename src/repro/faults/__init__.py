"""Fault injection and recovery for the simulated runtime.

A :class:`FaultPlan` describes deterministic, seed-driven failures — task
crashes at Figure-4 stages, node loss at a simulated timestamp, runtime
GPU OOM, stragglers — and a :class:`RetryPolicy` governs recovery: retry
with exponential backoff and jitter, per-attempt deadlines, GPU-to-CPU
fallback, and failed-node blacklisting (optionally with a reboot
cooldown).  :mod:`repro.faults.recovery` extends the retry path with
lineage-based recovery — recompute blocks lost with a dead node
(``RetryPolicy(recover_lost_blocks=True)``), bound the recomputation
depth with a :class:`CheckpointPolicy`, and neutralize stragglers with
speculative re-execution (``speculation_factor=``).  Wire everything
into :class:`~repro.runtime.RuntimeConfig` (``fault_plan=``,
``retry_policy=``, ``checkpoint_policy=``) and read the outcome off
:class:`~repro.runtime.WorkflowResult` (``failed``, ``attempts``,
``recovered_makespan``, ``recovery_metrics``) and the trace's
:class:`~repro.tracing.TaskAttempt` records.  See ``docs/faults.md``.
"""

from repro.faults.plan import (
    FaultError,
    FaultPlan,
    GpuOomFault,
    InjectedGpuOomError,
    NodeFault,
    NodeFailureError,
    Straggler,
    TaskCrash,
    TaskCrashError,
    TaskDeadlineError,
)
from repro.faults.policy import RetryPolicy
from repro.faults.recovery import (
    CheckpointPolicy,
    RecoveryMetrics,
    SpeculationCancelledError,
)

__all__ = [
    "CheckpointPolicy",
    "FaultError",
    "FaultPlan",
    "GpuOomFault",
    "InjectedGpuOomError",
    "NodeFault",
    "NodeFailureError",
    "RecoveryMetrics",
    "RetryPolicy",
    "SpeculationCancelledError",
    "Straggler",
    "TaskCrash",
    "TaskCrashError",
    "TaskDeadlineError",
]
