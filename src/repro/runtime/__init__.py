"""A PyCOMPSs-like distributed task-based runtime.

The runtime mirrors the processing pipeline of the paper's Figure 3:

1. **Code submission** — the application submits tasks through
   :meth:`Runtime.submit` (or the :func:`task` decorator sugar).
2. **DAG creation** — data dependencies between tasks are detected
   automatically from the :class:`DataRef` arguments each task consumes and
   produces, yielding a :class:`TaskGraph` whose width/height expose the
   degrees of task parallelism and dependency (§3.1).
3. **Task scheduling** — a pluggable policy (task generation order or data
   locality, §3.2) assigns dependency-free tasks to cluster resources.
4. **Task execution** — each task runs its Figure-4 stages on either a CPU
   core or a GPU device (plus a host core for (de-)serialization).
5. **Data access** — blocks are read from / written to the configured
   storage architecture (local or shared disk, §3.4).

Two interchangeable backends execute a workflow: the *simulated* backend
runs the stages on a discrete-event model of the cluster and produces
timing traces at paper scale, while the *in-process* backend really
executes the task functions on NumPy data for correctness testing.
"""

from repro.runtime.data import DataRef
from repro.runtime.dag import CycleError, DuplicateProducerError, TaskGraph
from repro.runtime.runtime import Runtime, RuntimeConfig, WorkflowResult
from repro.runtime.scheduler import SchedulingPolicy
from repro.runtime.task import Task, task

__all__ = [
    "CycleError",
    "DataRef",
    "DuplicateProducerError",
    "Runtime",
    "RuntimeConfig",
    "SchedulingPolicy",
    "Task",
    "TaskGraph",
    "WorkflowResult",
    "task",
]
