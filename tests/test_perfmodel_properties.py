"""Property-based tests of the cost model's physical invariants."""

from hypothesis import given, strategies as st

from repro.hardware import minotauro
from repro.perfmodel import CostModel, TaskCost

model = CostModel(minotauro())

positive = st.floats(min_value=1.0, max_value=1e14)
bytes_st = st.integers(min_value=1, max_value=10**11)
intensity = st.floats(min_value=1e-3, max_value=1e4)
items = st.floats(min_value=1.0, max_value=1e10)


def _cost(serial, parallel, items_, ai, in_b, out_b):
    return TaskCost(
        serial_flops=serial,
        parallel_flops=parallel,
        parallel_items=items_,
        arithmetic_intensity=ai,
        input_bytes=in_b,
        output_bytes=out_b,
        host_device_bytes=in_b + out_b,
        gpu_memory_bytes=in_b + out_b,
    )


class TestRateBounds:
    @given(ai=intensity)
    def test_cpu_rate_bounded_by_peak(self, ai):
        assert 0 < model.cpu_rate(ai) <= model.cpu.flops_per_core

    @given(ai=intensity, n=items)
    def test_gpu_rate_bounded_by_peak(self, ai, n):
        assert 0 <= model.gpu_rate(ai, n) <= model.gpu.flops

    @given(ai=intensity, n1=items, n2=items)
    def test_gpu_rate_monotone_in_items(self, ai, n1, n2):
        lo, hi = sorted((n1, n2))
        assert model.gpu_rate(ai, lo) <= model.gpu_rate(ai, hi) + 1e-9

    @given(ai1=intensity, ai2=intensity)
    def test_cpu_rate_monotone_in_intensity(self, ai1, ai2):
        lo, hi = sorted((ai1, ai2))
        assert model.cpu_rate(lo) <= model.cpu_rate(hi) + 1e-9


class TestTimeInvariants:
    @given(
        serial=positive,
        parallel=positive,
        n=items,
        ai=intensity,
        in_b=bytes_st,
        out_b=bytes_st,
    )
    def test_all_stage_times_positive(self, serial, parallel, n, ai, in_b, out_b):
        cost = _cost(serial, parallel, n, ai, in_b, out_b)
        for use_gpu in (False, True):
            times = model.stage_times(cost, use_gpu)
            assert times.serial_fraction > 0
            assert times.parallel_fraction > 0
            assert times.deserialization_cpu > 0
            assert times.serialization_cpu > 0
            assert times.user_code > 0

    @given(
        parallel=positive,
        n=items,
        ai=intensity,
    )
    def test_scaling_work_scales_cpu_time_linearly(self, parallel, n, ai):
        cost = _cost(1.0, parallel, n, ai, 8, 8)
        single = model.parallel_fraction_time_cpu(cost)
        double = model.parallel_fraction_time_cpu(
            _cost(1.0, 2 * parallel, n, ai, 8, 8)
        )
        assert double == pytest_approx(2 * single)

    @given(
        parallel=positive,
        n=items,
        ai=intensity,
        in_b=bytes_st,
        out_b=bytes_st,
    )
    def test_user_code_speedup_below_parallel_speedup_ceiling(
        self, parallel, n, ai, in_b, out_b
    ):
        # Amdahl: serial time and transfer pull the user-code speedup
        # toward 1 from whichever side the kernel speedup sits on, so it
        # can never exceed max(kernel speedup, 1).
        cost = _cost(1e6, parallel, n, ai, in_b, out_b)
        ceiling = max(model.parallel_fraction_speedup(cost), 1.0)
        assert model.user_code_speedup(cost) <= ceiling + 1e-9

    @given(
        serial=positive,
        parallel=positive,
        n=items,
        ai=intensity,
    )
    def test_gpu_user_code_cannot_beat_zero_comm_bound(self, serial, parallel, n, ai):
        # The GPU-side user code includes serial time on the CPU, so it is
        # at least the serial fraction.
        cost = _cost(serial, parallel, n, ai, 64, 64)
        gpu_time = model.user_code_time(cost, use_gpu=True)
        assert gpu_time >= model.serial_fraction_time(cost)

    @given(threads=st.integers(min_value=1, max_value=16))
    def test_thread_scaling_sublinear(self, threads):
        cost = _cost(0.0, 1e12, 1e8, 100.0, 8, 8)
        one = model.parallel_fraction_time_cpu(cost, threads=1)
        many = model.parallel_fraction_time_cpu(cost, threads=threads)
        # Faster than one core, slower than perfect scaling.
        assert many <= one + 1e-12
        assert many >= one / threads - 1e-12


def pytest_approx(value):
    import pytest

    return pytest.approx(value, rel=1e-9)
