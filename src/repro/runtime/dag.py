"""Workflow DAG construction and shape analysis (§3.1).

Vertices are tasks; edges are data dependencies, detected automatically
from producer/consumer :class:`DataRef` relationships.  The DAG's shape
reveals the workflow's parallelism profile: its *width* (the largest
number of tasks on one level) is the degree of task parallelism and its
*height* (number of levels on the longest path) is the degree of task
dependency — compare the wide-shallow Matmul DAG to the narrow-deep
K-means DAG in the paper's Figure 6.
"""

from __future__ import annotations

from collections import deque

from repro.runtime.task import Task


class CycleError(ValueError):
    """Raised when task dependencies form a cycle (cannot happen through
    the submit API, but guards hand-built graphs)."""


class DuplicateProducerError(ValueError):
    """Raised when a second task claims to produce an already-produced ref.

    Silently overwriting the producer map would corrupt dependency
    detection: consumers added later would depend on the *last* producer
    only, losing the edge to the first.  The static analyzer surfaces the
    same defect as diagnostic ``WF002``.
    """

    def __init__(self, ref_id: int, first_producer: int, second_producer: int) -> None:
        self.ref_id = ref_id
        self.first_producer = first_producer
        self.second_producer = second_producer
        super().__init__(
            f"ref #{ref_id} already produced by task {first_producer}; "
            f"task {second_producer} cannot produce it again"
        )


def _dot_escape(text: str) -> str:
    """Escape a string for use inside a double-quoted DOT attribute."""
    return text.replace("\\", "\\\\").replace('"', '\\"')


class TaskGraph:
    """A directed acyclic graph of tasks keyed by data dependencies."""

    def __init__(self) -> None:
        self._tasks: dict[int, Task] = {}
        self._successors: dict[int, list[int]] = {}
        self._predecessors: dict[int, list[int]] = {}
        self._producer_of_ref: dict[int, int] = {}
        self._levels: dict[int, int] | None = None

    # ------------------------------------------------------------ building
    def add_task(self, task: Task) -> None:
        """Insert a task; dependency edges follow from its input refs.

        A task consuming several refs of the same producer yields one
        dependency edge (not one per ref), and claiming an output ref that
        already has a producer raises :class:`DuplicateProducerError`.
        """
        if task.task_id in self._tasks:
            raise ValueError(f"duplicate task id {task.task_id}")
        for ref in task.outputs:
            existing = self._producer_of_ref.get(ref.ref_id)
            if existing is not None:
                raise DuplicateProducerError(ref.ref_id, existing, task.task_id)
        self._tasks[task.task_id] = task
        self._successors[task.task_id] = []
        self._predecessors[task.task_id] = []
        linked: set[int] = set()
        for ref in task.inputs:
            producer = self._producer_of_ref.get(ref.ref_id)
            if (
                producer is not None
                and producer != task.task_id
                and producer not in linked
            ):
                linked.add(producer)
                self._successors[producer].append(task.task_id)
                self._predecessors[task.task_id].append(producer)
        for ref in task.outputs:
            self._producer_of_ref[ref.ref_id] = task.task_id
        self._levels = None

    # ----------------------------------------------------------- accessors
    @property
    def num_tasks(self) -> int:
        """Number of vertices."""
        return len(self._tasks)

    @property
    def num_edges(self) -> int:
        """Number of dependency edges."""
        return sum(len(s) for s in self._successors.values())

    def tasks(self) -> list[Task]:
        """All tasks in insertion (generation) order."""
        return list(self._tasks.values())

    def task(self, task_id: int) -> Task:
        """Look up a task by id."""
        return self._tasks[task_id]

    def successors(self, task_id: int) -> list[Task]:
        """Tasks depending on the given task."""
        return [self._tasks[t] for t in self._successors[task_id]]

    def predecessors(self, task_id: int) -> list[Task]:
        """Tasks the given task depends on."""
        return [self._tasks[t] for t in self._predecessors[task_id]]

    def successor_ids(self, task_id: int) -> list[int]:
        """Ids of tasks depending on the given task.

        Returns the graph's own adjacency list (not a copy) so per-task
        hot loops — the executor visits every edge once per commit — pay
        no materialisation cost.  Callers must not mutate it.
        """
        return self._successors[task_id]

    def predecessor_ids(self, task_id: int) -> list[int]:
        """Ids of the tasks the given task depends on (shared list, do
        not mutate); see :meth:`successor_ids`."""
        return self._predecessors[task_id]

    def roots(self) -> list[Task]:
        """Tasks with no dependencies (immediately schedulable)."""
        return [t for t in self._tasks.values() if not self._predecessors[t.task_id]]

    def producer_of(self, ref_id: int) -> int | None:
        """Task id that produces a ref, or ``None`` for workflow inputs."""
        return self._producer_of_ref.get(ref_id)

    def edges(self) -> list[tuple[int, int]]:
        """All dependency edges as (producer task id, consumer task id)."""
        return [
            (task_id, successor)
            for task_id, successors in self._successors.items()
            for successor in successors
        ]

    # ------------------------------------------------------------- shape
    def topological_order(self) -> list[Task]:
        """Kahn topological order; raises :class:`CycleError` on cycles."""
        indegree = {t: len(p) for t, p in self._predecessors.items()}
        queue = deque(sorted(t for t, d in indegree.items() if d == 0))
        order: list[Task] = []
        while queue:
            task_id = queue.popleft()
            order.append(self._tasks[task_id])
            for succ in self._successors[task_id]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    queue.append(succ)
        if len(order) != len(self._tasks):
            raise CycleError("task dependencies contain a cycle")
        return order

    def levels(self) -> dict[int, int]:
        """Longest-path level of every task (roots are level 0)."""
        if self._levels is None:
            levels: dict[int, int] = {}
            for task in self.topological_order():
                preds = self._predecessors[task.task_id]
                levels[task.task_id] = (
                    max(levels[p] for p in preds) + 1 if preds else 0
                )
            self._levels = levels
        return dict(self._levels)

    def tasks_by_level(self) -> dict[int, list[Task]]:
        """Tasks grouped by level, ascending."""
        grouped: dict[int, list[Task]] = {}
        for task_id, level in self.levels().items():
            grouped.setdefault(level, []).append(self._tasks[task_id])
        return {level: grouped[level] for level in sorted(grouped)}

    @property
    def width(self) -> int:
        """Maximum tasks on one level: the degree of task parallelism."""
        by_level = self.tasks_by_level()
        return max((len(tasks) for tasks in by_level.values()), default=0)

    @property
    def height(self) -> int:
        """Number of levels on the longest path: the degree of dependency."""
        levels = self.levels()
        return max(levels.values()) + 1 if levels else 0

    def describe(self) -> str:
        """One-line shape summary (used by the Figure 6 experiment)."""
        return (
            f"{self.num_tasks} tasks, {self.num_edges} edges, "
            f"width {self.width}, height {self.height}"
        )

    def to_dot(self, name: str = "workflow", max_tasks: int = 1000) -> str:
        """Graphviz DOT text of the DAG (the paper's Figure 6 style).

        Vertices are tasks labelled by type and coloured per type; edges
        are data dependencies.  Raises for graphs beyond ``max_tasks`` —
        DOT renderings of huge DAGs are unreadable anyway.
        """
        if self.num_tasks > max_tasks:
            raise ValueError(
                f"graph has {self.num_tasks} tasks; raise max_tasks to "
                "export anyway"
            )
        palette = (
            "lightblue", "white", "lightyellow", "lightpink", "lightgreen",
            "lightgrey", "orange",
        )
        colour_of: dict[str, str] = {}
        lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [style=filled];"]
        for task in self._tasks.values():
            colour = colour_of.setdefault(
                task.name, palette[len(colour_of) % len(palette)]
            )
            label = _dot_escape(task.name)
            lines.append(
                f'  t{task.task_id} [label="{label}\\n#{task.task_id}" '
                f'fillcolor={colour}];'
            )
        for task_id, successors in self._successors.items():
            for successor in successors:
                lines.append(f"  t{task_id} -> t{successor};")
        lines.append("}")
        return "\n".join(lines)
