"""Analytic per-stage cost model for task execution.

Given a :class:`~repro.perfmodel.costmodel.TaskCost` (FLOPs, bytes, work
items of one task) and the hardware specs, :class:`CostModel` produces the
durations of the paper's task-processing stages (Figure 4): deserialization,
serial fraction, parallel fraction (CPU or GPU), CPU-GPU communication, and
serialization.  The simulated executor stretches the bandwidth-bound stages
through contended resources; the compute-bound stages use these durations
directly.

``calibration`` documents why each effective-throughput constant has the
value it does.
"""

from repro.perfmodel.costmodel import CostModel, StageTimes, TaskCost
from repro.perfmodel.calibration import CALIBRATION_NOTES

__all__ = ["CALIBRATION_NOTES", "CostModel", "StageTimes", "TaskCost"]
