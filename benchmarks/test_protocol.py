"""Extension benchmark — the §5 measurement protocol in action.

Runs the Figure-1 operating point the way the paper measured everything:
six repetitions with run-to-run jitter, discarding the warm-up run whose
first task per core pays module loading and kernel compilation.  Shows
the warm-up excess the paper's protocol exists to remove, and the small
residual spread across kept runs.
"""

from repro.algorithms import KMeansWorkflow
from repro.core.experiments.protocol import run_with_protocol
from repro.core.report import Table, format_seconds
from repro.data import paper_datasets
from repro.runtime import RuntimeConfig


def test_measurement_protocol(once):
    datasets = paper_datasets()

    def measure():
        return run_with_protocol(
            lambda: KMeansWorkflow(
                datasets["kmeans_10gb"], grid_rows=256, n_clusters=10,
                iterations=3,
            ),
            config=RuntimeConfig(use_gpu=True),
            runs=6,
        )

    outcome = once(measure)
    table = Table(
        title="Six runs, discard the first (K-means 10GB, 256 tasks, GPU)",
        headers=("run", "makespan"),
    )
    table.add_row("1 (warm-up, discarded)", format_seconds(outcome.warmup_makespan))
    for index, makespan in enumerate(outcome.makespans, start=2):
        table.add_row(str(index), format_seconds(makespan))
    table.add_row("mean of kept", format_seconds(outcome.mean_makespan))
    table.add_row("std of kept", format_seconds(outcome.std_makespan))
    print()
    print(table.render())
    print(f"warm-up excess: {outcome.warmup_excess:.1%}")
    assert outcome.warmup_makespan > max(outcome.makespans)
    assert outcome.std_makespan < 0.1 * outcome.mean_makespan
