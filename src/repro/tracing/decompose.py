"""Overhead decomposition of an execution trace.

The paper's core narrative is that distributed execution time is shared
between computation and overheads — (de-)serialization, CPU-GPU
communication, scheduling, and idling on stalled resources.  This module
turns a trace into that decomposition: total busy time per stage across
all cores, plus the idle share of the core-seconds the workflow occupied.

Shares are fractions of the occupied core-seconds
(``makespan x cores_used``), so they sum to 1 with idle included.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tracing.trace import Stage, Trace


@dataclass(frozen=True)
class OverheadBreakdown:
    """Busy-time shares of one execution."""

    makespan: float
    cores_used: int
    compute_share: float
    movement_share: float
    comm_share: float
    scheduling_share: float
    idle_share: float

    @property
    def overhead_share(self) -> float:
        """Everything that is not user-code compute or idle."""
        return self.movement_share + self.comm_share + self.scheduling_share

    def render(self) -> str:
        """One-line textual summary."""
        return (
            f"compute {self.compute_share:.0%}, data movement "
            f"{self.movement_share:.0%}, CPU-GPU comm {self.comm_share:.0%}, "
            f"scheduling {self.scheduling_share:.0%}, idle {self.idle_share:.0%} "
            f"(makespan {self.makespan:.2f}s over {self.cores_used} cores)"
        )


#: Stage groups are tuples, not sets: the share computations sum floats
#: over them, and a fixed iteration order keeps those sums (and hence
#: reported breakdowns) bit-reproducible across processes.
_COMPUTE_STAGES = (Stage.SERIAL_FRACTION, Stage.PARALLEL_FRACTION)
#: Checkpoint writes are storage I/O the policy added on top of the
#: workflow's own serialization, so they count as data movement.
_MOVEMENT_STAGES = (
    Stage.DESERIALIZATION,
    Stage.SERIALIZATION,
    Stage.CHECKPOINT_WRITE,
)
#: Fault-path records (zero-duration failure / recompute / speculation
#: markers and master-side retry backoff) do not occupy a core and are
#: excluded from the busy time and the core census.
_OFF_CORE_STAGES = (
    Stage.FAILURE,
    Stage.RETRY_WAIT,
    Stage.RECOMPUTE,
    Stage.SPECULATIVE,
)


def decompose_overheads(trace: Trace) -> OverheadBreakdown:
    """Decompose a trace into compute / movement / comm / scheduling / idle.

    The denominator is the core-seconds the workflow occupied: makespan
    times the number of distinct (node, core) slots that executed at least
    one stage.  GPU kernel time counts as compute (it occupies the slot's
    task just the same).
    """
    if not trace.stages:
        return OverheadBreakdown(
            makespan=0.0,
            cores_used=0,
            compute_share=0.0,
            movement_share=0.0,
            comm_share=0.0,
            scheduling_share=0.0,
            idle_share=0.0,
        )
    makespan = trace.makespan
    on_core = [r for r in trace.stages if r.stage not in _OFF_CORE_STAGES]
    cores = {(r.node, r.core) for r in on_core}
    budget = makespan * len(cores)
    sums = {stage: 0.0 for stage in Stage}
    for record in on_core:
        sums[record.stage] += record.duration
    compute = sum(sums[s] for s in _COMPUTE_STAGES)
    movement = sum(sums[s] for s in _MOVEMENT_STAGES)
    comm = sums[Stage.CPU_GPU_COMM]
    scheduling = sums[Stage.SCHEDULING]
    if budget <= 0:
        budget = max(compute + movement + comm + scheduling, 1e-12)
    busy = compute + movement + comm + scheduling
    return OverheadBreakdown(
        makespan=makespan,
        cores_used=len(cores),
        compute_share=compute / budget,
        movement_share=movement / budget,
        comm_share=comm / budget,
        scheduling_share=scheduling / budget,
        idle_share=max(0.0, 1.0 - busy / budget),
    )
