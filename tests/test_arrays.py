"""Unit tests for the distributed array."""

import numpy as np
import pytest

from repro.arrays import DistributedArray
from repro.data import Blocking, DatasetSpec, GridSpec
from repro.data.generator import generate_matrix
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.runtime import Backend


def _blocking(rows=64, cols=64, k=4, l=4):
    return Blocking.from_grid(DatasetSpec("d", rows=rows, cols=cols), GridSpec(k=k, l=l))


class TestCreation:
    def test_grid_of_refs(self):
        rt = Runtime(RuntimeConfig())
        array = DistributedArray.create(rt, _blocking())
        assert array.grid_shape == (4, 4)
        assert array.shape == (64, 64)
        assert len(array.blocks()) == 16

    def test_block_sizes_match_blocking(self):
        rt = Runtime(RuntimeConfig())
        blocking = _blocking()
        array = DistributedArray.create(rt, blocking)
        assert all(ref.size_bytes == blocking.block_bytes for ref in array.blocks())

    def test_blocks_spread_round_robin_over_nodes(self):
        rt = Runtime(RuntimeConfig())
        array = DistributedArray.create(rt, _blocking())
        homes = [ref.home_node for ref in array.blocks()]
        assert set(homes) == set(range(8))

    def test_ref_grid_shape_validated(self):
        blocking = _blocking()
        with pytest.raises(ValueError):
            DistributedArray(blocking, [[]])

    def test_names_carry_indices(self):
        rt = Runtime(RuntimeConfig())
        array = DistributedArray.create(rt, _blocking(), name="X")
        assert array.block(2, 3).name == "X[2][3]"


class TestMaterialisation:
    def test_materialized_blocks_tile_the_matrix(self):
        rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        blocking = _blocking(rows=32, cols=32, k=2, l=2)
        array = DistributedArray.create(rt, blocking, materialize=True)
        result = rt.run()  # no tasks; just materialised inputs
        gathered = array.gather(result)
        expected = generate_matrix(blocking.dataset)
        np.testing.assert_array_equal(gathered, expected)

    def test_ragged_blocks_materialise_correctly(self):
        rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        blocking = Blocking.from_grid(
            DatasetSpec("d", rows=10, cols=4), GridSpec(k=3, l=1)
        )
        array = DistributedArray.create(rt, blocking, materialize=True)
        result = rt.run()
        gathered = array.gather(result)
        assert gathered.shape == (10, 4)
        np.testing.assert_array_equal(gathered, generate_matrix(blocking.dataset))

    def test_assemble_from_output_grid(self):
        rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        blocking = _blocking(rows=8, cols=8, k=2, l=2)
        array = DistributedArray.create(rt, blocking, materialize=True)
        negated = [
            [
                rt.submit(name="neg", inputs=[array.block(i, j)], fn=lambda b: -b)[0]
                for j in range(2)
            ]
            for i in range(2)
        ]
        result = rt.run()
        assembled = DistributedArray.assemble(negated, result)
        np.testing.assert_array_equal(assembled, -array.gather(result))
