"""Tests for the analytic Amdahl-with-overhead speedup model."""

import pytest
from hypothesis import given, strategies as st

from repro.algorithms.kmeans import partial_sum_cost
from repro.algorithms.matmul import add_cost, matmul_cost
from repro.hardware import minotauro
from repro.perfmodel import CostModel
from repro.perfmodel.amdahl import (
    amdahl_speedup,
    amdahl_with_overhead,
    breakeven_device_speedup,
    predict,
    worth_gpu,
)


@pytest.fixture(scope="module")
def model():
    return CostModel(minotauro())


class TestAmdahlFormulas:
    def test_fully_serial_gives_no_speedup(self):
        assert amdahl_speedup(0.0, 100.0) == 1.0

    def test_fully_parallel_gives_device_speedup(self):
        assert amdahl_speedup(1.0, 25.0) == pytest.approx(25.0)

    def test_half_parallel_classic_value(self):
        # f=0.5, s=2 -> 1/(0.5 + 0.25) = 1.333...
        assert amdahl_speedup(0.5, 2.0) == pytest.approx(4.0 / 3.0)

    def test_overhead_reduces_speedup(self):
        base = amdahl_speedup(0.9, 10.0)
        with_overhead = amdahl_with_overhead(0.9, 10.0, 0.2)
        assert with_overhead < base

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            amdahl_speedup(1.5, 2.0)
        with pytest.raises(ValueError):
            amdahl_speedup(0.5, 0.0)
        with pytest.raises(ValueError):
            amdahl_with_overhead(0.5, 2.0, -0.1)

    @given(
        f=st.floats(min_value=0.0, max_value=1.0),
        s=st.floats(min_value=1.0, max_value=1000.0),
    )
    def test_speedup_bounded_by_amdahl_ceiling(self, f, s):
        speedup = amdahl_speedup(f, s)
        assert 1.0 <= speedup <= s + 1e-9
        if f < 1.0:
            assert speedup <= 1.0 / (1.0 - f) + 1e-9

    @given(
        f=st.floats(min_value=0.01, max_value=1.0),
        s=st.floats(min_value=1.0, max_value=100.0),
        o=st.floats(min_value=0.0, max_value=2.0),
    )
    def test_overhead_monotone(self, f, s, o):
        assert amdahl_with_overhead(f, s, o) <= amdahl_speedup(f, s) + 1e-12


class TestPredictionAgainstCostModel:
    def test_prediction_matches_cost_model_exactly(self, model):
        # Both derive from the same stage times, so the user-code speedup
        # must agree to rounding.
        cost = partial_sum_cost(48829, 100, 10)
        prediction = predict(cost, model)
        assert prediction.user_code_speedup == pytest.approx(
            model.user_code_speedup(cost), rel=1e-9
        )

    def test_matmul_parallel_share_is_one(self, model):
        cost = matmul_cost(4096, 4096, 4096)
        assert predict(cost, model).parallel_share == pytest.approx(1.0)

    def test_kmeans_parallel_share_below_one(self, model):
        cost = partial_sum_cost(48829, 100, 10)
        assert predict(cost, model).parallel_share < 0.5

    def test_ceiling_caps_user_code_speedup(self, model):
        cost = partial_sum_cost(48829, 100, 1000)
        prediction = predict(cost, model)
        assert prediction.user_code_speedup <= prediction.amdahl_ceiling

    def test_zero_work_task_rejected(self, model):
        from repro.perfmodel import TaskCost

        empty = TaskCost(
            serial_flops=0, parallel_flops=0, parallel_items=0,
            arithmetic_intensity=0, input_bytes=0, output_bytes=0,
            host_device_bytes=0, gpu_memory_bytes=0,
        )
        with pytest.raises(ValueError):
            predict(empty, model)


class TestBreakevenAndWorthiness:
    def test_matmul_large_block_is_worth_gpu(self, model):
        assert worth_gpu(matmul_cost(16384, 16384, 16384), model)

    def test_add_func_never_worth_gpu(self, model):
        # The paper's Figure 8 inversion, analytically: no finite device
        # speedup makes add_func profitable.
        cost = add_cost(16384, 16384)
        assert not worth_gpu(cost, model)
        assert breakeven_device_speedup(cost, model) is None

    def test_breakeven_consistency(self, model):
        # At the break-even device speedup, the predicted gain is exactly 1.
        cost = matmul_cost(2048, 2048, 2048)
        breakeven = breakeven_device_speedup(cost, model)
        assert breakeven is not None
        prediction = predict(cost, model)
        implied = amdahl_with_overhead(
            prediction.parallel_share, breakeven, prediction.overhead_share
        )
        assert implied == pytest.approx(1.0)

    def test_breakeven_above_one_when_overhead_present(self, model):
        cost = matmul_cost(2048, 2048, 2048)
        assert breakeven_device_speedup(cost, model) > 1.0

    def test_serial_only_task_not_worth_gpu(self, model):
        from repro.perfmodel import TaskCost

        serial = TaskCost(
            serial_flops=1e9, parallel_flops=0, parallel_items=0,
            arithmetic_intensity=0, input_bytes=8, output_bytes=8,
            host_device_bytes=0, gpu_memory_bytes=0,
        )
        assert not worth_gpu(serial, model)
        assert breakeven_device_speedup(serial, model) is None
