"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation disables one mechanism of the cluster model and shows that
a paper-reproducing behaviour disappears, demonstrating that the
mechanism (not a coincidence of constants) produces the effect:

1. **GPU occupancy curve** — without it, fine-grained kernels would get
   the same device speedup as coarse ones, flattening Figure 8's scaling.
2. **GPFS per-stream cap** — without it, coarse-grained reads are no
   slower than fine-grained aggregate reads, and Figure 10's drop at the
   single-task maximum block size disappears.
3. **Scheduling dispatch latency** — without it, the two policies become
   indistinguishable on shared storage for fine-grained K-means.
"""

import dataclasses

from repro.algorithms import KMeansWorkflow, MatmulWorkflow
from repro.core.experiments.runners import run_workflow
from repro.data import paper_datasets
from repro.hardware import StorageKind, minotauro
from repro.runtime import SchedulingPolicy


def _with_gpu(cluster, **gpu_overrides):
    node = dataclasses.replace(
        cluster.node, gpu=dataclasses.replace(cluster.node.gpu, **gpu_overrides)
    )
    return dataclasses.replace(cluster, node=node)


def _with_shared_disk(cluster, **disk_overrides):
    return dataclasses.replace(
        cluster, shared_disk=dataclasses.replace(cluster.shared_disk, **disk_overrides)
    )


def _speedup_spread(cluster):
    """Max/min matmul_func user-code speedup across block sizes."""
    dataset = paper_datasets()["matmul_8gb"]
    speedups = []
    for grid in (16, 2):
        cpu = run_workflow(MatmulWorkflow(dataset, grid=grid), use_gpu=False,
                           cluster=cluster)
        gpu = run_workflow(MatmulWorkflow(dataset, grid=grid), use_gpu=True,
                           cluster=cluster)
        speedups.append(
            cpu.user_code["matmul_func"].user_code
            / gpu.user_code["matmul_func"].user_code
        )
    return max(speedups) / min(speedups)


def test_ablation_gpu_occupancy_curve(once):
    baseline = minotauro()
    # An always-saturated device: occupancy ~1 regardless of kernel size.
    flat = _with_gpu(baseline, saturation_items=1e-6)

    def measure():
        return _speedup_spread(baseline), _speedup_spread(flat)

    with_curve, without_curve = once(measure)
    print(f"\nspeedup spread with occupancy curve: {with_curve:.2f}x, "
          f"without: {without_curve:.2f}x")
    # The curve is what makes fine-grained speedups collapse (Figure 8);
    # the residual spread without it comes from transfer overhead alone.
    assert with_curve > 3.0
    assert without_curve < 2.5
    assert with_curve > 1.5 * without_curve


def _kmeans_parallel_task_time(cluster, grid_rows):
    dataset = paper_datasets()["kmeans_10gb"]
    metrics = run_workflow(
        KMeansWorkflow(dataset, grid_rows=grid_rows, n_clusters=10, iterations=3),
        use_gpu=False,
        storage=StorageKind.SHARED,
        cluster=cluster,
    )
    return metrics.parallel_task_time


def test_ablation_per_stream_cap(once):
    baseline = minotauro()
    uncapped = _with_shared_disk(baseline, per_stream_cap=None)

    def measure():
        return (
            _kmeans_parallel_task_time(baseline, 2),
            _kmeans_parallel_task_time(baseline, 1),
            _kmeans_parallel_task_time(uncapped, 2),
            _kmeans_parallel_task_time(uncapped, 1),
        )

    capped_2, capped_1, uncapped_2, uncapped_1 = once(measure)
    print(f"\ncapped: 2x1 {capped_2:.1f}s -> 1x1 {capped_1:.1f}s; "
          f"uncapped: 2x1 {uncapped_2:.1f}s -> 1x1 {uncapped_1:.1f}s")
    # With the cap, the single-task point drops (Figure 10); without it,
    # coarse-grained reads are cheap and the drop disappears.
    assert capped_1 < capped_2
    assert uncapped_1 > uncapped_2


def test_ablation_scheduling_latency(once):
    baseline = minotauro()
    free = dataclasses.replace(
        baseline,
        scheduling_latency={policy: 0.0 for policy in baseline.scheduling_latency},
        locality_scan_seconds_per_task=0.0,
    )
    dataset = paper_datasets()["kmeans_10gb"]

    def gap(cluster):
        times = {}
        for policy in (
            SchedulingPolicy.GENERATION_ORDER,
            SchedulingPolicy.DATA_LOCALITY,
        ):
            metrics = run_workflow(
                KMeansWorkflow(dataset, grid_rows=256, n_clusters=10, iterations=3),
                use_gpu=True,
                storage=StorageKind.SHARED,
                scheduling=policy,
                cluster=cluster,
            )
            times[policy] = metrics.parallel_task_time
        values = list(times.values())
        return abs(values[0] - values[1]) / min(values)

    def measure():
        return gap(baseline), gap(free)

    with_latency, without_latency = once(measure)
    print(f"\npolicy gap with dispatch latency: {with_latency:.1%}, "
          f"without: {without_latency:.1%}")
    assert with_latency > without_latency
    assert without_latency < 0.01
