"""Extension benchmark — strong scaling over the node count.

The paper ran on 8 of Minotauro's 38 nodes (§4.4.1).  This bench holds
the workload fixed (K-means 10 GB, 128 tasks) and sweeps the node count,
reporting makespan and parallel efficiency for both processor types.
Expected shapes: CPU runs scale close to linearly while cores remain the
binding resource; GPU runs saturate earlier (task parallelism caps at
4 GPUs/node); the shared file system eventually bounds both — the
scale-out limits §2 attributes to cluster deployments.
"""

from repro.algorithms import KMeansWorkflow
from repro.core.report import Table, format_seconds
from repro.data import paper_datasets
from repro.hardware import minotauro
from repro.runtime import Runtime, RuntimeConfig

NODE_COUNTS = (1, 2, 4, 8)


def test_strong_scaling(once):
    datasets = paper_datasets()

    def measure():
        times = {}
        for nodes in NODE_COUNTS:
            for use_gpu in (False, True):
                rt = Runtime(
                    RuntimeConfig(cluster=minotauro(num_nodes=nodes),
                                  use_gpu=use_gpu)
                )
                KMeansWorkflow(
                    datasets["kmeans_10gb"], grid_rows=128, n_clusters=100,
                    iterations=3,
                ).build(rt)
                times[(nodes, use_gpu)] = rt.run().makespan
        return times

    times = once(measure)
    table = Table(
        title="Strong scaling: K-means 10GB, 128 tasks, K=100",
        headers=("nodes", "CPU makespan", "CPU efficiency",
                 "GPU makespan", "GPU efficiency"),
    )
    for nodes in NODE_COUNTS:
        cpu_eff = times[(1, False)] / (times[(nodes, False)] * nodes)
        gpu_eff = times[(1, True)] / (times[(nodes, True)] * nodes)
        table.add_row(
            nodes,
            format_seconds(times[(nodes, False)]),
            f"{cpu_eff:.0%}",
            format_seconds(times[(nodes, True)]),
            f"{gpu_eff:.0%}",
        )
    print()
    print(table.render())
    # More nodes never hurt, and the 8-node run is substantially faster.
    for use_gpu in (False, True):
        series = [times[(n, use_gpu)] for n in NODE_COUNTS]
        assert all(a >= b * 0.999 for a, b in zip(series, series[1:]))
        assert series[-1] < series[0] / 2
    # Efficiency decays with scale (storage contention + fixed overheads).
    cpu_effs = [
        times[(1, False)] / (times[(n, False)] * n) for n in NODE_COUNTS
    ]
    assert cpu_effs[-1] <= cpu_effs[0] + 1e-9
