"""Deterministic process-level chaos injection for shard workers.

:mod:`repro.faults` injects failures into the *simulated* cluster; this
module injects failures into the *real* processes that run simulations —
the host-side mirror.  A :class:`ChaosPlan` is shipped to every
:class:`~repro.core.shard.ShardPool` worker, which consults it before
executing each instance:

* **kill** — the worker calls ``os._exit`` before touching the
  instance, exercising the crash re-dispatch path with a real SIGKILL
  -grade death;
* **hang** — the worker suspends its heartbeat thread and sleeps,
  impersonating a process that is alive but no longer responding (a
  stuck C extension, a SIGSTOP); only supervision deadlines or
  heartbeat timeouts can reclaim it;
* **slow** — the worker sleeps briefly before running the instance,
  modelling a straggler.

All decisions are *keyed*, not streamed: the verdict for an instance is
``Random(f"{seed}|{instance}|{attempt}")``, so it depends only on the
plan, the instance id, and the attempt number — never on which worker
draws it or in what order.  Two properties follow: a chaos run is
exactly reproducible from its seed, and because chaos only delays or
kills processes (never alters what a function computes), a sharded run
under chaos must stay bit-identical to a serial run of the same
instances.  ``repro bench --suite chaos`` and ``tests/test_chaos.py``
hold the pool to that.

By default faults only fire on the first attempt
(``fault_attempts=1``), so a retried instance completes and a plan can
never spin a pool into quarantining everything unless it is explicitly
told to (``fault_attempts >= max_attempts``).
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass

#: Exit code chaos kills use, distinguishable from real crashes in logs.
CHAOS_EXIT_CODE = 77

#: Action kinds in decision order.
KILL = "kill"
HANG = "hang"
SLOW = "slow"
NONE = "none"


@dataclass(frozen=True)
class ChaosAction:
    """One verdict: what a worker does before running an instance."""

    kind: str
    #: Sleep duration for ``hang``/``slow``; 0 otherwise.
    seconds: float = 0.0


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, picklable description of host-level misbehaviour.

    Probabilities are per (instance, attempt) and mutually exclusive —
    one uniform draw is partitioned as kill | hang | slow | none — so
    they must sum to at most 1.
    """

    seed: int = 0
    kill_probability: float = 0.0
    hang_probability: float = 0.0
    slow_probability: float = 0.0
    #: How long a hung worker sleeps; make this comfortably larger than
    #: the supervision deadline so the hang is reclaimed, not outlived.
    hang_seconds: float = 3600.0
    #: Straggler sleep is drawn uniformly from this (min, max) range.
    slow_seconds: tuple[float, float] = (0.05, 0.25)
    #: Faults only fire on attempts <= this (1-based); later attempts
    #: run clean so retries converge.
    fault_attempts: int = 1

    def __post_init__(self) -> None:
        for name in ("kill_probability", "hang_probability", "slow_probability"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        total = (
            self.kill_probability + self.hang_probability + self.slow_probability
        )
        if total > 1.0:
            raise ValueError(
                f"fault probabilities must sum to <= 1, got {total}"
            )
        lo, hi = self.slow_seconds
        if lo < 0 or hi < lo:
            raise ValueError(
                f"slow_seconds must be a (min, max) range, got {self.slow_seconds}"
            )

    def decide(self, instance_id: object, attempt: int) -> ChaosAction:
        """The keyed verdict for one (instance, attempt).

        Deterministic across processes and start methods: ``Random``
        seeds strings through SHA-512, independent of hash
        randomisation.
        """
        if attempt > self.fault_attempts:
            return ChaosAction(NONE)
        rng = random.Random(  # repro: disable=DL004 - explicitly keyed seed
            f"{self.seed}|{_instance_key(instance_id)}|{attempt}"
        )
        draw = rng.random()
        if draw < self.kill_probability:
            return ChaosAction(KILL)
        draw -= self.kill_probability
        if draw < self.hang_probability:
            return ChaosAction(HANG, self.hang_seconds)
        draw -= self.hang_probability
        if draw < self.slow_probability:
            lo, hi = self.slow_seconds
            return ChaosAction(SLOW, lo + (hi - lo) * rng.random())
        return ChaosAction(NONE)

    def to_json(self) -> str:
        """JSON form (stable key order) for logs and CLI round-trips."""
        data = asdict(self)
        data["slow_seconds"] = list(self.slow_seconds)
        return json.dumps(data, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        data = json.loads(text)
        if "slow_seconds" in data:
            data["slow_seconds"] = tuple(data["slow_seconds"])
        return cls(**data)


def _instance_key(instance_id: object) -> str:
    """Stable string key of an instance id (ids are hashable + sortable
    by the pool contract; str/int cover every in-repo caller)."""
    try:
        return json.dumps(instance_id, sort_keys=True)
    except TypeError:
        return repr(instance_id)
