"""Property-based tests for the scheduling policies.

Rather than enumerating cluster states by hand, Hypothesis generates
random ready queues, node capacities, and blacklists, and asserts the
contracts every policy must honour:

* an :class:`Assignment` always targets a node with a free slot;
* a blacklisted node is never chosen, whatever the policy;
* ``GenerationOrderScheduler`` always dispatches the head of the queue;
* round-robin node choice wraps around and spreads consecutive picks;
* ``DataLocalityScheduler`` breaks all-zero locality ties round-robin
  instead of piling every tie onto node 0 (regression for the
  tie-breaking fix).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel import TaskCost
from repro.runtime import DataRef, SchedulingPolicy, Task
from repro.runtime.scheduler import (
    DataLocalityScheduler,
    GenerationOrderScheduler,
    LifoScheduler,
    make_scheduler,
)


class FakeCluster:
    """A ClusterView stub with per-node availability and a blacklist."""

    def __init__(self, free_cores, free_gpus=None, blacklist=()):
        self.free_cores = list(free_cores)
        self.free_gpus = list(free_gpus or [1] * len(free_cores))
        self.blacklist = set(blacklist)

    def num_nodes(self):
        return len(self.free_cores)

    def is_blacklisted(self, node):
        return node in self.blacklist

    def has_free_slot(self, node, needs_gpu, ram_bytes=0):
        if self.free_cores[node] < 1:
            return False
        if needs_gpu and self.free_gpus[node] < 1:
            return False
        return True


def _task(task_id, input_homes=()):
    cost = TaskCost(
        serial_flops=1.0,
        parallel_flops=0.0,
        parallel_items=0.0,
        arithmetic_intensity=1.0,
        input_bytes=100,
        output_bytes=10,
        host_device_bytes=0,
        gpu_memory_bytes=0,
    )
    return Task(
        task_id=task_id,
        name=f"t{task_id}",
        inputs=tuple(DataRef(size_bytes=100, home_node=h) for h in input_homes),
        outputs=(DataRef(size_bytes=10),),
        cost=cost,
    )


def _never_gpu(task):
    return False


@st.composite
def cluster_and_ready(draw):
    """A random cluster state plus a random ready queue."""
    n = draw(st.integers(min_value=1, max_value=6))
    free_cores = draw(
        st.lists(st.integers(0, 3), min_size=n, max_size=n)
    )
    free_gpus = draw(st.lists(st.integers(0, 2), min_size=n, max_size=n))
    blacklist = draw(st.sets(st.integers(0, n - 1), max_size=n))
    cluster = FakeCluster(free_cores, free_gpus, blacklist)
    num_ready = draw(st.integers(0, 8))
    ready = [
        _task(i, input_homes=draw(st.lists(st.integers(0, n - 1), max_size=3)))
        for i in range(num_ready)
    ]
    return cluster, ready


ALL_POLICIES = list(SchedulingPolicy)


@settings(max_examples=60, deadline=None)
@given(state=cluster_and_ready(), policy=st.sampled_from(ALL_POLICIES))
def test_assignment_targets_free_non_blacklisted_node(state, policy):
    cluster, ready = state
    scheduler = make_scheduler(policy)
    choice = scheduler.select(ready, cluster, _never_gpu)
    if choice is None:
        return
    assert choice.task in ready
    assert cluster.has_free_slot(choice.node, False)
    assert not cluster.is_blacklisted(choice.node)


@settings(max_examples=60, deadline=None)
@given(state=cluster_and_ready(), policy=st.sampled_from(ALL_POLICIES))
def test_none_only_when_no_placement_exists(state, policy):
    # A scheduler may only give up when every (queue-head, node) pairing
    # it considers is infeasible; with a uniformly usable node and a
    # non-empty queue it must place something.
    cluster, ready = state
    usable = [
        node
        for node in range(cluster.num_nodes())
        if cluster.has_free_slot(node, False) and not cluster.is_blacklisted(node)
    ]
    scheduler = make_scheduler(policy)
    choice = scheduler.select(ready, cluster, _never_gpu)
    if ready and usable:
        assert choice is not None


@settings(max_examples=60, deadline=None)
@given(state=cluster_and_ready())
def test_generation_order_always_picks_queue_head(state):
    cluster, ready = state
    scheduler = GenerationOrderScheduler()
    choice = scheduler.select(ready, cluster, _never_gpu)
    if choice is not None:
        assert choice.task is ready[0]


@settings(max_examples=60, deadline=None)
@given(state=cluster_and_ready())
def test_lifo_always_picks_queue_tail(state):
    cluster, ready = state
    scheduler = LifoScheduler()
    choice = scheduler.select(ready, cluster, _never_gpu)
    if choice is not None:
        assert choice.task is ready[-1]


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 6), picks=st.integers(2, 20))
def test_round_robin_wraps_around(n, picks):
    # With every node free, consecutive picks cycle 0, 1, ..., n-1, 0, ...
    scheduler = GenerationOrderScheduler()
    cluster = FakeCluster([10] * n)
    nodes = [
        scheduler.select([_task(i)], cluster, _never_gpu).node
        for i in range(picks)
    ]
    assert nodes == [i % n for i in range(picks)]


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 6), picks=st.integers(2, 20))
def test_locality_all_zero_ties_round_robin(n, picks):
    # Regression: tasks with no local input bytes anywhere used to land on
    # node 0 every time; ties must now rotate like generation order.
    scheduler = DataLocalityScheduler()
    cluster = FakeCluster([10] * n)
    nodes = [
        scheduler.select([_task(i)], cluster, _never_gpu).node
        for i in range(picks)
    ]
    assert nodes == [i % n for i in range(picks)]
    assert len(set(nodes)) == min(n, picks)


@settings(max_examples=60, deadline=None)
@given(state=cluster_and_ready())
def test_locality_still_prefers_owner_over_rotation(state):
    # The tie-break fix must not weaken the policy itself: when one node
    # holds strictly more of the head task's bytes than all others and is
    # usable, it wins regardless of the rotation cursor.
    cluster, ready = state
    if not ready:
        return
    owner = 0
    if cluster.num_nodes() > 0:
        task = _task(99, input_homes=[owner, owner])
        scheduler = DataLocalityScheduler()
        choice = scheduler.select([task], cluster, _never_gpu)
        if (
            cluster.has_free_slot(owner, False)
            and not cluster.is_blacklisted(owner)
        ):
            assert choice is not None and choice.node == owner


def test_blacklisted_preferred_owner_falls_back():
    # Deterministic regression: the owner node is blacklisted, so the
    # locality policy must place the task elsewhere.
    scheduler = DataLocalityScheduler()
    cluster = FakeCluster([1, 1, 1], blacklist={2})
    choice = scheduler.select([_task(0, input_homes=[2])], cluster, _never_gpu)
    assert choice is not None
    assert choice.node != 2


def test_stub_without_blacklist_still_works():
    # ClusterViews that predate the blacklist (plain stubs) keep working.
    class Bare:
        def num_nodes(self):
            return 2

        def has_free_slot(self, node, needs_gpu, ram_bytes=0):
            return True

    for policy in ALL_POLICIES:
        choice = make_scheduler(policy).select([_task(0)], Bare(), _never_gpu)
        assert choice is not None
