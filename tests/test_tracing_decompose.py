"""Tests for the overhead-decomposition analysis."""

import pytest

from repro.algorithms import KMeansWorkflow, MatmulWorkflow
from repro.data import paper_datasets
from repro.hardware import StorageKind
from repro.runtime import Runtime, RuntimeConfig
from repro.tracing import Trace, decompose_overheads


def _kmeans_trace(grid_rows=64, storage=StorageKind.SHARED, use_gpu=False):
    rt = Runtime(RuntimeConfig(storage=storage, use_gpu=use_gpu))
    KMeansWorkflow(
        paper_datasets()["kmeans_10gb"], grid_rows=grid_rows, n_clusters=10,
        iterations=1,
    ).build(rt)
    return rt.run().trace


class TestDecomposition:
    def test_shares_sum_to_one(self):
        breakdown = decompose_overheads(_kmeans_trace())
        total = (
            breakdown.compute_share
            + breakdown.movement_share
            + breakdown.comm_share
            + breakdown.scheduling_share
            + breakdown.idle_share
        )
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_all_shares_nonnegative(self):
        breakdown = decompose_overheads(_kmeans_trace())
        for value in (
            breakdown.compute_share,
            breakdown.movement_share,
            breakdown.comm_share,
            breakdown.scheduling_share,
            breakdown.idle_share,
        ):
            assert value >= 0.0

    def test_kmeans_is_movement_dominated(self):
        # The paper's §5.1.2: (de-)serialization is the critical overhead
        # for cheap distributed tasks on shared disk.
        breakdown = decompose_overheads(_kmeans_trace())
        assert breakdown.movement_share > breakdown.compute_share

    def test_matmul_is_compute_dominated(self):
        rt = Runtime(RuntimeConfig())
        MatmulWorkflow(paper_datasets()["matmul_8gb"], grid=4).build(rt)
        breakdown = decompose_overheads(rt.run().trace)
        assert breakdown.compute_share > breakdown.movement_share

    def test_cpu_runs_have_no_comm(self):
        breakdown = decompose_overheads(_kmeans_trace(use_gpu=False))
        assert breakdown.comm_share == 0.0

    def test_gpu_runs_have_comm(self):
        breakdown = decompose_overheads(_kmeans_trace(use_gpu=True))
        assert breakdown.comm_share > 0.0

    def test_local_disk_cuts_movement_share(self):
        shared = decompose_overheads(_kmeans_trace(storage=StorageKind.SHARED))
        local = decompose_overheads(_kmeans_trace(storage=StorageKind.LOCAL))
        assert local.movement_share < shared.movement_share

    def test_empty_trace(self):
        breakdown = decompose_overheads(Trace())
        assert breakdown.makespan == 0.0
        assert breakdown.cores_used == 0

    def test_render_mentions_all_categories(self):
        text = decompose_overheads(_kmeans_trace()).render()
        for token in ("compute", "movement", "comm", "scheduling", "idle"):
            assert token in text

    def test_overhead_share_property(self):
        breakdown = decompose_overheads(_kmeans_trace())
        assert breakdown.overhead_share == pytest.approx(
            breakdown.movement_share
            + breakdown.comm_share
            + breakdown.scheduling_share
        )
