"""Discrete-event simulation engine.

This package provides the generic simulation substrate used to model the
heterogeneous CPU-GPU cluster: a deterministic event loop
(:class:`~repro.sim.engine.Simulator`), cooperative processes expressed as
Python generators (:class:`~repro.sim.process.Process`), and contended
resources (:class:`~repro.sim.resources.CapacityResource` for discrete slots
such as CPU cores and GPU devices, and
:class:`~repro.sim.resources.BandwidthResource` for processor-shared channels
such as disks, network links, and the PCIe bus).

The engine is intentionally independent of the paper's domain so it can be
tested in isolation and reused by any experiment.
"""

from repro.sim.engine import (
    KERNELS,
    ScheduledEvent,
    SimEngine,
    SimulationError,
    Simulator,
)
from repro.sim.events import SimEvent
from repro.sim.process import (
    Acquire,
    AllOf,
    Process,
    Release,
    Timeout,
    Transfer,
    WaitEvent,
)
from repro.sim.resources import BandwidthResource, CapacityResource

__all__ = [
    "Acquire",
    "AllOf",
    "BandwidthResource",
    "CapacityResource",
    "KERNELS",
    "Process",
    "Release",
    "ScheduledEvent",
    "SimEngine",
    "SimEvent",
    "SimulationError",
    "Simulator",
    "Timeout",
    "Transfer",
    "WaitEvent",
]
