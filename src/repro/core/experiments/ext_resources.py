"""Extension experiment — resource-parameter sensitivity (§4.3 future work).

The paper explicitly defers "other resource parameters, such as #GPU
devices, RAM and GPU memory size, CPU-GPU bus throughput, and disk
throughput" to future work.  The simulator makes those sweeps free: this
experiment varies each deferred parameter around the Minotauro baseline
while holding the workload fixed, and reports how the GPU-accelerated
parallel-task time responds — which knobs actually move the needle, and
where the returns saturate.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable

from repro.core.experiments.engine import CellSpec, SweepEngine
from repro.core.experiments.runners import RunMetrics
from repro.core.report import Table, format_seconds
from repro.hardware import ClusterSpec, minotauro

GIB = 1024**3


def _with_gpus_per_node(base: ClusterSpec, devices: int) -> ClusterSpec:
    node = dataclasses.replace(
        base.node, gpu=dataclasses.replace(base.node.gpu, devices_per_node=devices)
    )
    return dataclasses.replace(base, node=node)


def _with_gpu_memory(base: ClusterSpec, memory_bytes: int) -> ClusterSpec:
    node = dataclasses.replace(
        base.node, gpu=dataclasses.replace(base.node.gpu, memory_bytes=memory_bytes)
    )
    return dataclasses.replace(base, node=node)


def _with_bus_bandwidth(base: ClusterSpec, per_transfer: float) -> ClusterSpec:
    interconnect = dataclasses.replace(
        base.node.interconnect,
        bandwidth_per_transfer=per_transfer,
        node_bandwidth=max(4 * per_transfer, base.node.interconnect.node_bandwidth),
    )
    node = dataclasses.replace(base.node, interconnect=interconnect)
    return dataclasses.replace(base, node=node)


def _with_disk_bandwidth(base: ClusterSpec, aggregate: float) -> ClusterSpec:
    shared = dataclasses.replace(
        base.shared_disk,
        read_bandwidth=aggregate,
        write_bandwidth=0.75 * aggregate,
    )
    return dataclasses.replace(base, shared_disk=shared)


#: parameter name -> (values, cluster builder, value formatter)
SWEEPS: dict[str, tuple[tuple, Callable, Callable]] = {
    "gpus_per_node": (
        (1, 2, 4, 8),
        _with_gpus_per_node,
        lambda v: str(v),
    ),
    "gpu_memory": (
        (6 * GIB, 12 * GIB, 24 * GIB, 48 * GIB),
        _with_gpu_memory,
        lambda v: f"{v / GIB:.0f} GiB",
    ),
    "bus_bandwidth": (
        (1.0e9, 2.0e9, 8.0e9, 20.0e9),
        _with_bus_bandwidth,
        lambda v: f"{v / 1e9:.0f} GB/s",
    ),
    "shared_disk_bandwidth": (
        (1.0e9, 2.0e9, 8.0e9, 32.0e9),
        _with_disk_bandwidth,
        lambda v: f"{v / 1e9:.0f} GB/s",
    ),
}


@dataclass
class SensitivityPoint:
    """One (parameter, value, workload) measurement."""

    parameter: str
    value_label: str
    workload: str
    metrics: RunMetrics

    @property
    def parallel_task_time(self) -> float | None:
        """The response variable ('None' on OOM)."""
        return self.metrics.parallel_task_time if self.metrics.ok else None


@dataclass
class ResourceSensitivityResult:
    """All sweeps over all workloads."""

    points: list[SensitivityPoint] = field(default_factory=list)

    def series(self, parameter: str, workload: str) -> dict[str, float | None]:
        """value label -> parallel-task time for one sweep/workload."""
        return {
            p.value_label: p.parallel_task_time
            for p in self.points
            if p.parameter == parameter and p.workload == workload
        }

    def sensitivity(self, parameter: str, workload: str) -> float:
        """Best-over-worst improvement ratio across the sweep (1 = inert)."""
        values = [
            v for v in self.series(parameter, workload).values() if v is not None
        ]
        if len(values) < 2:
            return 1.0
        return max(values) / min(values)

    def render(self) -> str:
        """All sweeps as one table."""
        table = Table(
            title=(
                "Resource-parameter sensitivity (GPU runs; the paper's "
                "§4.3 deferred parameters)"
            ),
            headers=("parameter", "value", "matmul P.Task", "kmeans P.Task"),
        )
        for parameter, (values, _build, fmt) in SWEEPS.items():
            matmul_series = self.series(parameter, "matmul")
            kmeans_series = self.series(parameter, "kmeans")
            for value in values:
                label = fmt(value)
                m = matmul_series.get(label)
                k = kmeans_series.get(label)
                table.add_row(
                    parameter,
                    label,
                    format_seconds(m) if m is not None else "OOM",
                    format_seconds(k) if k is not None else "OOM",
                )
        lines = [table.render(), ""]
        for parameter in SWEEPS:
            lines.append(
                f"sensitivity {parameter}: matmul "
                f"{self.sensitivity(parameter, 'matmul'):.2f}x, kmeans "
                f"{self.sensitivity(parameter, 'kmeans'):.2f}x"
            )
        return "\n".join(lines)


def run_resource_sensitivity(
    matmul_grid: int = 8,
    kmeans_grid: int = 128,
    parameters: tuple[str, ...] | None = None,
    engine: SweepEngine | None = None,
) -> ResourceSensitivityResult:
    """Sweep the deferred resource parameters on both workloads (GPU mode)."""
    engine = engine if engine is not None else SweepEngine.serial()
    result = ResourceSensitivityResult()
    base = minotauro()
    selected = parameters or tuple(SWEEPS)
    cells = []
    meta = []
    for parameter in selected:
        values, build, fmt = SWEEPS[parameter]
        for value in values:
            cluster = build(base, value)
            for workload in ("matmul", "kmeans"):
                if workload == "matmul":
                    cells.append(
                        CellSpec(
                            algorithm="matmul",
                            grid=matmul_grid,
                            dataset_key="matmul_8gb",
                            use_gpu=True,
                            cluster=cluster,
                        )
                    )
                else:
                    cells.append(
                        CellSpec(
                            algorithm="kmeans",
                            grid=kmeans_grid,
                            dataset_key="kmeans_10gb",
                            n_clusters=100,
                            use_gpu=True,
                            cluster=cluster,
                        )
                    )
                meta.append((parameter, fmt(value), workload))
    results = engine.run_cells(cells)
    for (parameter, value_label, workload), metrics in zip(meta, results):
        result.points.append(
            SensitivityPoint(
                parameter=parameter,
                value_label=value_label,
                workload=workload,
                metrics=metrics,
            )
        )
    return result
