"""Tests for the distributed linear-regression workflow."""

import numpy as np
import pytest

from repro.algorithms import LinearRegressionWorkflow
from repro.algorithms.linreg import gram_cost, xty_cost
from repro.data import DatasetSpec
from repro.data.generator import generate_matrix
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.runtime import Backend


def _tiny(rows=400, cols=6):
    return DatasetSpec("lin", rows=rows, cols=cols)


class TestCorrectness:
    @pytest.mark.parametrize("grid_rows", [1, 3, 8])
    def test_matches_numpy_lstsq(self, grid_rows):
        dataset = _tiny()
        workflow = LinearRegressionWorkflow(dataset, grid_rows=grid_rows)
        rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        _data, beta_ref = workflow.build(rt, materialize=True)
        result = rt.run()
        data = generate_matrix(dataset)
        expected, *_ = np.linalg.lstsq(data, workflow.targets(), rcond=None)
        np.testing.assert_allclose(result.value_of(beta_ref), expected, rtol=1e-8)

    def test_blocking_invariance(self):
        dataset = _tiny()
        betas = []
        for grid_rows in (1, 4):
            workflow = LinearRegressionWorkflow(dataset, grid_rows=grid_rows)
            rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
            _d, ref = workflow.build(rt, materialize=True)
            betas.append(rt.run().value_of(ref))
        np.testing.assert_allclose(betas[0], betas[1], rtol=1e-9)

    def test_recovers_planted_model_approximately(self):
        dataset = _tiny(rows=2000, cols=4)
        workflow = LinearRegressionWorkflow(dataset, grid_rows=4)
        rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        _d, ref = workflow.build(rt, materialize=True)
        beta = rt.run().value_of(ref)
        rng = np.random.default_rng(dataset.seed + 2)
        true_beta = rng.random(dataset.cols)
        # Noise scale is 0.01, so recovery should be close.
        np.testing.assert_allclose(beta, true_beta, atol=0.05)


class TestDagAndCosts:
    def test_dag_shape(self):
        rt = Runtime(RuntimeConfig())
        LinearRegressionWorkflow(_tiny(), grid_rows=5).build(rt)
        names = [t.name for t in rt.graph.tasks()]
        assert names.count("gram_func") == 5
        assert names.count("xty_func") == 5
        assert names.count("reduce_sum") == 2
        assert names.count("solve_normal") == 1
        assert rt.graph.width == 10  # all partials independent

    def test_gram_quadratic_in_features(self):
        narrow = gram_cost(1000, 10)
        wide = gram_cost(1000, 100)
        assert wide.parallel_flops == pytest.approx(100 * narrow.parallel_flops)

    def test_xty_memory_bound(self):
        cost = xty_cost(10**6, 100)
        assert cost.arithmetic_intensity < 1.0

    def test_gram_more_intense_than_xty(self):
        # The workflow mixes a compute-heavy and a memory-bound task type,
        # sitting between the paper's Matmul extremes.
        assert (
            gram_cost(10**5, 100).arithmetic_intensity
            > 10 * xty_cost(10**5, 100).arithmetic_intensity
        )

    def test_simulated_run_both_processors(self):
        dataset = DatasetSpec("lin_big", rows=10_000_000, cols=100)
        times = {}
        for gpu in (False, True):
            rt = Runtime(RuntimeConfig(use_gpu=gpu))
            LinearRegressionWorkflow(dataset, grid_rows=64).build(rt)
            times[gpu] = rt.run().makespan
        assert times[True] > 0 and times[False] > 0

    def test_hybrid_plan_includes_gram_only_for_narrow_features(self):
        from repro.core.advisor import WorkflowAdvisor

        advisor = WorkflowAdvisor()
        workflow = LinearRegressionWorkflow(
            DatasetSpec("lin_adv", rows=10_000_000, cols=100), grid_rows=64
        )
        plan = advisor.plan_hybrid(workflow)
        assert "gram_func" in plan
        assert "xty_func" not in plan


class TestOpsMatmulGrids:
    def test_rectangular_blocked_matmul(self):
        from repro.arrays import DistributedArray
        from repro.arrays.ops import matmul_grids
        from repro.data import Blocking, GridSpec

        rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        a_blocking = Blocking.from_grid(
            DatasetSpec("A", rows=24, cols=12), GridSpec(k=2, l=3)
        )
        b_blocking = Blocking.from_grid(
            DatasetSpec("B", rows=12, cols=8), GridSpec(k=3, l=2)
        )
        a = DistributedArray.create(rt, a_blocking, name="A", materialize=True)
        b = DistributedArray.create(rt, b_blocking, name="B", materialize=True)
        refs = matmul_grids(
            rt,
            [[a.block(i, j) for j in range(3)] for i in range(2)],
            [[b.block(i, j) for j in range(2)] for i in range(3)],
            a_block=(12, 4),
            b_block=(4, 4),
        )
        result = rt.run()
        got = DistributedArray.assemble(refs, result)
        np.testing.assert_allclose(
            got, a.gather(result) @ b.gather(result), rtol=1e-10
        )

    def test_inner_dimension_mismatch_rejected(self):
        from repro.arrays.ops import matmul_grids

        rt = Runtime(RuntimeConfig())
        with pytest.raises(ValueError, match="inner grid dimensions"):
            matmul_grids(rt, [[None]], [[None], [None]], (2, 2), (2, 2))
        with pytest.raises(ValueError, match="inner block dimensions"):
            matmul_grids(rt, [[None]], [[None]], (2, 3), (2, 2))
