"""The paper's workloads (§4.4.4).

Two families of task-based algorithms:

* **Fully parallelizable** — every task's user code is thread-parallel:
  blocked matrix multiplication (:class:`MatmulWorkflow`, dislib-style
  ``matmul_func`` O(N^3) + ``add_func`` O(N) tasks) and its Fused
  Multiply-Add variant (:class:`MatmulFmaWorkflow`, the COMPSs sample used
  for the generalizability experiment of §5.5.1).
* **Partially parallelizable** — tasks mix serial and parallel fractions:
  distributed K-means (:class:`KMeansWorkflow`, ``partial_sum`` tasks of
  complexity O(M N K^2) plus a serial merge per iteration).

Each workflow both *submits real task functions* (NumPy, for the
in-process correctness backend) and *annotates every task with a
:class:`~repro.perfmodel.TaskCost`* (for the simulated backend).
"""

from repro.algorithms.generated import GeneratedDagWorkflow
from repro.algorithms.kmeans import KMeansWorkflow, kmeans_reference
from repro.algorithms.linreg import LinearRegressionWorkflow
from repro.algorithms.matmul import MatmulWorkflow
from repro.algorithms.matmul_fma import MatmulFmaWorkflow
from repro.algorithms.synthetic import SyntheticWorkflow

__all__ = [
    "GeneratedDagWorkflow",
    "KMeansWorkflow",
    "LinearRegressionWorkflow",
    "MatmulFmaWorkflow",
    "MatmulWorkflow",
    "SyntheticWorkflow",
    "kmeans_reference",
]
