"""Unit tests for the sweep engine and its content-addressed cache."""

import json

import pytest

from repro.algorithms import (
    KMeansWorkflow,
    MatmulFmaWorkflow,
    MatmulWorkflow,
    SyntheticWorkflow,
)
from repro.core.experiments.cache import (
    SCHEMA,
    SweepCache,
    default_cache_dir,
    metrics_from_record,
    metrics_to_record,
)
from repro.core.experiments.engine import (
    CellSpec,
    SweepEngine,
    build_workflow,
    canonical_cell,
    cell_digest,
    cells_product,
    execute_cell,
    model_fingerprint,
)
from repro.data import DatasetSpec
from repro.hardware import StorageKind
from repro.runtime import SchedulingPolicy


def small_cell(**overrides) -> CellSpec:
    defaults = dict(algorithm="kmeans", grid=4, dataset_key="kmeans_100mb",
                    n_clusters=10)
    defaults.update(overrides)
    return CellSpec(**defaults)


class TestCellSpec:
    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            CellSpec(algorithm="bogus", grid=4, dataset_key="kmeans_100mb")

    def test_rejects_both_dataset_forms(self):
        spec = DatasetSpec("inline", rows=10, cols=10)
        with pytest.raises(ValueError, match="exactly one"):
            CellSpec(
                algorithm="matmul", grid=4,
                dataset_key="matmul_128mb", dataset_spec=spec,
            )

    def test_rejects_neither_dataset_form(self):
        with pytest.raises(ValueError, match="exactly one"):
            CellSpec(algorithm="matmul", grid=4)

    def test_build_workflow_covers_all_algorithms(self):
        inline = DatasetSpec("inline", rows=1000, cols=10)
        assert isinstance(
            build_workflow(CellSpec("matmul", 4, dataset_key="matmul_128mb")),
            MatmulWorkflow,
        )
        assert isinstance(
            build_workflow(
                CellSpec("matmul_fma", 4, dataset_key="matmul_128mb")
            ),
            MatmulFmaWorkflow,
        )
        assert isinstance(
            build_workflow(small_cell()), KMeansWorkflow
        )
        assert isinstance(
            build_workflow(
                CellSpec(
                    "synthetic", 4, dataset_spec=inline, parallel_ratio=0.5
                )
            ),
            SyntheticWorkflow,
        )


class TestDigests:
    def test_digest_is_stable(self):
        assert cell_digest(small_cell()) == cell_digest(small_cell())

    def test_digest_distinguishes_fields(self):
        base = cell_digest(small_cell())
        assert cell_digest(small_cell(use_gpu=True)) != base
        assert cell_digest(small_cell(grid=8)) != base
        assert cell_digest(small_cell(storage=StorageKind.LOCAL)) != base
        assert (
            cell_digest(small_cell(scheduling=SchedulingPolicy.DATA_LOCALITY))
            != base
        )

    def test_canonical_cell_is_sorted_compact_json(self):
        text = canonical_cell(small_cell())
        parsed = json.loads(text)
        assert text == json.dumps(parsed, sort_keys=True, separators=(",", ":"))

    def test_calibration_perturbation_changes_digest(self, monkeypatch):
        """A runtime tweak of any calibration constant must invalidate
        every cached result — a stale hit would silently report figures
        from the old model."""
        from repro.perfmodel import calibration

        before = model_fingerprint()
        digest_before = cell_digest(small_cell())
        key = next(iter(calibration.CALIBRATION_NOTES))
        value, why = calibration.CALIBRATION_NOTES[key]
        monkeypatch.setitem(
            calibration.CALIBRATION_NOTES, key, (value * 1.01, why)
        )
        assert model_fingerprint() != before
        assert cell_digest(small_cell()) != digest_before

    def test_engine_misses_after_perturbation(self, tmp_path, monkeypatch):
        """No stale hit: a warmed cache is bypassed once a constant moves."""
        from repro.perfmodel import calibration

        cell = small_cell()
        warm = SweepEngine(jobs=1, cache_dir=tmp_path)
        warm.run_cells([cell])
        assert warm.stats.executed == 1

        key = next(iter(calibration.CALIBRATION_NOTES))
        value, why = calibration.CALIBRATION_NOTES[key]
        monkeypatch.setitem(
            calibration.CALIBRATION_NOTES, key, (value * 1.01, why)
        )
        perturbed = SweepEngine(jobs=1, cache_dir=tmp_path)
        perturbed.run_cells([cell])
        assert perturbed.stats.cache_hits == 0
        assert perturbed.stats.executed == 1
        # The old-fingerprint record was pruned as an eviction.
        assert perturbed.stats.evictions == 1


class TestRecordRoundtrip:
    def test_ok_metrics_roundtrip_exactly(self):
        metrics = execute_cell(small_cell())
        assert metrics.ok
        assert metrics.trace_digest
        record = metrics_to_record(metrics)
        rebuilt = metrics_from_record(json.loads(json.dumps(record)))
        assert rebuilt == metrics

    def test_oom_metrics_roundtrip_exactly(self):
        # 100 GB K-means at one block per node with 1000 clusters blows
        # the GPU; the OOM record (no user_code, no movement) must
        # round-trip too.
        metrics = execute_cell(
            CellSpec(
                algorithm="kmeans",
                grid=1,
                dataset_key="kmeans_100gb",
                n_clusters=1000,
                use_gpu=True,
            )
        )
        assert not metrics.ok
        assert metrics.error
        rebuilt = metrics_from_record(metrics_to_record(metrics))
        assert rebuilt == metrics


class TestSweepCache:
    def test_default_cache_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path / "env"))
        assert default_cache_dir() == tmp_path / "env"
        monkeypatch.delenv("REPRO_SWEEP_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro" / "sweeps"

    def test_put_get_discard(self, tmp_path):
        cache = SweepCache(tmp_path)
        digest = "ab" + "0" * 62
        record = {"fingerprint": "f", "metrics": {"x": 1}}
        path = cache.put(digest, record)
        assert path == tmp_path / "ab" / f"{digest}.json"
        loaded = cache.get(digest)
        assert loaded["schema"] == SCHEMA
        assert loaded["metrics"] == {"x": 1}
        assert len(cache) == 1
        cache.discard(digest)
        assert cache.get(digest) is None
        assert len(cache) == 0

    def test_get_tolerates_corruption(self, tmp_path):
        cache = SweepCache(tmp_path)
        digest = "cd" + "0" * 62
        cache.put(digest, {"fingerprint": "f"})
        cache.path_for(digest).write_text("{not json")
        assert cache.get(digest) is None

    def test_get_rejects_foreign_schema(self, tmp_path):
        cache = SweepCache(tmp_path)
        digest = "ef" + "0" * 62
        cache.path_for(digest).parent.mkdir(parents=True)
        cache.path_for(digest).write_text(json.dumps({"schema": "other/9"}))
        assert cache.get(digest) is None

    def test_prune_deletes_foreign_fingerprints(self, tmp_path):
        cache = SweepCache(tmp_path)
        keep = "aa" + "0" * 62
        drop = "bb" + "0" * 62
        cache.put(keep, {"fingerprint": "current"})
        cache.put(drop, {"fingerprint": "stale"})
        assert cache.prune("current") == 1
        assert cache.get(keep) is not None
        assert cache.get(drop) is None


class TestSweepEngine:
    def test_serial_engine_has_no_cache(self):
        engine = SweepEngine.serial()
        assert engine.jobs == 1
        assert engine.cache_dir is None

    def test_duplicates_execute_once(self, tmp_path):
        engine = SweepEngine(jobs=1, cache_dir=tmp_path)
        cell = small_cell()
        a, b = engine.run_cells([cell, small_cell()])
        assert engine.stats.executed == 1
        assert engine.stats.memo_hits == 1
        assert a == b
        # A later batch on the same engine also dedups.
        (c,) = engine.run_cells([cell])
        assert engine.stats.executed == 1
        assert c == a

    def test_warm_cache_does_zero_executions(self, tmp_path):
        cells = cells_product(
            "kmeans", (4, 2), dataset_key="kmeans_100mb", n_clusters=10
        )
        cold = SweepEngine(jobs=1, cache_dir=tmp_path)
        first = cold.run_cells(cells)
        assert cold.stats.executed == len(cells)

        warm = SweepEngine(jobs=1, cache_dir=tmp_path)
        second = warm.run_cells(cells)
        assert warm.stats.executed == 0
        assert warm.stats.misses == 0
        assert warm.stats.cache_hits == len(cells)
        assert first == second

    def test_parallel_matches_serial(self, tmp_path):
        cells = cells_product(
            "matmul", (4, 2), dataset_key="matmul_128mb"
        )
        serial = SweepEngine.serial().run_cells(cells)
        parallel = SweepEngine(jobs=4, cache=False).run_cells(cells)
        assert serial == parallel

    def test_results_align_with_input_order(self):
        cpu = small_cell()
        gpu = small_cell(use_gpu=True)
        results = SweepEngine.serial().run_cells([gpu, cpu, gpu])
        assert results[0].use_gpu and results[2].use_gpu
        assert not results[1].use_gpu
        assert results[0] == results[2]

    def test_stats_line_format(self):
        engine = SweepEngine.serial()
        engine.run_cells([small_cell(), small_cell()])
        line = engine.stats.line()
        assert line.startswith("[sweep] cells=2 hits=0 dedup=1 misses=1 ")
        assert "evictions=0" in line and "hit_rate=50%" in line

    def test_ledger_resume_skips_finished_cells(self, tmp_path):
        """The SIGKILL-recovery contract in miniature: a partial run
        journals its cells, and a resumed engine answers exactly those
        from the ledger (not the cache, not the simulator)."""
        cells = cells_product(
            "kmeans", (4, 2), dataset_key="kmeans_100mb", n_clusters=10
        )
        finished, remaining = cells[:1], cells[1:]
        with SweepEngine(jobs=1, cache_dir=tmp_path) as partial:
            partial.run_cells(finished)
            assert partial.ledger_path == tmp_path / "ledger.jsonl"

        with SweepEngine(jobs=1, cache_dir=tmp_path, resume=True) as resumed:
            results = resumed.run_cells(cells)
            assert resumed.stats.resumed == len(finished)
            assert resumed.stats.cache_hits == 0
            assert resumed.stats.executed == len(remaining)

        assert results == SweepEngine.serial().run_cells(cells)

    def test_resume_works_without_a_cache(self, tmp_path):
        """DONE events carry the metrics record inline, so a bare ledger
        (no cache at all) is enough to resume from."""
        ledger_path = tmp_path / "journal.jsonl"
        cell = small_cell()
        with SweepEngine(jobs=1, cache=False, ledger_path=ledger_path) as first:
            (expected,) = first.run_cells([cell])

        with SweepEngine(
            jobs=1, cache=False, ledger_path=ledger_path, resume=True
        ) as again:
            (got,) = again.run_cells([cell])
            assert again.stats.resumed == 1
            assert again.stats.executed == 0
        assert got == expected

    def test_resumed_digest_repeats_count_as_dedup(self, tmp_path):
        cell = small_cell()
        with SweepEngine(jobs=1, cache_dir=tmp_path) as partial:
            partial.run_cells([cell])
        with SweepEngine(jobs=1, cache_dir=tmp_path, resume=True) as resumed:
            resumed.run_cells([cell, small_cell()])
            assert resumed.stats.resumed == 1
            assert resumed.stats.memo_hits == 1
            assert resumed.stats.executed == 0

    def test_resume_without_a_ledger_is_rejected(self):
        with pytest.raises(ValueError, match="resume requires"):
            SweepEngine(jobs=1, cache=False, resume=True)

    def test_cells_product_order_is_grid_major_cpu_first(self):
        cells = cells_product("matmul", (8, 4), dataset_key="matmul_128mb")
        assert [(c.grid, c.use_gpu) for c in cells] == [
            (8, False), (8, True), (4, False), (4, True),
        ]
