"""Sanitized golden runs: zero violations, bit-identical traces.

Two properties at once, over all 18 cells of the golden matrix:

* the executor obeys every dynamic invariant the sanitizer checks
  (happens-before, resource conservation, attempt legality, placement)
  on every covered code path — GPU pipelines, overflow-to-CPU, jittered
  wide DAGs, crashes, node death, stragglers;
* arming the sanitizer is observationally free: the digest of a
  sanitized run equals the recorded reference, so ``--sanitize`` can be
  turned on in CI without invalidating a single fixture.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.runtime import Runtime
from repro.tracing import trace_digest
from tests.golden_matrix import golden_cases

FIXTURE_PATH = Path(__file__).parent / "golden" / "simulator_digests.json"

CASES = golden_cases()


@pytest.fixture(scope="module")
def recorded() -> dict:
    return json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))


@pytest.mark.parametrize("case", CASES, ids=lambda case: case.key)
def test_sanitized_run_is_clean_and_bit_identical(case, recorded):
    config = dataclasses.replace(case.config, sanitize=True)
    runtime = Runtime(config)
    case.build(runtime)
    result = runtime.run()  # raises TraceSanitizerError on any violation
    assert result.sanitizer is not None
    assert result.sanitizer.ok
    assert result.sanitizer.violations == []
    assert result.sanitizer.events_checked == (
        len(result.trace.stages)
        + len(result.trace.tasks)
        + len(result.trace.attempts)
    )
    digest = trace_digest(result.trace, result.failed_task_ids)
    assert digest == recorded[case.key]["digest"], (
        f"{case.key}: sanitized run diverged from the recorded golden "
        "trace — the sanitizer must be read-only"
    )
