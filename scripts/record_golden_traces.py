#!/usr/bin/env python
"""Record (or check) the golden-trace reference fingerprints.

Runs every cell of the golden matrix (``tests/golden_matrix.py``) on the
current executor and writes the resulting trace fingerprints to
``tests/golden/simulator_digests.json``.

The checked-in fixtures are the *reference semantics* of the simulated
executor.  Re-record them only when a change is **meant** to alter
execution behaviour (a new stage, a scheduling fix, a cost-model change)
— never to paper over an unexplained digest mismatch:

    PYTHONPATH=src python scripts/record_golden_traces.py

``--check`` verifies instead of writing (used by CI):

    PYTHONPATH=src python scripts/record_golden_traces.py --check
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

FIXTURE_PATH = REPO_ROOT / "tests" / "golden" / "simulator_digests.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify fixtures instead of rewriting them",
    )
    args = parser.parse_args(argv)

    from repro.tracing import trace_fingerprint
    from tests.golden_matrix import golden_cases

    fingerprints = {}
    for case in golden_cases():
        result = case.run()
        fingerprints[case.key] = trace_fingerprint(
            result.trace, result.failed_task_ids
        )
        print(f"  {case.key}: {fingerprints[case.key]['digest'][:16]}…")

    if args.check:
        recorded = json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))
        mismatched = [
            key
            for key, fp in fingerprints.items()
            if recorded.get(key, {}).get("digest") != fp["digest"]
        ]
        missing = sorted(set(recorded) - set(fingerprints))
        if mismatched or missing:
            print(f"MISMATCH: {mismatched or '-'} missing: {missing or '-'}")
            return 1
        print(f"OK: {len(fingerprints)} cells match {FIXTURE_PATH}")
        return 0

    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(
        json.dumps(fingerprints, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {len(fingerprints)} fingerprints to {FIXTURE_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
