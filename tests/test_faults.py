"""Tests for the fault-injection subsystem (repro.faults) end to end."""

import pytest

from repro.analysis import analyze, analyze_runtime
from repro.faults import (
    FaultPlan,
    GpuOomFault,
    NodeFault,
    RetryPolicy,
    Straggler,
    TaskCrash,
)
from repro.hardware import minotauro
from repro.perfmodel import TaskCost
from repro.runtime import Runtime, RuntimeConfig, SchedulingPolicy
from repro.tracing import (
    ATTEMPT_OK,
    Stage,
    dump_trace,
    fault_metrics,
    load_trace,
)
from tests.trace_invariants import assert_trace_invariants


def _cost(serial=1e9, parallel=0.0, gpu_mem=0):
    return TaskCost(
        serial_flops=serial,
        parallel_flops=parallel,
        parallel_items=1e6 if parallel else 0.0,
        arithmetic_intensity=10.0,
        input_bytes=10**6,
        output_bytes=10**5,
        host_device_bytes=2 * 10**5 if parallel else 0,
        gpu_memory_bytes=gpu_mem,
    )


def _fan_out_in(rt, width=8, cost=None):
    """width parallel tasks feeding one reduce task."""
    cost = cost or _cost()
    outs = []
    for i in range(width):
        ref = rt.register_input(10**6, name=f"in{i}")
        outs.extend(rt.submit(name="stage", inputs=[ref], cost=cost))
    rt.submit(name="reduce", inputs=outs, cost=cost)


def _run(plan=None, policy=None, nodes=4, build=_fan_out_in, **cfg):
    config = RuntimeConfig(
        cluster=minotauro(num_nodes=nodes),
        fault_plan=plan,
        retry_policy=policy,
        **cfg,
    )
    rt = Runtime(config)
    build(rt)
    return rt.run()


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert plan.crash_stage_for(0, "t", 1) is None
        assert not plan.gpu_oom_for(0, "t", 1)
        assert plan.straggler_factor("t", 0) == 1.0

    def test_crash_matching(self):
        crash = TaskCrash(task_id=3, attempts=(1, 2))
        assert crash.applies(3, "x", 1)
        assert crash.applies(3, "x", 2)
        assert not crash.applies(3, "x", 3)
        assert not crash.applies(4, "x", 1)

    def test_crash_by_type(self):
        crash = TaskCrash(task_type="stage")
        assert crash.applies(99, "stage", 1)
        assert not crash.applies(99, "other", 1)

    def test_crash_needs_selector(self):
        with pytest.raises(ValueError):
            TaskCrash()
        with pytest.raises(ValueError):
            TaskCrash(task_id=1, attempts=())
        with pytest.raises(ValueError):
            TaskCrash(task_id=1, attempts=(0,))

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_probability=1.5)
        with pytest.raises(ValueError):
            FaultPlan(crash_probability=-0.1)

    def test_probabilistic_crashes_are_keyed_not_ordered(self):
        plan = FaultPlan(crash_probability=0.5, seed=42)
        first = [plan.crash_stage_for(t, "x", 1) for t in range(50)]
        second = [plan.crash_stage_for(t, "x", 1) for t in reversed(range(50))]
        assert first == list(reversed(second))
        assert any(stage is not None for stage in first)
        assert any(stage is None for stage in first)

    def test_explicit_crash_wins_over_probability(self):
        plan = FaultPlan(
            task_crashes=[TaskCrash(task_id=0, stage=Stage.SERIALIZATION)],
            crash_probability=1.0,
        )
        assert plan.crash_stage_for(0, "x", 1) is Stage.SERIALIZATION

    def test_straggler_composition(self):
        plan = FaultPlan(
            stragglers=[
                Straggler(factor=2.0, node=1),
                Straggler(factor=3.0, task_type="stage"),
            ]
        )
        assert plan.straggler_factor("stage", 1) == 6.0
        assert plan.straggler_factor("stage", 0) == 3.0
        assert plan.straggler_factor("other", 1) == 2.0
        assert plan.straggler_factor("other", 0) == 1.0

    def test_straggler_must_slow_down(self):
        with pytest.raises(ValueError):
            Straggler(factor=0.5)

    def test_node_fault_validation(self):
        with pytest.raises(ValueError):
            NodeFault(node=-1, at_time=1.0)
        with pytest.raises(ValueError):
            NodeFault(node=0, at_time=-1.0)

    def test_json_round_trip(self):
        plan = FaultPlan(
            task_crashes=[
                TaskCrash(task_id=3, stage=Stage.DESERIALIZATION, attempts=(1, 2))
            ],
            node_faults=[NodeFault(node=1, at_time=0.5)],
            gpu_ooms=[GpuOomFault(task_type="stage")],
            stragglers=[Straggler(factor=2.0, node=0)],
            crash_probability=0.25,
            seed=99,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_hand_written_json(self):
        plan = FaultPlan.from_json(
            '{"node_faults": [{"node": 2, "at_time": 1.5}], "seed": 7}'
        )
        assert plan.node_faults == (NodeFault(node=2, at_time=1.5),)
        assert plan.seed == 7


class TestRetryPolicy:
    def test_defaults_retry(self):
        policy = RetryPolicy()
        assert policy.retries_enabled
        assert policy.max_attempts >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(task_deadline=0.0)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            backoff_base=1.0, backoff_factor=2.0, backoff_max=5.0
        )
        delays = [policy.backoff_delay(n) for n in (1, 2, 3, 4)]
        assert delays == [1.0, 2.0, 4.0, 5.0]

    def test_jitter_deterministic_per_key(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_jitter=0.5)
        plan = FaultPlan(seed=11)
        a = policy.backoff_delay(1, plan.rng_for("backoff", 7, 1))
        b = policy.backoff_delay(1, plan.rng_for("backoff", 7, 1))
        other = policy.backoff_delay(1, plan.rng_for("backoff", 8, 1))
        assert a == b
        assert a != other
        assert 0.5 <= a <= 1.5


class TestCrashRecovery:
    def test_crash_retries_and_recovers(self):
        plan = FaultPlan(task_crashes=[TaskCrash(task_id=2)])
        result = _run(plan)
        assert not result.failed
        assert result.attempts[2] == 2
        assert result.attempts[0] == 1
        outcomes = [a.outcome for a in result.trace.attempts_of(2)]
        assert outcomes == ["crash", ATTEMPT_OK]
        assert_trace_invariants(result.trace)

    def test_failure_stage_recorded(self):
        plan = FaultPlan(task_crashes=[TaskCrash(task_id=2)])
        result = _run(plan)
        failures = [
            r for r in result.trace.stages if r.stage is Stage.FAILURE
        ]
        assert len(failures) == 1
        assert failures[0].task_id == 2

    def test_exhausted_retries_cascade_to_descendants(self):
        plan = FaultPlan(
            task_crashes=[TaskCrash(task_id=0, attempts=(1, 2, 3))]
        )
        result = _run(plan, RetryPolicy(max_attempts=3, backoff_base=0.01))
        assert result.failed
        # Task 0 and the reduce task (id 8) fail; siblings complete.
        assert result.failed_task_ids == (0, 8)
        assert len(result.trace.tasks) == 7
        assert result.attempts[0] == 3

    def test_single_attempt_policy_fails_fast(self):
        plan = FaultPlan(task_crashes=[TaskCrash(task_id=1)])
        result = _run(plan, RetryPolicy(max_attempts=1))
        assert result.failed
        assert result.attempts[1] == 1

    def test_retry_wait_recorded_off_core(self):
        plan = FaultPlan(task_crashes=[TaskCrash(task_id=2)])
        result = _run(plan, RetryPolicy(max_attempts=2, backoff_base=0.5))
        waits = [r for r in result.trace.stages if r.stage is Stage.RETRY_WAIT]
        assert len(waits) == 1
        assert waits[0].node == -1 and waits[0].core == -1
        assert waits[0].duration == pytest.approx(0.5)

    def test_recovered_makespan_at_least_makespan(self):
        plan = FaultPlan(task_crashes=[TaskCrash(task_id=2)])
        result = _run(plan)
        assert result.recovered_makespan >= result.makespan

    def test_crash_by_task_type_hits_every_instance(self):
        plan = FaultPlan(task_crashes=[TaskCrash(task_type="stage")])
        result = _run(plan)
        assert not result.failed
        assert all(result.attempts[i] == 2 for i in range(8))

    def test_deadline_kills_slow_attempts(self):
        # The straggler makes first attempts exceed the deadline; retries
        # land on non-straggler nodes... every node straggles, so the
        # task fails after its budget.
        plan = FaultPlan(stragglers=[Straggler(factor=50.0)])
        policy = RetryPolicy(
            max_attempts=2, backoff_base=0.01, task_deadline=1.0
        )
        result = _run(plan, policy)
        assert result.failed
        timeouts = {
            a.outcome for a in result.trace.attempts if a.outcome != ATTEMPT_OK
        }
        assert timeouts == {"timeout"}


class TestNodeFailure:
    def test_node_loss_recovers_via_retry_and_blacklist(self):
        # The ISSUE acceptance scenario: kill a node mid-run; the workflow
        # completes, affected tasks show >1 attempt, reruns are identical.
        plan = FaultPlan(node_faults=[NodeFault(node=1, at_time=0.05)], seed=7)
        policy = RetryPolicy(max_attempts=3, backoff_base=0.1)
        first = _run(plan, policy)
        second = _run(plan, policy)

        assert not first.failed
        retried = [t for t, n in first.attempts.items() if n > 1]
        assert retried, "node loss at 0.05s must interrupt resident tasks"
        node_failures = {
            a.outcome for a in first.trace.attempts if a.outcome != ATTEMPT_OK
        }
        assert node_failures == {"node_failure"}
        # Nothing lands on the dead node afterwards.
        assert all(
            a.node != 1
            for a in first.trace.attempts
            if a.start > 0.05 + 1e-9
        )
        assert first.makespan == second.makespan
        assert first.attempts == second.attempts
        assert_trace_invariants(first.trace)

    def test_all_nodes_dead_fails_remaining_tasks(self):
        plan = FaultPlan(
            node_faults=[NodeFault(node=n, at_time=0.01) for n in range(4)]
        )
        result = _run(plan, RetryPolicy(max_attempts=2, backoff_base=0.01))
        assert result.failed
        done = {t.task_id for t in result.trace.tasks}
        assert set(result.failed_task_ids) | done == set(range(9))

    def test_node_fault_out_of_range_rejected(self):
        plan = FaultPlan(node_faults=[NodeFault(node=9, at_time=1.0)])
        with pytest.raises(ValueError, match="kills node 9"):
            _run(plan, nodes=4)

    def test_kill_before_start_only_reroutes(self):
        # Node dies at t=0: nothing is resident yet, so no retries — the
        # scheduler simply never uses it.
        plan = FaultPlan(node_faults=[NodeFault(node=2, at_time=0.0)])
        result = _run(plan)
        assert not result.failed
        assert all(n == 1 for n in result.attempts.values())
        assert all(t.node != 2 for t in result.trace.tasks)


class TestGpuFaults:
    def test_runtime_gpu_oom_falls_back_to_cpu(self):
        cost = _cost(parallel=1e10, gpu_mem=10**6)
        plan = FaultPlan(gpu_ooms=[GpuOomFault(task_id=3)])

        def build(rt):
            _fan_out_in(rt, cost=cost)

        result = _run(plan, use_gpu=True, build=build)
        assert not result.failed
        assert result.attempts[3] == 2
        attempts = result.trace.attempts_of(3)
        assert attempts[0].outcome == "gpu_oom" and attempts[0].used_gpu
        assert attempts[1].outcome == ATTEMPT_OK and not attempts[1].used_gpu

    def test_gpu_oom_without_fallback_retries_on_gpu(self):
        cost = _cost(parallel=1e10, gpu_mem=10**6)
        plan = FaultPlan(gpu_ooms=[GpuOomFault(task_id=3)])

        def build(rt):
            _fan_out_in(rt, cost=cost)

        policy = RetryPolicy(
            max_attempts=3, backoff_base=0.01, gpu_fallback_to_cpu=False
        )
        result = _run(plan, policy, use_gpu=True, build=build)
        assert not result.failed
        assert result.trace.attempts_of(3)[1].used_gpu


class TestDeterminismAndPurity:
    def test_no_plan_identical_to_empty_plan(self):
        plain = _run(None)
        empty = _run(FaultPlan())
        assert plain.makespan == empty.makespan
        a = [(t.task_id, t.start, t.end, t.node, t.core) for t in plain.trace.tasks]
        b = [(t.task_id, t.start, t.end, t.node, t.core) for t in empty.trace.tasks]
        assert a == b

    def test_no_attempt_records_without_plan(self):
        result = _run(None)
        assert result.trace.attempts == []
        assert not result.failed
        assert result.attempts == {i: 1 for i in range(9)}

    def test_straggler_slows_only_matching_node(self):
        base = _run(None)
        slowed = _run(
            FaultPlan(stragglers=[Straggler(factor=3.0)]),
        )
        assert slowed.makespan > base.makespan

    def test_jitter_and_faults_compose_deterministically(self):
        plan = FaultPlan(crash_probability=0.2, seed=5)
        kwargs = dict(jitter_sigma=0.1, jitter_seed=3)
        a = _run(plan, **kwargs)
        b = _run(plan, **kwargs)
        assert a.makespan == b.makespan
        assert a.attempts == b.attempts


class TestTraceExportAndMetrics:
    def _faulty_result(self):
        plan = FaultPlan(task_crashes=[TaskCrash(task_id=2)])
        return _run(plan, RetryPolicy(max_attempts=2, backoff_base=0.2))

    def test_round_trip_preserves_attempts(self, tmp_path):
        result = self._faulty_result()
        path = tmp_path / "trace.jsonl"
        dump_trace(result.trace, path)
        loaded = load_trace(path)
        assert len(loaded.attempts) == len(result.trace.attempts)
        assert loaded.attempt_counts() == result.trace.attempt_counts()
        assert [a.outcome for a in loaded.attempts_of(2)] == [
            "crash",
            ATTEMPT_OK,
        ]

    def test_fault_metrics_split_goodput_and_waste(self):
        result = self._faulty_result()
        metrics = fault_metrics(result.trace)
        assert metrics.num_failures == 1
        assert metrics.retried_tasks == 1
        assert metrics.wasted_seconds > 0
        assert metrics.goodput_seconds > metrics.wasted_seconds
        assert 0 < metrics.goodput_ratio < 1
        assert metrics.retry_wait_seconds == pytest.approx(0.2)

    def test_fault_metrics_clean_run(self):
        metrics = fault_metrics(_run(None).trace)
        assert metrics.num_failures == 0
        assert metrics.goodput_ratio == 1.0
        assert metrics.wasted_seconds == 0.0


class TestAnalysisRules:
    def _graph(self):
        rt = Runtime(RuntimeConfig())
        ref = rt.register_input(100, name="a")
        rt.submit("t", [ref], cost=_cost())
        return rt

    def test_wf301_fires_on_no_retry_policy_with_plan(self):
        rt = self._graph()
        plan = FaultPlan(task_crashes=[TaskCrash(task_id=0)])
        report = analyze(
            rt.graph,
            minotauro(),
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=1),
        )
        assert "WF301" in report.codes()

    def test_wf301_silent_without_explicit_policy(self):
        rt = self._graph()
        plan = FaultPlan(task_crashes=[TaskCrash(task_id=0)])
        report = analyze(rt.graph, minotauro(), fault_plan=plan)
        assert "WF301" not in report.codes()

    def test_wf301_silent_for_empty_plan(self):
        rt = self._graph()
        report = analyze(
            rt.graph,
            minotauro(),
            fault_plan=FaultPlan(),
            retry_policy=RetryPolicy(max_attempts=1),
        )
        assert "WF301" not in report.codes()

    def test_wf302_fires_on_ghost_node(self):
        rt = self._graph()
        plan = FaultPlan(node_faults=[NodeFault(node=64, at_time=1.0)])
        report = analyze(rt.graph, minotauro(), fault_plan=plan)
        assert "WF302" in report.codes()
        assert report.has_errors

    def test_analyze_runtime_reads_fault_config(self):
        config = RuntimeConfig(
            fault_plan=FaultPlan(node_faults=[NodeFault(node=64, at_time=1.0)]),
        )
        rt = Runtime(config)
        ref = rt.register_input(100, name="a")
        rt.submit("t", [ref], cost=_cost())
        report = analyze_runtime(rt)
        assert "WF302" in report.codes()

    def test_validate_refuses_ghost_node_plan(self):
        from repro.analysis import WorkflowValidationError

        config = RuntimeConfig(
            fault_plan=FaultPlan(node_faults=[NodeFault(node=64, at_time=1.0)]),
            validate=True,
        )
        rt = Runtime(config)
        ref = rt.register_input(100, name="a")
        rt.submit("t", [ref], cost=_cost())
        with pytest.raises(WorkflowValidationError):
            rt.run()


class TestCli:
    def test_run_with_faults_flag(self, capsys):
        from repro.cli import main

        spec = '{"node_faults": [{"node": 1, "at_time": 0.5}], "seed": 7}'
        code = main(
            [
                "run",
                "--algorithm",
                "kmeans",
                "--grid",
                "8",
                "--iterations",
                "1",
                "--faults",
                spec,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "faults: recovered" in out

    def test_run_with_faults_file(self, tmp_path, capsys):
        from repro.cli import main

        plan = FaultPlan(task_crashes=[TaskCrash(task_type="partial_sum")])
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        code = main(
            [
                "run",
                "--algorithm",
                "kmeans",
                "--grid",
                "8",
                "--iterations",
                "1",
                "--faults",
                f"@{path}",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "task(s) retried" in out
