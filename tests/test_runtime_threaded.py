"""Tests for the concurrent (thread-pool) real-execution backend."""

import threading
import time

import numpy as np
import pytest

from repro.algorithms import KMeansWorkflow, MatmulWorkflow, kmeans_reference
from repro.arrays import DistributedArray
from repro.data import DatasetSpec
from repro.data.generator import generate_matrix
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.runtime import Backend


def _threaded(workers=4):
    return Runtime(RuntimeConfig(backend=Backend.THREADED, thread_workers=workers))


class TestCorrectness:
    def test_matmul_matches_numpy(self):
        dataset = DatasetSpec("thr_m", rows=48, cols=48)
        rt = _threaded()
        _a, _b, c_refs = MatmulWorkflow(dataset, grid=4).build(rt, materialize=True)
        result = rt.run()
        got = DistributedArray.assemble(c_refs, result)
        full = generate_matrix(dataset)
        np.testing.assert_allclose(got, full @ full, rtol=1e-10)

    def test_kmeans_matches_reference(self):
        dataset = DatasetSpec("thr_k", rows=500, cols=5)
        workflow = KMeansWorkflow(dataset, grid_rows=5, n_clusters=3, iterations=3)
        rt = _threaded()
        _d, centroids_ref = workflow.build(rt, materialize=True)
        got = rt.run().value_of(centroids_ref)
        expected = kmeans_reference(
            generate_matrix(dataset), workflow.initial_centroids(), 3
        )
        np.testing.assert_allclose(got, expected)

    def test_matches_sequential_backend_exactly(self):
        dataset = DatasetSpec("thr_eq", rows=32, cols=32)
        outputs = []
        for backend in (Backend.IN_PROCESS, Backend.THREADED):
            rt = Runtime(RuntimeConfig(backend=backend))
            _a, _b, c_refs = MatmulWorkflow(dataset, grid=2).build(
                rt, materialize=True
            )
            outputs.append(DistributedArray.assemble(c_refs, rt.run()))
        np.testing.assert_array_equal(outputs[0], outputs[1])

    def test_single_worker_degenerates_to_sequential(self):
        dataset = DatasetSpec("thr_one", rows=32, cols=32)
        rt = _threaded(workers=1)
        _a, _b, c_refs = MatmulWorkflow(dataset, grid=2).build(rt, materialize=True)
        result = rt.run()
        assert len(result.trace.tasks) == rt.graph.num_tasks


class TestConcurrency:
    def test_independent_tasks_overlap(self):
        # Tasks that sleep must overlap on a multi-worker pool.
        rt = _threaded(workers=4)
        active = {"now": 0, "peak": 0}
        lock = threading.Lock()

        def slow(x):
            with lock:
                active["now"] += 1
                active["peak"] = max(active["peak"], active["now"])
            time.sleep(0.05)
            with lock:
                active["now"] -= 1
            return x

        for i in range(8):
            ref = rt.register_input(8, value=i)
            rt.submit(name="slow", inputs=[ref], fn=slow)
        rt.run()
        assert active["peak"] >= 2

    def test_dependencies_still_respected(self):
        rt = _threaded(workers=4)
        order = []
        lock = threading.Lock()

        def step(x, label):
            with lock:
                order.append(label)
            return x

        ref = rt.register_input(8, value=0)
        (a,) = rt.submit(name="first", inputs=[ref],
                         fn=lambda x: step(x, "first"))
        (b,) = rt.submit(name="second", inputs=[a],
                         fn=lambda x: step(x, "second"))
        rt.submit(name="third", inputs=[b], fn=lambda x: step(x, "third"))
        rt.run()
        assert order == ["first", "second", "third"]

    def test_trace_complete(self):
        dataset = DatasetSpec("thr_tr", rows=32, cols=32)
        rt = _threaded()
        MatmulWorkflow(dataset, grid=2).build(rt, materialize=True)
        result = rt.run()
        assert len(result.trace.tasks) == rt.graph.num_tasks
        assert len({t.task_id for t in result.trace.tasks}) == rt.graph.num_tasks

    def test_trace_invariants_hold(self):
        # Concurrent tasks are stamped on per-worker cores, so the shared
        # per-core non-overlap invariant applies to this backend too.
        from tests.trace_invariants import assert_trace_invariants

        dataset = DatasetSpec("thr_inv", rows=48, cols=48)
        rt = _threaded(workers=4)
        MatmulWorkflow(dataset, grid=4).build(rt, materialize=True)
        result = rt.run()
        assert_trace_invariants(result.trace)
        assert {t.core for t in result.trace.tasks} <= set(range(4))


class TestErrors:
    def test_task_error_propagates(self):
        rt = _threaded()
        ref = rt.register_input(8, value=1)

        def boom(x):
            raise RuntimeError("task failed")

        rt.submit(name="boom", inputs=[ref], fn=boom)
        with pytest.raises(RuntimeError, match="task failed"):
            rt.run()

    def test_invalid_worker_count(self):
        from repro.runtime.backends.threaded import ThreadedExecutor

        with pytest.raises(ValueError):
            ThreadedExecutor(max_workers=0)

    def test_empty_workflow(self):
        rt = _threaded()
        result = rt.run()
        assert result.trace.tasks == []
