"""Hardware models of the heterogeneous CPU-GPU cluster.

This package describes the testbed the paper ran on — the BSC Minotauro
cluster (8 nodes x 16 Xeon cores + 4 NVIDIA K80 devices with 12 GB each,
PCIe interconnect, node-local disks, and a GPFS shared file system) — as a
set of parameterised specs plus simulation-time resource wrappers.

The numbers in :func:`~repro.hardware.specs.minotauro` are *effective*
throughputs calibrated so the reproduction matches the shape of the paper's
results; see ``repro.perfmodel.calibration`` for the rationale behind each
value.
"""

from repro.hardware.cluster import SimulatedCluster, SimulatedNode
from repro.hardware.gpu import GpuDevice, GpuOutOfMemoryError
from repro.hardware.memory import HostOutOfMemoryError
from repro.hardware.presets import cluster_presets, cpu_only, fat_storage, modern
from repro.hardware.specs import (
    ClusterSpec,
    CpuSpec,
    DiskSpec,
    GpuSpec,
    InterconnectSpec,
    NetworkSpec,
    NodeSpec,
    minotauro,
)
from repro.hardware.storage import StorageKind

__all__ = [
    "ClusterSpec",
    "CpuSpec",
    "DiskSpec",
    "GpuDevice",
    "GpuOutOfMemoryError",
    "GpuSpec",
    "HostOutOfMemoryError",
    "InterconnectSpec",
    "NetworkSpec",
    "NodeSpec",
    "SimulatedCluster",
    "SimulatedNode",
    "StorageKind",
    "cluster_presets",
    "cpu_only",
    "fat_storage",
    "minotauro",
    "modern",
]
