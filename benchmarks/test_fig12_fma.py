"""Benchmark E11 — Figure 12: generalizability via Matmul FMA.

Paper shape: the FMA implementation repeats the Figure 8 trends — user
code speedup scales with block size to the same ~21x ceiling, with the
same parallel-fraction and CPU-GPU communication behaviour.
"""

import pytest

from repro.core.experiments import run_fig8, run_fig12
from repro.core.experiments.fig12 import FIG12_GRIDS


def test_fig12_fma_generalizability(once):
    result = once(run_fig12, "matmul_8gb", FIG12_GRIDS)
    print()
    print(result.render())
    speedups = {k: v for k, v in result.speedups().items() if v is not None}
    ordered = [speedups[k] for k in sorted(speedups)]
    assert ordered == sorted(ordered)
    assert 17.0 <= max(ordered) <= 26.0
    # Trends match the dislib Matmul within a quarter at each block size.
    reference = run_fig8(grids=FIG12_GRIDS[:-1])
    for block_mb, value in reference.speedups("matmul_func").items():
        assert speedups[block_mb] == pytest.approx(value, rel=0.25)
