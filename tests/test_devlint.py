"""Nondeterminism devlint: each DLnnn rule catches its seeded bug class,
suppressions and baselines work, and repro's own source is clean modulo
the committed baseline."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    CODES,
    all_rules,
    filter_new,
    known_codes,
    lint_paths,
    lint_source,
    load_baseline,
    save_baseline,
)
from repro.analysis.registry import KIND_DEVLINT, spec_for

REPO_ROOT = Path(__file__).resolve().parent.parent


def _lint(snippet: str):
    return lint_source(textwrap.dedent(snippet), path="snippet.py")


def _codes(findings) -> set[str]:
    return {f.code for f in findings}


class TestSetIteration:
    def test_dl001_local_set_variable(self):
        # The seeded mutation of the acceptance criteria: a scheduler
        # draining its ready set in hash order.
        findings = _lint(
            """
            def drain(dispatch):
                ready = {3, 1, 2}
                for task_id in ready:
                    dispatch(task_id)
            """
        )
        assert _codes(findings) == {"DL001"}
        [finding] = findings
        assert finding.symbol == "drain"
        assert finding.line == 4

    def test_dl001_attribute_set(self):
        findings = _lint(
            """
            class Scheduler:
                def __init__(self):
                    self._ready = set()

                def drain(self, dispatch):
                    for task_id in self._ready:
                        dispatch(task_id)
            """
        )
        assert _codes(findings) == {"DL001"}
        [finding] = findings
        assert finding.symbol == "Scheduler.drain"

    def test_dl001_set_literal_and_comprehension(self):
        findings = _lint(
            """
            def f(xs):
                return [x for x in {1, 2, 3}]
            """
        )
        assert _codes(findings) == {"DL001"}

    def test_dl001_set_algebra(self):
        findings = _lint(
            """
            def f(a):
                b = set(a)
                for x in b | {1}:
                    print(x)
            """
        )
        assert "DL001" in _codes(findings)

    def test_sorted_iteration_is_quiet(self):
        findings = _lint(
            """
            def drain(dispatch):
                ready = {3, 1, 2}
                for task_id in sorted(ready):
                    dispatch(task_id)
            """
        )
        assert findings == []

    def test_list_iteration_is_quiet(self):
        findings = _lint(
            """
            def drain(items, dispatch):
                for task_id in items:
                    dispatch(task_id)
            """
        )
        assert findings == []

    def test_set_name_does_not_leak_across_functions(self):
        findings = _lint(
            """
            def a():
                ready = {1}
                return ready

            def b(ready):
                for x in ready:
                    print(x)
            """
        )
        assert findings == []


class TestTieBreaks:
    def test_dl002_id_in_sort_key(self):
        findings = _lint(
            """
            def order(tasks):
                return sorted(tasks, key=lambda t: (t.priority, id(t)))
            """
        )
        assert _codes(findings) == {"DL002"}

    def test_dl002_id_in_heap_entry(self):
        findings = _lint(
            """
            import heapq

            def push(q, task):
                heapq.heappush(q, (task.priority, id(task), task))
            """
        )
        assert "DL002" in _codes(findings)

    def test_dl003_bare_heappush(self):
        findings = _lint(
            """
            import heapq

            def push(q, task):
                heapq.heappush(q, (task.priority, task))
            """
        )
        assert "DL003" in _codes(findings)

    def test_dl003_quiet_with_sequence_counter(self):
        findings = _lint(
            """
            import heapq

            def push(q, task, seq):
                heapq.heappush(q, (task.priority, next(seq), task))
            """
        )
        assert findings == []

    def test_dl003_non_tuple_entry(self):
        findings = _lint(
            """
            import heapq

            def push(q, task):
                heapq.heappush(q, task)
            """
        )
        assert _codes(findings) == {"DL003"}


class TestRandomAndClock:
    def test_dl004_module_global_rng(self):
        findings = _lint(
            """
            import random

            def jitter():
                return random.random()
            """
        )
        assert _codes(findings) == {"DL004"}

    def test_dl004_unseeded_instance(self):
        findings = _lint(
            """
            import random

            def make_rng():
                return random.Random()
            """
        )
        assert _codes(findings) == {"DL004"}

    def test_seeded_rng_is_quiet(self):
        findings = _lint(
            """
            import random

            def make_rng(seed):
                return random.Random(seed)
            """
        )
        assert findings == []

    def test_dl005_wall_clock(self):
        findings = _lint(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert _codes(findings) == {"DL005"}

    def test_perf_counter_is_quiet(self):
        findings = _lint(
            """
            import time

            def measure():
                return time.perf_counter()
            """
        )
        assert findings == []


class TestUnboundedBlocking:
    def test_dl006_bare_queue_get(self):
        # The seeded bug class: a supervisor loop that can wedge forever
        # on a queue whose producer just died.
        findings = _lint(
            """
            def drain(result_queue):
                while True:
                    message = result_queue.get()
                    yield message
            """
        )
        assert _codes(findings) == {"DL006"}
        [finding] = findings
        assert finding.line == 4

    def test_dl006_attribute_queue_get(self):
        findings = _lint(
            """
            class Pool:
                def pump(self):
                    return self._result_queue.get()
            """
        )
        assert _codes(findings) == {"DL006"}

    def test_dl006_bare_process_join(self):
        findings = _lint(
            """
            def reap(worker):
                worker.process.join()
            """
        )
        assert _codes(findings) == {"DL006"}

    def test_timeouts_are_quiet(self):
        findings = _lint(
            """
            def pump(task_queue, process):
                item = task_queue.get(timeout=0.05)
                task_queue.get_nowait()
                process.join(5.0)
                return item
            """
        )
        assert findings == []

    def test_non_queue_non_process_receivers_are_quiet(self):
        # dict.get, str.join, and os.path.join share the method names but
        # none of them can block; the receiver heuristic must skip them.
        findings = _lint(
            """
            import os

            def lookup(config, parts):
                value = config.get("key")
                joined = ", ".join(parts)
                return os.path.join(value, joined)
            """
        )
        assert findings == []

    def test_dl006_inline_disable(self):
        findings = _lint(
            """
            def idle_worker(task_queue):
                return task_queue.get()  # repro: disable=DL006
            """
        )
        assert findings == []


class TestSuppressionAndBaseline:
    def test_inline_disable_one_code(self):
        findings = _lint(
            """
            def drain(dispatch):
                ready = {1, 2}
                for task_id in ready:  # repro: disable=DL001
                    dispatch(task_id)
            """
        )
        assert findings == []

    def test_inline_disable_all(self):
        findings = _lint(
            """
            import heapq

            def push(q, task):
                heapq.heappush(q, task)  # repro: disable=all
            """
        )
        assert findings == []

    def test_inline_disable_other_code_keeps_finding(self):
        findings = _lint(
            """
            def drain(dispatch):
                ready = {1, 2}
                for task_id in ready:  # repro: disable=DL005
                    dispatch(task_id)
            """
        )
        assert _codes(findings) == {"DL001"}

    def test_fingerprint_survives_line_drift(self):
        body = """
            def drain(dispatch):
                ready = {1, 2}
                for task_id in ready:
                    dispatch(task_id)
            """
        [before] = _lint(body)
        [after] = _lint("\n\n\n" + textwrap.dedent(body))
        assert before.line != after.line
        assert before.fingerprint() == after.fingerprint()
        assert before.fingerprint() == "snippet.py|DL001|drain"

    def test_baseline_roundtrip(self, tmp_path):
        findings = _lint(
            """
            def drain(dispatch):
                ready = {1, 2}
                for task_id in ready:
                    dispatch(task_id)
            """
        )
        path = tmp_path / "baseline.json"
        save_baseline(path, (f.fingerprint() for f in findings))
        baseline = load_baseline(path)
        new, known = filter_new(findings, baseline)
        assert new == []
        assert known == findings
        # Deterministic bytes: writing twice gives identical files.
        first = path.read_bytes()
        save_baseline(path, (f.fingerprint() for f in findings))
        assert path.read_bytes() == first

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "fingerprints": []}')
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)


class TestRepoIsClean:
    def test_repro_source_clean_modulo_baseline(self):
        findings = lint_paths(
            [REPO_ROOT / "src" / "repro"], root=REPO_ROOT
        )
        baseline = load_baseline(REPO_ROOT / "devlint-baseline.json")
        new, _known = filter_new(findings, baseline)
        assert new == [], "\n".join(f.render() for f in new)

    def test_lint_paths_is_deterministic(self):
        paths = [REPO_ROOT / "src" / "repro" / "analysis"]
        assert lint_paths(paths, root=REPO_ROOT) == lint_paths(
            paths, root=REPO_ROOT
        )


class TestRegistryMetadata:
    def test_devlint_codes_registered_but_not_workflow_rules(self):
        devlint_codes = known_codes(kind=KIND_DEVLINT)
        assert devlint_codes == {
            "DL001", "DL002", "DL003", "DL004", "DL005", "DL006",
        }
        workflow_codes = {code for code, _ in all_rules()}
        assert devlint_codes.isdisjoint(workflow_codes)
        assert devlint_codes.isdisjoint(set(CODES))

    def test_specs_carry_summaries(self):
        for code in sorted(known_codes(kind=KIND_DEVLINT)):
            spec = spec_for(code)
            assert spec.kind == KIND_DEVLINT
            assert spec.summary
            assert spec.fn is None
