"""Cooperative processes on top of the event loop.

A process is a Python generator that yields *commands*; the engine executes
the command and resumes the generator when it completes.  This mirrors the
SimPy programming style and keeps executor code (e.g. "acquire a CPU core,
read the block, run the kernel, release") readable as straight-line prose.

Supported commands:

* :class:`Timeout` — sleep for simulated seconds.
* :class:`Acquire` / :class:`Release` — slots on a :class:`CapacityResource`.
* :class:`Transfer` — move bytes through a :class:`BandwidthResource`.
* :class:`WaitEvent` — wait for a :class:`SimEvent` (receives its value).
* :class:`AllOf` — wait for several events at once.

A process finishing (or raising) fires its ``done`` event, so processes can
wait on one another.

Processes can also be **interrupted**: :meth:`Process.interrupt` throws an
exception into the generator at its current suspension point (modelling
e.g. a node failure killing a resident task).  The command the process was
waiting on is abandoned — a pending :class:`Timeout` is cancelled, and the
completion callback of an in-flight :class:`Transfer`/:class:`Acquire`/
:class:`WaitEvent` is ignored when it later fires.  Note that abandoning
an :class:`Acquire` this way leaks the granted slots (the grant arrives
after the process stopped caring); interrupt-safe code should reserve
capacity with ``try_request`` instead, the way the simulated executor
does.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import SimEvent
from repro.sim.resources import BandwidthResource, CapacityResource


class Command:
    """Base class for commands a process may yield."""

    __slots__ = ()


class Timeout(Command):
    """Sleep for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"timeout must be non-negative, got {delay}")
        self.delay = delay


class Acquire(Command):
    """Block until ``amount`` slots of ``resource`` are granted."""

    __slots__ = ("resource", "amount")

    def __init__(self, resource: CapacityResource, amount: int = 1) -> None:
        self.resource = resource
        self.amount = amount


class Release(Command):
    """Return ``amount`` slots to ``resource`` (never blocks)."""

    __slots__ = ("resource", "amount")

    def __init__(self, resource: CapacityResource, amount: int = 1) -> None:
        self.resource = resource
        self.amount = amount


class Transfer(Command):
    """Move ``nbytes`` through a processor-shared channel."""

    __slots__ = ("resource", "nbytes")

    def __init__(self, resource: BandwidthResource, nbytes: float) -> None:
        self.resource = resource
        self.nbytes = nbytes


class WaitEvent(Command):
    """Block until ``event`` fires; the process receives its value."""

    __slots__ = ("event",)

    def __init__(self, event: SimEvent) -> None:
        self.event = event


class AllOf(Command):
    """Block until every event in ``events`` has fired."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[SimEvent]) -> None:
        self.events = list(events)


class Process:
    """Drives a generator of :class:`Command` objects to completion."""

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Command, Any, Any],
        name: str = "",
        autostart: bool = True,
    ) -> None:
        self._sim = sim
        self._generator = generator
        self.name = name
        self.done = SimEvent(name=f"{name}.done")
        #: Monotonic counter identifying the currently-awaited command;
        #: completion callbacks from superseded commands (after an
        #: interrupt) carry a stale epoch and are ignored.
        self._epoch = 0
        #: ``autostart=False`` skips the usual zero-delay start event;
        #: the creator must call :meth:`start_now` (used by the batched
        #: dispatcher to launch a drained batch without one heap event
        #: per task).
        self._pending = sim.schedule(0.0, self._resume, None) if autostart else None

    def start_now(self) -> None:
        """Run the generator to its first suspension point synchronously.

        Only valid on a process created with ``autostart=False`` that has
        not started yet.  The caller is asserting that an immediate start
        is indistinguishable from the zero-delay event ``autostart=True``
        would have scheduled — i.e. no other pending event shares the
        current instant.
        """
        self._resume(None)

    @property
    def started(self) -> bool:
        """Whether the generator has run to its first suspension point.

        Interrupting a process that never started would throw into a
        fresh generator, skipping its body entirely; callers that need
        cleanup semantics (e.g. the node killer) should skip unstarted
        processes and let the process's own liveness checks handle the
        condition when it first runs.
        """
        return self._epoch > 0

    def interrupt(self, error: BaseException) -> None:
        """Throw ``error`` into the process at its suspension point.

        The command the process was waiting on is abandoned (see module
        docstring for the Acquire caveat).  Interrupting a finished
        process is a no-op; the throw is delivered as a zero-delay event
        so the interrupter's own callback completes first.
        """
        if self.done.fired:
            return
        self._epoch += 1
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._sim.schedule(0.0, self._throw, error)

    def _resume(self, value: Any) -> None:
        if self.done.fired:
            return
        self._pending = None
        try:
            command = self._generator.send(value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        except Exception as error:  # noqa: BLE001 - propagated via the event
            self.done.fail(error)
            return
        self._dispatch(command)

    def _throw(self, error: BaseException) -> None:
        if self.done.fired:
            return
        self._pending = None
        try:
            command = self._generator.throw(error)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        except Exception as err:  # noqa: BLE001 - propagated via the event
            self.done.fail(err)
            return
        self._dispatch(command)

    def _guarded_resume(self, epoch: int, value: Any) -> None:
        if epoch == self._epoch:
            self._resume(value)

    def _dispatch(self, command: Command) -> None:
        self._epoch += 1
        epoch = self._epoch
        # Exact-type checks first: the hot loop yields plain Timeout /
        # Transfer / WaitEvent instances millions of times per run, and
        # ``type(x) is C`` skips the mro walk ``isinstance`` pays.  The
        # isinstance chain below stays as the fallback so Command
        # subclasses keep working.
        cls = type(command)
        if cls is Timeout:
            self._pending = self._sim.schedule(command.delay, self._resume, None)
            return
        if cls is Transfer:
            command.resource.submit(
                command.nbytes, lambda: self._guarded_resume(epoch, None)
            )
            return
        if cls is WaitEvent:
            command.event.add_callback(
                lambda event: self._on_event(epoch, event)
            )
            return
        if isinstance(command, Timeout):
            self._pending = self._sim.schedule(command.delay, self._resume, None)
        elif isinstance(command, Acquire):
            command.resource.request(
                command.amount, lambda: self._guarded_resume(epoch, None)
            )
        elif isinstance(command, Release):
            command.resource.release(command.amount)
            self._pending = self._sim.schedule(0.0, self._resume, None)
        elif isinstance(command, Transfer):
            command.resource.submit(
                command.nbytes, lambda: self._guarded_resume(epoch, None)
            )
        elif isinstance(command, WaitEvent):
            command.event.add_callback(
                lambda event: self._on_event(epoch, event)
            )
        elif isinstance(command, AllOf):
            self._wait_all(epoch, command.events)
        else:
            self._throw(SimulationError(f"unknown command: {command!r}"))

    def _on_event(self, epoch: int, event: SimEvent) -> None:
        if epoch != self._epoch:
            return
        if event.error is not None:
            self._throw(event.error)
        else:
            self._resume(event.value)

    def _wait_all(self, epoch: int, events: list[SimEvent]) -> None:
        if not events:
            self._pending = self._sim.schedule(0.0, self._resume, [])
            return
        pending = {"count": len(events)}
        first_error: list[BaseException] = []

        def on_fire(event: SimEvent) -> None:
            if event.error is not None and not first_error:
                first_error.append(event.error)
            pending["count"] -= 1
            if pending["count"] == 0 and epoch == self._epoch:
                if first_error:
                    self._throw(first_error[0])
                else:
                    self._resume([e.value for e in events])

        for event in events:
            event.add_callback(on_fire)
