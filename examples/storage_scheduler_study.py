"""Storage x scheduler deployment study (the paper's §5.3 as a tool).

Given a workload, compares the four combinations of storage architecture
(node-local disks vs a GPFS-like shared file system) and scheduling
policy (task generation order vs data locality) and reports which
deployment runs the workload fastest on CPUs and on GPUs.

Run:  python examples/storage_scheduler_study.py
"""

from repro import KMeansWorkflow, Runtime, RuntimeConfig, paper_datasets
from repro.core.report import Table, format_seconds
from repro.hardware import StorageKind
from repro.runtime import SchedulingPolicy
from repro.tracing import data_movement_metrics, parallel_task_metrics


def measure(storage, scheduling, use_gpu):
    workflow = KMeansWorkflow(
        paper_datasets()["kmeans_10gb"], grid_rows=128, n_clusters=10, iterations=3
    )
    runtime = Runtime(
        RuntimeConfig(storage=storage, scheduling=scheduling, use_gpu=use_gpu)
    )
    workflow.build(runtime)
    result = runtime.run()
    return {
        "parallel_tasks": parallel_task_metrics(
            result.trace, {"partial_sum"}
        ).average_parallel_time,
        "movement": data_movement_metrics(result.trace).total_per_core,
    }


def main():
    table = Table(
        title="K-means 10 GB, 128 tasks: deployment comparison",
        headers=(
            "storage",
            "scheduler",
            "CPU P.Task",
            "GPU P.Task",
            "(de)ser/core CPU",
        ),
    )
    results = {}
    for storage in (StorageKind.LOCAL, StorageKind.SHARED):
        for policy in SchedulingPolicy:
            cpu = measure(storage, policy, use_gpu=False)
            gpu = measure(storage, policy, use_gpu=True)
            results[(storage, policy)] = (cpu, gpu)
            table.add_row(
                storage.label,
                policy.label,
                format_seconds(cpu["parallel_tasks"]),
                format_seconds(gpu["parallel_tasks"]),
                format_seconds(cpu["movement"]),
            )
    print(table.render())

    best_cpu = min(results, key=lambda k: results[k][0]["parallel_tasks"])
    best_gpu = min(results, key=lambda k: results[k][1]["parallel_tasks"])
    print(
        f"\nfastest CPU deployment: {best_cpu[0].label} + {best_cpu[1].label}"
        f"\nfastest GPU deployment: {best_gpu[0].label} + {best_gpu[1].label}"
    )
    print(
        "\nLocal disks beat the shared file system for this read-heavy "
        "workload, and the\nscheduling policy matters far less on local "
        "storage — observations O5/O6 of the paper."
    )


if __name__ == "__main__":
    main()
