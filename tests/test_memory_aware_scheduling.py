"""Tests for memory-aware scheduling (node RAM accounting)."""

import pytest

from repro.perfmodel import TaskCost
from repro.runtime import Runtime, RuntimeConfig
from repro.hardware import minotauro

GIB = 1024**3


def _fat_task_cost(host_gib: float, seconds: float = 1.0):
    return TaskCost(
        serial_flops=seconds * 16e9,
        parallel_flops=0.0,
        parallel_items=0.0,
        arithmetic_intensity=0.0,
        input_bytes=0,
        output_bytes=0,
        host_device_bytes=0,
        gpu_memory_bytes=0,
        host_memory_bytes=int(host_gib * GIB),
    )


def _run(n_tasks, host_gib, seconds=1.0):
    rt = Runtime(RuntimeConfig())
    cost = _fat_task_cost(host_gib, seconds)
    for i in range(n_tasks):
        ref = rt.register_input(0, name=f"in{i}")
        rt.submit(name="fat", inputs=[ref], cost=cost)
    return rt.run()


class TestRamAccounting:
    def test_thin_tasks_unconstrained(self):
        # 1 GiB tasks: 16 fit per node; 128 tasks run in one wave.
        result = _run(n_tasks=128, host_gib=1.0)
        assert result.makespan == pytest.approx(1.0, rel=0.2)

    def test_fat_tasks_limited_by_ram_not_cores(self):
        # 100 GiB tasks: one per node despite 16 free cores; 16 tasks over
        # 8 nodes need two waves.
        result = _run(n_tasks=16, host_gib=100.0)
        assert result.makespan >= 2.0

    def test_concurrency_matches_ram_capacity(self):
        # 40 GiB tasks: exactly 3 fit in 128 GiB; 24 tasks over 8 nodes
        # run in one wave, 25 need a second.
        one_wave = _run(n_tasks=24, host_gib=40.0)
        two_waves = _run(n_tasks=25, host_gib=40.0)
        assert one_wave.makespan < 2.0
        assert two_waves.makespan >= 2.0

    def test_peak_ram_tracked(self):
        from repro.hardware import SimulatedCluster
        from repro.runtime.backends.simulated import SimulatedExecutor
        from repro.hardware import StorageKind
        from repro.runtime import SchedulingPolicy

        rt = Runtime(RuntimeConfig())
        cost = _fat_task_cost(40.0)
        for i in range(8):
            ref = rt.register_input(0, name=f"in{i}")
            rt.submit(name="fat", inputs=[ref], cost=cost)
        executor = SimulatedExecutor(
            cluster_spec=minotauro(),
            storage=StorageKind.SHARED,
            scheduling=SchedulingPolicy.GENERATION_ORDER,
            use_gpu=False,
        )
        executor.execute(rt.graph)
        peaks = [node.peak_ram for node in executor.cluster.nodes]
        assert max(peaks) <= minotauro().node.ram_bytes
        assert max(peaks) >= 40 * GIB

    def test_ram_fully_released_after_run(self):
        from repro.hardware import StorageKind
        from repro.runtime import SchedulingPolicy
        from repro.runtime.backends.simulated import SimulatedExecutor

        rt = Runtime(RuntimeConfig())
        for i in range(12):
            ref = rt.register_input(0, name=f"in{i}")
            rt.submit(name="fat", inputs=[ref], cost=_fat_task_cost(10.0))
        executor = SimulatedExecutor(
            cluster_spec=minotauro(),
            storage=StorageKind.SHARED,
            scheduling=SchedulingPolicy.GENERATION_ORDER,
            use_gpu=False,
        )
        executor.execute(rt.graph)
        assert all(node.ram_in_use == 0 for node in executor.cluster.nodes)


class TestNodeRamApi:
    def test_reserve_release_roundtrip(self):
        from repro.hardware import SimulatedCluster
        from repro.sim import Simulator

        node = SimulatedCluster(Simulator(), minotauro()).nodes[0]
        node.reserve_ram(GIB)
        assert node.ram_in_use == GIB
        node.release_ram(GIB)
        assert node.ram_in_use == 0

    def test_over_reservation_rejected(self):
        from repro.hardware import SimulatedCluster
        from repro.sim import Simulator

        node = SimulatedCluster(Simulator(), minotauro()).nodes[0]
        with pytest.raises(ValueError):
            node.reserve_ram(200 * GIB)

    def test_over_release_rejected(self):
        from repro.hardware import SimulatedCluster
        from repro.sim import Simulator

        node = SimulatedCluster(Simulator(), minotauro()).nodes[0]
        with pytest.raises(ValueError):
            node.release_ram(1)
