"""Self-lint: the analyzer must pass every bundled example workflow.

Builds the workflows the ``examples/`` drivers construct (including the
composite data-science pipeline of ``ds_pipeline.py``, imported from the
example file itself) and asserts the analyzer reports zero errors on each
— the bundled configurations are all feasible by construction.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.algorithms import (
    KMeansWorkflow,
    LinearRegressionWorkflow,
    MatmulFmaWorkflow,
    MatmulWorkflow,
    SyntheticWorkflow,
)
from repro.analysis import analyze_runtime
from repro.data import Blocking, GridSpec, paper_datasets
from repro.runtime import Runtime, RuntimeConfig

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _example_module(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    return module


def _workflows():
    datasets = paper_datasets()
    return [
        # quickstart.py: the paper's motivating K-means configuration.
        KMeansWorkflow(
            datasets["kmeans_10gb"], grid_rows=256, n_clusters=10, iterations=3
        ),
        # block_size_tuning.py / figure sweeps: matmul at several grids.
        MatmulWorkflow(datasets["matmul_8gb"], grid=8),
        MatmulFmaWorkflow(datasets["matmul_8gb"], grid=4),
        LinearRegressionWorkflow(datasets["kmeans_10gb"], grid_rows=64),
        SyntheticWorkflow(datasets["kmeans_10gb"], grid_rows=64, parallel_ratio=0.9),
    ]


class TestExampleWorkflowsSelfLint:
    @pytest.mark.parametrize("use_gpu", [False, True])
    def test_bundled_workflows_have_zero_errors(self, use_gpu):
        for workflow in _workflows():
            runtime = Runtime(RuntimeConfig(use_gpu=use_gpu))
            returned = workflow.build(runtime)
            report = analyze_runtime(runtime, returned=returned)
            assert not report.has_errors, (
                f"{workflow.name} (gpu={use_gpu}) has errors:\n{report.render()}"
            )

    @pytest.mark.parametrize("use_gpu", [False, True])
    def test_ds_pipeline_example_self_lints(self, use_gpu):
        ds_pipeline = _example_module("ds_pipeline")
        dataset = paper_datasets()["kmeans_10gb"]
        blocking = Blocking.from_grid(dataset, GridSpec(k=64, l=1))
        runtime = Runtime(RuntimeConfig(use_gpu=use_gpu))
        final = ds_pipeline.build_pipeline(runtime, blocking)
        report = analyze_runtime(runtime, returned=final)
        assert not report.has_errors, report.render()

    def test_clean_workflow_reports_no_structural_findings(self):
        runtime = Runtime(RuntimeConfig())
        workflow = KMeansWorkflow(
            paper_datasets()["kmeans_10gb"], grid_rows=64, n_clusters=10
        )
        returned = workflow.build(runtime)
        report = analyze_runtime(runtime, returned=returned)
        structural = {c for c in report.codes() if c.startswith("WF0")}
        assert structural == set()
