"""The paper's Figure 2: a taxonomy of CPU-GPU processing research.

Figure 2 classifies the related work along five axes — GPU usage, GPU
integration, application, level of analysis, and (for data-intensive
applications) infrastructure with its limitation areas — and highlights
the scope of the paper's own study.  This module encodes the taxonomy as
a data structure so the scope query ("which categories does this study
cover?") is executable, and renders the tree for the Figure 2 artefact.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TaxonomyNode:
    """One category of the Figure 2 classification."""

    name: str
    #: Reference numbers cited by the paper under this category.
    citations: tuple[int, ...] = ()
    #: Whether the paper's own study covers this category (red in Fig 2).
    in_scope: bool = False
    children: tuple["TaxonomyNode", ...] = field(default_factory=tuple)

    def walk(self):
        """Yield this node and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "TaxonomyNode":
        """Locate a category by exact name."""
        for node in self.walk():
            if node.name == name:
                return node
        raise KeyError(f"no taxonomy category named {name!r}")

    def scope(self) -> list[str]:
        """Names of all in-scope categories under this node."""
        return [node.name for node in self.walk() if node.in_scope]

    def render(self, indent: int = 0) -> str:
        """The subtree as an indented outline ('*' marks the scope)."""
        marker = " *" if self.in_scope else ""
        refs = f" [{', '.join(map(str, self.citations))}]" if self.citations else ""
        lines = [f"{'  ' * indent}{self.name}{marker}{refs}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


def figure2_taxonomy() -> TaxonomyNode:
    """The Figure 2 tree, with the paper's scope highlighted."""
    return TaxonomyNode(
        name="CPU-GPU Processing",
        children=(
            TaxonomyNode(
                name="GPU Usage",
                children=(
                    TaxonomyNode("Primary Processor", (27, 62)),
                    TaxonomyNode("Accelerator", (73, 78)),
                    TaxonomyNode(
                        "Heterogeneous CPU-GPU", (32, 59, 69, 71), in_scope=True
                    ),
                ),
            ),
            TaxonomyNode(
                name="GPU Integration",
                children=(
                    TaxonomyNode("Integrated", (33, 35, 75)),
                    TaxonomyNode("Dedicated", in_scope=True),
                ),
            ),
            TaxonomyNode(
                name="Application",
                children=(
                    TaxonomyNode("Database", (10, 32, 62, 71)),
                    TaxonomyNode(
                        name="Analytics (data-intensive applications)",
                        in_scope=True,
                        children=(
                            TaxonomyNode(
                                "Task-based Workflows",
                                (2, 3, 9, 29, 42, 78),
                                in_scope=True,
                            ),
                            TaxonomyNode("Dataflows", (15, 57)),
                            TaxonomyNode("Graph Processing", (39, 76)),
                        ),
                    ),
                ),
            ),
            TaxonomyNode(
                name="Level of Analysis",
                children=(
                    TaxonomyNode("Instruction", (10, 64, 69)),
                    TaxonomyNode("Task", (32, 62, 71), in_scope=True),
                    TaxonomyNode("DAG", (27, 39), in_scope=True),
                ),
            ),
            TaxonomyNode(
                name="Infrastructure",
                in_scope=True,
                children=(
                    TaxonomyNode(
                        name="Single Machine",
                        in_scope=True,
                        children=(
                            TaxonomyNode(
                                "CPU-GPU Data Transfer",
                                (11, 32, 33, 36, 59, 60, 71),
                                in_scope=True,
                            ),
                            TaxonomyNode("Device Speedup", (9, 16), in_scope=True),
                        ),
                    ),
                    TaxonomyNode(
                        name="Cluster",
                        in_scope=True,
                        children=(
                            TaxonomyNode(
                                "Storage I/O", (27, 38, 69, 70), in_scope=True
                            ),
                            TaxonomyNode(
                                "Network I/O", (6, 26, 34, 78), in_scope=True
                            ),
                            TaxonomyNode("Task Scheduling", (2, 25), in_scope=True),
                        ),
                    ),
                ),
            ),
        ),
    )


def scope_matches_table1() -> bool:
    """Cross-check: Figure 2's cluster limitation areas are exactly the
    system functions Table 1's factors stress."""
    from repro.core.factors import SystemFunction, TABLE1_FACTORS

    cluster = figure2_taxonomy().find("Cluster")
    single = figure2_taxonomy().find("Single Machine")
    figure2_areas = {
        "CPU-GPU Data Transfer": SystemFunction.CPU_GPU_TRANSFER,
        "Device Speedup": SystemFunction.DEVICE_SPEEDUP,
        "Storage I/O": SystemFunction.STORAGE_IO,
        "Network I/O": SystemFunction.NETWORK_IO,
        "Task Scheduling": SystemFunction.TASK_SCHEDULING,
    }
    names = {child.name for child in cluster.children} | {
        child.name for child in single.children
    }
    if names != set(figure2_areas):
        return False
    stressed = set()
    for factor in TABLE1_FACTORS:
        stressed |= factor.affects
    return stressed == set(figure2_areas.values())
