"""Unit tests for DAG construction and shape analysis."""

import pytest

from repro.runtime import (
    CycleError,
    DataRef,
    DuplicateProducerError,
    Task,
    TaskGraph,
)


def _task(task_id, inputs=(), n_outputs=1, name="t"):
    outputs = tuple(DataRef(size_bytes=8, name=f"{name}{task_id}.o{i}") for i in range(n_outputs))
    return Task(task_id=task_id, name=name, inputs=tuple(inputs), outputs=outputs)


class TestDependencyDetection:
    def test_producer_consumer_edge(self):
        graph = TaskGraph()
        producer = _task(0)
        graph.add_task(producer)
        consumer = _task(1, inputs=producer.outputs)
        graph.add_task(consumer)
        assert [t.task_id for t in graph.successors(0)] == [1]
        assert [t.task_id for t in graph.predecessors(1)] == [0]

    def test_external_inputs_create_no_edges(self):
        graph = TaskGraph()
        external = DataRef(size_bytes=8)
        graph.add_task(_task(0, inputs=[external]))
        assert graph.num_edges == 0
        assert len(graph.roots()) == 1

    def test_diamond_dependencies(self):
        graph = TaskGraph()
        a = _task(0)
        graph.add_task(a)
        b = _task(1, inputs=a.outputs)
        c = _task(2, inputs=a.outputs)
        graph.add_task(b)
        graph.add_task(c)
        d = _task(3, inputs=b.outputs + c.outputs)
        graph.add_task(d)
        assert graph.num_edges == 4
        assert sorted(t.task_id for t in graph.predecessors(3)) == [1, 2]

    def test_duplicate_task_id_rejected(self):
        graph = TaskGraph()
        graph.add_task(_task(0))
        with pytest.raises(ValueError):
            graph.add_task(_task(0))

    def test_two_refs_from_same_producer_yield_one_edge(self):
        graph = TaskGraph()
        producer = _task(0, n_outputs=2)
        graph.add_task(producer)
        consumer = _task(1, inputs=producer.outputs)
        graph.add_task(consumer)
        assert graph.num_edges == 1
        assert [t.task_id for t in graph.successors(0)] == [1]
        assert [t.task_id for t in graph.predecessors(1)] == [0]

    def test_same_ref_twice_in_inputs_yields_one_edge(self):
        graph = TaskGraph()
        producer = _task(0)
        graph.add_task(producer)
        ref = producer.outputs[0]
        graph.add_task(_task(1, inputs=(ref, ref)))
        assert graph.num_edges == 1

    def test_second_producer_of_a_ref_rejected(self):
        graph = TaskGraph()
        first = _task(0)
        graph.add_task(first)
        imposter = Task(
            task_id=1, name="imposter", inputs=(), outputs=first.outputs
        )
        with pytest.raises(DuplicateProducerError) as excinfo:
            graph.add_task(imposter)
        assert excinfo.value.first_producer == 0
        assert excinfo.value.second_producer == 1
        # The refused task must not be half-inserted.
        assert graph.num_tasks == 1
        assert graph.producer_of(first.outputs[0].ref_id) == 0

    def test_producer_of_and_edges_accessors(self):
        graph = TaskGraph()
        producer = _task(0)
        graph.add_task(producer)
        consumer = _task(1, inputs=producer.outputs)
        graph.add_task(consumer)
        assert graph.producer_of(producer.outputs[0].ref_id) == 0
        assert graph.producer_of(10**9) is None
        assert graph.edges() == [(0, 1)]


class TestDotEscaping:
    def test_quotes_and_backslashes_escaped(self):
        graph = TaskGraph()
        graph.add_task(_task(0, name='eval("x\\y")'))
        dot = graph.to_dot()
        assert 'label="eval(\\"x\\\\y\\")' in dot
        # No raw unescaped quote sequence that would break DOT parsing.
        assert 'eval("' not in dot


class TestTopologyAndLevels:
    def _chain(self, length):
        graph = TaskGraph()
        previous = None
        for i in range(length):
            t = _task(i, inputs=previous.outputs if previous else ())
            graph.add_task(t)
            previous = t
        return graph

    def test_chain_height(self):
        graph = self._chain(5)
        assert graph.height == 5
        assert graph.width == 1

    def test_independent_tasks_width(self):
        graph = TaskGraph()
        for i in range(7):
            graph.add_task(_task(i))
        assert graph.width == 7
        assert graph.height == 1

    def test_levels_are_longest_path(self):
        graph = TaskGraph()
        a = _task(0)
        b = _task(1)
        graph.add_task(a)
        graph.add_task(b)
        c = _task(2, inputs=a.outputs)
        graph.add_task(c)
        d = _task(3, inputs=b.outputs + c.outputs)
        graph.add_task(d)
        levels = graph.levels()
        assert levels[0] == 0
        assert levels[1] == 0
        assert levels[2] == 1
        assert levels[3] == 2  # longest path through c

    def test_topological_order_respects_edges(self):
        graph = self._chain(4)
        order = [t.task_id for t in graph.topological_order()]
        assert order == [0, 1, 2, 3]

    def test_cycle_detection(self):
        graph = TaskGraph()
        ref_a = DataRef(size_bytes=8)
        ref_b = DataRef(size_bytes=8)
        t0 = Task(task_id=0, name="a", inputs=(ref_b,), outputs=(ref_a,))
        t1 = Task(task_id=1, name="b", inputs=(ref_a,), outputs=())
        graph.add_task(t0)
        graph.add_task(t1)
        # Manufacture a cycle by hand-wiring the internal edge maps.
        graph._successors[1].append(0)
        graph._predecessors[0].append(1)
        with pytest.raises(CycleError):
            graph.topological_order()

    def test_empty_graph(self):
        graph = TaskGraph()
        assert graph.width == 0
        assert graph.height == 0
        assert graph.topological_order() == []

    def test_tasks_by_level_groups(self):
        graph = self._chain(3)
        by_level = graph.tasks_by_level()
        assert sorted(by_level) == [0, 1, 2]
        assert all(len(tasks) == 1 for tasks in by_level.values())

    def test_describe(self):
        graph = self._chain(2)
        text = graph.describe()
        assert "2 tasks" in text
        assert "height 2" in text
