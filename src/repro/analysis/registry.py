"""The pluggable rule registry behind the analyzer and the devlint.

Every diagnostic rule — the workflow rules of :mod:`repro.analysis.rules`
and :mod:`repro.analysis.races`, and the source-level determinism checks
of :mod:`repro.analysis.devlint` — registers itself here with a stable
code, a severity, a category, and a one-line summary.  The registry is
the single source of truth the documentation table in ``docs/linting.md``
is generated from (``tests/test_docs_consistency.py`` pins the two
together), and what lets new rule families plug in without touching the
analyzer core.

Workflow rules additionally carry their rule function (signature
``RuleContext -> list[Diagnostic]``); devlint rules are registered for
metadata only — their matching logic lives in the AST visitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.diagnostics import CODES, Severity

#: Registry kinds: workflow rules run over a built TaskGraph, devlint
#: rules run over the repository's own Python source.
KIND_WORKFLOW = "workflow"
KIND_DEVLINT = "devlint"


@dataclass(frozen=True)
class RuleSpec:
    """Metadata of one registered rule."""

    code: str
    severity: Severity
    #: Rule family for the docs table ("graph", "feasibility",
    #: "performance", "resilience", "races", "determinism").
    category: str
    #: One-line description (the ``CODES`` entry for workflow rules).
    summary: str
    #: The rule function for workflow rules; ``None`` for devlint rules,
    #: whose matching logic lives in the AST visitor.
    fn: Callable | None = None
    kind: str = KIND_WORKFLOW


_REGISTRY: dict[str, RuleSpec] = {}
_LOADED = False


def register(
    code: str,
    *,
    severity: Severity,
    category: str,
    summary: str | None = None,
    kind: str = KIND_WORKFLOW,
) -> Callable:
    """Register a rule under its stable code (decorator).

    Workflow rules take their one-line summary from the ``CODES`` table
    (keeping code and docs in lockstep); devlint rules pass ``summary=``
    explicitly.  Registering the same code twice is a programming error.
    """

    def decorate(fn: Callable | None) -> Callable | None:
        if code in _REGISTRY:
            raise ValueError(f"rule {code!r} registered twice")
        line = summary if summary is not None else CODES.get(code)
        if line is None:
            raise ValueError(f"rule {code!r} has no CODES entry and no summary=")
        _REGISTRY[code] = RuleSpec(
            code=code,
            severity=severity,
            category=category,
            summary=line,
            fn=fn,
            kind=kind,
        )
        return fn

    return decorate


def register_devlint(
    code: str, *, severity: Severity, summary: str
) -> None:
    """Register a devlint rule's metadata (no rule function)."""
    register(
        code,
        severity=severity,
        category="determinism",
        summary=summary,
        kind=KIND_DEVLINT,
    )(None)


def _ensure_loaded() -> None:
    """Import every rule module so the registry is fully populated."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    # Imports are for their registration side effects.
    import repro.analysis.devlint  # noqa: F401
    import repro.analysis.races  # noqa: F401
    import repro.analysis.rules  # noqa: F401


def specs(kind: str | None = None) -> list[RuleSpec]:
    """Every registered spec ordered by code, optionally one kind only."""
    _ensure_loaded()
    selected = [
        spec
        for spec in _REGISTRY.values()
        if kind is None or spec.kind == kind
    ]
    return sorted(selected, key=lambda spec: spec.code)


def workflow_rules() -> list[tuple[str, Callable]]:
    """Every workflow rule as (code, function), ordered by code."""
    return [(spec.code, spec.fn) for spec in specs(KIND_WORKFLOW)]


def spec_for(code: str) -> RuleSpec:
    """The spec registered under ``code`` (KeyError if unknown)."""
    _ensure_loaded()
    return _REGISTRY[code]


def known_codes(kind: str | None = None) -> set[str]:
    """The registered codes, optionally restricted to one kind."""
    return {spec.code for spec in specs(kind)}


def rule_table() -> str:
    """The docs/linting.md rule table, generated from the registry.

    One markdown row per registered rule: code, severity, category,
    one-line summary.  ``tests/test_docs_consistency.py`` asserts the
    committed table equals this output, so it cannot drift.
    """
    lines = [
        "| code | severity | category | summary |",
        "| --- | --- | --- | --- |",
    ]
    for spec in specs():
        lines.append(
            f"| {spec.code} | {spec.severity.value} | {spec.category} "
            f"| {spec.summary} |"
        )
    return "\n".join(lines)
