"""Shared test fixtures.

Points the sweep-engine result cache at a per-session temporary
directory so tests never read from or write into the user's real
``~/.cache/repro/sweeps`` (and never see stale entries from one).
"""

import os
import tempfile

_SWEEP_CACHE_SCRATCH = tempfile.TemporaryDirectory(prefix="repro-test-sweeps-")
os.environ.setdefault("REPRO_SWEEP_CACHE_DIR", _SWEEP_CACHE_SCRATCH.name)
