"""Metric aggregation (§4.2 of the paper).

Three metric families:

* **Task user code metrics** — averaged per task type: serial-fraction,
  parallel-fraction, CPU-GPU communication, and total user-code time.
* **Data movement overheads** — (de-)serialization times grouped per CPU
  core across all task types.
* **Task-level metrics** — parallel-task execution time per DAG level
  (wall time of each level, averaged over the levels that contain
  parallel-eligible tasks, i.e. one value per "algorithm iteration").
* **Fault metrics** — goodput vs. wasted work of a fault-injected
  execution: core-seconds spent in successful attempts against
  core-seconds burned in failed attempts and retry backoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.tracing.trace import (
    ATTEMPT_SPECULATION_CANCELLED,
    Stage,
    StageRecord,
    Trace,
)


@dataclass(frozen=True)
class UserCodeMetrics:
    """Per-task averages for one task type."""

    task_type: str
    num_tasks: int
    serial_fraction: float
    parallel_fraction: float
    cpu_gpu_comm: float

    @property
    def user_code(self) -> float:
        """Average task user-code time (serial + parallel + communication)."""
        return self.serial_fraction + self.parallel_fraction + self.cpu_gpu_comm


@dataclass(frozen=True)
class DataMovementMetrics:
    """(De-)serialization averages grouped per CPU core."""

    num_cores: int
    deserialization_per_core: float
    serialization_per_core: float

    @property
    def total_per_core(self) -> float:
        """Average combined data-movement time per core."""
        return self.deserialization_per_core + self.serialization_per_core


@dataclass(frozen=True)
class ParallelTaskMetrics:
    """Per-DAG-level wall times."""

    level_wall_times: dict[int, float]
    parallel_levels: tuple[int, ...]

    @property
    def average_parallel_time(self) -> float:
        """Mean wall time over the levels holding parallel-eligible tasks."""
        if not self.parallel_levels:
            return 0.0
        return mean(self.level_wall_times[level] for level in self.parallel_levels)

    @property
    def total_time(self) -> float:
        """Sum of all level wall times (lower bound on the makespan)."""
        return sum(self.level_wall_times.values())


@dataclass(frozen=True)
class FaultMetrics:
    """Goodput vs. wasted work of one (possibly fault-injected) run."""

    #: Attempts across all tasks (equals task count for fault-free runs).
    num_attempts: int
    #: Attempts that died (crash, node failure, GPU OOM, timeout).
    num_failures: int
    #: Tasks that needed more than one attempt.
    retried_tasks: int
    #: Core-seconds spent in attempts that completed their task.
    goodput_seconds: float
    #: Core-seconds burned in failed attempts (cancelled speculative
    #: backups included — losing the race is speculation's cost).
    wasted_seconds: float
    #: Simulated seconds spent in retry backoff (master-side, off-core).
    retry_wait_seconds: float
    #: Committed tasks resurrected by lineage recovery to recompute
    #: blocks lost with a dead node.
    tasks_resurrected: int = 0
    #: Checkpoint writes the checkpoint policy performed.
    checkpoint_writes: int = 0
    #: Simulated seconds spent writing checkpoints to shared storage.
    checkpoint_write_seconds: float = 0.0
    #: Speculative backup attempts launched against stragglers.
    speculative_launches: int = 0
    #: Races a speculative backup won (the backup committed the task).
    speculation_wins: int = 0
    #: Races a speculative backup lost (the backup was cancelled).
    speculation_losses: int = 0

    @property
    def goodput_ratio(self) -> float:
        """Share of attempt core-seconds that produced committed work."""
        busy = self.goodput_seconds + self.wasted_seconds
        if busy <= 0.0:
            return 1.0
        return self.goodput_seconds / busy


def fault_metrics(trace: Trace) -> FaultMetrics:
    """Aggregate goodput and wasted work from a trace.

    Fault-free traces (no attempt records) report their task records as
    one successful attempt each, so the metric is defined for every
    execution.
    """
    retry_wait = sum(
        r.duration for r in trace.stages if r.stage is Stage.RETRY_WAIT
    )
    resurrected = sum(1 for r in trace.stages if r.stage is Stage.RECOMPUTE)
    checkpoints = [r for r in trace.stages if r.stage is Stage.CHECKPOINT_WRITE]
    speculative = {
        (r.task_id, r.attempt)
        for r in trace.stages
        if r.stage is Stage.SPECULATIVE
    }
    if not trace.attempts:
        return FaultMetrics(
            num_attempts=len(trace.tasks),
            num_failures=0,
            retried_tasks=0,
            goodput_seconds=sum(t.duration for t in trace.tasks),
            wasted_seconds=0.0,
            retry_wait_seconds=retry_wait,
            tasks_resurrected=resurrected,
            checkpoint_writes=len(checkpoints),
            checkpoint_write_seconds=sum(r.duration for r in checkpoints),
        )
    failures = [a for a in trace.attempts if not a.ok]
    successes = [a for a in trace.attempts if a.ok]
    retried = {a.task_id for a in trace.attempts if a.attempt > 1}
    return FaultMetrics(
        num_attempts=len(trace.attempts),
        num_failures=len(failures),
        retried_tasks=len(retried),
        goodput_seconds=sum(a.duration for a in successes),
        wasted_seconds=sum(a.duration for a in failures),
        retry_wait_seconds=retry_wait,
        tasks_resurrected=resurrected,
        checkpoint_writes=len(checkpoints),
        checkpoint_write_seconds=sum(r.duration for r in checkpoints),
        speculative_launches=len(speculative),
        speculation_wins=sum(
            1 for a in successes if (a.task_id, a.attempt) in speculative
        ),
        speculation_losses=sum(
            1
            for a in failures
            if a.outcome == ATTEMPT_SPECULATION_CANCELLED
            and (a.task_id, a.attempt) in speculative
        ),
    )


def _mean_per_task(records: list[StageRecord], num_tasks: int) -> float:
    """Average per-task total duration of a stage.

    A task may emit several records for one stage (e.g. the host-to-device
    and device-to-host halves of CPU-GPU communication); they are summed
    per task before averaging.
    """
    if not records or num_tasks == 0:
        return 0.0
    return sum(r.duration for r in records) / num_tasks


def user_code_metrics(trace: Trace) -> dict[str, UserCodeMetrics]:
    """Average user-code stage times per task type (§4.2)."""
    result: dict[str, UserCodeMetrics] = {}
    for task_type in trace.task_types():
        records = trace.stages_of_task_type(task_type)
        by_stage: dict[Stage, list[StageRecord]] = {}
        for record in records:
            by_stage.setdefault(record.stage, []).append(record)
        num_tasks = len({r.task_id for r in records}) or 1
        result[task_type] = UserCodeMetrics(
            task_type=task_type,
            num_tasks=num_tasks,
            serial_fraction=_mean_per_task(
                by_stage.get(Stage.SERIAL_FRACTION, []), num_tasks
            ),
            parallel_fraction=_mean_per_task(
                by_stage.get(Stage.PARALLEL_FRACTION, []), num_tasks
            ),
            cpu_gpu_comm=_mean_per_task(
                by_stage.get(Stage.CPU_GPU_COMM, []), num_tasks
            ),
        )
    return result


def data_movement_metrics(trace: Trace) -> DataMovementMetrics:
    """(De-)serialization time averaged per CPU core, all task types (§4.2)."""
    deser: dict[tuple[int, int], float] = {}
    ser: dict[tuple[int, int], float] = {}
    for record in trace.stages:
        core_key = (record.node, record.core)
        if record.stage is Stage.DESERIALIZATION:
            deser[core_key] = deser.get(core_key, 0.0) + record.duration
        elif record.stage is Stage.SERIALIZATION:
            ser[core_key] = ser.get(core_key, 0.0) + record.duration
    cores = set(deser) | set(ser)
    if not cores:
        return DataMovementMetrics(0, 0.0, 0.0)
    num_cores = len(cores)
    return DataMovementMetrics(
        num_cores=num_cores,
        deserialization_per_core=sum(deser.values()) / num_cores,
        serialization_per_core=sum(ser.values()) / num_cores,
    )


def parallel_task_metrics(
    trace: Trace,
    parallel_task_types: set[str] | None = None,
) -> ParallelTaskMetrics:
    """Wall time of each DAG level (§4.2's parallel task execution time).

    ``parallel_task_types`` selects which task types count as the
    algorithm's parallel tasks (e.g. ``partial_sum`` for K-means); when
    omitted, every level counts.
    """
    starts: dict[int, float] = {}
    ends: dict[int, float] = {}
    level_types: dict[int, set[str]] = {}
    for task in trace.tasks:
        starts[task.level] = min(starts.get(task.level, task.start), task.start)
        ends[task.level] = max(ends.get(task.level, task.end), task.end)
        level_types.setdefault(task.level, set()).add(task.task_type)
    wall = {level: ends[level] - starts[level] for level in starts}
    if parallel_task_types is None:
        parallel_levels = tuple(sorted(wall))
    else:
        parallel_levels = tuple(
            sorted(
                level
                for level, types in level_types.items()
                if types & parallel_task_types
            )
        )
    return ParallelTaskMetrics(level_wall_times=wall, parallel_levels=parallel_levels)
