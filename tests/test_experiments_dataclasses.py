"""Unit tests for experiment result dataclasses and runner helpers."""

import pytest

from repro.core.experiments.fig7 import Fig7Point, Fig7Series
from repro.core.experiments.fig10 import Fig10Cell, Fig10Result
from repro.core.experiments.runners import (
    STATUS_CPU_OOM,
    STATUS_GPU_OOM,
    STATUS_OK,
    RunMetrics,
    speedup,
)
from repro.hardware import StorageKind
from repro.runtime import SchedulingPolicy
from repro.tracing import DataMovementMetrics
from repro.tracing.aggregate import UserCodeMetrics


def _metrics(status=STATUS_OK, use_gpu=False, ptask=1.0, movement=None, uc=None):
    return RunMetrics(
        status=status,
        use_gpu=use_gpu,
        storage=StorageKind.SHARED,
        scheduling=SchedulingPolicy.GENERATION_ORDER,
        parallel_task_time=ptask,
        movement=movement,
        user_code=uc or {},
    )


def _uc(serial=1.0, parallel=2.0, comm=0.5):
    return UserCodeMetrics(
        task_type="t", num_tasks=4,
        serial_fraction=serial, parallel_fraction=parallel, cpu_gpu_comm=comm,
    )


class TestSpeedupHelper:
    def test_normal(self):
        assert speedup(10.0, 5.0) == 2.0

    def test_zero_values_give_none(self):
        assert speedup(0.0, 5.0) is None
        assert speedup(5.0, 0.0) is None


class TestRunMetrics:
    def test_ok_property(self):
        assert _metrics().ok
        assert not _metrics(status=STATUS_GPU_OOM).ok
        assert not _metrics(status=STATUS_CPU_OOM).ok


class TestFig7Point:
    def _point(self, cpu_status=STATUS_OK, gpu_status=STATUS_OK):
        return Fig7Point(
            grid_label="4 x 4",
            block_mb=100.0,
            num_tasks=16,
            cpu=_metrics(status=cpu_status, uc={"t": _uc()}),
            gpu=_metrics(status=gpu_status, use_gpu=True,
                         uc={"t": _uc(parallel=0.5)}),
            primary_task_type="t",
        )

    def test_status_prefers_cpu_failure(self):
        point = self._point(cpu_status=STATUS_CPU_OOM, gpu_status=STATUS_GPU_OOM)
        assert point.status == STATUS_CPU_OOM

    def test_status_gpu_failure(self):
        assert self._point(gpu_status=STATUS_GPU_OOM).status == STATUS_GPU_OOM

    def test_speedups_none_on_oom(self):
        point = self._point(gpu_status=STATUS_GPU_OOM)
        assert point.parallel_fraction_speedup is None
        assert point.user_code_speedup is None
        assert point.parallel_tasks_speedup is None

    def test_speedup_values(self):
        point = self._point()
        assert point.parallel_fraction_speedup == pytest.approx(4.0)
        # user code: (1 + 2 + 0.5) / (1 + 0.5 + 0.5)
        assert point.user_code_speedup == pytest.approx(3.5 / 2.0)

    def test_movement_per_core(self):
        movement = DataMovementMetrics(
            num_cores=4, deserialization_per_core=1.0, serialization_per_core=0.5
        )
        point = Fig7Point(
            grid_label="g", block_mb=1.0, num_tasks=1,
            cpu=_metrics(movement=movement, uc={"t": _uc()}),
            gpu=_metrics(use_gpu=True, uc={"t": _uc()}),
            primary_task_type="t",
        )
        assert point.movement_per_core(point.cpu) == pytest.approx(1.5)
        assert point.movement_per_core(point.gpu) is None  # no movement set


class TestFig7Series:
    def test_speedup_by_block(self):
        series = Fig7Series(algorithm="a", dataset="d")
        for block_mb in (10.0, 20.0):
            series.points.append(
                Fig7Point(
                    grid_label="g", block_mb=block_mb, num_tasks=2,
                    cpu=_metrics(uc={"t": _uc()}),
                    gpu=_metrics(use_gpu=True, uc={"t": _uc(parallel=1.0)}),
                    primary_task_type="t",
                )
            )
        mapping = series.speedup_by_block("user_code_speedup")
        assert set(mapping) == {10.0, 20.0}


class TestFig10Result:
    def _result(self):
        result = Fig10Result(algorithm="a", dataset="d")
        for grid, value in ((4, 2.0), (2, None)):
            metrics = _metrics(
                status=STATUS_OK if value is not None else STATUS_GPU_OOM,
                ptask=value or 0.0,
            )
            result.cells.append(
                Fig10Cell(
                    storage=StorageKind.SHARED,
                    scheduling=SchedulingPolicy.GENERATION_ORDER,
                    grid=grid,
                    block_mb=float(grid),
                    use_gpu=False,
                    metrics=metrics,
                )
            )
        return result

    def test_series_lookup(self):
        series = self._result().series(
            StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER, False
        )
        assert series[4] == 2.0
        assert series[2] is None

    def test_render_includes_oom(self):
        assert "OOM" in self._result().render()

    def test_panel_lookup_raises_for_unknown(self):
        from repro.core.experiments.fig7 import Fig7Result

        result = Fig7Result(panels=[])
        with pytest.raises(KeyError):
            result.panel("matmul", "nope")
