"""Benchmark E6 — Figure 9a: the algorithm-specific parameter (#clusters).

Paper shape: K-means user-code GPU speedup grows with the cluster count
(marginal at K=10, ~2-3x better at K=100, several-fold at K=1000) and
barely moves with block size; the GPU OOM region widens with K, reaching
"CPU GPU OOM" (host memory too) at the largest blocks for K=1000 (O4).
"""

from repro.core.experiments import run_fig9a
from repro.core.experiments.fig9 import FIG9A_CLUSTERS, FIG9A_GRIDS
from repro.core.observations import check_o4


def test_fig9a_clusters(once):
    result = once(run_fig9a, "kmeans_10gb", FIG9A_CLUSTERS, FIG9A_GRIDS)
    print()
    print(result.render())
    print()
    print(result.chart())
    o4 = check_o4(result)
    print(o4)
    assert o4.passed
    assert result.best_speedup(10) < 1.6
    assert result.best_speedup(1000) / result.best_speedup(10) >= 3.0
    # OOM region widens with K; the K=1000 maximum block OOMs on the host.
    statuses = {
        (p.n_clusters, p.grid): p.status for p in result.points
    }
    assert statuses[(10, 1)] == "ok"
    assert statuses[(100, 1)] == "gpu_oom"
    assert statuses[(1000, 1)] == "cpu_oom"
