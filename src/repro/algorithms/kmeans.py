"""Distributed K-means (dislib-style).

Each iteration runs one ``partial_sum`` task per row block — computing
distances to the current centroids, assigning samples, and accumulating
per-cluster sums and counts — followed by a serial ``merge`` on the master
that reduces the partials into new centroids.  The resulting DAG is narrow
and deep (the paper's Figure 6a): width = number of row blocks, height =
2 x iterations.

``partial_sum`` is *partially parallel* (family (b) of §4.1): the distance
computation is thread-parallel with complexity O(M N K^2) (the paper's
stated complexity, where M = samples, N = features, K = clusters per
block), while the assignment bookkeeping is a serial fraction.  The serial
fraction's sub-quadratic growth in K is why GPU speedup rises with the
cluster count in Figure 9a.

Calibrated constants (see ``repro.perfmodel.calibration`` for method):

* ``_ALPHA = 1.5`` — effective FLOPs per M*N*K^2 unit of the parallel
  fraction.
* ``_SERIAL_PER_ELEMENT = 10`` / ``_SERIAL_PER_ASSIGNMENT = 3000`` —
  effective FLOPs of the serial fraction per data element and per
  sample-cluster pair; dominated by Python/NumPy dispatch in dislib, hence
  far above one machine instruction.
* ``_GPU_EFFICIENCY = 0.66`` — dislib's CuPy K-means kernel quality; set
  so the single-task parallel-fraction speedup at the Figure 1 operating
  point is ~5.7x.
"""

from __future__ import annotations

import numpy as np

from repro.data import Blocking, DatasetSpec, GridSpec
from repro.perfmodel import TaskCost
from repro.runtime import DataRef, Runtime, task
from repro.arrays import DistributedArray

_ELEM = 8
_ALPHA = 1.5
_SERIAL_PER_ELEMENT = 10.0
_SERIAL_PER_ASSIGNMENT = 3000.0
_GPU_EFFICIENCY = 0.66


@task(returns=1, name="partial_sum")
def partial_sum(block: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Per-block cluster assignment and partial accumulation.

    Returns a ``K x (N + 1)`` array: per-cluster feature sums in the first
    ``N`` columns, per-cluster sample counts in the last.
    """
    distances = np.linalg.norm(block[:, None, :] - centroids[None, :, :], axis=2)
    nearest = np.argmin(distances, axis=1)
    k, n = centroids.shape
    partials = np.zeros((k, n + 1))
    for cluster in range(k):
        members = block[nearest == cluster]
        partials[cluster, :n] = members.sum(axis=0)
        partials[cluster, n] = len(members)
    return partials


@task(returns=1, name="merge")
def merge(*partials: np.ndarray) -> np.ndarray:
    """Reduce partial sums into new centroids (serial, on the master).

    Empty clusters collapse to the origin (their count is clamped to 1);
    the reference implementation mirrors this rule so results compare
    exactly.
    """
    total = np.sum(partials, axis=0)
    counts = np.maximum(total[:, -1:], 1.0)
    return total[:, :-1] / counts


def partial_sum_cost(m: int, n: int, k_clusters: int) -> TaskCost:
    """Cost of one ``partial_sum`` on an ``m x n`` block with K clusters."""
    parallel_flops = _ALPHA * m * n * k_clusters**2
    serial_flops = _SERIAL_PER_ELEMENT * m * n + _SERIAL_PER_ASSIGNMENT * m * k_clusters
    touched = _ELEM * (m * n + n * k_clusters + m * k_clusters)
    centroid_bytes = _ELEM * k_clusters * n
    out_bytes = _ELEM * k_clusters * (n + 1)
    in_bytes = _ELEM * m * n + centroid_bytes
    # Device working set: the block, the M x K distance matrix, and one
    # temporary of the same size (CuPy's broadcasting intermediates).
    gpu_memory = _ELEM * m * n + 2 * _ELEM * m * k_clusters
    # Host working set: block plus the same distance matrices NumPy builds.
    host_memory = _ELEM * m * n + 2 * _ELEM * m * k_clusters
    return TaskCost(
        serial_flops=serial_flops,
        parallel_flops=parallel_flops,
        parallel_items=float(m * n),
        arithmetic_intensity=parallel_flops / touched,
        input_bytes=in_bytes,
        output_bytes=out_bytes,
        host_device_bytes=in_bytes + out_bytes,
        gpu_memory_bytes=gpu_memory,
        host_memory_bytes=host_memory,
        gpu_efficiency=_GPU_EFFICIENCY,
    )


def merge_cost(num_partials: int, n: int, k_clusters: int) -> TaskCost:
    """Cost of the serial merge of ``num_partials`` partial-sum arrays."""
    entry_count = k_clusters * (n + 1)
    in_bytes = _ELEM * num_partials * entry_count
    out_bytes = _ELEM * k_clusters * n
    return TaskCost(
        serial_flops=float(num_partials * entry_count) * 8.0,
        parallel_flops=0.0,
        parallel_items=0.0,
        arithmetic_intensity=0.0,
        input_bytes=in_bytes,
        output_bytes=out_bytes,
        host_device_bytes=0,
        gpu_memory_bytes=0,
        host_memory_bytes=4 * in_bytes,
    )


class KMeansWorkflow:
    """Builds the distributed K-means workflow.

    Parameters mirror §4.4.4/§4.4.5: row-wise chunking (grid ``k x 1``),
    an algorithm-specific cluster count, and a fixed iteration count (the
    paper's DAG of Figure 6a shows 3 iterations).
    """

    name = "kmeans"
    #: Task types counted by the parallel-task-time metric.
    parallel_task_types = frozenset({"partial_sum"})
    #: The dominant task type used for stage-level speedups.
    primary_task_type = "partial_sum"

    def __init__(
        self,
        dataset: DatasetSpec,
        grid_rows: int,
        n_clusters: int = 10,
        iterations: int = 3,
    ) -> None:
        if n_clusters <= 0:
            raise ValueError("n_clusters must be positive")
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self.blocking = Blocking.from_grid(dataset, GridSpec(k=grid_rows, l=1))
        self.n_clusters = n_clusters
        self.iterations = iterations

    @property
    def block_mb(self) -> float:
        """Block size label used on the figures' X axes."""
        return self.blocking.block_mb

    def initial_centroids(self) -> np.ndarray:
        """Deterministic initial centroids (first K unit directions)."""
        n = self.blocking.dataset.cols
        k = self.n_clusters
        rng = np.random.default_rng(self.blocking.dataset.seed + 1)
        return rng.random((k, n))

    def build(
        self, runtime: Runtime, materialize: bool = False
    ) -> tuple[DistributedArray, DataRef]:
        """Submit all tasks; returns (data array, final centroids ref)."""
        data = DistributedArray.create(
            runtime, self.blocking, name="X", materialize=materialize
        )
        centroids = runtime.register_input(
            size_bytes=_ELEM * self.n_clusters * self.blocking.block.n,
            name="centroids0",
            value=self.initial_centroids() if materialize else None,
        )
        final = append_kmeans_iterations(
            runtime,
            data.blocks(),
            block_rows=self.blocking.block.m,
            n_features=self.blocking.block.n,
            n_clusters=self.n_clusters,
            iterations=self.iterations,
            centroids=centroids,
        )
        return data, final

    def task_costs(self) -> dict[str, TaskCost]:
        """Per-task-type costs for analytic (single-task) experiments."""
        m, n = self.blocking.block.m, self.blocking.block.n
        return {"partial_sum": partial_sum_cost(m, n, self.n_clusters)}



def append_kmeans_iterations(
    runtime: Runtime,
    blocks: list[DataRef],
    block_rows: int,
    n_features: int,
    n_clusters: int,
    iterations: int,
    centroids: DataRef,
) -> DataRef:
    """Append K-means iterations to an existing workflow.

    ``blocks`` may be workflow inputs or outputs of earlier tasks (e.g. a
    feature-centering stage), which is how composite data-science
    pipelines chain preprocessing into clustering inside one DAG.
    Returns the ref of the final centroids.
    """
    centroid_bytes = _ELEM * n_clusters * n_features
    ps_cost = partial_sum_cost(block_rows, n_features, n_clusters)
    mg_cost = merge_cost(len(blocks), n_features, n_clusters)
    with runtime:
        for _ in range(iterations):
            partials = [
                partial_sum(block, centroids, _cost=ps_cost) for block in blocks
            ]
            centroids = merge(
                *partials, _cost=mg_cost, _output_bytes=[centroid_bytes]
            )
    return centroids

def kmeans_reference(
    data: np.ndarray, centroids: np.ndarray, iterations: int
) -> np.ndarray:
    """Single-machine K-means with the same update rule, for correctness."""
    current = centroids.copy()
    for _ in range(iterations):
        distances = np.linalg.norm(data[:, None, :] - current[None, :, :], axis=2)
        nearest = np.argmin(distances, axis=1)
        k, n = current.shape
        sums = np.zeros((k, n))
        counts = np.zeros(k)
        for cluster in range(k):
            members = data[nearest == cluster]
            sums[cluster] = members.sum(axis=0)
            counts[cluster] = len(members)
        current = sums / np.maximum(counts[:, None], 1.0)
    return current
