"""Unit tests for the O1-O6 observation checkers on synthetic results."""

from repro.core.experiments.fig7 import Fig7Point, Fig7Series
from repro.core.experiments.fig8 import Fig8Point, Fig8Result
from repro.core.experiments.fig9 import Fig9aPoint, Fig9aResult
from repro.core.experiments.fig10 import Fig10Cell, Fig10Result
from repro.core.experiments.runners import (
    STATUS_GPU_OOM,
    STATUS_OK,
    RunMetrics,
)
from repro.core.observations import (
    check_o1,
    check_o2,
    check_o3,
    check_o4,
    check_o5,
    check_o6,
)
from repro.hardware import StorageKind
from repro.runtime import SchedulingPolicy
from repro.tracing.aggregate import UserCodeMetrics


def _metrics(
    user_code=None,
    parallel_task_time=1.0,
    status=STATUS_OK,
    use_gpu=False,
):
    return RunMetrics(
        status=status,
        use_gpu=use_gpu,
        storage=StorageKind.SHARED,
        scheduling=SchedulingPolicy.GENERATION_ORDER,
        user_code=user_code or {},
        parallel_task_time=parallel_task_time,
    )


def _uc(task_type, serial=0.0, parallel=1.0, comm=0.0):
    return UserCodeMetrics(
        task_type=task_type,
        num_tasks=1,
        serial_fraction=serial,
        parallel_fraction=parallel,
        cpu_gpu_comm=comm,
    )


def _fig7_point(block_mb, num_tasks, cpu_uc, gpu_uc, cpu_pt, gpu_pt, tt="partial_sum"):
    return Fig7Point(
        grid_label=f"{num_tasks} x 1",
        block_mb=block_mb,
        num_tasks=num_tasks,
        cpu=_metrics(user_code={tt: cpu_uc}, parallel_task_time=cpu_pt),
        gpu=_metrics(user_code={tt: gpu_uc}, parallel_task_time=gpu_pt, use_gpu=True),
        primary_task_type=tt,
    )


class TestO1:
    def _series(self, speedups):
        series = Fig7Series(algorithm="kmeans", dataset="d")
        for i, s in enumerate(speedups):
            cpu = _uc("partial_sum", serial=1.0, parallel=1.0)
            gpu = _uc("partial_sum", serial=1.0, parallel=2.0 / s - 1.0)
            series.points.append(
                _fig7_point(float(10 * (i + 1)), 2 ** (8 - i), cpu, gpu, 1.0, 1.0)
            )
        return series

    def test_flat_speedups_pass(self):
        assert check_o1(self._series([1.1, 1.2, 1.15, 1.1])).passed

    def test_strong_scaling_fails(self):
        assert not check_o1(self._series([1.1, 1.5, 1.9, 1.3, 1.2, 5.0])).passed

    def test_too_few_points_fail(self):
        assert not check_o1(self._series([1.1])).passed


class TestO2:
    def _series(self, speedup_by_tasks):
        series = Fig7Series(algorithm="kmeans", dataset="d")
        for num_tasks, speedup in speedup_by_tasks.items():
            cpu = _uc("partial_sum")
            gpu = _uc("partial_sum")
            series.points.append(
                _fig7_point(1.0, num_tasks, cpu, gpu, speedup, 1.0)
            )
        return series

    def test_paper_signature_passes(self):
        # Negative at the finest grain, positive from 32 tasks, flat for
        # coarser grains — §5.1.2's shape.
        series = self._series({256: 0.9, 128: 1.0, 32: 1.1, 8: 1.1, 2: 1.05})
        assert check_o2(series).passed

    def test_significant_coarse_gain_fails(self):
        series = self._series({256: 0.8, 128: 0.9, 32: 1.0, 8: 1.4, 2: 1.5})
        assert not check_o2(series).passed

    def test_positive_finest_grain_fails(self):
        series = self._series({256: 1.5, 128: 1.4, 32: 1.2, 8: 1.1, 2: 1.0})
        assert not check_o2(series).passed


class TestO3:
    def _result(self, add_speedups):
        result = Fig8Result(dataset="d")
        for i, s in enumerate(add_speedups):
            cpu = _metrics(
                user_code={
                    "matmul_func": _uc("matmul_func"),
                    "add_func": _uc("add_func", parallel=1.0),
                }
            )
            gpu = _metrics(
                user_code={
                    "matmul_func": _uc("matmul_func"),
                    "add_func": _uc("add_func", parallel=1.0 / s),
                },
                use_gpu=True,
            )
            result.points.append(
                Fig8Point(block_mb=float(10 * (i + 1)), grid=2**i, cpu=cpu, gpu=gpu)
            )
        return result

    def test_gpu_always_loses_passes(self):
        assert check_o3(self._result([0.2, 0.3, 0.25])).passed

    def test_gpu_win_anywhere_fails(self):
        assert not check_o3(self._result([0.2, 1.5, 0.25])).passed

    def test_no_points_fail(self):
        assert not check_o3(Fig8Result(dataset="d")).passed


class TestO4:
    def _result(self, best_by_clusters):
        result = Fig9aResult(dataset="d")
        for clusters, speedup in best_by_clusters.items():
            cpu = _metrics(user_code={"partial_sum": _uc("partial_sum")})
            gpu = _metrics(
                user_code={"partial_sum": _uc("partial_sum", parallel=1.0 / speedup)},
                use_gpu=True,
            )
            result.points.append(
                Fig9aPoint(
                    n_clusters=clusters, block_mb=100.0, grid=16, cpu=cpu, gpu=gpu
                )
            )
        return result

    def test_growing_speedups_pass(self):
        assert check_o4(self._result({10: 1.2, 100: 3.5, 1000: 5.2})).passed

    def test_non_monotone_fails(self):
        assert not check_o4(self._result({10: 2.0, 100: 1.5, 1000: 5.0})).passed

    def test_oom_points_are_ignored(self):
        result = self._result({10: 1.2, 100: 3.5})
        result.points.append(
            Fig9aPoint(
                n_clusters=1000,
                block_mb=100.0,
                grid=16,
                cpu=_metrics(),
                gpu=_metrics(status=STATUS_GPU_OOM, use_gpu=True),
            )
        )
        assert check_o4(result).passed


def _fig10(cells):
    result = Fig10Result(algorithm="x", dataset="d")
    for storage, policy, grid, gpu, value in cells:
        result.cells.append(
            Fig10Cell(
                storage=storage,
                scheduling=policy,
                grid=grid,
                block_mb=float(grid),
                use_gpu=gpu,
                metrics=_metrics(parallel_task_time=value, use_gpu=gpu),
            )
        )
    return result


class TestO5O6:
    def test_o5_small_local_gap_passes(self):
        cells = []
        for policy in SchedulingPolicy:
            for gpu in (False, True):
                cells.append((StorageKind.LOCAL, policy, 4, gpu, 10.0))
        assert check_o5(_fig10(cells)).passed

    def test_o5_large_local_gap_fails(self):
        cells = [
            (StorageKind.LOCAL, SchedulingPolicy.GENERATION_ORDER, 4, False, 10.0),
            (StorageKind.LOCAL, SchedulingPolicy.DATA_LOCALITY, 4, False, 20.0),
        ]
        assert not check_o5(_fig10(cells)).passed

    def test_o6_kmeans_gap_moves_more(self):
        kmeans_cells = [
            (StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER, 4, False, 10.0),
            (StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER, 4, True, 12.0),
            (StorageKind.SHARED, SchedulingPolicy.DATA_LOCALITY, 4, False, 10.0),
            (StorageKind.SHARED, SchedulingPolicy.DATA_LOCALITY, 4, True, 9.0),
        ]
        matmul_cells = [
            (StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER, 4, False, 100.0),
            (StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER, 4, True, 103.0),
            (StorageKind.SHARED, SchedulingPolicy.DATA_LOCALITY, 4, False, 100.0),
            (StorageKind.SHARED, SchedulingPolicy.DATA_LOCALITY, 4, True, 103.0),
        ]
        check = check_o6(_fig10(kmeans_cells), _fig10(matmul_cells))
        assert check.passed

    def test_observation_str(self):
        check = check_o5(_fig10([]))
        assert "O5" in str(check)
