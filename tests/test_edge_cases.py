"""Edge-case tests across subsystems."""

import pytest

from repro.data import Blocking, DatasetSpec, GridSpec
from repro.sim import BandwidthResource, SimulationError, Simulator


class TestSimulatorEdges:
    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_run_until_skips_cancelled_head(self):
        sim = Simulator()
        head = sim.schedule(1.0, lambda: None)
        seen = []
        sim.schedule(2.0, seen.append, "x")
        head.cancel()
        sim.run(until=3.0)
        assert seen == ["x"]
        assert sim.now == 3.0

    def test_pending_events_counts_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        assert sim.pending_events == 1


class TestBandwidthResourceEdges:
    def test_current_rate_idle_is_zero(self):
        resource = BandwidthResource(Simulator(), 100.0)
        assert resource.current_rate() == 0.0

    def test_current_rate_respects_cap(self):
        sim = Simulator()
        resource = BandwidthResource(sim, 100.0, per_job_cap=10.0)
        resource.submit(1000.0, lambda: None)
        assert resource.current_rate() == 10.0

    def test_peak_jobs_tracks_concurrency(self):
        sim = Simulator()
        resource = BandwidthResource(sim, 100.0)
        for _ in range(5):
            resource.submit(100.0, lambda: None)
        sim.run()
        assert resource.peak_jobs == 5

    def test_many_tiny_jobs_all_complete(self):
        sim = Simulator()
        resource = BandwidthResource(sim, 1e9)
        done = []
        for i in range(200):
            resource.submit(float(i), lambda: done.append(None))
        sim.run()
        assert len(done) == 200


class TestBlockingEdges:
    def test_one_by_one_dataset(self):
        blocking = Blocking.from_grid(
            DatasetSpec("one", rows=1, cols=1), GridSpec(k=1, l=1)
        )
        assert blocking.num_tasks == 1
        assert blocking.block_rows(0) == 1

    def test_grid_equals_dataset(self):
        blocking = Blocking.from_grid(
            DatasetSpec("full", rows=4, cols=4), GridSpec(k=4, l=4)
        )
        assert blocking.block.elements == 1
        assert blocking.num_tasks == 16

    def test_block_mb_property(self):
        blocking = Blocking.from_grid(
            DatasetSpec("mb", rows=1000, cols=125), GridSpec(k=1, l=1)
        )
        assert blocking.block_mb == pytest.approx(1.0)


class TestWorkflowEdges:
    def test_single_row_kmeans(self):
        import numpy as np

        from repro.algorithms import KMeansWorkflow
        from repro.runtime import Runtime, RuntimeConfig
        from repro.runtime.runtime import Backend

        dataset = DatasetSpec("tinyrow", rows=3, cols=2)
        workflow = KMeansWorkflow(dataset, grid_rows=3, n_clusters=2,
                                  iterations=1)
        rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        _d, ref = workflow.build(rt, materialize=True)
        centroids = rt.run().value_of(ref)
        assert centroids.shape == (2, 2)
        assert np.isfinite(centroids).all()

    def test_zero_iteration_protection(self):
        from repro.algorithms import KMeansWorkflow

        with pytest.raises(ValueError):
            KMeansWorkflow(DatasetSpec("z", rows=10, cols=2), grid_rows=2,
                           iterations=0)

    def test_synthetic_levels_stack(self):
        from repro.algorithms import SyntheticWorkflow
        from repro.runtime import Runtime, RuntimeConfig

        rt = Runtime(RuntimeConfig())
        SyntheticWorkflow(
            DatasetSpec("lvl", rows=100_000, cols=10), grid_rows=4,
            parallel_ratio=0.5, levels=5,
        ).build(rt)
        result = rt.run()
        assert result.trace.makespan > 0
        assert max(t.level for t in result.trace.tasks) == 4


class TestAggregationEdges:
    def test_user_code_metrics_empty_trace(self):
        from repro.tracing import Trace, user_code_metrics

        assert user_code_metrics(Trace()) == {}

    def test_parallel_task_metrics_disjoint_filter(self):
        from repro.tracing import Trace, TaskRecord, parallel_task_metrics

        trace = Trace()
        trace.add_task(
            TaskRecord(task_id=0, task_type="a", start=0, end=1, node=0,
                       core=0, level=0, used_gpu=False)
        )
        metrics = parallel_task_metrics(trace, {"nonexistent"})
        assert metrics.parallel_levels == ()
        assert metrics.average_parallel_time == 0.0
