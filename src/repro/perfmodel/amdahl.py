"""Analytic speedup models (Amdahl-style, with transfer overhead).

The paper cites Rafiev et al.'s theoretical treatment of the parallel
fraction and notes that "a theoretical analysis of the parallel fraction
is done in [53], but there is no empirical study about it".  This module
provides the closed-form counterpart to the simulator: given a task's
cost profile, it predicts the user-code GPU speedup from Amdahl's law
extended with the CPU-GPU transfer overhead, and derives the break-even
device speedup below which GPUs cannot win.

The test suite cross-checks these formulas against
:class:`~repro.perfmodel.CostModel`, and the advisor uses them as a fast
screening pass before running the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.costmodel import CostModel, TaskCost


def amdahl_speedup(parallel_share: float, device_speedup: float) -> float:
    """Classic Amdahl: overall speedup when only ``parallel_share`` of the
    work accelerates by ``device_speedup``.

    >>> amdahl_speedup(1.0, 20.0)
    20.0
    >>> round(amdahl_speedup(0.5, 2.0), 4)
    1.3333
    """
    if not 0.0 <= parallel_share <= 1.0:
        raise ValueError("parallel_share must be in [0, 1]")
    if device_speedup <= 0:
        raise ValueError("device_speedup must be positive")
    return 1.0 / ((1.0 - parallel_share) + parallel_share / device_speedup)


def amdahl_with_overhead(
    parallel_share: float, device_speedup: float, overhead_share: float
) -> float:
    """Amdahl extended with a fixed overhead (CPU-GPU transfer).

    ``overhead_share`` is the transfer time expressed as a fraction of the
    total CPU-side user-code time; it is paid only on the accelerated
    execution.
    """
    if overhead_share < 0:
        raise ValueError("overhead_share must be non-negative")
    accelerated = (
        (1.0 - parallel_share) + parallel_share / device_speedup + overhead_share
    )
    return 1.0 / accelerated


@dataclass(frozen=True)
class SpeedupPrediction:
    """Closed-form speedup decomposition for one task profile."""

    parallel_share: float
    device_speedup: float
    overhead_share: float
    parallel_fraction_speedup: float
    user_code_speedup: float

    @property
    def amdahl_ceiling(self) -> float:
        """Best possible user-code speedup at infinite device speed
        (transfer overhead still paid)."""
        return 1.0 / ((1.0 - self.parallel_share) + self.overhead_share)


def predict(cost: TaskCost, model: CostModel) -> SpeedupPrediction:
    """Predict stage and user-code speedups for one task analytically."""
    serial = model.serial_fraction_time(cost)
    parallel_cpu = model.parallel_fraction_time_cpu(cost)
    parallel_gpu = model.parallel_fraction_time_gpu(cost)
    comm = model.cpu_gpu_comm_time(cost)
    total_cpu = serial + parallel_cpu
    if total_cpu <= 0:
        raise ValueError("task has no user-code work")
    parallel_share = parallel_cpu / total_cpu
    device_speedup = parallel_cpu / parallel_gpu if parallel_gpu > 0 else 1.0
    overhead_share = comm / total_cpu
    return SpeedupPrediction(
        parallel_share=parallel_share,
        device_speedup=device_speedup,
        overhead_share=overhead_share,
        parallel_fraction_speedup=device_speedup,
        user_code_speedup=amdahl_with_overhead(
            parallel_share, device_speedup, overhead_share
        ),
    )


def breakeven_device_speedup(cost: TaskCost, model: CostModel) -> float | None:
    """The minimum parallel-fraction device speedup for a GPU win.

    Solves ``amdahl_with_overhead(...) = 1`` for the device speedup.
    Returns ``None`` when no finite device speedup can compensate the
    transfer overhead — the paper's add_func regime, where it is never
    worth using the GPU.
    """
    serial = model.serial_fraction_time(cost)
    parallel_cpu = model.parallel_fraction_time_cpu(cost)
    comm = model.cpu_gpu_comm_time(cost)
    total_cpu = serial + parallel_cpu
    if total_cpu <= 0 or parallel_cpu <= 0:
        return None
    parallel_share = parallel_cpu / total_cpu
    overhead_share = comm / total_cpu
    # Need parallel_share / s <= parallel_share - overhead_share.
    headroom = parallel_share - overhead_share
    if headroom <= 0:
        return None
    return parallel_share / headroom


def worth_gpu(cost: TaskCost, model: CostModel) -> bool:
    """The paper's §2 criterion, analytically: the GPU is worth using when
    the parallel-fraction gain overcomes both transfer and serial time."""
    try:
        prediction = predict(cost, model)
    except ValueError:
        return False
    return prediction.user_code_speedup > 1.0
