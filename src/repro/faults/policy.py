"""Retry and graceful-degradation policy for failed task attempts.

The runtime treats failure handling the way a production task-based
system (or a training/inference stack's preemption handler) does: a
failed attempt is retried up to ``max_attempts`` times with exponential
backoff, optionally jittered to avoid retry storms; per-attempt deadlines
turn hangs into failures; and two degradation rules keep the workflow
moving when resources disappear — GPU tasks fall back to CPU cores after
a device failure, and failed nodes are blacklisted from scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RetryPolicy:
    """How the runtime recovers from injected (or emergent) failures.

    ``max_attempts`` counts every try including the first, so
    ``max_attempts=1`` disables retries entirely; a workflow whose fault
    plan kills anything then completes with ``failed=True`` (the analyzer
    warns about this combination as WF301).
    """

    #: Total tries per task (first attempt included).
    max_attempts: int = 3
    #: Backoff before the second attempt, in simulated seconds.
    backoff_base: float = 0.5
    #: Multiplier applied per further attempt (exponential backoff).
    backoff_factor: float = 2.0
    #: Upper bound of any single backoff delay.
    backoff_max: float = 60.0
    #: Fraction of the delay randomized symmetrically (0 = none); the
    #: jitter stream is seeded per (plan seed, task, attempt) so it is
    #: reproducible.
    backoff_jitter: float = 0.0
    #: Per-attempt deadline in simulated seconds (``None`` = unlimited);
    #: checked at stage boundaries.
    task_deadline: float | None = None
    #: After a runtime GPU OOM, retry the task on a CPU core.
    gpu_fallback_to_cpu: bool = True
    #: Exclude failed nodes from every scheduling decision.
    blacklist_failed_nodes: bool = True
    #: Simulated seconds after which a blacklisted node reboots and
    #: re-enters scheduling (``None`` = blacklisted forever).  Without a
    #: cooldown a run can strand once every GPU-bearing node has faulted;
    #: blocks the node held stay lost across the reboot.
    blacklist_cooldown: float | None = None
    #: Lineage-based recovery: when a task's input block was lost with a
    #: failed node, resurrect the minimal set of committed ancestors that
    #: can recompute it instead of failing the consumer (off by default;
    #: the pre-recovery "dependencies lost" behaviour is preserved
    #: bit-for-bit when disabled).
    recover_lost_blocks: bool = False
    #: Speculative re-execution: when a running attempt exceeds this
    #: factor times the running median duration of its task type, launch
    #: a backup attempt on another node and take the first finisher
    #: (``None`` = no speculation).
    speculation_factor: float | None = None
    #: Committed durations of a task type needed before its running
    #: median is trusted for speculation decisions.
    speculation_min_samples: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max < 0:
            raise ValueError("backoff_max must be non-negative")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must be within [0, 1)")
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise ValueError("task_deadline must be positive")
        if self.blacklist_cooldown is not None and self.blacklist_cooldown <= 0:
            raise ValueError("blacklist_cooldown must be positive")
        if self.speculation_factor is not None and self.speculation_factor <= 1:
            raise ValueError("speculation_factor must be > 1")
        if self.speculation_min_samples < 1:
            raise ValueError("speculation_min_samples must be >= 1")

    @property
    def retries_enabled(self) -> bool:
        """Whether a failed attempt gets another try at all."""
        return self.max_attempts > 1

    @property
    def speculation_enabled(self) -> bool:
        """Whether straggling attempts get speculative backups."""
        return self.speculation_factor is not None

    def backoff_delay(
        self,
        failed_attempt: int,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Delay before re-queueing after ``failed_attempt`` (1-based).

        ``rng`` supplies the jitter draw; pass a generator keyed by
        (seed, task, attempt) — e.g. :meth:`FaultPlan.rng_for` — to keep
        the delay reproducible.
        """
        if failed_attempt < 1:
            raise ValueError("failed_attempt is 1-based")
        delay = min(
            self.backoff_base * self.backoff_factor ** (failed_attempt - 1),
            self.backoff_max,
        )
        if self.backoff_jitter > 0.0 and rng is not None and delay > 0.0:
            delay *= 1.0 + self.backoff_jitter * (2.0 * float(rng.random()) - 1.0)
        return delay
