"""A composite data-science pipeline: preprocessing + clustering, one DAG.

The paper motivates its analysis with data-science pipelines "composed of
multiple processing stages" (§1).  This example builds such a pipeline as
a single task workflow — global feature means (map + reduce), feature
centering (elementwise), then K-means clustering — and runs it twice:

1. at paper scale on the simulated cluster, CPU vs GPU, reporting the
   per-stage metrics and the DAG shape of the whole pipeline;
2. at laptop scale on the in-process backend, checking the centroids
   against a plain-NumPy reference of the same pipeline.

Run:  python examples/ds_pipeline.py
"""

import numpy as np

from repro import DatasetSpec, DistributedArray, Runtime, RuntimeConfig, kmeans_reference
from repro.algorithms.kmeans import append_kmeans_iterations
from repro.arrays.ops import center, column_means
from repro.core.report import Table, format_seconds
from repro.data import Blocking, GridSpec
from repro.data.generator import generate_matrix
from repro.runtime.runtime import Backend
from repro.tracing import user_code_metrics

N_CLUSTERS = 10
ITERATIONS = 3
_ELEM = 8


def build_pipeline(runtime, blocking, materialize=False):
    """Centering + K-means as one DAG; returns the final centroids ref."""
    data = DistributedArray.create(runtime, blocking, name="X",
                                   materialize=materialize)
    means = column_means(runtime, data)
    centered = center(runtime, data, means)
    centered_blocks = [row[0] for row in centered]
    initial = runtime.register_input(
        size_bytes=_ELEM * N_CLUSTERS * blocking.block.n,
        name="centroids0",
        value=(
            np.random.default_rng(7).random((N_CLUSTERS, blocking.block.n))
            if materialize
            else None
        ),
    )
    return append_kmeans_iterations(
        runtime,
        centered_blocks,
        block_rows=blocking.block.m,
        n_features=blocking.block.n,
        n_clusters=N_CLUSTERS,
        iterations=ITERATIONS,
        centroids=initial,
    )


def simulated_study():
    blocking = Blocking.from_grid(
        DatasetSpec("pipeline_10gb", rows=12_500_000, cols=100),
        GridSpec(k=128, l=1),
    )
    table = Table(
        title="Pipeline on the simulated cluster (10 GB, 128 blocks)",
        headers=("processor", "makespan", "colsum avg", "center avg",
                 "partial_sum avg"),
    )
    for use_gpu in (False, True):
        runtime = Runtime(RuntimeConfig(use_gpu=use_gpu))
        build_pipeline(runtime, blocking)
        if not use_gpu:
            print(f"pipeline DAG: {runtime.graph.describe()}")
        result = runtime.run()
        metrics = user_code_metrics(result.trace)
        table.add_row(
            "GPU" if use_gpu else "CPU",
            format_seconds(result.makespan),
            format_seconds(metrics["block_colsum"].user_code),
            format_seconds(metrics["block_center"].user_code),
            format_seconds(metrics["partial_sum"].user_code),
        )
    print()
    print(table.render())
    print(
        "\nThe clustering stage dominates and is the only stage with a "
        "meaningful serial\nfraction; the memory-bound preprocessing "
        "stages gain little from the GPU — each\npipeline stage sits at a "
        "different point of the paper's factor space."
    )


def correctness_check():
    blocking = Blocking.from_grid(
        DatasetSpec("pipeline_small", rows=3_000, cols=6), GridSpec(k=5, l=1)
    )
    runtime = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
    centroids_ref = build_pipeline(runtime, blocking, materialize=True)
    result = runtime.run()
    got = result.value_of(centroids_ref)

    data = generate_matrix(blocking.dataset)
    centered = data - data.mean(axis=0)[None, :]
    initial = np.random.default_rng(7).random((N_CLUSTERS, blocking.block.n))
    expected = kmeans_reference(centered, initial, ITERATIONS)
    ok = np.allclose(got, expected)
    print(f"\nin-process correctness vs NumPy reference: "
          f"{'ok' if ok else 'MISMATCH'}")
    if not ok:
        raise SystemExit(1)


def main():
    simulated_study()
    correctness_check()


if __name__ == "__main__":
    main()
