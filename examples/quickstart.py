"""Quickstart: run one distributed workflow on the simulated cluster.

Builds the paper's motivating workload — distributed K-means over a 10 GB
dataset split into 256 tasks — on the Minotauro-like cluster (8 nodes x
16 cores + 4 GPUs), executes it once on CPUs and once with GPU
acceleration, and prints the stage-level metrics of §4.2.

Run:  python examples/quickstart.py
"""

from repro import KMeansWorkflow, Runtime, RuntimeConfig, paper_datasets
from repro.core.report import Table, format_seconds, format_speedup
from repro.tracing import parallel_task_metrics, user_code_metrics


def run(use_gpu: bool):
    workflow = KMeansWorkflow(
        paper_datasets()["kmeans_10gb"], grid_rows=256, n_clusters=10, iterations=3
    )
    runtime = Runtime(RuntimeConfig(use_gpu=use_gpu))
    workflow.build(runtime)
    print(
        f"DAG ({'GPU' if use_gpu else 'CPU'} run): {runtime.graph.describe()}"
    )
    result = runtime.run()
    user_code = user_code_metrics(result.trace)["partial_sum"]
    parallel = parallel_task_metrics(result.trace, {"partial_sum"})
    return user_code, parallel.average_parallel_time, result.makespan


def main():
    cpu_uc, cpu_pt, cpu_makespan = run(use_gpu=False)
    gpu_uc, gpu_pt, gpu_makespan = run(use_gpu=True)

    table = Table(
        title="Distributed K-means, 10 GB, 256 tasks (per-task averages)",
        headers=("metric", "CPU", "GPU", "GPU speedup"),
    )
    rows = (
        ("parallel fraction", cpu_uc.parallel_fraction, gpu_uc.parallel_fraction),
        ("serial fraction", cpu_uc.serial_fraction, gpu_uc.serial_fraction),
        ("CPU-GPU communication", cpu_uc.cpu_gpu_comm, gpu_uc.cpu_gpu_comm),
        ("task user code", cpu_uc.user_code, gpu_uc.user_code),
        ("parallel tasks (per iteration)", cpu_pt, gpu_pt),
        ("workflow makespan", cpu_makespan, gpu_makespan),
    )
    for name, cpu_value, gpu_value in rows:
        speedup = cpu_value / gpu_value if gpu_value else None
        table.add_row(
            name,
            format_seconds(cpu_value),
            format_seconds(gpu_value),
            format_speedup(speedup),
        )
    print()
    print(table.render())
    print(
        "\nNote the paper's Figure 1 pattern: the GPU wins clearly on the "
        "parallel fraction,\nbarely on the full user code, and loses once "
        "tasks are distributed (32 GPUs vs 128 cores)."
    )


if __name__ == "__main__":
    main()
