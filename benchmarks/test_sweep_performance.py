"""Meta-benchmark — the sweep engine's cold/warm throughput.

Runs the same fixed cell matrix as ``python -m repro bench --suite
sweeps`` (:func:`repro.bench.sweep_bench_cells`) and enforces the
perf-optimisation acceptance criteria:

* the warm pass answers every cell from the content-addressed cache
  (zero simulated executions),
* the warm pass is at least 3x faster than the cold pass (in practice
  it is orders of magnitude faster — cache hits are JSON reads),
* cold throughput clears a conservative cells-per-second floor, and
* cold and warm results are byte-identical.
"""

import os

import pytest

from repro.bench import SWEEP_SCHEMA, run_sweep_bench, sweep_bench_cells

#: Minimum accepted cold-pass throughput.  The 20-cell matrix simulates
#: in well under a second on a laptop-class core (~25 cells/s observed);
#: the floor leaves a wide margin for noisy CI machines.
COLD_CELLS_PER_SECOND_FLOOR = 3.0

#: ISSUE acceptance criterion: warm wall-clock at least 3x better.
WARM_SPEEDUP_FLOOR = 3.0


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("sweep-bench-cache")
    out = tmp_path_factory.mktemp("sweep-bench-out") / "BENCH_sweeps.json"
    result = run_sweep_bench(jobs=1, out_path=out, cache_dir=cache_dir)
    assert out.is_file()
    return result


def test_matrix_shape_is_pinned():
    # A silent matrix change would re-base the floors.
    assert len(sweep_bench_cells()) == 20


def test_schema(report):
    assert report["schema"] == SWEEP_SCHEMA
    assert report["num_cells"] == 20


def test_warm_pass_is_all_hits(report):
    assert report["warm"]["misses"] == 0
    assert report["warm"]["hits"] == report["num_cells"]


def test_results_byte_identical(report):
    assert report["byte_identical"] is True


def test_warm_speedup_floor(report):
    assert report["warm_speedup"] >= WARM_SPEEDUP_FLOOR


def test_cold_throughput_floor(report):
    assert report["cold"]["cells_per_second"] >= COLD_CELLS_PER_SECOND_FLOOR


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2, reason="needs multiple cores to exercise fan-out"
)
def test_parallel_cold_pass_matches(tmp_path):
    parallel = run_sweep_bench(jobs=2, cache_dir=tmp_path / "par")
    assert parallel["byte_identical"] is True
    assert parallel["warm"]["misses"] == 0
