"""Unit tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.data import DatasetSpec, generate_matrix, skewed_matrix, uniform_matrix


class TestUniform:
    def test_shape_and_range(self):
        data = uniform_matrix(50, 20, seed=1)
        assert data.shape == (50, 20)
        assert data.min() >= 0.0
        assert data.max() < 1.0

    def test_fixed_seed_reproducible(self):
        a = uniform_matrix(10, 10, seed=42)
        b = uniform_matrix(10, 10, seed=42)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = uniform_matrix(10, 10, seed=1)
        b = uniform_matrix(10, 10, seed=2)
        assert not np.array_equal(a, b)


class TestSkewed:
    def test_shape_preserved(self):
        data = skewed_matrix(40, 25, skew=0.5, seed=3)
        assert data.shape == (40, 25)

    def test_skew_concentrates_values_in_bands(self):
        data = skewed_matrix(200, 200, skew=0.5, bands=4, band_width=0.02, seed=3)
        centres = (np.arange(4) + 0.5) / 4
        in_band = np.zeros(data.size, dtype=bool)
        flat = data.reshape(-1)
        for centre in centres:
            in_band |= np.abs(flat - centre) <= 0.011
        # At least the skewed half sits in the narrow bands (uniform data
        # would put only ~4 x 2.2% there).
        assert in_band.mean() > 0.45

    def test_zero_skew_is_uniform(self):
        a = skewed_matrix(10, 10, skew=0.0, seed=5)
        b = uniform_matrix(10, 10, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_reproducible(self):
        a = skewed_matrix(30, 30, skew=0.5, seed=9)
        b = skewed_matrix(30, 30, skew=0.5, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            skewed_matrix(5, 5, skew=1.0)
        with pytest.raises(ValueError):
            skewed_matrix(5, 5, bands=0)
        with pytest.raises(ValueError):
            skewed_matrix(5, 5, bands=4, band_width=0.5)


class TestGenerateMatrix:
    def test_uniform_spec(self):
        spec = DatasetSpec("d", rows=100, cols=10)
        data = generate_matrix(spec)
        assert data.shape == (100, 10)

    def test_skewed_spec_routes_to_skewed_generator(self):
        spec = DatasetSpec("d", rows=100, cols=10, skew=0.5)
        expected = skewed_matrix(100, 10, skew=0.5, seed=spec.seed)
        np.testing.assert_array_equal(generate_matrix(spec), expected)

    def test_refuses_paper_scale_datasets(self):
        spec = DatasetSpec("big", rows=1_000_000, cols=1000)
        with pytest.raises(MemoryError, match="simulated backend"):
            generate_matrix(spec)

    def test_cap_is_adjustable(self):
        spec = DatasetSpec("d", rows=1000, cols=100)
        with pytest.raises(MemoryError):
            generate_matrix(spec, max_bytes=1000)
