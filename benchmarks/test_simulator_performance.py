"""Meta-benchmark — the simulator's own throughput.

Unlike the figure benches (which measure *simulated* time), this suite
measures the wall-clock cost of running the discrete-event simulation,
as a regression guard over the fast dispatch path.  It runs the same
fixed three-workload matrix as ``python -m repro bench``
(:func:`repro.bench.bench_workloads`) and enforces a throughput floor
per workload:

* ``matmul16`` — the heaviest single configuration in the figure suite
  (7936 tasks with full storage contention).  The floor sits at 3x the
  pre-optimisation guard: incremental ready sets + memoized cost-model
  evaluation must keep paying for themselves.
* ``kmeans_deep`` — many short levels; guards the completion-event and
  ready-set churn path.
* ``wide_dag`` — wide levels under the data-locality policy; guards the
  indexed O(nodes) placement scoring.

Floors are conservative (CI machines are noisy); an order-of-magnitude
regression — e.g. locality dispatch sliding back to
O(ready x nodes x inputs) — still trips them reliably.
"""

import pytest

from repro.bench import bench_workloads

#: Minimum accepted throughput (tasks per wall-clock second) per workload.
#: ``matmul16`` ran at ~500 tasks/s before the fast dispatch path landed;
#: the indexed/memoized simulator clears 3x that with margin to spare.
#: ``plain_replay`` guards the batched event core: its floor sits at 6x
#: the legacy 1500 tasks/s guard (measured rates clear 15,000 — see
#: ``docs/performance.md`` — but CI machines are noisy and a floor trip
#: should mean a real regression, e.g. the batched drain disengaging).
RATE_FLOORS = {
    "matmul16": 1500,
    "kmeans_deep": 1500,
    "wide_dag": 1500,
    "plain_replay": 9000,
}

#: Expected task counts — a silent workload change would quietly re-base
#: the floors, so pin the matrix shape too.
TASK_COUNTS = {
    "matmul16": 7936,
    "kmeans_deep": 520,
    "wide_dag": 1537,
    "plain_replay": 10240,
}

WORKLOADS = {workload.name: workload for workload in bench_workloads()}


def test_matrix_matches_floors():
    assert sorted(WORKLOADS) == sorted(RATE_FLOORS) == sorted(TASK_COUNTS)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_simulator_throughput(benchmark, name):
    workload = WORKLOADS[name]

    def run():
        return workload.run_once()

    tasks, elapsed, _makespan = benchmark.pedantic(run, rounds=1, iterations=1)
    rate = tasks / elapsed
    print(f"\n{name}: simulated {tasks} tasks in {elapsed:.2f}s wall "
          f"({rate:,.0f} tasks/s)")
    assert tasks == TASK_COUNTS[name]
    assert rate > RATE_FLOORS[name]


def test_scale_suite_100k_floor(benchmark):
    """The 10^5-task replay cell of ``repro bench --suite scale``.

    The 10^6-task cell runs only in the CI bench step (it is too slow
    for a unit test); this one keeps the same code path honest per push.
    """
    from repro.bench import SCALE_CELLS, run_scale_bench

    cell = next(c for c in SCALE_CELLS if c[0] == "scale_100k")

    report = benchmark.pedantic(
        lambda: run_scale_bench(cells=[cell]), rounds=1, iterations=1
    )
    (row,) = report["workloads"]
    print(f"\nscale_100k: {row['num_tasks']} tasks in "
          f"{row['wall_seconds']:.2f}s wall "
          f"({row['tasks_per_second']:,.0f} tasks/s)")
    assert row["num_tasks"] == cell[1] * cell[2]
    assert row["meets_floor"], (
        f"{row['tasks_per_second']} tasks/s below floor "
        f"{row['floor_tasks_per_second']}"
    )
