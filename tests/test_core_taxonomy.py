"""Tests for the Figure 2 taxonomy encoding."""

import pytest

from repro.core.taxonomy import figure2_taxonomy, scope_matches_table1


@pytest.fixture(scope="module")
def tree():
    return figure2_taxonomy()


class TestStructure:
    def test_five_top_level_axes(self, tree):
        assert [child.name for child in tree.children] == [
            "GPU Usage",
            "GPU Integration",
            "Application",
            "Level of Analysis",
            "Infrastructure",
        ]

    def test_find(self, tree):
        node = tree.find("Task-based Workflows")
        assert node.in_scope
        assert 78 in node.citations

    def test_find_unknown_raises(self, tree):
        with pytest.raises(KeyError):
            tree.find("Quantum Processing")

    def test_walk_counts_every_category(self, tree):
        assert len(list(tree.walk())) == 26


class TestScope:
    def test_paper_scope_categories(self, tree):
        scope = set(tree.scope())
        # The red categories of Figure 2.
        assert "Heterogeneous CPU-GPU" in scope
        assert "Dedicated" in scope
        assert "Task-based Workflows" in scope
        assert "Task" in scope and "DAG" in scope
        assert "Storage I/O" in scope and "Network I/O" in scope
        # Out of scope: integrated GPUs, dataflows, instruction level.
        assert "Integrated" not in scope
        assert "Dataflows" not in scope
        assert "Instruction" not in scope

    def test_scope_consistent_with_table1(self):
        # Figure 2's limitation areas == Table 1's system functions.
        assert scope_matches_table1()


class TestRender:
    def test_render_marks_scope(self, tree):
        text = tree.render()
        assert "Heterogeneous CPU-GPU *" in text
        assert "Integrated [33, 35, 75]" in text

    def test_render_indents_children(self, tree):
        lines = tree.render().splitlines()
        assert lines[0].startswith("CPU-GPU Processing")
        assert lines[1].startswith("  GPU Usage")
