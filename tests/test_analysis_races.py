"""Block-access race rules (WF4xx): fire on the hazard, stay quiet on
every safe configuration — including a seeded double-writer mutation
that the static detector must catch."""

import pytest

from repro.analysis import AnalysisOptions, Severity, analyze
from repro.faults import (
    CheckpointPolicy,
    FaultPlan,
    NodeFault,
    RetryPolicy,
    TaskCrash,
)
from repro.hardware import minotauro
from repro.perfmodel import TaskCost
from repro.runtime import DataRef, Runtime, RuntimeConfig, Task, TaskGraph
from repro.tracing import Stage


def _cost(**overrides) -> TaskCost:
    base = dict(
        serial_flops=1e6,
        parallel_flops=1e9,
        parallel_items=1e6,
        arithmetic_intensity=10.0,
        input_bytes=1_000_000,
        output_bytes=1_000_000,
        host_device_bytes=2_000_000,
        gpu_memory_bytes=4_000_000,
        host_memory_bytes=4_000_000,
    )
    base.update(overrides)
    return TaskCost(**base)


def _task(task_id, inputs=(), name="t", cost=None):
    outputs = (DataRef(size_bytes=8, name=f"{name}{task_id}.o0"),)
    return Task(
        task_id=task_id, name=name, inputs=tuple(inputs), outputs=outputs,
        cost=cost,
    )


def _graph(*tasks) -> TaskGraph:
    graph = TaskGraph()
    for task in tasks:
        graph.add_task(task)
    return graph


def _inject(graph, task, predecessors=()):
    """Add a task the public API would refuse (duplicate producer)."""
    graph._tasks[task.task_id] = task
    graph._successors[task.task_id] = []
    graph._predecessors[task.task_id] = list(predecessors)
    for pred in predecessors:
        graph._successors[pred].append(task.task_id)
    return graph


class TestWriteWriteRace:
    def test_wf401_unordered_double_writer(self):
        first = _task(0, cost=_cost())
        graph = _graph(first)
        imposter = Task(
            task_id=1, name="imposter", inputs=(), outputs=first.outputs
        )
        _inject(graph, imposter)
        report = analyze(graph)
        [finding] = [d for d in report.errors if d.code == "WF401"]
        assert finding.severity is Severity.ERROR
        assert finding.task_ids == (0, 1)
        assert f"block #{first.outputs[0].ref_id}" in finding.message

    def test_wf401_quiet_when_writers_are_ordered(self):
        producer = _task(0, cost=_cost())
        graph = _graph(producer)
        rewriter = Task(
            task_id=1,
            name="rewriter",
            inputs=producer.outputs,
            outputs=producer.outputs,
        )
        _inject(graph, rewriter, predecessors=(0,))
        report = analyze(graph)
        # Still a duplicate producer (WF002), but not a *race*.
        assert "WF002" in report.codes()
        assert "WF401" not in report.codes()

    def test_wf401_seeded_mutation_is_caught(self):
        # Build a legitimate workflow through the public API, then mutate
        # the graph the way a buggy scheduler patch would: two reduction
        # tasks accidentally bound to the same output block.
        runtime = Runtime(RuntimeConfig())
        a = runtime.register_input(1024, name="a")
        left = runtime.submit("partial", inputs=(a,), cost=_cost())
        runtime.submit("partial", inputs=(a,), cost=_cost())
        runtime.graph.task(1).outputs = runtime.graph.task(0).outputs
        report = analyze(runtime.graph)
        codes = report.codes()
        assert "WF401" in codes
        assert report.has_errors
        del left


class TestReadAfterFree:
    def _plan(self, attempts=(1, 2, 3)):
        return FaultPlan(
            node_faults=(NodeFault(node=0, at_time=0.1),),
            task_crashes=(
                TaskCrash(
                    task_id=0, stage=Stage.SERIAL_FRACTION, attempts=attempts
                ),
            ),
        )

    def _graph(self):
        producer = _task(0, name="doomed", cost=_cost())
        consumer = _task(1, inputs=producer.outputs, cost=_cost())
        return _graph(producer, consumer)

    def test_wf402_fires_on_exhausted_producer(self):
        report = analyze(
            self._graph(),
            minotauro(),
            fault_plan=self._plan(),
            retry_policy=RetryPolicy(max_attempts=3, recover_lost_blocks=True),
        )
        [finding] = [d for d in report.warnings if d.code == "WF402"]
        assert finding.task_ids == (0,)
        assert finding.task_type == "doomed"

    def test_wf402_quiet_without_recovery(self):
        report = analyze(
            self._graph(),
            minotauro(),
            fault_plan=self._plan(),
            retry_policy=RetryPolicy(max_attempts=3),
        )
        assert "WF402" not in report.codes()

    def test_wf402_quiet_when_budget_survives(self):
        # Crashing only attempt 1 of 3 leaves two attempts to commit.
        report = analyze(
            self._graph(),
            minotauro(),
            fault_plan=self._plan(attempts=(1,)),
            retry_policy=RetryPolicy(max_attempts=3, recover_lost_blocks=True),
        )
        assert "WF402" not in report.codes()

    def test_wf402_quiet_when_producer_checkpointed(self):
        report = analyze(
            self._graph(),
            minotauro(),
            fault_plan=self._plan(),
            retry_policy=RetryPolicy(max_attempts=3, recover_lost_blocks=True),
            checkpoint_policy=CheckpointPolicy(every_levels=1),
        )
        assert "WF402" not in report.codes()

    def test_wf402_quiet_without_node_faults(self):
        plan = FaultPlan(
            task_crashes=(
                TaskCrash(
                    task_id=0, stage=Stage.SERIAL_FRACTION, attempts=(1, 2, 3)
                ),
            ),
        )
        report = analyze(
            self._graph(),
            minotauro(),
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=3, recover_lost_blocks=True),
        )
        assert "WF402" not in report.codes()


class TestCheckpointSpeculation:
    def _graph(self):
        producer = _task(0, name="barrier", cost=_cost())
        consumer = _task(1, inputs=producer.outputs, cost=_cost())
        return _graph(producer, consumer)

    def test_wf403_fires_on_checkpoint_plus_speculation(self):
        report = analyze(
            self._graph(),
            minotauro(),
            retry_policy=RetryPolicy(max_attempts=3, speculation_factor=2.0),
            checkpoint_policy=CheckpointPolicy(every_levels=1),
        )
        findings = [d for d in report.warnings if d.code == "WF403"]
        assert findings
        assert {f.task_type for f in findings} == {"barrier", "t"}

    def test_wf403_quiet_without_speculation(self):
        report = analyze(
            self._graph(),
            minotauro(),
            retry_policy=RetryPolicy(max_attempts=3),
            checkpoint_policy=CheckpointPolicy(every_levels=1),
        )
        assert "WF403" not in report.codes()

    def test_wf403_quiet_when_policies_are_disjoint(self):
        # Checkpointing only types that exist but never speculate-race
        # here: restrict the checkpoint to a type not in the graph is
        # WF404's domain; restricting to a real type still fires for it.
        report = analyze(
            self._graph(),
            minotauro(),
            retry_policy=RetryPolicy(max_attempts=3, speculation_factor=2.0),
            checkpoint_policy=CheckpointPolicy(
                every_levels=1, task_types=frozenset({"barrier"})
            ),
        )
        [finding] = [d for d in report.warnings if d.code == "WF403"]
        assert finding.task_type == "barrier"


class TestCheckpointTypesExist:
    def test_wf404_all_types_missing(self):
        producer = _task(0, cost=_cost())
        report = analyze(
            _graph(producer),
            minotauro(),
            checkpoint_policy=CheckpointPolicy(
                every_levels=1, task_types=frozenset({"ghost"})
            ),
        )
        [finding] = [d for d in report.warnings if d.code == "WF404"]
        assert "'ghost'" in finding.message
        assert "no block is ever checkpointed" in finding.message

    def test_wf404_some_types_missing(self):
        producer = _task(0, cost=_cost())
        report = analyze(
            _graph(producer),
            minotauro(),
            checkpoint_policy=CheckpointPolicy(
                every_levels=1, task_types=frozenset({"t", "ghost"})
            ),
        )
        [finding] = [d for d in report.warnings if d.code == "WF404"]
        assert "'ghost'" in finding.message
        assert "no block is ever checkpointed" not in finding.message

    def test_wf404_quiet_when_types_match(self):
        producer = _task(0, cost=_cost())
        report = analyze(
            _graph(producer),
            minotauro(),
            checkpoint_policy=CheckpointPolicy(
                every_levels=1, task_types=frozenset({"t"})
            ),
        )
        assert "WF404" not in report.codes()

    def test_wf404_quiet_without_type_restriction(self):
        producer = _task(0, cost=_cost())
        report = analyze(
            _graph(producer),
            minotauro(),
            checkpoint_policy=CheckpointPolicy(every_levels=1),
        )
        assert "WF404" not in report.codes()


class TestSuppression:
    def test_races_obey_global_ignore(self):
        first = _task(0, cost=_cost())
        graph = _graph(first)
        imposter = Task(
            task_id=1, name="imposter", inputs=(), outputs=first.outputs
        )
        _inject(graph, imposter)
        quiet = analyze(
            graph, options=AnalysisOptions(ignore={"WF401", "WF002"})
        )
        assert "WF401" not in quiet.codes()
        assert "WF002" not in quiet.codes()
