"""Trace sanitizer: replay an executor trace through invariant checks.

The ASan-style dynamic leg of the correctness tooling: where the static
``WF4xx`` rules predict hazards from the configuration, the sanitizer
verifies that one *actual* execution respected the model's physical
laws.  ``Runtime.run(sanitize=True)`` (CLI ``--sanitize``) replays the
produced trace through five checks:

* **event-time monotonicity** — no record runs backwards, and the stage
  records of one attempt complete in non-decreasing order;
* **happens-before** — a consumer never starts before some committed
  record of each producer has ended (the DAG edge order is preserved in
  time, resurrections included);
* **attempt state-machine legality** — attempt numbers are contiguous
  from 1, a task commits at most once per resurrection, non-speculative
  attempts do not overlap, and every task either committed or is in
  ``failed_task_ids``;
* **resource conservation** — per node, concurrently held CPU cores,
  GPU devices, and reserved host RAM never exceed the node's capacity,
  and one (node, core) slot never runs two records at once;
* **residency / placement consistency** — records sit on nodes and
  cores the cluster has, GPU usage matches the configuration, and no
  committed record straddles the instant its node was killed.

Off by default (it costs a full pass over the trace); CI arms it on the
18-cell golden suite, where it must report zero violations without
perturbing a single trace byte — the sanitizer only *reads* the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.tracing import (
    ATTEMPT_SPECULATION_CANCELLED,
    Stage,
    Trace,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.runtime.runtime import WorkflowResult

#: Slack for floating-point timestamp comparisons.
EPS = 1e-9

#: Master-side zero-duration markers occupy no core (node/core -1).
_OFF_CORE = {Stage.FAILURE, Stage.RETRY_WAIT, Stage.RECOMPUTE, Stage.SPECULATIVE}

#: The check names, in report order.
CHECKS = (
    "monotonicity",
    "happens_before",
    "attempt_machine",
    "conservation",
    "placement",
)


@dataclass(frozen=True)
class Violation:
    """One broken invariant found while replaying a trace."""

    check: str
    message: str
    task_ids: tuple[int, ...] = ()

    def render(self) -> str:
        """One-line human-readable form."""
        scope = ""
        if self.task_ids:
            scope = " [task(s) " + ", ".join(f"#{t}" for t in self.task_ids) + "]"
        return f"{self.check}: {self.message}{scope}"


@dataclass
class SanitizerReport:
    """Outcome of one sanitizer replay over a trace."""

    violations: list[Violation] = field(default_factory=list)
    checks_run: tuple[str, ...] = CHECKS
    #: Stage + task + attempt records inspected.
    events_checked: int = 0

    @property
    def ok(self) -> bool:
        """Whether the trace satisfied every invariant."""
        return not self.violations

    def render(self) -> str:
        """The whole report as text (``repro run --sanitize`` output)."""
        header = (
            f"trace sanitizer: {len(self.checks_run)} checks over "
            f"{self.events_checked} records"
        )
        if self.ok:
            return header + " — clean"
        lines = [header + f" — {len(self.violations)} violation(s)"]
        lines += [v.render() for v in self.violations]
        return "\n".join(lines)


class TraceSanitizerError(RuntimeError):
    """Raised by ``Runtime.run(sanitize=True)`` on a corrupt trace;
    carries the full :class:`SanitizerReport`."""

    def __init__(self, report: SanitizerReport) -> None:
        self.report = report
        checks = sorted({v.check for v in report.violations})
        super().__init__(
            f"trace sanitizer found {len(report.violations)} violation(s) "
            f"[{', '.join(checks)}]; see .report for details"
        )


def _occupancy(trace: Trace):
    """The records describing core occupancy (attempts when present)."""
    return trace.occupancy()


# ------------------------------------------------------------ the checks
def _check_monotonicity(trace: Trace, out: list[Violation]) -> None:
    for record in trace.stages + trace.tasks + trace.attempts:
        if record.end < record.start - EPS:
            out.append(
                Violation(
                    check="monotonicity",
                    message=f"record ends at {record.end} before its start "
                    f"{record.start}",
                    task_ids=(record.task_id,),
                )
            )
    # Stage records of one attempt are emitted at completion, so their
    # end times must be non-decreasing in emission order.
    last_end: dict[tuple[int, int], float] = {}
    for record in trace.stages:
        if record.stage in _OFF_CORE:
            continue
        key = (record.task_id, record.attempt)
        previous = last_end.get(key)
        if previous is not None and record.end < previous - EPS:
            out.append(
                Violation(
                    check="monotonicity",
                    message=(
                        f"stage {record.stage.value} of attempt "
                        f"{record.attempt} completes at {record.end}, before "
                        f"the previously emitted stage ({previous})"
                    ),
                    task_ids=(record.task_id,),
                )
            )
        last_end[key] = record.end


def _check_happens_before(result: "WorkflowResult", out: list[Violation]) -> None:
    trace = result.trace
    ends: dict[int, list[float]] = {}
    for record in trace.tasks:
        ends.setdefault(record.task_id, []).append(record.end)
    for record in trace.tasks:
        for predecessor in result.graph.predecessors(record.task_id):
            produced = ends.get(predecessor.task_id)
            if produced is None:
                out.append(
                    Violation(
                        check="happens_before",
                        message=(
                            f"task #{record.task_id} committed but its "
                            f"producer #{predecessor.task_id} never did"
                        ),
                        task_ids=(predecessor.task_id, record.task_id),
                    )
                )
                continue
            if min(produced) > record.start + EPS:
                out.append(
                    Violation(
                        check="happens_before",
                        message=(
                            f"task #{record.task_id} started at "
                            f"{record.start} before any commit of its "
                            f"producer #{predecessor.task_id} "
                            f"(earliest {min(produced)})"
                        ),
                        task_ids=(predecessor.task_id, record.task_id),
                    )
                )


def _check_attempt_machine(result: "WorkflowResult", out: list[Violation]) -> None:
    trace = result.trace
    recomputes: dict[int, int] = {}
    for record in trace.stages:
        if record.stage is Stage.RECOMPUTE:
            recomputes[record.task_id] = recomputes.get(record.task_id, 0) + 1
    for task_id in sorted({a.task_id for a in trace.attempts}):
        attempts = trace.attempts_of(task_id)
        numbers = [a.attempt for a in attempts]
        if numbers != list(range(1, len(numbers) + 1)):
            out.append(
                Violation(
                    check="attempt_machine",
                    message=f"attempt numbers {numbers} are not contiguous "
                    "from 1",
                    task_ids=(task_id,),
                )
            )
        commits = sum(1 for a in attempts if a.ok)
        if commits > 1 + recomputes.get(task_id, 0):
            out.append(
                Violation(
                    check="attempt_machine",
                    message=(
                        f"{commits} successful attempts but only "
                        f"{recomputes.get(task_id, 0)} resurrection marker(s)"
                    ),
                    task_ids=(task_id,),
                )
            )
        for earlier, later in zip(attempts, attempts[1:]):
            if ATTEMPT_SPECULATION_CANCELLED in (earlier.outcome, later.outcome):
                continue  # a speculation race overlaps by design
            if earlier.end > later.start + EPS:
                out.append(
                    Violation(
                        check="attempt_machine",
                        message=(
                            f"attempt {later.attempt} started at "
                            f"{later.start} before attempt {earlier.attempt} "
                            f"ended at {earlier.end}"
                        ),
                        task_ids=(task_id,),
                    )
                )
    committed = {t.task_id for t in trace.tasks}
    failed = set(result.failed_task_ids)
    for task in result.graph.tasks():
        if task.task_id not in committed and task.task_id not in failed:
            out.append(
                Violation(
                    check="attempt_machine",
                    message="task neither committed nor failed permanently",
                    task_ids=(task.task_id,),
                )
            )
    for task_id in sorted(committed & failed):
        if task_id not in recomputes:
            out.append(
                Violation(
                    check="attempt_machine",
                    message="task both committed and failed without a "
                    "resurrection marker",
                    task_ids=(task_id,),
                )
            )


def _sweep_peak(intervals: list[tuple[float, float, int]]) -> int:
    """Peak concurrent weight over (start, end, weight) intervals."""
    events: list[tuple[float, int]] = []
    for start, end, weight in intervals:
        if end - start <= EPS:
            continue  # zero-duration holds (e.g. cancelled-at-birth attempts)
        events.append((start + EPS / 2, weight))
        events.append((end - EPS / 2, -weight))
    events.sort()
    active = peak = 0
    for _time, delta in events:
        active += delta
        peak = max(peak, active)
    return peak


def _check_conservation(result: "WorkflowResult", out: list[Violation]) -> None:
    config = result.config
    spec = config.cluster
    occupancy = _occupancy(result.trace)
    cpu_weight = config.cpu_threads_per_task
    by_node: dict[int, dict[str, list[tuple[float, float, int]]]] = {}
    by_slot: dict[tuple[int, int], list[tuple[float, float, str]]] = {}
    for record in occupancy:
        if record.node < 0:
            continue
        task = result.graph.task(record.task_id)
        ram = task.cost.host_memory_bytes if task.cost is not None else 0
        node = by_node.setdefault(
            record.node, {"cores": [], "gpus": [], "ram": []}
        )
        weight = 1 if record.used_gpu else cpu_weight
        node["cores"].append((record.start, record.end, weight))
        if record.used_gpu:
            node["gpus"].append((record.start, record.end, 1))
        if ram > 0:
            node["ram"].append((record.start, record.end, ram))
        by_slot.setdefault((record.node, record.core), []).append(
            (record.start, record.end, f"task #{record.task_id} "
             f"(attempt {record.attempt})")
        )
    for node_index in sorted(by_node):
        usage = by_node[node_index]
        peak_cores = _sweep_peak(usage["cores"])
        if peak_cores > spec.node.cpu.cores_per_node:
            out.append(
                Violation(
                    check="conservation",
                    message=(
                        f"node {node_index} holds {peak_cores} cores "
                        f"concurrently but has "
                        f"{spec.node.cpu.cores_per_node}"
                    ),
                )
            )
        peak_gpus = _sweep_peak(usage["gpus"])
        if peak_gpus > spec.node.gpu.devices_per_node:
            out.append(
                Violation(
                    check="conservation",
                    message=(
                        f"node {node_index} holds {peak_gpus} GPU devices "
                        f"concurrently but has "
                        f"{spec.node.gpu.devices_per_node}"
                    ),
                )
            )
        peak_ram = _sweep_peak(usage["ram"])
        if peak_ram > spec.node.ram_bytes:
            out.append(
                Violation(
                    check="conservation",
                    message=(
                        f"node {node_index} reserves {peak_ram} bytes of "
                        f"host RAM concurrently but has {spec.node.ram_bytes}"
                    ),
                )
            )
    for (node_index, core), intervals in sorted(by_slot.items()):
        ordered = sorted(intervals)
        for (s1, e1, what1), (s2, e2, what2) in zip(ordered, ordered[1:]):
            if e1 > s2 + EPS:
                out.append(
                    Violation(
                        check="conservation",
                        message=(
                            f"core ({node_index}, {core}) runs {what1} "
                            f"[{s1}, {e1}] and {what2} [{s2}, {e2}] at once"
                        ),
                    )
                )


def _check_placement(result: "WorkflowResult", out: list[Violation]) -> None:
    config = result.config
    spec = config.cluster
    trace = result.trace
    num_nodes = spec.num_nodes
    cores = spec.node.cpu.cores_per_node
    gpu_allowed = config.use_gpu and spec.has_gpus
    records = list(trace.tasks) + list(trace.attempts) + [
        r for r in trace.stages if r.stage not in _OFF_CORE
    ]
    for record in records:
        if not (0 <= record.node < num_nodes) or not (0 <= record.core < cores):
            out.append(
                Violation(
                    check="placement",
                    message=(
                        f"record placed on (node {record.node}, core "
                        f"{record.core}) outside the cluster "
                        f"({num_nodes} nodes x {cores} cores)"
                    ),
                    task_ids=(record.task_id,),
                )
            )
        if record.used_gpu:
            if not gpu_allowed:
                out.append(
                    Violation(
                        check="placement",
                        message="record used a GPU but the configuration "
                        "forbids GPU execution",
                        task_ids=(record.task_id,),
                    )
                )
            elif (
                config.gpu_task_types is not None
                and record.task_type not in config.gpu_task_types
            ):
                out.append(
                    Violation(
                        check="placement",
                        message=(
                            f"task type {record.task_type!r} used a GPU but "
                            "is not in gpu_task_types"
                        ),
                        task_ids=(record.task_id,),
                    )
                )
    plan = config.fault_plan
    if plan is None:
        return
    committed = list(trace.tasks) + [a for a in trace.attempts if a.ok]
    for fault in plan.node_faults:
        for record in committed:
            if record.node != fault.node:
                continue
            if record.start < fault.at_time - EPS and record.end > fault.at_time + EPS:
                out.append(
                    Violation(
                        check="placement",
                        message=(
                            f"record on node {fault.node} spans the node's "
                            f"planned death at t={fault.at_time} "
                            f"([{record.start}, {record.end}]) yet committed"
                        ),
                        task_ids=(record.task_id,),
                    )
                )


# ------------------------------------------------------------ entry point
def sanitize_result(result: "WorkflowResult") -> SanitizerReport:
    """Replay a workflow result's trace through every invariant check.

    Pure read-only analysis: the trace, graph, and config are inspected,
    never mutated, so a sanitized run stays bit-identical to an
    unsanitized one.  Only meaningful for the simulated backend, whose
    records carry node/core placements.
    """
    trace = result.trace
    report = SanitizerReport(
        events_checked=len(trace.stages) + len(trace.tasks) + len(trace.attempts)
    )
    _check_monotonicity(trace, report.violations)
    _check_happens_before(result, report.violations)
    _check_attempt_machine(result, report.violations)
    _check_conservation(result, report.violations)
    _check_placement(result, report.violations)
    return report
