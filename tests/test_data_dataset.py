"""Unit tests for dataset specs and presets."""

import pytest

from repro.data import DatasetSpec, paper_datasets


class TestDatasetSpec:
    def test_sizes(self):
        spec = DatasetSpec("d", rows=1000, cols=100)
        assert spec.elements == 100_000
        assert spec.size_bytes == 800_000
        assert spec.size_mb == pytest.approx(0.8)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            DatasetSpec("d", rows=0, cols=10)
        with pytest.raises(ValueError):
            DatasetSpec("d", rows=10, cols=-1)

    def test_rejects_bad_skew(self):
        with pytest.raises(ValueError):
            DatasetSpec("d", rows=10, cols=10, skew=1.0)
        with pytest.raises(ValueError):
            DatasetSpec("d", rows=10, cols=10, skew=-0.1)

    def test_scaled_to_keeps_distribution(self):
        spec = DatasetSpec("d", rows=100, cols=100, skew=0.5, seed=7)
        scaled = spec.scaled_to(10, 10)
        assert scaled.skew == 0.5
        assert scaled.seed == 7
        assert scaled.rows == 10


class TestPaperDatasets:
    def test_paper_sizes_match_section_445(self):
        datasets = paper_datasets()
        # Matmul: 8 GB = 32K x 32K, 32 GB = 64K x 64K (binary GB).
        assert datasets["matmul_8gb"].size_bytes == 32_768**2 * 8
        assert datasets["matmul_8gb"].size_bytes == 8 * 1024**3
        assert datasets["matmul_32gb"].size_bytes == 32 * 1024**3
        # K-means: 10 GB = 12.5M x 100, 100 GB = 125M x 100 (decimal GB).
        assert datasets["kmeans_10gb"].size_bytes == int(10e9)
        assert datasets["kmeans_100gb"].size_bytes == int(100e9)

    def test_element_counts_match_paper(self):
        datasets = paper_datasets()
        # "1024M elements" and "4B elements" for Matmul.
        assert datasets["matmul_8gb"].elements == 1024 * 2**20
        assert datasets["matmul_32gb"].elements == 4 * 2**30
        # "1250M" and "12.5B" for K-means.
        assert datasets["kmeans_10gb"].elements == 1_250_000_000
        assert datasets["kmeans_100gb"].elements == 12_500_000_000

    def test_skew_variants_present(self):
        datasets = paper_datasets()
        assert datasets["matmul_2gb_skew"].skew == 0.5
        assert datasets["kmeans_1gb_skew"].skew == 0.5
        assert datasets["matmul_2gb"].skew == 0.0

    def test_correlation_extras_present(self):
        datasets = paper_datasets()
        assert datasets["matmul_128mb"].size_bytes == 4000 * 4000 * 8
        assert datasets["kmeans_100mb"].size_bytes == 125_000 * 100 * 8

    def test_fixed_seed_for_reproducibility(self):
        datasets = paper_datasets()
        assert all(spec.seed == 42 for spec in datasets.values())
