"""Executable checkers for the paper's observations O1-O6.

Each checker consumes the corresponding figure result and returns an
:class:`ObservationCheck` stating whether the *shape* the paper describes
holds in our reproduction, with a human-readable justification.  The
benchmark harness runs all six and the test suite asserts they pass.

* **O1** — user-code speedups are not affected significantly by block size
  when serial processing and CPU-GPU communication diminish the parallel
  gains (K-means).
* **O2** — parallel-task speedups do not increase for coarse-grained
  tasks; they improve when (de-)serialization is fully parallelised over
  the CPU cores.
* **O3** — for tasks with low computational complexity, increasing task
  granularity does not increase GPU speedup (add_func).
* **O4** — algorithm-specific parameters dominate GPU speedups when their
  effect exceeds the block dimension's (K-means clusters).
* **O5** — on local disks, the scheduling policy barely changes CPU/GPU
  execution times.
* **O6** — on shared disks, the scheduling policy visibly affects
  low-complexity tasks (K-means) — more than it does on local disks.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.core.experiments.fig7 import Fig7Series
from repro.core.experiments.fig8 import Fig8Result
from repro.core.experiments.fig9 import Fig9aResult
from repro.core.experiments.fig10 import Fig10Result
from repro.hardware import StorageKind
from repro.runtime import SchedulingPolicy


@dataclass(frozen=True)
class ObservationCheck:
    """The verdict of one observation checker."""

    observation: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"{self.observation}: {status} — {self.detail}"


def check_o1(kmeans_panel: Fig7Series, tolerance: float = 2.0) -> ObservationCheck:
    """O1: K-means user-code speedup is roughly flat across block sizes."""
    speedups = [
        value
        for value in kmeans_panel.speedup_by_block("user_code_speedup").values()
        if value is not None
    ]
    if len(speedups) < 3:
        return ObservationCheck("O1", False, "not enough valid block sizes")
    spread = max(speedups) / min(speedups)
    return ObservationCheck(
        "O1",
        spread <= tolerance,
        f"user-code speedup spans {min(speedups):.2f}x..{max(speedups):.2f}x "
        f"(ratio {spread:.2f} <= {tolerance})",
    )


def check_o2(panel: Fig7Series, cluster_gpus: int = 32) -> ObservationCheck:
    """O2: parallel-task GPU speedup is negative at the finest grains
    (data-movement overheads dominate), turns positive once the maximum
    GPU task parallelism is reached, and does not increase significantly
    for coarser-grained tasks (§5.1.2)."""
    # The single-task maximum granularity runs undistributed (no parallel
    # tasks at all), so it is outside O2's scope.
    by_tasks = {
        point.num_tasks: point.parallel_tasks_speedup
        for point in panel.points
        if point.parallel_tasks_speedup is not None and point.num_tasks > 1
    }
    if len(by_tasks) < 3:
        return ObservationCheck("O2", False, "not enough valid points")
    finest = by_tasks[max(by_tasks)]
    fine_not_positive = finest <= 1.05
    mid = {t: s for t, s in by_tasks.items() if t >= cluster_gpus}
    mid_positive = any(s > 1.0 for t, s in mid.items() if t < max(by_tasks))
    coarse = [s for t, s in by_tasks.items() if t < cluster_gpus]
    best_mid = max(mid.values()) if mid else 0.0
    coarse_no_significant_gain = (
        not coarse or max(coarse) <= best_mid * 1.15
    )
    passed = fine_not_positive and mid_positive and coarse_no_significant_gain
    return ObservationCheck(
        "O2",
        passed,
        f"finest grain {finest:.2f}x (not positive), positive from "
        f"~{cluster_gpus} tasks, coarse grains add no significant gain "
        f"(max coarse {max(coarse):.2f}x vs mid {best_mid:.2f}x)"
        if coarse
        else f"finest grain {finest:.2f}x; no coarse points",
    )


def check_o3(fig8: Fig8Result) -> ObservationCheck:
    """O3: the low-complexity add_func never profits from larger blocks."""
    speedups = [
        value for value in fig8.speedups("add_func").values() if value is not None
    ]
    if not speedups:
        return ObservationCheck("O3", False, "no valid add_func points")
    all_below_one = all(value < 1.0 for value in speedups)
    return ObservationCheck(
        "O3",
        all_below_one,
        f"add_func GPU speedup stays below 1.0x at every block size "
        f"(max {max(speedups):.2f}x)",
    )


def check_o4(fig9a: Fig9aResult) -> ObservationCheck:
    """O4: K-means GPU speedup grows with the cluster count."""
    bests = {}
    for n_clusters in sorted({p.n_clusters for p in fig9a.points}):
        best = fig9a.best_speedup(n_clusters)
        if best is not None:
            bests[n_clusters] = best
    if len(bests) < 2:
        return ObservationCheck("O4", False, "not enough cluster counts")
    ordered = [bests[k] for k in sorted(bests)]
    increasing = all(a < b for a, b in zip(ordered, ordered[1:]))
    detail = ", ".join(f"K={k}: {v:.2f}x" for k, v in sorted(bests.items()))
    return ObservationCheck("O4", increasing, detail)


def _policy_gap(panel: Fig10Result, storage: StorageKind) -> float:
    """Mean relative gap between the two policies over all valid cells."""
    gaps = []
    for use_gpu in (False, True):
        gen = panel.series(storage, SchedulingPolicy.GENERATION_ORDER, use_gpu)
        loc = panel.series(storage, SchedulingPolicy.DATA_LOCALITY, use_gpu)
        for grid, gen_value in gen.items():
            loc_value = loc.get(grid)
            if gen_value is None or loc_value is None:
                continue
            base = min(gen_value, loc_value)
            if base > 0:
                gaps.append(abs(gen_value - loc_value) / base)
    return mean(gaps) if gaps else 0.0


def check_o5(panel: Fig10Result, threshold: float = 0.25) -> ObservationCheck:
    """O5: on local disks the policies stay within ``threshold`` of each
    other on average."""
    gap = _policy_gap(panel, StorageKind.LOCAL)
    return ObservationCheck(
        "O5",
        gap <= threshold,
        f"mean relative policy gap on local disk: {gap:.1%} (<= {threshold:.0%})",
    )


def _cpu_gpu_gap_sensitivity(panel: Fig10Result, storage: StorageKind) -> float:
    """How much the CPU-vs-GPU time difference moves when the policy flips.

    This is the paper's O6 statement verbatim: on shared disks, "the
    execution times gaps between CPUs and GPUs are more evident when
    changing the scheduling policy" for low-complexity tasks.
    """
    gen_cpu = panel.series(storage, SchedulingPolicy.GENERATION_ORDER, False)
    gen_gpu = panel.series(storage, SchedulingPolicy.GENERATION_ORDER, True)
    loc_cpu = panel.series(storage, SchedulingPolicy.DATA_LOCALITY, False)
    loc_gpu = panel.series(storage, SchedulingPolicy.DATA_LOCALITY, True)
    sensitivities = []
    for grid in gen_cpu:
        values = (
            gen_cpu.get(grid),
            gen_gpu.get(grid),
            loc_cpu.get(grid),
            loc_gpu.get(grid),
        )
        if any(v is None for v in values):
            continue
        gap_gen = values[0] - values[1]
        gap_loc = values[2] - values[3]
        scale = mean(values)
        if scale > 0:
            sensitivities.append(abs(gap_gen - gap_loc) / scale)
    return mean(sensitivities) if sensitivities else 0.0


def check_o6(
    kmeans_panel: Fig10Result, matmul_panel: Fig10Result
) -> ObservationCheck:
    """O6: on shared disks the policy shifts the CPU-GPU gap for the cheap
    K-means tasks more than for the compute-heavy Matmul tasks."""
    kmeans_sensitivity = _cpu_gpu_gap_sensitivity(kmeans_panel, StorageKind.SHARED)
    matmul_sensitivity = _cpu_gpu_gap_sensitivity(matmul_panel, StorageKind.SHARED)
    return ObservationCheck(
        "O6",
        kmeans_sensitivity > matmul_sensitivity,
        f"shared-disk CPU-GPU gap sensitivity to the policy: kmeans "
        f"{kmeans_sensitivity:.1%} vs matmul {matmul_sensitivity:.1%}",
    )
