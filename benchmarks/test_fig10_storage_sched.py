"""Benchmarks E8/E9 — Figure 10: storage architecture x scheduling policy.

Paper shapes: local disk beats shared disk end-to-end; the policy barely
matters on local disks (O5); on shared disks the policy visibly shifts
the CPU-GPU gap for the cheap K-means tasks (O6); parallel-task time
rises with block size and drops at the single-task maximum granularity;
Matmul's 8192 MB block OOMs the GPU (3 x 8 GB > 12 GB).
"""

from repro.core.experiments import run_fig10_for
from repro.core.experiments.fig10 import KMEANS_GRIDS, MATMUL_GRIDS
from repro.core.observations import check_o5, check_o6
from repro.hardware import StorageKind
from repro.runtime import SchedulingPolicy


def test_fig10_storage_and_scheduling(once):
    def both():
        matmul = run_fig10_for("matmul", "matmul_8gb", MATMUL_GRIDS)
        kmeans = run_fig10_for("kmeans", "kmeans_10gb", KMEANS_GRIDS)
        return matmul, kmeans

    matmul, kmeans = once(both)
    print()
    print(matmul.render())
    print()
    print(kmeans.render())

    gen = SchedulingPolicy.GENERATION_ORDER
    local_cpu = kmeans.series(StorageKind.LOCAL, gen, False)
    shared_cpu = kmeans.series(StorageKind.SHARED, gen, False)
    # Local storage wins at every distributed grid.
    for grid, local_time in local_cpu.items():
        if grid > 1:
            assert local_time <= shared_cpu[grid]
    # Time rises toward coarse grains, then drops at the single task.
    assert shared_cpu[2] > shared_cpu[64]
    assert shared_cpu[1] < shared_cpu[2]
    # Matmul GPU OOM at maximum granularity.
    matmul_gpu = matmul.series(StorageKind.SHARED, gen, True)
    assert matmul_gpu[1] is None

    for check in (check_o5(matmul), check_o5(kmeans), check_o6(kmeans, matmul)):
        print(check)
        assert check.passed
