"""Spearman rank correlation over mixed factor/metric samples (§5.4).

The paper one-hot encodes the categorical factors (processor type, storage
architecture, scheduling policy) and computes the Spearman rank
correlation between every pair of features, chosen for its robustness to
the non-linear relationships between the factors.  This module implements
the statistic from scratch (mid-rank ties, Pearson over ranks) so the
pipeline has no SciPy dependency, and the test suite cross-checks it
against ``scipy.stats.spearmanr``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.report import Table


def rank_with_ties(values: Sequence[float]) -> np.ndarray:
    """Mid-ranks of ``values`` (ties share the average of their ranks)."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError("rank_with_ties expects a 1-D sequence")
    order = np.argsort(array, kind="stable")
    ranks = np.empty(len(array), dtype=float)
    i = 0
    while i < len(array):
        j = i
        while j + 1 < len(array) and array[order[j + 1]] == array[order[i]]:
            j += 1
        # Ranks are 1-based; tied entries get the mid-rank.
        mid = (i + j) / 2.0 + 1.0
        for position in range(i, j + 1):
            ranks[order[position]] = mid
        i = j + 1
    return ranks


def spearman(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman's rho between two samples.

    Returns ``nan`` when either sample is constant (rank variance zero),
    matching the paper's blank cells for features that never vary.

    >>> spearman([1, 2, 3], [10, 100, 1000])
    1.0
    >>> spearman([1, 2, 3], [3, 2, 1])
    -1.0
    """
    if len(x) != len(y):
        raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
    if len(x) < 2:
        raise ValueError("need at least two samples")
    rx = rank_with_ties(x)
    ry = rank_with_ties(y)
    sx = rx.std()
    sy = ry.std()
    if sx == 0 or sy == 0:
        return float("nan")
    return float(((rx - rx.mean()) * (ry - ry.mean())).mean() / (sx * sy))


def one_hot(values: Sequence[str], categories: Sequence[str]) -> dict[str, list[int]]:
    """One-hot encode a categorical column into 0/1 indicator columns."""
    unknown = set(values) - set(categories)
    if unknown:
        raise ValueError(f"values outside declared categories: {sorted(unknown)}")
    return {
        category: [1 if v == category else 0 for v in values]
        for category in categories
    }


@dataclass
class CorrelationMatrix:
    """A symmetric Spearman matrix over named features."""

    features: tuple[str, ...]
    matrix: np.ndarray

    def value(self, a: str, b: str) -> float:
        """rho between two named features."""
        i = self.features.index(a)
        j = self.features.index(b)
        return float(self.matrix[i, j])

    def column(self, feature: str) -> dict[str, float]:
        """All correlations of one feature against the rest."""
        i = self.features.index(feature)
        return {
            other: float(self.matrix[i, j])
            for j, other in enumerate(self.features)
            if j != i
        }

    def render(self, width: int = 24) -> str:
        """The matrix as a table (feature names abbreviated to ``width``)."""
        table = Table(
            title="Spearman correlation matrix",
            headers=("feature",) + tuple(f[:8] for f in self.features),
        )
        for i, name in enumerate(self.features):
            cells = [
                "-" if np.isnan(v) else f"{v:+.3f}" for v in self.matrix[i]
            ]
            table.add_row(name[:width], *cells)
        return table.render()


def spearman_matrix(columns: Mapping[str, Sequence[float]]) -> CorrelationMatrix:
    """Pairwise Spearman over a dict of equal-length feature columns."""
    features = tuple(columns)
    if not features:
        raise ValueError("no feature columns given")
    lengths = {len(columns[f]) for f in features}
    if len(lengths) != 1:
        raise ValueError(f"feature columns differ in length: {lengths}")
    n = len(features)
    matrix = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            rho = spearman(columns[features[i]], columns[features[j]])
            matrix[i, j] = rho
            matrix[j, i] = rho
    # Constant features correlate nan even with themselves by convention.
    for i, feature in enumerate(features):
        if np.std(rank_with_ties(columns[feature])) == 0:
            matrix[i, i] = float("nan")
    return CorrelationMatrix(features=features, matrix=matrix)
