"""Figure 1 — the motivating experiment.

Distributed K-means on the 10 GB dataset, 256 tasks, on a cluster with 128
CPU cores and 32 GPU devices.  The paper's headline numbers: the GPU is
~5.7x faster on the parallel fraction alone, only ~1.2x faster on the full
task user code (serial fraction and CPU-GPU communication included), and
*slower* than the CPU once tasks are distributed (-1.20x), because only 32
GPU tasks run in parallel against 128 CPU tasks while data movement costs
stay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.experiments.engine import SweepEngine, cells_product
from repro.core.experiments.runners import RunMetrics, speedup
from repro.core.report import Table, format_seconds, format_speedup


@dataclass
class Fig1Result:
    """Stage-level GPU-over-CPU speedups at the Figure 1 operating point."""

    cpu: RunMetrics
    gpu: RunMetrics

    @property
    def parallel_fraction_speedup(self) -> float | None:
        """Speedup on the parallel fraction of the task user code alone."""
        return speedup(
            self.cpu.user_code["partial_sum"].parallel_fraction,
            self.gpu.user_code["partial_sum"].parallel_fraction,
        )

    @property
    def user_code_speedup(self) -> float | None:
        """Speedup on the total task user code (serial + comm included)."""
        return speedup(
            self.cpu.user_code["partial_sum"].user_code,
            self.gpu.user_code["partial_sum"].user_code,
        )

    @property
    def parallel_tasks_speedup(self) -> float | None:
        """Speedup at the distributed (parallel tasks) level."""
        return speedup(self.cpu.parallel_task_time, self.gpu.parallel_task_time)

    def render(self) -> str:
        """Figure 1 as a table."""
        table = Table(
            title=(
                "Figure 1: Distributed K-means at different processing "
                "stages (10 GB, 256 tasks, 128 cores / 32 GPUs)"
            ),
            headers=("processing stage", "CPU time", "GPU time", "GPU speedup"),
        )
        cpu_uc = self.cpu.user_code["partial_sum"]
        gpu_uc = self.gpu.user_code["partial_sum"]
        table.add_row(
            "parallel fraction (single task)",
            format_seconds(cpu_uc.parallel_fraction),
            format_seconds(gpu_uc.parallel_fraction),
            format_speedup(self.parallel_fraction_speedup),
        )
        table.add_row(
            "task user code (single task)",
            format_seconds(cpu_uc.user_code),
            format_seconds(gpu_uc.user_code),
            format_speedup(self.user_code_speedup),
        )
        table.add_row(
            "parallel tasks (distributed)",
            format_seconds(self.cpu.parallel_task_time),
            format_seconds(self.gpu.parallel_task_time),
            format_speedup(self.parallel_tasks_speedup),
        )
        return table.render()


def run_fig1(
    grid_rows: int = 256,
    n_clusters: int = 10,
    engine: SweepEngine | None = None,
) -> Fig1Result:
    """Run the motivating experiment at the paper's operating point."""
    engine = engine if engine is not None else SweepEngine.serial()
    cpu, gpu = engine.run_cells(
        cells_product(
            "kmeans",
            (grid_rows,),
            dataset_key="kmeans_10gb",
            n_clusters=n_clusters,
        )
    )
    return Fig1Result(cpu=cpu, gpu=gpu)
