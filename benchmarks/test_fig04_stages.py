"""Benchmark — Figure 4: the abstract task-processing stages, verified.

Figure 4 defines the stage sequence for the three task families:

* serial task:            deser -> serial fraction -> ser
* partially parallel:     deser -> serial -> [comm, parallel, comm] -> ser
* fully parallel:         deser -> [comm, parallel, comm] -> ser

Rather than redrawing the figure, this bench executes one task of each
family on the simulated cluster and asserts the *trace* walks exactly the
stages Figure 4 prescribes.
"""

from repro.core.report import Table
from repro.perfmodel import TaskCost
from repro.runtime import Runtime, RuntimeConfig
from repro.tracing import Stage


def _cost(serial, parallel):
    return TaskCost(
        serial_flops=serial,
        parallel_flops=parallel,
        parallel_items=1e6 if parallel else 0.0,
        arithmetic_intensity=10.0,
        input_bytes=10**7,
        output_bytes=10**6,
        host_device_bytes=(10**7 + 10**6) if parallel else 0,
        gpu_memory_bytes=2 * 10**7,
    )


FAMILIES = {
    "serial task": _cost(serial=1e10, parallel=0.0),
    "partially parallel task": _cost(serial=1e10, parallel=1e11),
    "fully parallel task": _cost(serial=0.0, parallel=1e11),
}

EXPECTED = {
    "serial task": [
        Stage.DESERIALIZATION,
        Stage.SERIAL_FRACTION,
        Stage.SERIALIZATION,
    ],
    "partially parallel task": [
        Stage.DESERIALIZATION,
        Stage.SERIAL_FRACTION,
        Stage.CPU_GPU_COMM,
        Stage.PARALLEL_FRACTION,
        Stage.CPU_GPU_COMM,
        Stage.SERIALIZATION,
    ],
    "fully parallel task": [
        Stage.DESERIALIZATION,
        Stage.CPU_GPU_COMM,
        Stage.PARALLEL_FRACTION,
        Stage.CPU_GPU_COMM,
        Stage.SERIALIZATION,
    ],
}


def _stage_walk(cost) -> list[Stage]:
    rt = Runtime(RuntimeConfig(use_gpu=True))
    # Two identical tasks so the DAG is distributed (width > 1) and the
    # (de-)serialization stages of Figure 4 actually occur.
    for i in range(2):
        ref = rt.register_input(10**7, name=f"in{i}")
        rt.submit(name="probe", inputs=[ref], cost=cost)
    trace = rt.run().trace
    first_task = min(r.task_id for r in trace.stages)
    records = sorted(
        (r for r in trace.stages if r.task_id == first_task),
        key=lambda r: (r.start, r.end),
    )
    return [r.stage for r in records]


def test_fig4_stage_sequences(once):
    def measure():
        return {family: _stage_walk(cost) for family, cost in FAMILIES.items()}

    walks = once(measure)
    table = Table(
        title="Figure 4: measured task-processing stage sequences",
        headers=("task family", "stages (traced)"),
    )
    for family, walk in walks.items():
        table.add_row(family, " -> ".join(stage.value for stage in walk))
    print()
    print(table.render())
    for family, walk in walks.items():
        assert walk == EXPECTED[family], family
