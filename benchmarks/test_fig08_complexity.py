"""Benchmark E5 — Figure 8: task computational complexity in Matmul.

Paper shape: matmul_func (O(N^3)) user-code speedup scales with block
size up to ~21x; add_func (O(N)) is slower on GPU at every block size
because PCIe transfer dominates its negligible kernel (O3).
"""

from repro.core.experiments import run_fig8
from repro.core.experiments.fig8 import FIG8_GRIDS
from repro.core.observations import check_o3


def test_fig8_complexity(once):
    result = once(run_fig8, "matmul_8gb", FIG8_GRIDS)
    print()
    print(result.render())
    print()
    print(result.chart())
    matmul_speedups = [v for v in result.speedups("matmul_func").values() if v]
    assert matmul_speedups == sorted(matmul_speedups)
    assert 17.0 <= max(matmul_speedups) <= 26.0
    o3 = check_o3(result)
    print(o3)
    assert o3.passed
