"""Benchmark E1 — Figure 1: the motivating K-means experiment.

Paper shape: parallel-fraction speedup ~5.7x, user-code speedup ~1.2x,
distributed parallel-task speedup negative (GPU slower).
"""

from repro.core.experiments import run_fig1


def test_fig1_motivation(once):
    result = once(run_fig1)
    print()
    print(result.render())
    assert 4.5 <= result.parallel_fraction_speedup <= 7.0
    assert 1.0 < result.user_code_speedup <= 1.6
    assert result.parallel_tasks_speedup < 1.0
