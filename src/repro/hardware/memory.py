"""Host-memory accounting.

Each node has a fixed amount of RAM (128 GB on Minotauro).  A task whose
host-side working set exceeds it cannot run on CPUs either — this is the
"CPU GPU OOM" annotation of the paper's Figure 9a (K-means with 1000
clusters and the maximum block size materialises a distance matrix larger
than node memory).
"""

from __future__ import annotations


class HostOutOfMemoryError(MemoryError):
    """Raised when a task's host working set exceeds node RAM."""

    def __init__(self, requested: int, capacity: int, node: str = "") -> None:
        self.requested = requested
        self.capacity = capacity
        self.node = node
        super().__init__(
            f"host OOM on {node or 'node'}: requested "
            f"{requested / 2**30:.1f} GiB, capacity {capacity / 2**30:.1f} GiB"
        )
