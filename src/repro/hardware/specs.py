"""Hardware specifications.

All specs are frozen dataclasses so cluster configurations can be shared,
hashed, and used as experiment factors.  Units are SI throughout: bytes,
seconds, FLOP/s, bytes/s.

The :func:`minotauro` preset mirrors the paper's testbed (§4.4.1): 8 nodes,
each with 16 Intel Xeon E5-2630 cores, 128 GB of RAM, and 4 NVIDIA K80
devices (12 GB each) behind PCIe 3.0, with node-local disks and a GPFS
shared file system.  Throughput values are *effective* rates calibrated
against the paper's observed speedups rather than vendor peaks; the
calibration is documented in ``repro.perfmodel.calibration``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

GIB = 1024**3
MIB = 1024**2


@dataclass(frozen=True)
class CpuSpec:
    """One CPU socket-group of a node, described per core.

    The paper's runtime pins one task per core (§3.3), so per-core effective
    rates are the natural unit.
    """

    name: str
    cores_per_node: int
    #: Effective FLOP/s of one core on compute-bound kernels (BLAS-like).
    flops_per_core: float
    #: Effective bytes/s one core can stream on memory-bound kernels.
    mem_bandwidth_per_core: float
    #: Bytes/s one core achieves (de-)serialising Python/NumPy payloads.
    serialization_bandwidth: float

    def __post_init__(self) -> None:
        if self.cores_per_node <= 0:
            raise ValueError("cores_per_node must be positive")
        for attr in ("flops_per_core", "mem_bandwidth_per_core", "serialization_bandwidth"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")


@dataclass(frozen=True)
class GpuSpec:
    """A dedicated GPU device (one schedulable device, i.e. half a K80 card)."""

    name: str
    devices_per_node: int
    memory_bytes: int
    #: Effective FLOP/s at full occupancy on compute-bound kernels.
    flops: float
    #: Effective device-memory bytes/s on memory-bound kernels.
    mem_bandwidth: float
    #: Fixed per-kernel dispatch overhead (driver + CuPy) in seconds.
    launch_overhead: float
    #: Work-item count at which the device reaches half occupancy.  Kernels
    #: over fewer items under-utilise the device; this is what makes GPU
    #: speedup scale with block size in the paper's Figures 7-9.
    saturation_items: float

    def __post_init__(self) -> None:
        # Zero devices describes a GPU-less (CPU-only) node; the static
        # analyzer flags GPU-eligible workloads targeted at such clusters.
        if self.devices_per_node < 0:
            raise ValueError("devices_per_node must be non-negative")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        for attr in ("flops", "mem_bandwidth", "launch_overhead", "saturation_items"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative")

    def utilisation(self, work_items: float) -> float:
        """Fraction of peak throughput achieved for a kernel of this size."""
        if work_items <= 0:
            return 0.0
        return work_items / (work_items + self.saturation_items)


@dataclass(frozen=True)
class InterconnectSpec:
    """The CPU-GPU bus (PCIe in the paper's testbed)."""

    name: str
    #: Effective bytes/s available to a single host<->device transfer.
    bandwidth_per_transfer: float
    #: Aggregate bytes/s of the bus shared by all devices of a node.
    node_bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.bandwidth_per_transfer <= 0 or self.node_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.bandwidth_per_transfer > self.node_bandwidth:
            raise ValueError("per-transfer bandwidth cannot exceed node bandwidth")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")


@dataclass(frozen=True)
class DiskSpec:
    """A disk (node-local spindle/SSD or the GPFS backend).

    ``per_stream_cap`` models parallel file systems such as GPFS where a
    single stream is much slower than the aggregate: many fine-grained
    readers can saturate the aggregate bandwidth while one coarse-grained
    reader is stuck at the stream rate.  This is the mechanism behind the
    paper's observation that coarse tasks "increase the cost of
    (de-)serialization that cannot be parallelized" (§5.1.2).
    """

    name: str
    read_bandwidth: float
    write_bandwidth: float
    latency: float
    per_stream_cap: float | None = None

    def __post_init__(self) -> None:
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if self.per_stream_cap is not None and self.per_stream_cap <= 0:
            raise ValueError("per_stream_cap must be positive")


@dataclass(frozen=True)
class NetworkSpec:
    """The inter-node network fabric."""

    name: str
    #: Bytes/s of one node's link.
    link_bandwidth: float
    #: Aggregate bytes/s of the fabric (bisection-style cap).
    fabric_bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0 or self.fabric_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")


@dataclass(frozen=True)
class NodeSpec:
    """One compute node: CPU cores, GPU devices, bus, local disk, and RAM."""

    cpu: CpuSpec
    gpu: GpuSpec
    interconnect: InterconnectSpec
    local_disk: DiskSpec
    ram_bytes: int = 128 * GIB

    def __post_init__(self) -> None:
        if self.ram_bytes <= 0:
            raise ValueError("ram_bytes must be positive")


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of :class:`NodeSpec` nodes."""

    name: str
    num_nodes: int
    node: NodeSpec
    network: NetworkSpec
    shared_disk: DiskSpec
    #: Per-task dispatch latency of the runtime scheduler, by policy name.
    scheduling_latency: dict[str, float] = field(
        default_factory=lambda: {
            "generation_order": 1.0e-3,
            "data_locality": 4.0e-3,
            "lifo": 1.0e-3,
        }
    )
    #: Extra per-candidate scan cost of the data-locality policy: its
    #: dispatch latency grows with the ready-queue length (capped), because
    #: the scheduler examines candidates to score locality.  This is what
    #: makes the policy choice visible for cheap fine-grained tasks on
    #: shared storage (the paper's O6) while staying negligible for
    #: compute-heavy tasks.
    locality_scan_seconds_per_task: float = 5.0e-5
    locality_scan_cap: int = 128

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")

    @property
    def total_cpu_cores(self) -> int:
        """CPU cores across the whole cluster."""
        return self.num_nodes * self.node.cpu.cores_per_node

    @property
    def total_gpus(self) -> int:
        """GPU devices across the whole cluster."""
        return self.num_nodes * self.gpu_per_node

    @property
    def gpu_per_node(self) -> int:
        """GPU devices on each node."""
        return self.node.gpu.devices_per_node

    @property
    def has_gpus(self) -> bool:
        """Whether the cluster has any GPU devices at all."""
        return self.total_gpus > 0

    def parallel_slots(self, use_gpu: bool) -> int:
        """Task slots that bound the degree of parallelism.

        CPU execution pins one task per core (§3.3); GPU execution is
        bounded by the device count (the paper's 128-vs-32 slot asymmetry).
        """
        return self.total_gpus if use_gpu else self.total_cpu_cores


def minotauro(num_nodes: int = 8) -> ClusterSpec:
    """The paper's testbed: 8 Minotauro nodes (§4.4.1).

    16 Xeon E5-2630 cores and 4 NVIDIA K80 devices (12 GB) per node, PCIe
    3.0 CPU-GPU interconnect, node-local disks, and a GPFS shared file
    system; at most 128 CPU tasks and 32 GPU tasks run in parallel.
    """
    cpu = CpuSpec(
        name="Intel Xeon E5-2630",
        cores_per_node=16,
        flops_per_core=16.0e9,
        mem_bandwidth_per_core=12.0e9,
        serialization_bandwidth=1.2e9,
    )
    gpu = GpuSpec(
        name="NVIDIA K80 (one GK210 device)",
        devices_per_node=4,
        memory_bytes=12 * GIB,
        flops=420.0e9,
        mem_bandwidth=240.0e9,
        launch_overhead=5.0e-5,
        saturation_items=1.0e7,
    )
    interconnect = InterconnectSpec(
        name="PCIe 3.0 (shared by 4 devices)",
        bandwidth_per_transfer=2.0e9,
        node_bandwidth=8.0e9,
        latency=1.0e-5,
    )
    local_disk = DiskSpec(
        name="node-local disk",
        read_bandwidth=500.0e6,
        write_bandwidth=400.0e6,
        latency=1.0e-3,
    )
    # InfiniBand-class fabric: fast enough that a remote local-disk read
    # costs barely more than a local one (the paper's O5 — scheduling
    # policy hardly matters on local disks).
    network = NetworkSpec(
        name="cluster fabric (InfiniBand-class)",
        link_bandwidth=3.0e9,
        fabric_bandwidth=12.0e9,
        latency=5.0e-5,
    )
    shared_disk = DiskSpec(
        name="GPFS shared disk",
        read_bandwidth=2.0e9,
        write_bandwidth=1.5e9,
        latency=5.0e-3,
        per_stream_cap=250.0e6,
    )
    node = NodeSpec(
        cpu=cpu,
        gpu=gpu,
        interconnect=interconnect,
        local_disk=local_disk,
        ram_bytes=128 * GIB,
    )
    return ClusterSpec(
        name=f"minotauro-{num_nodes}",
        num_nodes=num_nodes,
        node=node,
        network=network,
        shared_disk=shared_disk,
    )
