"""Unit tests for task definitions and the @task decorator."""

import pytest

from repro.perfmodel import TaskCost
from repro.runtime import DataRef, Runtime, RuntimeConfig, task
from repro.runtime.runtime import Backend, current_runtime


@task(returns=1)
def double(x):
    return x * 2


@task(returns=2, name="split_halves")
def split(x):
    return x, -x


@task(returns=0)
def consume(x):
    return None


def _cost(out_bytes=16):
    return TaskCost(
        serial_flops=1.0,
        parallel_flops=0.0,
        parallel_items=0.0,
        arithmetic_intensity=0.0,
        input_bytes=8,
        output_bytes=out_bytes,
        host_device_bytes=0,
        gpu_memory_bytes=0,
    )


class TestDecoratorOutsideRuntime:
    def test_runs_directly(self):
        assert double(21) == 42

    def test_multi_return_runs_directly(self):
        assert split(3) == (3, -3)

    def test_no_runtime_active(self):
        assert current_runtime() is None


class TestDecoratorInsideRuntime:
    def test_records_task_and_returns_ref(self):
        rt = Runtime(RuntimeConfig())
        x = rt.register_input(8)
        with rt:
            ref = double(x, _cost=_cost())
        assert isinstance(ref, DataRef)
        assert rt.graph.num_tasks == 1
        assert rt.graph.tasks()[0].name == "double"

    def test_multi_return_gives_tuple_of_refs(self):
        rt = Runtime(RuntimeConfig())
        x = rt.register_input(8)
        with rt:
            a, b = split(x, _cost=_cost())
        assert isinstance(a, DataRef) and isinstance(b, DataRef)
        assert rt.graph.tasks()[0].name == "split_halves"

    def test_zero_return_gives_none(self):
        rt = Runtime(RuntimeConfig())
        x = rt.register_input(8)
        with rt:
            assert consume(x, _cost=_cost(out_bytes=0)) is None

    def test_nested_runtimes_route_to_innermost(self):
        outer = Runtime(RuntimeConfig())
        inner = Runtime(RuntimeConfig())
        x = outer.register_input(8)
        with outer:
            with inner:
                double(x, _cost=_cost())
            assert inner.graph.num_tasks == 1
            assert outer.graph.num_tasks == 0

    def test_context_exit_restores_stack(self):
        rt = Runtime(RuntimeConfig())
        with rt:
            assert current_runtime() is rt
        assert current_runtime() is None

    def test_output_bytes_default_splits_cost(self):
        rt = Runtime(RuntimeConfig())
        x = rt.register_input(8)
        with rt:
            a, b = split(x, _cost=_cost(out_bytes=100))
        assert a.size_bytes == 50
        assert b.size_bytes == 50

    def test_explicit_output_bytes(self):
        rt = Runtime(RuntimeConfig())
        x = rt.register_input(8)
        with rt:
            a, b = split(x, _cost=_cost(), _output_bytes=[10, 20])
        assert (a.size_bytes, b.size_bytes) == (10, 20)


class TestTaskProperties:
    def test_gpu_eligibility_follows_parallel_flops(self):
        rt = Runtime(RuntimeConfig())
        x = rt.register_input(8)
        serial_cost = _cost()
        parallel_cost = TaskCost(
            serial_flops=0.0,
            parallel_flops=100.0,
            parallel_items=10.0,
            arithmetic_intensity=1.0,
            input_bytes=8,
            output_bytes=8,
            host_device_bytes=16,
            gpu_memory_bytes=16,
        )
        with rt:
            double(x, _cost=serial_cost)
            double(x, _cost=parallel_cost)
        tasks = rt.graph.tasks()
        assert not tasks[0].gpu_eligible
        assert tasks[1].gpu_eligible

    def test_outputs_record_producer(self):
        rt = Runtime(RuntimeConfig())
        x = rt.register_input(8)
        with rt:
            ref = double(x, _cost=_cost())
        assert ref.producer == rt.graph.tasks()[0].task_id

    def test_input_output_byte_totals(self):
        rt = Runtime(RuntimeConfig())
        x = rt.register_input(24)
        with rt:
            double(x, _cost=_cost(out_bytes=16))
        t = rt.graph.tasks()[0]
        assert t.input_bytes == 24
        assert t.output_bytes == 16

    def test_invalid_returns_rejected(self):
        with pytest.raises(ValueError):
            task(returns=-1)(lambda x: x)


class TestSubmitValidation:
    def test_output_bytes_length_mismatch(self):
        rt = Runtime(RuntimeConfig())
        x = rt.register_input(8)
        with pytest.raises(ValueError):
            rt.submit(name="bad", inputs=[x], n_outputs=2, output_bytes=[1])

    def test_in_process_requires_values(self):
        rt = Runtime(RuntimeConfig(backend=Backend.IN_PROCESS))
        x = rt.register_input(8)  # no value bound
        rt.submit(name="f", inputs=[x], fn=lambda v: v)
        with pytest.raises(KeyError):
            rt.run()
