"""A tunable synthetic workload: between the paper's two extremes.

§5.5.1 of the paper proposes, as future work, algorithms "between the two
extreme cases considered here, namely fully and partially parallelizable",
to "devise a method to decide when it is worth exploiting GPUs based on
the ratio of parallel / serial code".  This workload makes that axis a
parameter: ``parallel_ratio`` in [0, 1] splits a fixed per-element FLOP
budget between the serial and parallel fractions, so sweeping it traces
the full transition — Matmul-like at 1.0, K-means-like around 0.2-0.4,
hopeless below the Amdahl break-even.

The task function really computes (a polynomial map over the block), so
the in-process backend can execute it, and the cost profile mirrors the
split for the simulated backend.
"""

from __future__ import annotations

import numpy as np

from repro.data import Blocking, DatasetSpec, GridSpec
from repro.perfmodel import TaskCost
from repro.runtime import DataRef, Runtime, task
from repro.arrays import DistributedArray

_ELEM = 8
#: FLOPs of user code per block element (fixed budget split by the ratio).
_FLOPS_PER_ELEMENT = 600.0


@task(returns=1, name="synthetic_stage")
def synthetic_stage(block: np.ndarray, passes: int = 4) -> np.ndarray:
    """A compute kernel of tunable weight: repeated polynomial maps."""
    result = block
    for _ in range(passes):
        result = 0.5 * result * result + 0.25 * result
    return result


def synthetic_cost(
    m: int,
    n: int,
    parallel_ratio: float,
    flops_per_element: float = _FLOPS_PER_ELEMENT,
) -> TaskCost:
    """Cost of one stage with the FLOP budget split by ``parallel_ratio``."""
    if not 0.0 <= parallel_ratio <= 1.0:
        raise ValueError("parallel_ratio must be in [0, 1]")
    elements = m * n
    total_flops = flops_per_element * elements
    parallel_flops = total_flops * parallel_ratio
    serial_flops = total_flops - parallel_flops
    block_bytes = _ELEM * elements
    # Elementwise map: arithmetic intensity set by the per-element budget.
    intensity = flops_per_element * parallel_ratio / (2 * _ELEM) or 1e-6
    return TaskCost(
        serial_flops=serial_flops,
        parallel_flops=parallel_flops,
        parallel_items=float(elements) if parallel_flops else 0.0,
        arithmetic_intensity=intensity,
        input_bytes=block_bytes,
        output_bytes=block_bytes,
        host_device_bytes=2 * block_bytes if parallel_flops else 0,
        gpu_memory_bytes=2 * block_bytes,
        host_memory_bytes=2 * block_bytes,
    )


class SyntheticWorkflow:
    """One level of independent tunable tasks over a row-chunked dataset."""

    name = "synthetic"
    parallel_task_types = frozenset({"synthetic_stage"})
    primary_task_type = "synthetic_stage"

    def __init__(
        self,
        dataset: DatasetSpec,
        grid_rows: int,
        parallel_ratio: float,
        flops_per_element: float = _FLOPS_PER_ELEMENT,
        levels: int = 1,
    ) -> None:
        if levels < 1:
            raise ValueError("levels must be >= 1")
        self.blocking = Blocking.from_grid(dataset, GridSpec(k=grid_rows, l=1))
        self.parallel_ratio = parallel_ratio
        self.flops_per_element = flops_per_element
        self.levels = levels

    @property
    def block_mb(self) -> float:
        """Block size label for reports."""
        return self.blocking.block_mb

    def build(
        self, runtime: Runtime, materialize: bool = False
    ) -> list[DataRef]:
        """Submit ``levels`` rounds of one task per block."""
        blocking = self.blocking
        cost = synthetic_cost(
            blocking.block.m,
            blocking.block.n,
            self.parallel_ratio,
            self.flops_per_element,
        )
        data = DistributedArray.create(
            runtime, blocking, name="S", materialize=materialize
        )
        refs = list(data.blocks())
        with runtime:
            for _ in range(self.levels):
                refs = [synthetic_stage(ref, _cost=cost) for ref in refs]
        return refs

    def task_costs(self) -> dict[str, TaskCost]:
        """Per-task-type costs for analytic experiments."""
        return {
            "synthetic_stage": synthetic_cost(
                self.blocking.block.m,
                self.blocking.block.n,
                self.parallel_ratio,
                self.flops_per_element,
            )
        }
