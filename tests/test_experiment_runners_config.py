"""Tests for runner configuration plumbing (custom clusters, statuses)."""

import dataclasses

import pytest

from repro.algorithms import KMeansWorkflow, MatmulWorkflow
from repro.core.experiments.runners import (
    STATUS_CPU_OOM,
    STATUS_GPU_OOM,
    run_workflow,
)
from repro.data import paper_datasets
from repro.hardware import minotauro


@pytest.fixture(scope="module")
def datasets():
    return paper_datasets()


class TestCustomClusterPlumbing:
    def test_bigger_gpu_memory_clears_oom(self, datasets):
        workflow = MatmulWorkflow(datasets["matmul_8gb"], grid=1)
        default = run_workflow(
            MatmulWorkflow(datasets["matmul_8gb"], grid=1), use_gpu=True
        )
        assert default.status == STATUS_GPU_OOM
        big = minotauro()
        big = dataclasses.replace(
            big,
            node=dataclasses.replace(
                big.node,
                gpu=dataclasses.replace(big.node.gpu, memory_bytes=48 * 1024**3),
            ),
        )
        roomy = run_workflow(workflow, use_gpu=True, cluster=big)
        assert roomy.status == "ok"

    def test_smaller_ram_triggers_cpu_oom(self, datasets):
        tiny = minotauro()
        tiny = dataclasses.replace(
            tiny, node=dataclasses.replace(tiny.node, ram_bytes=1 * 1024**3)
        )
        metrics = run_workflow(
            KMeansWorkflow(datasets["kmeans_10gb"], grid_rows=2, n_clusters=10),
            use_gpu=False,
            cluster=tiny,
        )
        assert metrics.status == STATUS_CPU_OOM
        assert metrics.parallel_task_time == 0.0

    def test_more_nodes_speed_up_distributed_runs(self, datasets):
        def makespan(nodes):
            return run_workflow(
                KMeansWorkflow(
                    datasets["kmeans_10gb"], grid_rows=128, n_clusters=100,
                    iterations=1,
                ),
                use_gpu=False,
                cluster=minotauro(num_nodes=nodes),
            ).makespan

        assert makespan(8) < makespan(2)

    def test_dag_shape_recorded_even_on_oom(self, datasets):
        metrics = run_workflow(
            MatmulWorkflow(datasets["matmul_8gb"], grid=1), use_gpu=True
        )
        assert metrics.dag_width == 1
        assert metrics.num_tasks == 1
        assert metrics.error  # carries the OOM message

    def test_movement_metrics_populated_on_success(self, datasets):
        metrics = run_workflow(
            KMeansWorkflow(datasets["kmeans_10gb"], grid_rows=16), use_gpu=False
        )
        assert metrics.movement is not None
        assert metrics.movement.num_cores > 0
