"""Meta-benchmark — the simulator's own throughput.

Unlike the figure benches (which measure *simulated* time), this one
measures the wall-clock cost of running the discrete-event simulation,
as a regression guard: the heaviest single configuration in the suite
(Matmul 16x16, 7936 tasks with full storage contention) must stay fast
enough that the full evaluation regenerates in minutes.
"""

import time

from repro.algorithms import MatmulWorkflow
from repro.data import paper_datasets
from repro.runtime import Runtime, RuntimeConfig


def test_simulator_throughput(benchmark):
    dataset = paper_datasets()["matmul_8gb"]

    def run():
        runtime = Runtime(RuntimeConfig(use_gpu=False))
        MatmulWorkflow(dataset, grid=16).build(runtime)
        started = time.perf_counter()
        result = runtime.run()
        elapsed = time.perf_counter() - started
        return len(result.trace.tasks), elapsed

    tasks, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    rate = tasks / elapsed
    print(f"\nsimulated {tasks} tasks in {elapsed:.2f}s wall "
          f"({rate:,.0f} tasks/s)")
    assert tasks == 7936
    # Regression guard: the dispatcher fix keeps this configuration in
    # single-digit seconds; alert if it regresses by an order of magnitude.
    assert rate > 500
