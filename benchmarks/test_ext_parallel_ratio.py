"""Extension benchmark — the parallel/serial transition (§5.5.1).

Sweeps the synthetic workload's parallel ratio between the paper's two
algorithm families and locates the break-even point where GPUs start to
pay off, comparing the simulated measurement against the analytic
Amdahl-with-overhead prediction — the "method to decide when it is worth
exploiting GPUs based on the ratio of parallel / serial code" the paper
proposes as future work.
"""

from repro.core.experiments import run_parallel_ratio_sweep


def test_parallel_ratio_transition(once):
    result = once(run_parallel_ratio_sweep)
    print()
    print(result.render())
    measured = result.breakeven_ratio()
    predicted = result.breakeven_ratio(predicted=True)
    assert measured is not None and 0.0 < measured < 1.0
    assert predicted == measured
    # The transition is monotone once the GPU engages (ratio > 0): more
    # parallel code, more GPU gain.
    values = [
        p.measured_user_code_speedup
        for p in result.points
        if p.parallel_ratio > 0 and p.measured_user_code_speedup is not None
    ]
    assert values == sorted(values)
