"""Deterministic discrete-event simulation core.

The :class:`Simulator` keeps a priority queue of scheduled callbacks keyed by
``(time, sequence)``.  The sequence number makes execution order fully
deterministic for events scheduled at the same simulated instant, which in
turn makes every experiment in this repository reproducible bit-for-bit.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised when the simulation is driven in an inconsistent way."""


class ScheduledEvent:
    """A callback scheduled at a simulated time.

    Instances are returned by :meth:`Simulator.schedule` so callers can cancel
    pending events (e.g. a processor-sharing resource rescheduling the next
    completion when a new job arrives).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def cancel(self) -> None:
        """Mark the event so the event loop skips it."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"ScheduledEvent(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule(2.0, seen.append, "b")
    >>> _ = sim.schedule(1.0, seen.append, "a")
    >>> sim.run()
    >>> seen
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self) -> None:
        self._queue: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (useful for diagnostics)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (cancelled events included)."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = ScheduledEvent(self._now + delay, next(self._seq), callback, args)
        # The event itself carries the monotonic sequence number that
        # makes same-time orderings total and FIFO.
        heapq.heappush(self._queue, event)  # repro: disable=DL003
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        return self.schedule(time - self._now, callback, *args)

    def run(self, until: float | None = None) -> None:
        """Run events until the queue drains or simulated time passes ``until``.

        When ``until`` is given, events scheduled after it remain queued and
        the clock is advanced exactly to ``until``.
        """
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and event.time > until:
                self._now = until
                return
            heapq.heappop(self._queue)
            self._now = event.time
            self._processed += 1
            event.callback(*event.args)
        if until is not None and until > self._now:
            self._now = until

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args)
            return True
        return False
