"""Chaos-harness contracts: keyed decisions are deterministic and
well-distributed, and a pool under real injected kills/hangs/slowdowns
still merges bit-identically to a serial run — with quarantine kicking
in, not an infinite retry loop, when a plan is poisonous by design."""

from __future__ import annotations

import pytest

from repro.core.chaos import (
    CHAOS_EXIT_CODE,
    HANG,
    KILL,
    NONE,
    SLOW,
    ChaosAction,
    ChaosPlan,
)
from repro.core.shard import ShardCrashError, ShardItem, ShardPool
from repro.core.supervise import REASON_HEARTBEAT, SupervisionPolicy
from tests.test_shard import _SHARD_KEYS, _digest_golden_cell, _identity


class TestChaosPlan:
    def test_decisions_are_keyed_not_streamed(self):
        """The verdict for (instance, attempt) depends only on the plan
        values — two equal plans agree on every draw, in any order."""
        a = ChaosPlan(seed=3, kill_probability=0.2, hang_probability=0.2,
                      slow_probability=0.3)
        b = ChaosPlan(seed=3, kill_probability=0.2, hang_probability=0.2,
                      slow_probability=0.3)
        keys = [f"cell-{i}" for i in range(50)]
        forward = [a.decide(k, 1) for k in keys]
        backward = [b.decide(k, 1) for k in reversed(keys)]
        assert forward == list(reversed(backward))
        # And a different seed actually changes the schedule.
        c = ChaosPlan(seed=4, kill_probability=0.2, hang_probability=0.2,
                      slow_probability=0.3)
        assert [c.decide(k, 1) for k in keys] != forward

    def test_probability_one_always_fires(self):
        plan = ChaosPlan(seed=0, kill_probability=1.0)
        assert all(plan.decide(i, 1).kind == KILL for i in range(20))

    def test_faults_stop_after_fault_attempts(self):
        plan = ChaosPlan(seed=0, kill_probability=1.0, fault_attempts=2)
        assert plan.decide("x", 1).kind == KILL
        assert plan.decide("x", 2).kind == KILL
        assert plan.decide("x", 3) == ChaosAction(NONE)

    def test_zero_probabilities_are_a_noop_plan(self):
        plan = ChaosPlan(seed=99)
        assert all(plan.decide(i, 1) == ChaosAction(NONE) for i in range(20))

    def test_slow_sleep_stays_in_the_configured_range(self):
        plan = ChaosPlan(seed=1, slow_probability=1.0, slow_seconds=(0.2, 0.5))
        actions = [plan.decide(i, 1) for i in range(100)]
        assert all(a.kind == SLOW for a in actions)
        assert all(0.2 <= a.seconds <= 0.5 for a in actions)
        # Hangs carry their sleep too.
        hung = ChaosPlan(seed=1, hang_probability=1.0, hang_seconds=12.0)
        assert hung.decide("x", 1) == ChaosAction(HANG, 12.0)

    def test_json_round_trip(self):
        plan = ChaosPlan(seed=23, kill_probability=0.25, hang_probability=0.1,
                         slow_probability=0.25, hang_seconds=60.0,
                         slow_seconds=(0.05, 0.2), fault_attempts=2)
        assert ChaosPlan.from_json(plan.to_json()) == plan

    def test_validation(self):
        with pytest.raises(ValueError, match="kill_probability"):
            ChaosPlan(kill_probability=1.5)
        with pytest.raises(ValueError, match="sum to <= 1"):
            ChaosPlan(kill_probability=0.6, hang_probability=0.6)
        with pytest.raises(ValueError, match="slow_seconds"):
            ChaosPlan(slow_seconds=(0.5, 0.1))


# ------------------------------------------------ chaos under real pools

#: A subset of the golden-matrix cells (the full set is exercised by
#: tests/test_shard.py); enough for the seeded plan to land real faults.
_CHAOS_KEYS = _SHARD_KEYS[:4]


def _chaos_plan() -> ChaosPlan:
    return ChaosPlan(
        seed=0,  # on _CHAOS_KEYS: two kills, one slowdown, one clean run
        kill_probability=0.35,
        slow_probability=0.35,
        slow_seconds=(0.01, 0.05),
        fault_attempts=1,
    )


def _chaos_policy() -> SupervisionPolicy:
    return SupervisionPolicy(max_attempts=3, kill_grace=0.5)


@pytest.fixture(scope="module")
def serial_digests() -> dict[str, str]:
    return {key: _digest_golden_cell(key) for key in _CHAOS_KEYS}


class TestChaosBitIdentity:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_chaotic_shards_match_serial_golden_digests(
        self, serial_digests, start_method
    ):
        """Host faults may delay results but never change them: kills and
        slowdowns leave the merged digests bit-identical to serial."""
        plan = _chaos_plan()
        kills = [k for k in _CHAOS_KEYS if plan.decide(k, 1).kind == KILL]
        assert kills, "seeded plan landed no kills; test would prove nothing"
        with ShardPool(
            workers=2,
            start_method=start_method,
            policy=_chaos_policy(),
            chaos=plan,
        ) as pool:
            report = pool.run_report(
                [
                    ShardItem(instance_id=key, fn=_digest_golden_cell, args=(key,))
                    for key in _CHAOS_KEYS
                ]
            )
        assert report.ok
        assert report.results == serial_digests
        assert report.worker_crashes >= len(kills)
        # Every killed instance needed (exactly) a second dispatch.
        assert set(report.attempts) == set(kills)
        assert all(report.attempts[k] == 2 for k in kills)


class TestChaosFailurePaths:
    def test_poison_plan_quarantines_after_the_attempt_budget(self):
        """fault_attempts >= max_attempts makes an instance kill every
        worker it touches; the supervisor must quarantine it rather than
        burn the whole respawn budget looping."""
        plan = ChaosPlan(seed=0, kill_probability=1.0, fault_attempts=99)
        with ShardPool(
            workers=2,
            start_method="fork",
            policy=SupervisionPolicy(max_attempts=2, kill_grace=0.5),
            chaos=plan,
        ) as pool:
            report = pool.run_report(
                [ShardItem(instance_id="poison", fn=_identity, args=(1,))]
            )
        assert report.results == {}
        assert "poison" in report.quarantined
        reason = report.quarantined["poison"]
        assert "killed its worker 2 time(s)" in reason
        assert f"exit code {CHAOS_EXIT_CODE}" in reason

    def test_run_raises_shard_crash_error_for_quarantined_instances(self):
        plan = ChaosPlan(seed=0, kill_probability=1.0, fault_attempts=99)
        with ShardPool(
            workers=1,
            start_method="fork",
            policy=SupervisionPolicy(max_attempts=2, kill_grace=0.5),
            chaos=plan,
        ) as pool:
            with pytest.raises(ShardCrashError, match="quarantined after"):
                pool.run([ShardItem(instance_id=0, fn=_identity, args=(1,))])

    def test_injected_hang_is_detected_by_heartbeats(self):
        """A chaos hang suspends the worker's beats, so the heartbeat
        timeout — not the 60 s sleep — must reclaim the worker, and the
        clean retry completes the instance."""
        plan = ChaosPlan(
            seed=0, hang_probability=1.0, hang_seconds=60.0, fault_attempts=1
        )
        policy = SupervisionPolicy(
            heartbeat_interval=0.2,
            heartbeat_grace=3.0,
            max_attempts=3,
            kill_grace=0.3,
        )
        events = []
        with ShardPool(
            workers=1, start_method="fork", policy=policy, chaos=plan
        ) as pool:
            report = pool.run_report(
                [ShardItem(instance_id="sleepy", fn=_identity, args=(5,))],
                on_event=lambda kind, info: events.append((kind, info)),
            )
        assert report.ok
        assert report.results == {"sleepy": 5}
        assert report.worker_kills >= 1
        kills = [info for kind, info in events if kind == "kill"]
        assert any(k["reason"] == REASON_HEARTBEAT for k in kills)
        assert report.attempts == {"sleepy": 2}
