"""Consistency contract: simulation == analytics in the uncontended case.

docs/architecture.md promises that single-task analytics (the cost model
and the Amdahl module) agree exactly with what the simulator measures for
one task on an idle cluster.  These tests enforce the contract for every
workload family, on both processor types.
"""

import pytest

from repro.algorithms import (
    KMeansWorkflow,
    LinearRegressionWorkflow,
    MatmulFmaWorkflow,
    MatmulWorkflow,
    SyntheticWorkflow,
)
from repro.core.experiments.runners import run_workflow
from repro.data import DatasetSpec, paper_datasets
from repro.hardware import minotauro
from repro.perfmodel import CostModel


@pytest.fixture(scope="module")
def model():
    return CostModel(minotauro())


def _measured_user_code(workflow, use_gpu):
    metrics = run_workflow(workflow, use_gpu=use_gpu)
    assert metrics.ok
    return metrics.user_code[workflow.primary_task_type]


CASES = [
    (
        "matmul",
        lambda: MatmulWorkflow(paper_datasets()["matmul_8gb"], grid=4),
    ),
    (
        "matmul_fma",
        lambda: MatmulFmaWorkflow(paper_datasets()["matmul_8gb"], grid=4),
    ),
    (
        "kmeans",
        lambda: KMeansWorkflow(
            paper_datasets()["kmeans_10gb"], grid_rows=64, n_clusters=10
        ),
    ),
    (
        "linreg",
        lambda: LinearRegressionWorkflow(
            DatasetSpec("lin_cons", rows=10_000_000, cols=100), grid_rows=64
        ),
    ),
    (
        "synthetic",
        lambda: SyntheticWorkflow(
            DatasetSpec("syn_cons", rows=2_000_000, cols=100),
            grid_rows=32,
            parallel_ratio=0.6,
        ),
    ),
]


class TestStageConsistency:
    @pytest.mark.parametrize("name,factory", CASES)
    @pytest.mark.parametrize("use_gpu", [False, True])
    def test_measured_stages_match_cost_model(self, model, name, factory, use_gpu):
        workflow = factory()
        cost = workflow.task_costs()[workflow.primary_task_type]
        expected = model.stage_times(cost, use_gpu=use_gpu)
        measured = _measured_user_code(factory(), use_gpu)
        assert measured.serial_fraction == pytest.approx(
            expected.serial_fraction, rel=1e-9, abs=1e-12
        )
        assert measured.parallel_fraction == pytest.approx(
            expected.parallel_fraction, rel=1e-9, abs=1e-12
        )
        # PCIe transfers run through the contended bus; with at most 4
        # concurrent transfers per node capped at the per-transfer rate,
        # the uncontended duration must match the analytic time.
        assert measured.cpu_gpu_comm == pytest.approx(
            expected.cpu_gpu_comm, rel=0.05, abs=1e-6
        )

    @pytest.mark.parametrize("name,factory", CASES)
    def test_measured_user_code_speedup_matches_amdahl(self, model, name, factory):
        from repro.perfmodel.amdahl import predict

        workflow = factory()
        cost = workflow.task_costs()[workflow.primary_task_type]
        predicted = predict(cost, model).user_code_speedup
        cpu = _measured_user_code(factory(), use_gpu=False).user_code
        gpu = _measured_user_code(factory(), use_gpu=True).user_code
        assert cpu / gpu == pytest.approx(predicted, rel=0.05)
