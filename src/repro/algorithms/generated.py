"""WfBench-style generated workflows: parameterised synthetic DAGs.

WfBench (Coleman et al., arXiv:2210.03170) generates workflow benchmarks
whose *shape* (width, depth, fan-in) and *per-task footprint* (compute
and data volume) are free parameters, so schedulers and runtimes can be
stressed far beyond the task counts of any one real application.  This
module provides the same idea for the simulated runtime: a deterministic
generator that grows a layered DAG of compute tasks with seeded random
cross-level edges and per-task cost profiles.

The generator is used three ways in this repository:

* the ``repro bench`` workload matrix runs a *wide* generated DAG to
  measure simulator throughput on a shape no paper figure covers;
* the golden-trace equivalence suite replays small generated DAGs across
  every scheduling policy;
* Hypothesis property tests compare the executor's incremental ready-set
  and locality-index state against from-scratch recomputation on random
  generated DAGs.

Everything is driven by one integer seed; the same seed always yields the
same DAG, the same costs, and therefore (on the deterministic simulated
backend) the same trace, bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel import TaskCost
from repro.runtime import DataRef, Runtime

_ELEM = 8


def generated_stage_cost(
    input_bytes: int,
    output_bytes: int,
    flops_per_byte: float,
    parallel_ratio: float,
) -> TaskCost:
    """Cost profile of one generated task from its data footprint.

    The FLOP budget is proportional to the bytes read; ``parallel_ratio``
    splits it between the serial and parallel fractions, mirroring
    :mod:`repro.algorithms.synthetic`.
    """
    if not 0.0 <= parallel_ratio <= 1.0:
        raise ValueError("parallel_ratio must be in [0, 1]")
    if flops_per_byte < 0:
        raise ValueError("flops_per_byte must be non-negative")
    total_flops = flops_per_byte * input_bytes
    parallel_flops = total_flops * parallel_ratio
    elements = max(input_bytes // _ELEM, 1)
    return TaskCost(
        serial_flops=total_flops - parallel_flops,
        parallel_flops=parallel_flops,
        parallel_items=float(elements) if parallel_flops else 0.0,
        arithmetic_intensity=max(flops_per_byte * parallel_ratio / 2.0, 1e-6),
        input_bytes=input_bytes,
        output_bytes=output_bytes,
        host_device_bytes=(input_bytes + output_bytes) if parallel_flops else 0,
        gpu_memory_bytes=input_bytes + output_bytes,
        host_memory_bytes=input_bytes + output_bytes,
    )


class GeneratedDagWorkflow:
    """A layered random DAG with seeded shape and cost parameters.

    Parameters
    ----------
    width:
        Tasks per level (the DAG's parallel width).
    depth:
        Number of task levels.
    fan_in:
        Inputs per task, sampled (with the workflow's seed) from the
        previous level's outputs; level 0 reads the registered input
        blocks.  Capped at the width.
    block_mb:
        Size of every data block moved between levels, in MiB.
    flops_per_byte:
        Compute budget per input byte (sets task weight).
    parallel_ratio:
        Fraction of the FLOP budget in the parallel (GPU-eligible)
        fraction; 0 makes every task serial-only.
    sink:
        Append one final task consuming every last-level output, turning
        the wide DAG into a funnel (adds a synchronisation point).
    seed:
        Drives edge sampling; same seed, same DAG.
    """

    name = "generated"
    parallel_task_types = frozenset({"gen_stage"})
    primary_task_type = "gen_stage"

    def __init__(
        self,
        width: int = 64,
        depth: int = 4,
        fan_in: int = 3,
        block_mb: float = 4.0,
        flops_per_byte: float = 50.0,
        parallel_ratio: float = 0.8,
        sink: bool = True,
        seed: int = 0,
    ) -> None:
        if width < 1:
            raise ValueError("width must be >= 1")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if fan_in < 1:
            raise ValueError("fan_in must be >= 1")
        if block_mb <= 0:
            raise ValueError("block_mb must be positive")
        self.width = width
        self.depth = depth
        self.fan_in = min(fan_in, width)
        self.block_bytes = int(block_mb * 2**20)
        self.flops_per_byte = flops_per_byte
        self.parallel_ratio = parallel_ratio
        self.sink = sink
        self.seed = seed

    @property
    def num_tasks(self) -> int:
        """Tasks the generator will submit."""
        return self.width * self.depth + (1 if self.sink else 0)

    @property
    def block_mb(self) -> float:
        """Block size label, for table axes."""
        return self.block_bytes / 2**20

    def build(self, runtime: Runtime) -> DataRef | list[DataRef]:
        """Submit the generated DAG; returns the terminal ref(s)."""
        rng = np.random.default_rng(self.seed)
        stage_cost = generated_stage_cost(
            input_bytes=self.fan_in * self.block_bytes,
            output_bytes=self.block_bytes,
            flops_per_byte=self.flops_per_byte,
            parallel_ratio=self.parallel_ratio,
        )
        previous: list[DataRef] = [
            runtime.register_input(self.block_bytes, name=f"gen_in{i}")
            for i in range(self.width)
        ]
        for _ in range(self.depth):
            current: list[DataRef] = []
            for _ in range(self.width):
                picks = rng.choice(len(previous), size=self.fan_in, replace=False)
                inputs = [previous[int(p)] for p in sorted(picks)]
                (out,) = runtime.submit(
                    name="gen_stage",
                    inputs=inputs,
                    cost=stage_cost,
                    output_bytes=[self.block_bytes],
                )
                current.append(out)
            previous = current
        if not self.sink:
            return previous
        sink_cost = generated_stage_cost(
            input_bytes=self.width * self.block_bytes,
            output_bytes=self.block_bytes,
            flops_per_byte=self.flops_per_byte,
            parallel_ratio=0.0,
        )
        (final,) = runtime.submit(
            name="gen_sink",
            inputs=previous,
            cost=sink_cost,
            output_bytes=[self.block_bytes],
        )
        return final

    def task_costs(self) -> dict[str, TaskCost]:
        """Per-task-type costs for analytic experiments."""
        return {
            "gen_stage": generated_stage_cost(
                input_bytes=self.fan_in * self.block_bytes,
                output_bytes=self.block_bytes,
                flops_per_byte=self.flops_per_byte,
                parallel_ratio=self.parallel_ratio,
            )
        }
