"""Tests for the automated-design advisor (§5.4.3)."""

import pytest

from repro.algorithms import KMeansWorkflow, MatmulWorkflow
from repro.core.advisor import WorkflowAdvisor
from repro.data import paper_datasets
from repro.hardware import StorageKind
from repro.runtime import SchedulingPolicy


@pytest.fixture(scope="module")
def advisor():
    return WorkflowAdvisor()


@pytest.fixture(scope="module")
def datasets():
    return paper_datasets()


class TestAnalyticScreen:
    def test_matmul_task_split(self, advisor, datasets):
        workflow = MatmulWorkflow(datasets["matmul_8gb"], grid=4)
        verdicts = advisor.screen_gpu(workflow)
        # The paper's Figure 8: matmul_func is worth accelerating,
        # add_func never is.
        assert verdicts["matmul_func"] is True
        assert verdicts["add_func"] is False

    def test_kmeans_low_clusters_marginal(self, advisor, datasets):
        workflow = KMeansWorkflow(datasets["kmeans_10gb"], 64, n_clusters=10)
        predicted = advisor.predict_user_code_speedup(workflow)
        assert 1.0 < predicted < 1.6

    def test_kmeans_many_clusters_attractive(self, advisor, datasets):
        low = advisor.predict_user_code_speedup(
            KMeansWorkflow(datasets["kmeans_10gb"], 64, n_clusters=10)
        )
        high = advisor.predict_user_code_speedup(
            KMeansWorkflow(datasets["kmeans_10gb"], 64, n_clusters=1000)
        )
        assert high > 3 * low

    def test_fits_gpu(self, advisor, datasets):
        assert advisor.fits_gpu(MatmulWorkflow(datasets["matmul_8gb"], grid=4))
        assert not advisor.fits_gpu(MatmulWorkflow(datasets["matmul_8gb"], grid=1))


class TestRecommendation:
    @pytest.fixture(scope="class")
    def recommendation(self, datasets):
        advisor = WorkflowAdvisor()
        family = lambda grid: KMeansWorkflow(  # noqa: E731
            datasets["kmeans_10gb"], grid_rows=grid, n_clusters=10, iterations=3
        )
        return advisor.recommend(
            family,
            grids=(128, 16, 2),
            storages=(StorageKind.LOCAL, StorageKind.SHARED),
            policies=(SchedulingPolicy.GENERATION_ORDER,),
        )

    def test_best_is_fastest(self, recommendation):
        ranking = recommendation.ranking()
        assert recommendation.best == ranking[0]
        times = [c.parallel_task_time for c in ranking]
        assert times == sorted(times)

    def test_prefers_fine_grain_and_local_disk(self, recommendation):
        # For cheap K-means tasks, the known-good configuration.
        assert recommendation.best.grid == 128
        assert recommendation.best.storage is StorageKind.LOCAL

    def test_covers_full_space(self, recommendation):
        # 3 grids x 2 processors x 2 storages x 1 policy = 12 runs.
        assert len(recommendation.candidates) == 12

    def test_render(self, recommendation):
        text = recommendation.render()
        assert "Advisor ranking" in text
        assert "grid 128" in text


class TestOomPruning:
    def test_oom_grid_pruned_without_simulation(self, datasets):
        advisor = WorkflowAdvisor()
        family = lambda grid: MatmulWorkflow(  # noqa: E731
            datasets["matmul_8gb"], grid=grid
        )
        recommendation = advisor.recommend(
            family,
            grids=(4, 1),
            processors=(True,),
            storages=(StorageKind.SHARED,),
            policies=(SchedulingPolicy.GENERATION_ORDER,),
        )
        oom = [c for c in recommendation.candidates if c.status == "gpu_oom"]
        assert len(oom) == 1
        assert oom[0].grid == 1
        assert oom[0].parallel_task_time is None

    def test_no_feasible_configuration_raises(self, datasets):
        advisor = WorkflowAdvisor()
        family = lambda grid: MatmulWorkflow(  # noqa: E731
            datasets["matmul_8gb"], grid=grid
        )
        with pytest.raises(ValueError, match="no feasible"):
            advisor.recommend(
                family,
                grids=(1,),
                processors=(True,),
                storages=(StorageKind.SHARED,),
                policies=(SchedulingPolicy.GENERATION_ORDER,),
            )
