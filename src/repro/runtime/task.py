"""Task definitions and the ``@task`` decorator.

A :class:`Task` couples the information both backends need: the real
Python function (executed by the in-process backend) and the
:class:`~repro.perfmodel.TaskCost` demands (consumed by the simulated
backend).  Tasks whose user code has a parallel fraction
(``cost.parallel_flops > 0``) are GPU-eligible; serial tasks always run on
CPU cores, following §3.3.

The :func:`task` decorator provides PyCOMPSs-style sugar: calling a
decorated function while a :class:`~repro.runtime.runtime.Runtime` is
active records a task and returns future :class:`DataRef` handles instead
of executing immediately; with no active runtime the function just runs.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.perfmodel import TaskCost
from repro.runtime.data import DataRef


@dataclass(eq=False)
class Task:
    """One vertex of the workflow DAG."""

    task_id: int
    name: str
    inputs: tuple[DataRef, ...]
    outputs: tuple[DataRef, ...]
    cost: TaskCost | None = None
    fn: Callable[..., Any] | None = None
    args: tuple[Any, ...] = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    #: Analyzer codes (``WFnnn``) suppressed for this task — the
    #: task-level counterpart of ``AnalysisOptions.ignore``.  Set via
    #: ``@task(ignore={...})`` or ``Runtime.submit(ignore={...})`` for
    #: findings that are reviewed and accepted (e.g. a deliberately
    #: tiny kernel tripping WF201).
    ignore: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        self.ignore = frozenset(self.ignore)
        for ref in self.outputs:
            ref.producer = self.task_id

    @property
    def gpu_eligible(self) -> bool:
        """Whether the task has a parallel fraction a GPU can accelerate."""
        return self.cost is not None and self.cost.parallel_flops > 0

    @property
    def input_bytes(self) -> int:
        """Total bytes of all input refs."""
        return sum(ref.size_bytes for ref in self.inputs)

    @property
    def output_bytes(self) -> int:
        """Total bytes of all output refs."""
        return sum(ref.size_bytes for ref in self.outputs)

    def __hash__(self) -> int:
        return hash(self.task_id)

    def __repr__(self) -> str:
        return (
            f"Task(#{self.task_id} {self.name}, "
            f"{len(self.inputs)} in / {len(self.outputs)} out)"
        )


class TaskFunction:
    """A function registered as a task type via :func:`task`."""

    def __init__(
        self,
        fn: Callable[..., Any],
        returns: int,
        name: str | None = None,
        ignore: Iterable[str] = (),
    ) -> None:
        if returns < 0:
            raise ValueError("returns must be non-negative")
        self.fn = fn
        self.returns = returns
        self.name = name or fn.__name__
        self.ignore = frozenset(ignore)
        functools.update_wrapper(self, fn)

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        from repro.runtime.runtime import current_runtime

        runtime = current_runtime()
        if runtime is None:
            return self.fn(*args, **kwargs)
        cost: TaskCost | None = kwargs.pop("_cost", None)
        output_bytes: Sequence[int] | None = kwargs.pop("_output_bytes", None)
        refs = runtime.submit(
            name=self.name,
            fn=self.fn,
            inputs=[a for a in args if isinstance(a, DataRef)],
            args=args,
            kwargs=kwargs,
            cost=cost,
            n_outputs=self.returns,
            output_bytes=output_bytes,
            ignore=self.ignore,
        )
        if self.returns == 0:
            return None
        if self.returns == 1:
            return refs[0]
        return tuple(refs)


def task(
    returns: int = 1,
    name: str | None = None,
    ignore: Iterable[str] = (),
) -> Callable[[Callable[..., Any]], TaskFunction]:
    """Register a function as a task type (PyCOMPSs-style decorator).

    Parameters
    ----------
    returns:
        How many data objects the task produces.
    name:
        Task-type name used in traces; defaults to the function name.
    ignore:
        Analyzer codes (``WFnnn``) suppressed for tasks of this type —
        reviewed-and-accepted findings that ``repro lint`` should stop
        reporting (see ``docs/linting.md``).

    When invoked under an active runtime, pass ``_cost=`` (a
    :class:`TaskCost`) and optionally ``_output_bytes=`` (sizes of each
    produced object; defaults to ``cost.output_bytes`` split evenly).
    """

    def decorate(fn: Callable[..., Any]) -> TaskFunction:
        return TaskFunction(fn, returns=returns, name=name, ignore=ignore)

    return decorate
