"""Differential harness: the batched kernel must equal the recorded oracle.

The batched event core (flat heap records, batched ready-set dispatch,
vectorized stage-time evaluation) replaced the legacy object-per-event
``reference`` kernel.  Before that kernel was deleted, every cell of the
kernel corpus (``tests/kernel_corpus.py``) was executed under it and the
trace digests were frozen into
``tests/golden/kernel_oracle_digests.json`` by
``scripts/record_kernel_oracle.py``.  Those digests are the oracle: the
batched kernel is only allowed to be *faster* than the kernel they were
recorded under — never different (task dispatch order, per-stage times,
attempt histories, makespan and failed-task sets, via
:func:`repro.tracing.trace_digest`).

Three layers:

* the corpus replayed against the frozen oracle digests — covering the
  batched fast path (zero-latency clusters, where whole ready batches
  are drained in one scheduler activation), every configuration that
  must fall back to the interleaved dispatch loop (fault plans, lineage
  recovery, speculation, checkpoint barriers, nonzero dispatch latency),
  GPU mode, and the same-instant completion-cascade shape that exposed
  the original drain bug;
* a Hypothesis property comparing batched ready-set drains against a
  forced interleaved dispatch loop over random DAG shapes — the two
  dispatch modes must stay bit-identical now that the old kernel can no
  longer arbitrate between them;
* guards that the removed kernel stays removed: requesting it raises a
  pointed error at both the config and the engine layer.

A failure in the oracle layer means the batched kernel changed execution
semantics — fix the kernel, never the recorded digests.
"""

from __future__ import annotations

import json
import pathlib

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms import GeneratedDagWorkflow
from repro.hardware import StorageKind
from repro.runtime import Runtime, RuntimeConfig, SchedulingPolicy
from repro.runtime.backends.simulated import SimulatedExecutor
from repro.sim import SimulationError, Simulator
from tests.kernel_corpus import corpus_cases, run_digest, zero_latency_cluster

ORACLE_PATH = pathlib.Path(__file__).parent / "golden" / "kernel_oracle_digests.json"
ORACLE_SCHEMA = "repro-kernel-oracle/1"


@pytest.fixture(scope="module")
def oracle() -> dict[str, str]:
    payload = json.loads(ORACLE_PATH.read_text())
    assert payload["schema"] == ORACLE_SCHEMA
    return payload["digests"]


_CASES = corpus_cases()


@pytest.mark.parametrize("name", sorted(_CASES))
def test_corpus_matches_recorded_oracle(name, oracle):
    """Every corpus cell must reproduce its frozen reference digest."""
    assert name in oracle, (
        f"corpus cell {name!r} has no recorded oracle digest; run "
        "scripts/record_kernel_oracle.py ONLY if the cell is new — "
        "existing digests must never be re-recorded to absorb a kernel "
        "change"
    )
    make_config, workflow = _CASES[name]
    digest = run_digest(make_config(), workflow)
    assert digest == oracle[name], (
        f"{name}: batched kernel diverged from the recorded oracle digest\n"
        f"  expected {oracle[name][:16]}...\n"
        f"  got      {digest[:16]}...\n"
        "The oracle was recorded under the legacy reference kernel before "
        "its removal; a mismatch means the batched kernel changed "
        "execution semantics.  Fix the kernel, never the recording."
    )


def test_oracle_covers_whole_corpus(oracle):
    """No corpus cell may silently drop out of the recorded oracle."""
    assert sorted(oracle) == sorted(_CASES)


# ------------------------------------------- dispatch-mode equivalence

@given(
    width=st.integers(min_value=2, max_value=10),
    depth=st.integers(min_value=1, max_value=6),
    fan_in=st.integers(min_value=1, max_value=4),
    block_mb=st.sampled_from([0.25, 1.0, 4.0]),
    seed=st.integers(min_value=0, max_value=2**16),
    num_nodes=st.integers(min_value=2, max_value=6),
    policy=st.sampled_from(sorted(SchedulingPolicy, key=lambda p: p.value)),
    storage=st.sampled_from(sorted(StorageKind, key=lambda s: s.value)),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_batched_drain_equals_forced_dispatch_loop(
    width, depth, fan_in, block_mb, seed, num_nodes, policy, storage
):
    """Batched ready-set drains must equal the interleaved dispatch loop.

    Zero-latency clusters are the configurations where the batched
    dispatcher actually drains whole ready batches in one activation, so
    this property pins the drain path against the one-decision-per-yield
    loop it claims to be equivalent to.  The monkeypatch-free runs and
    the forced-loop runs must produce bit-identical traces.
    """
    workflow = GeneratedDagWorkflow(
        width=width, depth=depth, fan_in=fan_in, block_mb=block_mb, seed=seed
    )

    def make_config():
        return RuntimeConfig(
            cluster=zero_latency_cluster(num_nodes),
            scheduling=policy,
            storage=storage,
            use_gpu=False,
        )

    batched = run_digest(make_config(), workflow)
    original = SimulatedExecutor._force_dispatch_loop
    SimulatedExecutor._force_dispatch_loop = True
    try:
        forced = run_digest(make_config(), workflow)
    finally:
        SimulatedExecutor._force_dispatch_loop = original
    assert batched == forced, (
        "batched ready-set drain diverged from the interleaved dispatch "
        f"loop: {batched[:16]}... != {forced[:16]}..."
    )


def test_forced_loop_knob_actually_disables_draining(monkeypatch):
    """The test knob must force interleaved dispatch, or the property
    above would vacuously compare the drain path against itself."""
    calls: list[int] = []
    original_drain = SimulatedExecutor._drain_ready_batch

    def counting_drain(self, ready_view):
        calls.append(1)
        return original_drain(self, ready_view)

    monkeypatch.setattr(SimulatedExecutor, "_drain_ready_batch", counting_drain)

    def run_once() -> None:
        config = RuntimeConfig(cluster=zero_latency_cluster(), use_gpu=False)
        runtime = Runtime(config)
        GeneratedDagWorkflow(
            width=8, depth=3, fan_in=2, block_mb=0.25, seed=1
        ).build(runtime)
        runtime.run()

    run_once()
    assert calls, "a zero-latency run should take the batched drain path"
    calls.clear()
    monkeypatch.setattr(SimulatedExecutor, "_force_dispatch_loop", True)
    run_once()
    assert not calls, "the force knob must route dispatch through the loop"


# ------------------------------------------------ the kernel stays gone

def test_reference_kernel_removed_from_config():
    with pytest.raises(ValueError, match="was removed"):
        RuntimeConfig(sim_kernel="reference")


def test_reference_kernel_removed_from_engine():
    with pytest.raises(SimulationError, match="was removed"):
        Simulator(kernel="reference")


def test_unknown_kernel_still_rejected():
    with pytest.raises(SimulationError, match="unknown simulation kernel"):
        Simulator(kernel="warp")
