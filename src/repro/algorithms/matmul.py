"""Blocked matrix multiplication (dislib-style).

``C = A @ B`` over square ``g x g`` block grids.  Each output block
``C[i][j]`` is the sum of ``g`` partial products ``A[i][q] @ B[q][j]``:
``g`` ``matmul_func`` tasks (complexity O(N^3) in the block order N)
followed by a binary tree of ``add_func`` tasks (complexity O(N)), giving
the wide-shallow DAG of the paper's Figure 6b.  Both task types have fully
parallel user code (no serial fraction) — family (a) of §4.1.
"""

from __future__ import annotations

import numpy as np

from repro.data import Blocking, DatasetSpec, GridSpec
from repro.perfmodel import TaskCost
from repro.runtime import DataRef, Runtime, task
from repro.arrays import DistributedArray

#: Bytes per float64 element, matching the paper's datasets.
_ELEM = 8


@task(returns=1, name="matmul_func")
def matmul_func(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply two blocks."""
    return a @ b


@task(returns=1, name="add_func")
def add_func(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Add two partial-product blocks."""
    return a + b


def matmul_cost(m: int, p: int, n: int) -> TaskCost:
    """Cost of one ``matmul_func`` on blocks ``(m x p) @ (p x n)``.

    Compute-bound: 2mpn FLOPs over 8(mp + pn + mn) bytes touched, so the
    arithmetic intensity grows with the block order — the reason GPU
    speedup scales with block size in Figure 8.  Device memory holds all
    three blocks, which is the paper's "three times the block size" rule
    that OOMs the 8192 MB block (§5.3).
    """
    flops = 2.0 * m * p * n
    in_bytes = _ELEM * (m * p + p * n)
    out_bytes = _ELEM * m * n
    touched = in_bytes + out_bytes
    return TaskCost(
        serial_flops=0.0,
        parallel_flops=flops,
        parallel_items=float(m * n),
        arithmetic_intensity=flops / touched,
        input_bytes=in_bytes,
        output_bytes=out_bytes,
        host_device_bytes=in_bytes + out_bytes,
        gpu_memory_bytes=in_bytes + out_bytes,
        host_memory_bytes=2 * (in_bytes + out_bytes),
    )


def add_cost(m: int, n: int) -> TaskCost:
    """Cost of one ``add_func`` on ``m x n`` blocks.

    Memory-bound: 1 FLOP per 24 bytes touched.  Its O(N) parallel fraction
    is two orders of magnitude below ``matmul_func``'s O(N^3), which is why
    the GPU *loses* on this task at every block size (Figure 8): the PCIe
    transfer of three blocks dominates the negligible kernel.
    """
    flops = float(m * n)
    in_bytes = 2 * _ELEM * m * n
    out_bytes = _ELEM * m * n
    touched = in_bytes + out_bytes
    return TaskCost(
        serial_flops=0.0,
        parallel_flops=flops,
        parallel_items=float(m * n),
        arithmetic_intensity=flops / touched,
        input_bytes=in_bytes,
        output_bytes=out_bytes,
        host_device_bytes=in_bytes + out_bytes,
        gpu_memory_bytes=in_bytes + out_bytes,
        host_memory_bytes=2 * (in_bytes + out_bytes),
    )


class MatmulWorkflow:
    """Builds the blocked Matmul workflow for one (dataset, grid) pair."""

    name = "matmul"
    #: Task types counted by the parallel-task-time metric.
    parallel_task_types = frozenset({"matmul_func", "add_func"})
    #: The dominant task type used for stage-level speedups.
    primary_task_type = "matmul_func"

    def __init__(self, dataset: DatasetSpec, grid: int | GridSpec) -> None:
        if isinstance(grid, int):
            grid = GridSpec(k=grid, l=grid)
        if grid.k != grid.l:
            raise ValueError("Matmul uses square grids (hybrid chunking)")
        self.blocking = Blocking.from_grid(dataset, grid)

    @property
    def block_mb(self) -> float:
        """Block size label used on the figures' X axes."""
        return self.blocking.block_mb

    def build(
        self, runtime: Runtime, materialize: bool = False
    ) -> tuple[DistributedArray, DistributedArray, list[list[DataRef]]]:
        """Submit all tasks; returns (A, B, C block refs)."""
        blocking = self.blocking
        m, n = blocking.block.m, blocking.block.n
        g = blocking.grid.k
        a = DistributedArray.create(runtime, blocking, name="A", materialize=materialize)
        b = DistributedArray.create(runtime, blocking, name="B", materialize=materialize)
        mm_cost = matmul_cost(m, n, n)
        ad_cost = add_cost(m, n)
        c_refs: list[list[DataRef]] = []
        with runtime:
            for i in range(g):
                row: list[DataRef] = []
                for j in range(g):
                    partials = [
                        matmul_func(a.block(i, q), b.block(q, j), _cost=mm_cost)
                        for q in range(g)
                    ]
                    while len(partials) > 1:
                        next_round = []
                        for left, right in zip(partials[::2], partials[1::2]):
                            next_round.append(add_func(left, right, _cost=ad_cost))
                        if len(partials) % 2:
                            next_round.append(partials[-1])
                        partials = next_round
                    row.append(partials[0])
                c_refs.append(row)
        return a, b, c_refs

    def task_costs(self) -> dict[str, TaskCost]:
        """Per-task-type costs for analytic (single-task) experiments."""
        m, n = self.blocking.block.m, self.blocking.block.n
        costs = {"matmul_func": matmul_cost(m, n, n)}
        if self.blocking.grid.k > 1:
            costs["add_func"] = add_cost(m, n)
        return costs
