"""Tests for the Figure 11 factorial design itself (§5.4)."""

import pytest

from repro.core.experiments import SweepEngine
from repro.core.experiments.fig7 import run_fig7_for
from repro.core.experiments.fig11 import (
    FEATURES,
    PAPER_REFERENCE,
    SamplePlan,
    default_design,
    plan_cell,
    run_fig11,
)
from repro.hardware import StorageKind
from repro.runtime import SchedulingPolicy


@pytest.fixture(scope="module")
def design():
    return default_design()


class TestDesignStructure:
    def test_192_samples_like_the_paper(self, design):
        assert len(design) == 192

    def test_all_plans_unique(self, design):
        assert len(set(design)) == len(design)

    def test_covers_both_algorithms(self, design):
        algorithms = {plan.algorithm for plan in design}
        assert algorithms == {"matmul", "kmeans"}

    def test_covers_three_dataset_sizes_per_algorithm(self, design):
        for algorithm, expected in (
            ("matmul", {"matmul_128mb", "matmul_8gb", "matmul_32gb"}),
            ("kmeans", {"kmeans_100mb", "kmeans_10gb", "kmeans_100gb"}),
        ):
            datasets = {
                plan.dataset_key for plan in design if plan.algorithm == algorithm
            }
            assert datasets == expected

    def test_covers_both_processors_evenly(self, design):
        gpu = sum(1 for plan in design if plan.use_gpu)
        assert gpu == len(design) // 2

    def test_covers_storage_and_scheduling_variants(self, design):
        storages = {plan.storage for plan in design}
        policies = {plan.scheduling for plan in design}
        assert storages == {StorageKind.SHARED, StorageKind.LOCAL}
        assert policies == {
            SchedulingPolicy.GENERATION_ORDER,
            SchedulingPolicy.DATA_LOCALITY,
        }

    def test_cluster_count_extras_present(self, design):
        clusters = {plan.n_clusters for plan in design if plan.algorithm == "kmeans"}
        assert clusters == {10, 100, 1000}

    def test_paper_grid_sets(self, design):
        matmul_grids = {
            plan.grid for plan in design if plan.algorithm == "matmul"
        }
        kmeans_grids = {
            plan.grid for plan in design if plan.algorithm == "kmeans"
        }
        assert matmul_grids == {1, 2, 4, 8, 16}
        assert kmeans_grids == {1, 2, 4, 8, 16, 32, 64, 128, 256}


class TestFeatureSchema:
    def test_fifteen_features_like_figure_11(self):
        assert len(FEATURES) == 15

    def test_one_hot_pairs_present(self):
        assert {"cpu", "gpu"} <= set(FEATURES)
        assert {"shared_disk_storage", "local_disk_storage"} <= set(FEATURES)
        assert {
            "task_gen_order_scheduling",
            "data_locality_scheduling",
        } <= set(FEATURES)

    def test_reference_cells_use_known_features(self):
        for a, b in PAPER_REFERENCE:
            assert a in FEATURES, a
            assert b in FEATURES, b

    def test_reference_signs_match_paper_story(self):
        # Positive: time grows with block size / complexity / shared disk.
        assert PAPER_REFERENCE[("parallel_task_exec_time", "block_size")] > 0
        assert PAPER_REFERENCE[
            ("parallel_task_exec_time", "computational_complexity")
        ] > 0
        assert PAPER_REFERENCE[
            ("parallel_task_exec_time", "shared_disk_storage")
        ] > 0
        # Negative: block size vs grid dimension (Eq. 2); GPU vs measured
        # parallel-fraction time (trend (d)).
        assert PAPER_REFERENCE[("block_size", "grid_dimension")] < 0
        assert PAPER_REFERENCE[("gpu", "parallel_fraction")] < 0


def small_plans() -> list[SamplePlan]:
    """A base-design subset matching the Figure 7 kmeans_100mb sweep."""
    return [
        SamplePlan(
            "kmeans", "kmeans_100mb", grid, 10, gpu,
            StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER,
        )
        for grid in (8, 4)
        for gpu in (False, True)
    ]


class TestEngineReuse:
    def test_base_plans_map_to_figure7_cells(self, design):
        """The §5.4 base sweeps are exactly the Figure 7 cell shapes."""
        from repro.core.experiments.engine import cell_digest, cells_product

        fig7_digests = {
            cell_digest(cell)
            for cell in cells_product(
                "kmeans", (256, 128, 64), dataset_key="kmeans_10gb",
                n_clusters=10,
            )
        }
        design_digests = {cell_digest(plan_cell(plan)) for plan in design}
        assert fig7_digests <= design_digests

    def test_fig11_reuses_deduplicated_cells(self):
        """Running Figure 11 after Figure 7 on a shared engine must not
        re-simulate the shared configurations."""
        engine = SweepEngine.serial()
        run_fig7_for("kmeans", "kmeans_100mb", (8, 4), engine=engine)
        executed_before = engine.stats.executed
        result = run_fig11(plans=small_plans(), engine=engine)
        assert engine.stats.executed == executed_before
        assert engine.stats.memo_hits >= len(small_plans())
        assert result.n_planned == len(small_plans())

    def test_reused_cells_leave_correlation_inputs_unchanged(self):
        """Deduplication is invisible to the analysis: the feature columns
        match a fresh, engine-free run exactly."""
        fresh = run_fig11(plans=small_plans())
        shared_engine = SweepEngine.serial()
        run_fig7_for("kmeans", "kmeans_100mb", (8, 4), engine=shared_engine)
        reused = run_fig11(plans=small_plans(), engine=shared_engine)
        assert reused.columns == fresh.columns
        assert reused.n_samples == fresh.n_samples
        assert reused.n_oom == fresh.n_oom
