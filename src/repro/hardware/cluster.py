"""Simulation-time cluster state.

:class:`SimulatedCluster` instantiates the contended resources of a
:class:`~repro.hardware.specs.ClusterSpec` inside a discrete-event
simulation: CPU core pools and GPU device pools per node, a PCIe channel per
node, local-disk channels per node, and cluster-wide network and shared-disk
channels.  The runtime's simulated executor acquires these resources while
processing task stages, so contention (the paper's storage I/O, network I/O,
and scheduling overheads) emerges from the event dynamics rather than from
closed-form formulas.
"""

from __future__ import annotations

from repro.hardware.gpu import GpuDevice
from repro.hardware.specs import ClusterSpec
from repro.sim import BandwidthResource, CapacityResource, Simulator


class _EmptyDevicePool:
    """Null device pool of a GPU-less node: nothing to grant, ever."""

    capacity = 0
    in_use = 0
    peak_in_use = 0
    available = 0

    def try_request(self, amount: int) -> bool:
        return False

    def release(self, amount: int) -> None:  # pragma: no cover - defensive
        raise RuntimeError("released a device on a GPU-less node")


class SimulatedNode:
    """Per-node contended resources."""

    def __init__(self, sim: Simulator, spec: ClusterSpec, index: int) -> None:
        node = spec.node
        self.index = index
        self.spec = node
        self.cores = CapacityResource(
            sim, node.cpu.cores_per_node, name=f"node{index}.cores"
        )
        self.gpus = (
            CapacityResource(sim, node.gpu.devices_per_node, name=f"node{index}.gpus")
            if node.gpu.devices_per_node > 0
            else _EmptyDevicePool()
        )
        self.gpu_devices = [
            GpuDevice(node.gpu, index=i, node=index)
            for i in range(node.gpu.devices_per_node)
        ]
        self.pcie = BandwidthResource(
            sim,
            node.interconnect.node_bandwidth,
            name=f"node{index}.pcie",
            per_job_cap=node.interconnect.bandwidth_per_transfer,
            latency=node.interconnect.latency,
        )
        self.disk_read = BandwidthResource(
            sim,
            node.local_disk.read_bandwidth,
            name=f"node{index}.disk_read",
            per_job_cap=node.local_disk.per_stream_cap,
            latency=node.local_disk.latency,
        )
        self.disk_write = BandwidthResource(
            sim,
            node.local_disk.write_bandwidth,
            name=f"node{index}.disk_write",
            per_job_cap=node.local_disk.per_stream_cap,
            latency=node.local_disk.latency,
        )
        self._ram_in_use = 0
        self._peak_ram = 0
        self._alive = True

    @property
    def alive(self) -> bool:
        """Whether the node is still part of the cluster.

        A node killed by a :class:`~repro.faults.NodeFault` stops
        accepting work: resource views report no free slots for it.
        """
        return self._alive

    def fail(self) -> None:
        """Take the node out of the cluster (fault injection)."""
        self._alive = False

    def recover(self) -> None:
        """Bring a failed node back after a reboot cooldown.

        Its cores, devices, and channels become schedulable again, but
        any blocks its local disk held remain lost — the executor tracks
        loss per ref, independent of node liveness, so a rebooted node
        never resurrects data.
        """
        self._alive = True

    @property
    def ram_in_use(self) -> int:
        """Host memory currently reserved by running tasks."""
        return self._ram_in_use

    @property
    def ram_free(self) -> int:
        """Host memory still available for new tasks."""
        return self.spec.ram_bytes - self._ram_in_use

    @property
    def peak_ram(self) -> int:
        """High-water mark of reserved host memory."""
        return self._peak_ram

    def reserve_ram(self, nbytes: int) -> None:
        """Charge a task's host working set against node RAM."""
        if nbytes < 0:
            raise ValueError("reservation must be non-negative")
        if nbytes > self.ram_free:
            raise ValueError(
                f"RAM over-reservation on node {self.index}: {nbytes} > "
                f"{self.ram_free} free"
            )
        self._ram_in_use += nbytes
        self._peak_ram = max(self._peak_ram, self._ram_in_use)

    def release_ram(self, nbytes: int) -> None:
        """Return a task's host working set."""
        if nbytes < 0 or nbytes > self._ram_in_use:
            raise ValueError(
                f"invalid RAM release of {nbytes} (in use {self._ram_in_use})"
            )
        self._ram_in_use -= nbytes

    def claim_gpu(self) -> GpuDevice:
        """Pick the device with the most free memory (round-robin-ish).

        The caller must already hold a slot from :attr:`gpus`; this only
        selects which physical device's memory pool to charge.
        """
        return max(self.gpu_devices, key=lambda device: device.free)


class SimulatedCluster:
    """All contended resources of a cluster, bound to one simulator."""

    def __init__(self, sim: Simulator, spec: ClusterSpec) -> None:
        self.sim = sim
        self.spec = spec
        self.nodes = [SimulatedNode(sim, spec, i) for i in range(spec.num_nodes)]
        self.network = BandwidthResource(
            sim,
            spec.network.fabric_bandwidth,
            name="network",
            per_job_cap=spec.network.link_bandwidth,
            latency=spec.network.latency,
        )
        self.shared_disk_read = BandwidthResource(
            sim,
            spec.shared_disk.read_bandwidth,
            name="shared_disk_read",
            per_job_cap=spec.shared_disk.per_stream_cap,
            latency=spec.shared_disk.latency,
        )
        self.shared_disk_write = BandwidthResource(
            sim,
            spec.shared_disk.write_bandwidth,
            name="shared_disk_write",
            per_job_cap=spec.shared_disk.per_stream_cap,
            latency=spec.shared_disk.latency,
        )

    @property
    def total_cpu_cores(self) -> int:
        """CPU cores across all simulated nodes."""
        return self.spec.total_cpu_cores

    @property
    def total_gpus(self) -> int:
        """GPU devices across all simulated nodes."""
        return self.spec.total_gpus

    def node_of_core(self, core_index: int) -> int:
        """Map a global core index to its node index."""
        return core_index // self.spec.node.cpu.cores_per_node
