"""Rendering tests: every figure's textual output carries its content.

The benches print these renders as the reproduction's artefacts, so the
renders themselves are part of the public surface.
"""

import pytest

from repro.core.experiments import (
    run_fig1,
    run_fig6,
    run_fig8,
    run_fig9b,
    run_fig10_for,
    run_fig12,
    run_parallel_ratio_sweep,
)
from repro.hardware import StorageKind
from repro.runtime import SchedulingPolicy


class TestRenders:
    def test_fig1_render_rows(self):
        text = run_fig1(grid_rows=32).render()
        assert "parallel fraction (single task)" in text
        assert "parallel tasks (distributed)" in text
        assert text.count("x") >= 3  # three speedup cells

    def test_fig6_render_columns(self):
        text = run_fig6().render()
        assert "width/height" in text
        assert "matmul_func=64" in text

    def test_fig8_render_and_chart_agree(self):
        result = run_fig8(grids=(4, 2))
        render = result.render()
        chart = result.chart()
        assert "matmul_func" in render and "add_func" in render
        assert "matmul_func" in chart and "add_func" in chart
        assert "Figure 8 shape" in chart

    def test_fig9b_render_shows_skew_levels(self):
        text = run_fig9b(grid=4).render()
        assert "0%" in text and "50%" in text

    def test_fig10_chart_renders_bars(self):
        panel = run_fig10_for(
            "kmeans",
            "kmeans_10gb",
            grids=(16, 1),
            combos=((StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER),),
        )
        chart = panel.chart(
            StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER
        )
        assert "#" in chart
        assert "CPU" in chart and "GPU" in chart

    def test_fig12_render(self):
        text = run_fig12(grids=(4,)).render()
        assert "Figure 12" in text
        assert "fma" in text.lower()

    def test_parallel_ratio_render_footer(self):
        result = run_parallel_ratio_sweep(
            ratios=(0.0, 0.5, 1.0), rows=200_000, grid_rows=8
        )
        text = result.render()
        assert "break-even" in text

    def test_fig10_render_csv(self):
        panel = run_fig10_for(
            "kmeans",
            "kmeans_10gb",
            grids=(16,),
            combos=((StorageKind.SHARED, SchedulingPolicy.GENERATION_ORDER),),
        )
        # The ASCII table converts to CSV without losing columns.
        from repro.core.report import Table

        # build the same table through render() path sanity
        text = panel.render()
        assert "block MB" in text


class TestRenderStability:
    def test_renders_are_deterministic(self):
        a = run_fig6().render()
        b = run_fig6().render()
        assert a == b

    def test_fig1_speedup_formats_paper_convention(self):
        result = run_fig1(grid_rows=32)
        text = result.render()
        # The distributed row uses the paper's negative-speedup notation.
        if result.parallel_tasks_speedup < 1.0:
            assert "-1." in text
