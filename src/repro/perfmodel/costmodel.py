"""Stage-level cost model for CPU-based and GPU-accelerated tasks.

The model follows the task anatomy of the paper's Figure 4:

* **Deserialization** — read the input from storage and decode it into
  memory, on a CPU core.
* **Serial fraction** — single-threaded user code, always on a CPU core.
* **Parallel fraction** — the thread-parallel part of the user code.  On a
  CPU it runs on one core (the runtime pins one task per core, §3.3); on a
  GPU it runs at an effective rate shaped by a roofline
  (``min(peak_flops, mem_bandwidth x arithmetic_intensity)``) scaled by an
  occupancy curve — small kernels cannot fill the device, which is exactly
  why GPU speedup grows with block size in Figures 7-9.
* **CPU-GPU communication** — host<->device transfers over the PCIe bus
  (GPU-accelerated tasks only).
* **Serialization** — encode the output and write it to storage.

Compute-stage durations are closed-form; byte-moving stages are split into a
CPU-side encode/decode part (closed-form) and a storage/bus transfer part
that the simulated executor runs through contended
:class:`~repro.sim.BandwidthResource` channels.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.hardware.specs import ClusterSpec, CpuSpec, GpuSpec


@dataclass(frozen=True)
class TaskCost:
    """Resource demands of one task, derived from its block shape.

    Every algorithm in :mod:`repro.algorithms` maps each of its task types to
    a ``TaskCost``; the cost model turns the demands into stage durations.
    """

    #: FLOPs of the single-threaded fraction of the user code.
    serial_flops: float
    #: FLOPs of the thread-parallelisable fraction of the user code.
    parallel_flops: float
    #: Number of independent work items (GPU threads) in the parallel
    #: fraction; drives device occupancy.
    parallel_items: float
    #: FLOPs per byte touched by the parallel fraction (roofline abscissa).
    arithmetic_intensity: float
    #: Bytes deserialised from storage before the user code runs.
    input_bytes: int
    #: Bytes serialised back to storage after the user code runs.
    output_bytes: int
    #: Total bytes moved over the CPU-GPU bus (host-to-device plus
    #: device-to-host); zero for CPU-based execution.
    host_device_bytes: int
    #: Peak device-memory residency of the task's working set.
    gpu_memory_bytes: int
    #: Kernel-quality factor in (0, 1]: how close the algorithm's GPU
    #: implementation gets to the device's effective rate.
    gpu_efficiency: float = 1.0
    #: Peak host-RAM residency of the task's working set (0 = negligible).
    host_memory_bytes: int = 0

    def __post_init__(self) -> None:
        numeric_fields = (
            "serial_flops",
            "parallel_flops",
            "parallel_items",
            "arithmetic_intensity",
            "input_bytes",
            "output_bytes",
            "host_device_bytes",
            "gpu_memory_bytes",
            "host_memory_bytes",
        )
        for name in numeric_fields:
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0 < self.gpu_efficiency <= 1:
            raise ValueError("gpu_efficiency must be in (0, 1]")

    def scaled(self, factor: float) -> "TaskCost":
        """Uniformly scale the task's work and data volume by ``factor``."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            serial_flops=self.serial_flops * factor,
            parallel_flops=self.parallel_flops * factor,
            parallel_items=self.parallel_items * factor,
            input_bytes=int(self.input_bytes * factor),
            output_bytes=int(self.output_bytes * factor),
            host_device_bytes=int(self.host_device_bytes * factor),
            gpu_memory_bytes=int(self.gpu_memory_bytes * factor),
            host_memory_bytes=int(self.host_memory_bytes * factor),
        )


@dataclass(frozen=True)
class StageTimes:
    """Durations of the Figure-4 stages for one task on one processor type."""

    deserialization_cpu: float
    serial_fraction: float
    parallel_fraction: float
    cpu_gpu_comm: float
    serialization_cpu: float

    @property
    def user_code(self) -> float:
        """Task user code time: serial + parallel + CPU-GPU communication."""
        return self.serial_fraction + self.parallel_fraction + self.cpu_gpu_comm

    @property
    def total_compute(self) -> float:
        """Everything except the storage/bus transfer parts handled by the
        simulator's contended resources."""
        return self.deserialization_cpu + self.user_code + self.serialization_cpu


#: Cache-miss sentinel (``None`` is never a stage-times value).
_MISS = object()


class CostModel:
    """Maps :class:`TaskCost` demands to stage durations on a cluster.

    Stage evaluation is memoized: :meth:`stage_times` (and everything
    built on it, e.g. :meth:`user_code_time`) caches its result keyed on
    ``(TaskCost value, device, threads)``.  Workflows submit thousands of
    tasks sharing a handful of cost profiles — every Matmul
    multiplication task of one block shape, say — so a figure sweep
    evaluates each distinct key once and hits the cache for the rest.

    Invalidation rule: there is none, by construction.  Both sides of
    every cached entry are immutable — :class:`TaskCost` and the
    :class:`~repro.hardware.specs.ClusterSpec` constants are frozen
    dataclasses — so an entry can never go stale within one model
    instance.  Evaluating against different hardware requires a new
    ``CostModel`` (the executor builds one per run); :meth:`clear_cache`
    exists for long-lived models that want to bound memory.
    """

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster
        self.cpu: CpuSpec = cluster.node.cpu
        self.gpu: GpuSpec = cluster.node.gpu
        self._memo: dict = {}

    def clear_cache(self) -> None:
        """Drop all memoized stage evaluations."""
        self._memo.clear()

    # ------------------------------------------------------------------ rates
    def cpu_rate(self, arithmetic_intensity: float) -> float:
        """Effective FLOP/s of one core at the given arithmetic intensity."""
        if arithmetic_intensity <= 0:
            return self.cpu.flops_per_core
        return min(
            self.cpu.flops_per_core,
            self.cpu.mem_bandwidth_per_core * arithmetic_intensity,
        )

    def gpu_rate(
        self,
        arithmetic_intensity: float,
        work_items: float,
        efficiency: float = 1.0,
    ) -> float:
        """Effective FLOP/s of one device for a kernel of the given size."""
        if arithmetic_intensity <= 0:
            roof = self.gpu.flops
        else:
            roof = min(self.gpu.flops, self.gpu.mem_bandwidth * arithmetic_intensity)
        return roof * self.gpu.utilisation(work_items) * efficiency

    # ----------------------------------------------------------- stage times
    def serial_fraction_time(self, cost: TaskCost) -> float:
        """Serial user code always runs on one CPU core."""
        if cost.serial_flops == 0:
            return 0.0
        return cost.serial_flops / self.cpu.flops_per_core

    def cpu_thread_efficiency(self, threads: int) -> float:
        """Parallel efficiency of a multi-threaded CPU task.

        The paper notes (§3.3) that frameworks recommend one task per core
        to avoid over-subscription; this sub-linear scaling curve (memory
        contention + synchronisation) is what the over-subscription
        micro-benchmark rests on.
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        return 1.0 / (1.0 + 0.08 * (threads - 1))

    def parallel_fraction_time_cpu(self, cost: TaskCost, threads: int = 1) -> float:
        """Parallel fraction on ``threads`` pinned CPU cores (default one,
        the paper's recommended configuration)."""
        if cost.parallel_flops == 0:
            return 0.0
        rate = (
            self.cpu_rate(cost.arithmetic_intensity)
            * threads
            * self.cpu_thread_efficiency(threads)
        )
        return cost.parallel_flops / rate

    def parallel_fraction_time_gpu(self, cost: TaskCost) -> float:
        """Parallel fraction on one GPU device, including launch overhead."""
        if cost.parallel_flops == 0:
            return 0.0
        rate = self.gpu_rate(
            cost.arithmetic_intensity, cost.parallel_items, cost.gpu_efficiency
        )
        if rate <= 0:
            raise ValueError("GPU rate is zero for a non-trivial parallel fraction")
        return self.gpu.launch_overhead + cost.parallel_flops / rate

    def cpu_gpu_comm_time(self, cost: TaskCost) -> float:
        """Host<->device transfer time on an uncontended bus.

        The simulated executor replaces this with a transfer through the
        node's PCIe :class:`~repro.sim.BandwidthResource`; both use the same
        per-transfer bandwidth, so single-task analytics and the simulation
        agree when the bus is idle.
        """
        if cost.host_device_bytes == 0:
            return 0.0
        pcie = self.cluster.node.interconnect
        return pcie.latency + cost.host_device_bytes / pcie.bandwidth_per_transfer

    def deserialization_cpu_time(self, cost: TaskCost) -> float:
        """CPU-side decode of the input (storage read is separate)."""
        return cost.input_bytes / self.cpu.serialization_bandwidth

    def serialization_cpu_time(self, cost: TaskCost) -> float:
        """CPU-side encode of the output (storage write is separate)."""
        return cost.output_bytes / self.cpu.serialization_bandwidth

    # ------------------------------------------------------------- summaries
    def stage_times(
        self, cost: TaskCost, use_gpu: bool, threads: int = 1
    ) -> StageTimes:
        """All stage durations for one task on one processor type.

        ``threads`` only affects the CPU parallel fraction (multi-threaded
        tasks of the over-subscription micro-benchmark); it is part of the
        memoization key regardless, so mixed-mode runs never collide.
        """
        key = (cost, use_gpu, threads)
        cached = self._memo.get(key, _MISS)
        if cached is not _MISS:
            return cached
        if use_gpu:
            parallel = self.parallel_fraction_time_gpu(cost)
            comm = self.cpu_gpu_comm_time(cost)
        else:
            parallel = self.parallel_fraction_time_cpu(cost, threads)
            comm = 0.0
        times = StageTimes(
            deserialization_cpu=self.deserialization_cpu_time(cost),
            serial_fraction=self.serial_fraction_time(cost),
            parallel_fraction=parallel,
            cpu_gpu_comm=comm,
            serialization_cpu=self.serialization_cpu_time(cost),
        )
        self._memo[key] = times
        return times

    def stage_times_batch(
        self,
        costs: Sequence[TaskCost],
        use_gpu: bool,
        threads: int = 1,
    ) -> list[StageTimes | None]:
        """Vectorized twin of :meth:`stage_times` over a whole ready batch.

        Evaluates every cache miss in one set of NumPy array expressions
        and fills the memo, so a batched dispatcher (or an executor
        prewarming the model over a DAG's distinct cost profiles) pays
        the closed-form arithmetic once per *batch* instead of once per
        task.  Each array expression performs the identical sequence of
        IEEE-754 float64 operations as the scalar path — same operand
        order, same ``min``/guard structure — and every
        :class:`StageTimes` field is converted back to a Python float, so
        a memo entry produced here is bit-identical to one produced by
        :meth:`stage_times` and traces cannot tell the two apart.

        GPU elements whose parallel fraction is non-trivial but whose
        effective device rate is zero (the configuration
        :meth:`parallel_fraction_time_gpu` rejects) are *not* memoized;
        their slot in the returned list is ``None`` and the scalar path
        raises its usual ``ValueError`` when (and if) such a task is
        actually dispatched — a prewarm must not move that error earlier.
        """
        memo = self._memo
        out: list[StageTimes | None] = [None] * len(costs)
        miss_costs: list[TaskCost] = []
        slot_of_key: dict = {}
        miss_slots: list[tuple[int, int]] = []
        for i, cost in enumerate(costs):
            key = (cost, use_gpu, threads)
            cached = memo.get(key, _MISS)
            if cached is not _MISS:
                out[i] = cached
                continue
            slot = slot_of_key.get(key)
            if slot is None:
                slot = len(miss_costs)
                slot_of_key[key] = slot
                miss_costs.append(cost)
            miss_slots.append((i, slot))
        if not miss_costs:
            return out

        as_array = np.array
        sf = as_array([c.serial_flops for c in miss_costs], dtype=np.float64)
        pf = as_array([c.parallel_flops for c in miss_costs], dtype=np.float64)
        ai = as_array(
            [c.arithmetic_intensity for c in miss_costs], dtype=np.float64
        )
        in_b = as_array([c.input_bytes for c in miss_costs], dtype=np.float64)
        out_b = as_array([c.output_bytes for c in miss_costs], dtype=np.float64)

        ser_bw = self.cpu.serialization_bandwidth
        deser = in_b / ser_bw
        ser = out_b / ser_bw
        # 0.0 / flops_per_core is +0.0, matching the scalar early return,
        # so the serial fraction needs no mask.
        serial = sf / self.cpu.flops_per_core

        with np.errstate(divide="ignore", invalid="ignore"):
            if use_gpu:
                items = as_array(
                    [c.parallel_items for c in miss_costs], dtype=np.float64
                )
                eff = as_array(
                    [c.gpu_efficiency for c in miss_costs], dtype=np.float64
                )
                hdb = as_array(
                    [c.host_device_bytes for c in miss_costs], dtype=np.float64
                )
                gpu = self.gpu
                roof = np.where(
                    ai <= 0,
                    gpu.flops,
                    np.minimum(gpu.flops, gpu.mem_bandwidth * ai),
                )
                util = np.where(items > 0, items / (items + gpu.saturation_items), 0.0)
                rate = roof * util * eff
                # launch_overhead must not leak into zero-work elements,
                # and rate == 0 with pf > 0 is the scalar ValueError case.
                parallel = np.where(pf > 0, gpu.launch_overhead + pf / rate, 0.0)
                valid = ~((pf > 0) & (rate <= 0))
                pcie = self.cluster.node.interconnect
                comm = np.where(
                    hdb > 0,
                    pcie.latency + hdb / pcie.bandwidth_per_transfer,
                    0.0,
                )
            else:
                cpu_rate = np.where(
                    ai <= 0,
                    self.cpu.flops_per_core,
                    np.minimum(
                        self.cpu.flops_per_core,
                        self.cpu.mem_bandwidth_per_core * ai,
                    ),
                )
                rate = cpu_rate * threads * self.cpu_thread_efficiency(threads)
                parallel = pf / rate
                valid = None
                comm = np.zeros(len(miss_costs))

        deser_l = deser.tolist()
        serial_l = serial.tolist()
        parallel_l = parallel.tolist()
        comm_l = comm.tolist()
        ser_l = ser.tolist()
        valid_l = valid.tolist() if valid is not None else None
        computed: list[StageTimes | None] = [None] * len(miss_costs)
        for key, slot in slot_of_key.items():
            if valid_l is not None and not valid_l[slot]:
                continue
            times = StageTimes(
                deserialization_cpu=deser_l[slot],
                serial_fraction=serial_l[slot],
                parallel_fraction=parallel_l[slot],
                cpu_gpu_comm=comm_l[slot],
                serialization_cpu=ser_l[slot],
            )
            memo[key] = times
            computed[slot] = times
        for i, slot in miss_slots:
            out[i] = computed[slot]
        return out

    def user_code_time(self, cost: TaskCost, use_gpu: bool) -> float:
        """Task user code duration (§4.2 metric)."""
        return self.stage_times(cost, use_gpu).user_code

    def parallel_fraction_speedup(self, cost: TaskCost) -> float:
        """GPU-over-CPU speedup of the parallel fraction alone."""
        gpu_time = self.parallel_fraction_time_gpu(cost)
        if gpu_time == 0:
            return 1.0
        return self.parallel_fraction_time_cpu(cost) / gpu_time

    def user_code_speedup(self, cost: TaskCost) -> float:
        """GPU-over-CPU speedup of the full task user code."""
        gpu_time = self.user_code_time(cost, use_gpu=True)
        if gpu_time == 0:
            return 1.0
        return self.user_code_time(cost, use_gpu=False) / gpu_time

    def check_gpu_memory(self, cost: TaskCost) -> None:
        """Raise the paper's 'GPU OOM' condition if the working set cannot fit."""
        from repro.hardware.gpu import GpuOutOfMemoryError

        if cost.gpu_memory_bytes > self.gpu.memory_bytes:
            raise GpuOutOfMemoryError(
                cost.gpu_memory_bytes, self.gpu.memory_bytes, self.gpu.name
            )

    def check_host_memory(self, cost: TaskCost) -> None:
        """Raise 'CPU OOM' if the host working set exceeds node RAM."""
        from repro.hardware.memory import HostOutOfMemoryError

        if cost.host_memory_bytes > self.cluster.node.ram_bytes:
            raise HostOutOfMemoryError(
                cost.host_memory_bytes, self.cluster.node.ram_bytes
            )
