"""Dataset substrate: specs, grid/block partitioning, and generators.

The paper's programming model (§3.5) treats the input as a matrix that the
processing system splits into blocks organised in a grid.  This package
implements that formalism — Eq. (1)/(2) relating dataset, block, and grid
dimensions — plus the synthetic dataset specs of §4.4.5 and NumPy
generators (uniform and skewed, fixed seed) used by the real-execution
backend and the skew experiment (Figure 9b).
"""

from repro.data.blocking import (
    BlockSpec,
    Blocking,
    ChunkingPolicy,
    GridSpec,
    InvalidBlockingError,
)
from repro.data.dataset import DatasetSpec, paper_datasets
from repro.data.generator import generate_matrix, skewed_matrix, uniform_matrix

__all__ = [
    "BlockSpec",
    "Blocking",
    "ChunkingPolicy",
    "DatasetSpec",
    "GridSpec",
    "InvalidBlockingError",
    "generate_matrix",
    "paper_datasets",
    "skewed_matrix",
    "uniform_matrix",
]
