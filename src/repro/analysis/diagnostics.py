"""Diagnostic records emitted by the static workflow analyzer.

A :class:`Diagnostic` is one finding about a workflow, identified by a
stable ``WFnnn`` code so scripts (and CI jobs wrapping ``repro lint``)
can filter or suppress individual rules without string-matching messages.
Codes are grouped by family:

* ``WF0xx`` — graph hazards: structural defects of the task DAG itself.
* ``WF1xx`` — feasibility: demands that cannot be met by the target
  cluster (the paper's "GPU OOM" / "CPU GPU OOM" annotations, predicted
  before anything runs).
* ``WF2xx`` — performance smells: configurations that will run, but in a
  regime the paper's observations O1-O6 identify as slow.
* ``WF3xx`` — resilience: fault-injection plans and recovery policies
  that contradict each other or the target cluster.
* ``WF4xx`` — block-access races: write-write conflicts on one block id,
  read-after-free hazards across node-death/recovery paths, and
  checkpoint/lineage inconsistencies (:mod:`repro.analysis.races`).

An :class:`AnalysisReport` aggregates the findings of one analyzer pass
and renders them as text or JSON.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(str, enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings predict execution failure or a meaningless result;
    :meth:`~repro.runtime.Runtime.run` with ``validate=True`` refuses to
    dispatch a workflow that has any.  ``WARNING`` findings predict a bad
    but survivable outcome; ``INFO`` findings are advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


#: Stable code -> one-line description of every rule the analyzer knows.
#: ``docs/linting.md`` documents each with an example and a fix.
CODES: dict[str, str] = {
    "WF001": "task dependencies form a cycle",
    "WF002": "two tasks claim to produce the same data ref",
    "WF003": "task depends on itself (consumes its own output)",
    "WF004": "duplicate dependency edge between the same two tasks",
    "WF005": "dead task: outputs never consumed nor returned",
    "WF006": "task has no TaskCost for the simulated backend",
    "WF007": "unreachable task: disconnected from the rest of the DAG",
    "WF008": "zero-cost task: a TaskCost whose every stage is zero",
    "WF101": "host working set exceeds node RAM (the paper's 'CPU GPU OOM')",
    "WF102": "GPU working set exceeds device memory (the paper's 'GPU OOM')",
    "WF103": "GPU execution requested on a cluster without GPU devices",
    "WF104": "output block larger than one GPU device's memory",
    "WF201": "kernel launch overhead dominates the GPU parallel fraction (O1)",
    "WF202": "PCIe transfer time exceeds modeled GPU kernel time (O4)",
    "WF203": "DAG width far below the cluster's parallel slot count",
    "WF301": "fault plan injects failures but the retry policy allows no retries",
    "WF302": "fault plan targets a node outside the cluster",
    "WF303": "node faults can destroy the only replica of a barrier output "
    "(no checkpoint policy)",
    "WF304": "speculative re-execution configured on a single-node cluster",
    "WF401": "write-write race: two unordered tasks produce the same block",
    "WF402": "read-after-free: lineage recovery can walk into a "
    "permanently failed producer",
    "WF403": "checkpointed block's producer can be speculatively "
    "re-executed (double checkpoint writes)",
    "WF404": "checkpoint policy names task types absent from the graph",
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    Findings are aggregated per task type: ``task_ids`` lists every
    affected task, ``task_type`` the shared type name (empty for
    graph-wide findings such as a cycle).
    """

    code: str
    severity: Severity
    message: str
    task_ids: tuple[int, ...] = ()
    task_type: str = ""
    #: Actionable suggestion — how to make the finding go away.
    hint: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def to_dict(self) -> dict:
        """JSON-ready representation (``repro lint --format json``)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "task_ids": list(self.task_ids),
            "task_type": self.task_type,
            "hint": self.hint,
        }

    def render(self) -> str:
        """One- or two-line human-readable form."""
        scope = ""
        if self.task_ids:
            shown = ", ".join(f"#{t}" for t in self.task_ids[:5])
            more = len(self.task_ids) - 5
            if more > 0:
                shown += f", ... (+{more} more)"
            label = f" {self.task_type}" if self.task_type else ""
            scope = f" [{len(self.task_ids)} task(s){label}: {shown}]"
        text = f"{self.severity.value.upper():7s} {self.code}: {self.message}{scope}"
        if self.hint:
            text += f"\n        hint: {self.hint}"
        return text


@dataclass
class AnalysisReport:
    """All findings of one static-analysis pass over a workflow."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Label of the cluster the feasibility rules checked against ("" when
    #: the analyzer ran structure-only, without a ClusterSpec).
    cluster: str = ""
    use_gpu: bool = False

    def extend(self, findings: list[Diagnostic]) -> None:
        """Append findings from one rule."""
        self.diagnostics.extend(findings)

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        """Findings of one severity, in emission order."""
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        """Findings that predict failure."""
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        """Findings that predict a bad but survivable outcome."""
        return self.by_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        """Whether the workflow should be refused."""
        return bool(self.errors)

    def codes(self) -> set[str]:
        """The distinct codes present in the report."""
        return {d.code for d in self.diagnostics}

    def summary(self) -> dict[str, int]:
        """Finding counts by severity."""
        return {
            "errors": len(self.by_severity(Severity.ERROR)),
            "warnings": len(self.by_severity(Severity.WARNING)),
            "info": len(self.by_severity(Severity.INFO)),
        }

    def render(self) -> str:
        """The whole report as text (``repro lint`` default output)."""
        lines = []
        header = "workflow analysis"
        if self.cluster:
            header += f" against {self.cluster}"
            header += " (GPU execution)" if self.use_gpu else " (CPU execution)"
        lines.append(header)
        if not self.diagnostics:
            lines.append("no findings: workflow is clean")
            return "\n".join(lines)
        for severity in (Severity.ERROR, Severity.WARNING, Severity.INFO):
            for diagnostic in self.by_severity(severity):
                lines.append(diagnostic.render())
        counts = self.summary()
        lines.append(
            f"{counts['errors']} error(s), {counts['warnings']} warning(s), "
            f"{counts['info']} info"
        )
        return "\n".join(lines)

    def to_json(self, indent: int | None = 2) -> str:
        """The whole report as JSON (``repro lint --format json``).

        The output is byte-stable: diagnostics are ordered by
        (code, task ids, task type) rather than rule-emission order, keys
        are sorted, and the encoding matches
        :func:`~repro.core.persistence.dumps_deterministic` (``indent``
        is accepted for backwards compatibility but the deterministic
        two-space indent always applies), so CI can diff lint reports
        across runs.
        """
        from repro.core.persistence import dumps_deterministic

        ordered = sorted(
            self.diagnostics,
            key=lambda d: (d.code, d.task_ids, d.task_type, d.message),
        )
        return dumps_deterministic(
            {
                "cluster": self.cluster,
                "use_gpu": self.use_gpu,
                "summary": self.summary(),
                "diagnostics": [d.to_dict() for d in ordered],
            }
        )


class WorkflowValidationError(RuntimeError):
    """Raised by ``Runtime.run(validate=True)`` when the analyzer finds
    errors; carries the full :class:`AnalysisReport`."""

    def __init__(self, report: AnalysisReport) -> None:
        self.report = report
        codes = ", ".join(sorted(d.code for d in report.errors))
        super().__init__(
            f"workflow failed static validation with "
            f"{len(report.errors)} error(s) [{codes}]; "
            f"see .report for details"
        )
