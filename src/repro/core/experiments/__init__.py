"""One runner per figure/table of the paper's evaluation (§5).

Each module exposes a ``run_*`` function returning a structured result
object with the figure's series plus a ``render()`` ASCII view.  The
benchmark harness (``benchmarks/``) regenerates every figure through these
runners; EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from repro.core.experiments.runners import RunMetrics, run_workflow
from repro.core.experiments.engine import (
    CellSpec,
    SweepEngine,
    SweepStats,
    cell_digest,
    cells_product,
    model_fingerprint,
)
from repro.core.experiments.fig1 import Fig1Result, run_fig1
from repro.core.experiments.fig6 import Fig6Result, run_fig6
from repro.core.experiments.fig7 import Fig7Result, run_fig7, run_fig7_for
from repro.core.experiments.fig8 import Fig8Result, run_fig8
from repro.core.experiments.fig9 import (
    Fig9aResult,
    Fig9bResult,
    run_fig9a,
    run_fig9b,
)
from repro.core.experiments.fig10 import Fig10Result, run_fig10, run_fig10_for
from repro.core.experiments.fig11 import Fig11Result, run_fig11
from repro.core.experiments.fig12 import Fig12Result, run_fig12
from repro.core.experiments.ext_parallel_ratio import (
    ParallelRatioResult,
    run_parallel_ratio_sweep,
)
from repro.core.experiments.protocol import ProtocolResult, run_with_protocol

__all__ = [
    "CellSpec",
    "ParallelRatioResult",
    "ProtocolResult",
    "SweepEngine",
    "SweepStats",
    "cell_digest",
    "cells_product",
    "model_fingerprint",
    "run_with_protocol",
    "Fig1Result",
    "Fig6Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9aResult",
    "Fig9bResult",
    "Fig10Result",
    "Fig11Result",
    "Fig12Result",
    "RunMetrics",
    "run_fig1",
    "run_fig6",
    "run_fig7",
    "run_fig7_for",
    "run_fig8",
    "run_fig9a",
    "run_fig9b",
    "run_fig10",
    "run_fig10_for",
    "run_fig11",
    "run_fig12",
    "run_parallel_ratio_sweep",
    "run_workflow",
]
