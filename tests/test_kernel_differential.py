"""Differential harness: the batched kernel must equal the reference kernel.

The batched event core (flat heap records, batched ready-set dispatch,
vectorized stage-time evaluation) is only allowed to be *faster* than the
legacy object-per-event kernel — never different.  Every test here runs
the same workflow under ``sim_kernel="batched"`` and
``sim_kernel="reference"`` and asserts the two traces are bit-identical
(task dispatch order, per-stage times, attempt histories, makespan and
failed-task sets, via :func:`repro.tracing.trace_digest`).

Two layers:

* a seeded corpus covering the batched fast path (zero-latency clusters,
  where whole ready batches are drained in one scheduler activation) and
  every configuration that must *fall back* to the reference dispatch
  loop (fault plans, lineage recovery, speculation, checkpoint barriers,
  nonzero dispatch latency);
* a Hypothesis property over random DAG shapes, cluster sizes, storage
  and scheduler choices.

The corpus is the reviewable spec; the property is the fuzzer.  A failure
in either means the batched kernel changed execution semantics — fix the
kernel, never the test.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms import GeneratedDagWorkflow
from repro.faults import CheckpointPolicy, FaultPlan, NodeFault, RetryPolicy
from repro.hardware import StorageKind, minotauro
from repro.runtime import Runtime, RuntimeConfig, SchedulingPolicy
from repro.tracing import trace_digest
from tests.golden_matrix import GOLDEN_FAULT_PLAN, GOLDEN_RETRY_POLICY

KERNELS = ("batched", "reference")


def zero_latency_cluster(num_nodes: int = 4):
    """A cluster whose scheduler decisions take no simulated time.

    This is the configuration under which the batched kernel's dispatcher
    may drain whole ready batches, so it is the one that actually
    exercises the fast path being differentially tested.
    """
    return dataclasses.replace(
        minotauro(num_nodes=num_nodes),
        scheduling_latency={policy: 0.0 for policy in SchedulingPolicy},
        locality_scan_seconds_per_task=0.0,
    )


def run_digest(config: RuntimeConfig, workflow: GeneratedDagWorkflow) -> str:
    runtime = Runtime(config)
    workflow.build(runtime)
    result = runtime.run()
    return trace_digest(result.trace, result.failed_task_ids)


def assert_kernels_agree(make_config, workflow: GeneratedDagWorkflow) -> None:
    digests = {
        kernel: run_digest(
            dataclasses.replace(make_config(), sim_kernel=kernel), workflow
        )
        for kernel in KERNELS
    }
    assert digests["batched"] == digests["reference"], (
        "batched kernel diverged from the reference kernel: "
        f"{digests['batched'][:16]}... != {digests['reference'][:16]}..."
    )


# ------------------------------------------------------------ the corpus

#: Fast-path cells: zero-latency clusters where the batched dispatcher
#: drains ready batches.  Policies x storage x block size x jitter.
DRAIN_CASES = {
    "generation_order-local-small": dict(
        scheduling=SchedulingPolicy.GENERATION_ORDER,
        storage=StorageKind.LOCAL,
        block_mb=0.25,
    ),
    "generation_order-shared-large": dict(
        scheduling=SchedulingPolicy.GENERATION_ORDER,
        storage=StorageKind.SHARED,
        block_mb=4.0,
    ),
    "data_locality-local-large": dict(
        scheduling=SchedulingPolicy.DATA_LOCALITY,
        storage=StorageKind.LOCAL,
        block_mb=4.0,
    ),
    "data_locality-shared-small": dict(
        scheduling=SchedulingPolicy.DATA_LOCALITY,
        storage=StorageKind.SHARED,
        block_mb=0.25,
    ),
    "lifo-local-jitter": dict(
        scheduling=SchedulingPolicy.LIFO,
        storage=StorageKind.LOCAL,
        block_mb=1.0,
        jitter_sigma=0.05,
        jitter_seed=29,
    ),
    "generation_order-local-jitter": dict(
        scheduling=SchedulingPolicy.GENERATION_ORDER,
        storage=StorageKind.LOCAL,
        block_mb=1.0,
        jitter_sigma=0.02,
        jitter_seed=31,
    ),
}


@pytest.mark.parametrize("name", sorted(DRAIN_CASES))
def test_drain_path_kernels_agree(name):
    overrides = dict(DRAIN_CASES[name])
    block_mb = overrides.pop("block_mb")

    def make_config():
        return RuntimeConfig(
            cluster=zero_latency_cluster(), use_gpu=False, **overrides
        )

    workflow = GeneratedDagWorkflow(
        width=32, depth=12, fan_in=2, block_mb=block_mb, seed=5
    )
    assert_kernels_agree(make_config, workflow)


#: Fallback cells: configurations the batched dispatcher must refuse to
#: drain, exercising the reference dispatch loop under the flat heap.
FALLBACK_CASES = {
    "default-latency": dict(),
    "faults-retry": dict(
        fault_plan=GOLDEN_FAULT_PLAN,
        retry_policy=GOLDEN_RETRY_POLICY,
    ),
    "recovery-node-loss": dict(
        storage=StorageKind.LOCAL,
        fault_plan=FaultPlan(node_faults=(NodeFault(node=1, at_time=0.2),)),
        retry_policy=RetryPolicy(max_attempts=3, recover_lost_blocks=True),
    ),
    "speculation": dict(
        fault_plan=FaultPlan(
            stragglers=(dataclasses.replace(GOLDEN_FAULT_PLAN.stragglers[0]),)
        ),
        retry_policy=RetryPolicy(max_attempts=2, speculation_factor=1.5),
    ),
    "checkpoint-barriers": dict(
        storage=StorageKind.LOCAL,
        checkpoint_policy=CheckpointPolicy(every_levels=2),
    ),
}


@pytest.mark.parametrize("name", sorted(FALLBACK_CASES))
def test_fallback_path_kernels_agree(name):
    overrides = FALLBACK_CASES[name]

    def make_config():
        return RuntimeConfig(
            scheduling=SchedulingPolicy.GENERATION_ORDER,
            use_gpu=False,
            **overrides,
        )

    workflow = GeneratedDagWorkflow(
        width=16, depth=8, fan_in=2, block_mb=1.0, seed=9
    )
    assert_kernels_agree(make_config, workflow)


def test_gpu_workflow_kernels_agree():
    def make_config():
        return RuntimeConfig(
            cluster=zero_latency_cluster(),
            use_gpu=True,
            gpu_overflow_to_cpu=True,
        )

    workflow = GeneratedDagWorkflow(
        width=16, depth=6, fan_in=2, block_mb=2.0, parallel_ratio=0.9, seed=3
    )
    assert_kernels_agree(make_config, workflow)


@pytest.mark.parametrize(
    "policy", sorted(SchedulingPolicy, key=lambda p: p.value)
)
def test_same_instant_completion_cascades_agree(policy):
    """Batched dispatch must not reorder same-timestamp task clusters.

    Uniform task costs with no jitter make whole waves of identical
    transfers complete in the same processor-sharing settle — a
    multi-callback completion cascade whose later completions are
    invisible to the event queue while the first callback runs.  The
    batched dispatcher must detect that window (``SimEngine.
    cascade_depth``) and fall back to interleaved reference dispatch;
    draining the ready set mid-cascade reorders scheduling decisions
    against tasks that were about to commit.  This is the exact shape
    that exposed the bug during development; it must stay bit-identical.
    """

    def make_config():
        return RuntimeConfig(
            cluster=zero_latency_cluster(num_nodes=2),
            scheduling=policy,
            storage=StorageKind.LOCAL,
            use_gpu=False,
        )

    workflow = GeneratedDagWorkflow(
        width=4, depth=12, fan_in=2, block_mb=4.0, seed=7
    )
    assert_kernels_agree(make_config, workflow)


# ----------------------------------------------------------- the fuzzer


@given(
    width=st.integers(min_value=2, max_value=10),
    depth=st.integers(min_value=1, max_value=6),
    fan_in=st.integers(min_value=1, max_value=4),
    block_mb=st.sampled_from([0.25, 1.0, 4.0]),
    seed=st.integers(min_value=0, max_value=2**16),
    num_nodes=st.integers(min_value=2, max_value=6),
    policy=st.sampled_from(sorted(SchedulingPolicy, key=lambda p: p.value)),
    storage=st.sampled_from(sorted(StorageKind, key=lambda s: s.value)),
    zero_latency=st.booleans(),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_dags_kernels_agree(
    width, depth, fan_in, block_mb, seed, num_nodes, policy, storage, zero_latency
):
    cluster = (
        zero_latency_cluster(num_nodes)
        if zero_latency
        else minotauro(num_nodes=num_nodes)
    )

    def make_config():
        return RuntimeConfig(
            cluster=cluster,
            scheduling=policy,
            storage=storage,
            use_gpu=False,
        )

    workflow = GeneratedDagWorkflow(
        width=width, depth=depth, fan_in=fan_in, block_mb=block_mb, seed=seed
    )
    assert_kernels_agree(make_config, workflow)
