"""Pre-execution workflow analysis: the ``repro lint`` static analyzer.

The paper's headline failures are all predictable before a single task
runs: Figure 9a's "CPU GPU OOM" (a distance matrix larger than node RAM),
the launch-overhead regime of observation O1, and the transfer-bound
placements of O4 are functions of the DAG, the declared
:class:`~repro.perfmodel.TaskCost` demands, and the cluster spec alone.
This package checks all of them statically and reports structured
:class:`Diagnostic` records with stable ``WFnnn`` codes (documented in
``docs/linting.md``).

Three entry points:

* :func:`analyze` / :func:`analyze_runtime` — library API;
* ``Runtime.run(validate=True)`` — refuse dispatch when errors are found,
  raising :class:`WorkflowValidationError`;
* ``repro lint`` — the CLI front-end (text or JSON output, non-zero exit
  on errors).
"""

from repro.analysis.analyzer import analyze, analyze_runtime, collect_ref_ids
from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
    WorkflowValidationError,
)
from repro.analysis.rules import AnalysisOptions, RuleContext, all_rules

__all__ = [
    "AnalysisOptions",
    "AnalysisReport",
    "CODES",
    "Diagnostic",
    "RuleContext",
    "Severity",
    "WorkflowValidationError",
    "all_rules",
    "analyze",
    "analyze_runtime",
    "collect_ref_ids",
]
