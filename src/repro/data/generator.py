"""Synthetic matrix generators (§4.4.5 and §5.2.3).

The paper generates NumPy float64 matrices with a fixed random state for
reproducibility.  For the skew experiment (§5.2.3) it adapts the uniform
distribution by moving 50% of the elements into certain regions of the
distribution, forcing groups of similar values; :func:`skewed_matrix`
implements the same idea by concentrating a fraction of the elements into a
small number of narrow value bands.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import DatasetSpec


def uniform_matrix(
    rows: int,
    cols: int,
    seed: int = 42,
    dtype: type = np.float64,
) -> np.ndarray:
    """A ``rows x cols`` matrix of uniform [0, 1) values with a fixed seed."""
    rng = np.random.default_rng(seed)
    return rng.random((rows, cols), dtype=dtype)


def skewed_matrix(
    rows: int,
    cols: int,
    skew: float = 0.5,
    bands: int = 4,
    band_width: float = 0.02,
    seed: int = 42,
    dtype: type = np.float64,
) -> np.ndarray:
    """A matrix where ``skew`` of the elements are forced into value bands.

    The remaining ``1 - skew`` of the elements stay uniform on [0, 1); the
    skewed fraction is relocated into ``bands`` narrow intervals, creating
    the grouped-value distribution of §5.2.3.
    """
    if not 0.0 <= skew < 1.0:
        raise ValueError("skew must be in [0, 1)")
    if bands <= 0:
        raise ValueError("bands must be positive")
    if not 0.0 < band_width <= 1.0 / bands:
        raise ValueError("band_width must be in (0, 1/bands]")
    rng = np.random.default_rng(seed)
    data = rng.random((rows, cols), dtype=dtype)
    if skew == 0.0:
        return data
    flat = data.reshape(-1)
    n_skewed = int(flat.size * skew)
    picked = rng.choice(flat.size, size=n_skewed, replace=False)
    band_centres = (np.arange(bands) + 0.5) / bands
    assigned = rng.integers(0, bands, size=n_skewed)
    offsets = (rng.random(n_skewed) - 0.5) * band_width
    flat[picked] = band_centres[assigned] + offsets
    return flat.reshape(rows, cols)


def generate_matrix(spec: DatasetSpec, max_bytes: int = 256 * 2**20) -> np.ndarray:
    """Materialise a :class:`DatasetSpec` as a real NumPy array.

    Refuses specs larger than ``max_bytes`` — full paper-scale datasets
    (up to 100 GB) exist only as specs for the simulated backend; real
    arrays are for the correctness-checking execute backend.
    """
    if spec.size_bytes > max_bytes:
        raise MemoryError(
            f"dataset {spec.name} is {spec.size_bytes / 2**20:.0f} MiB; "
            f"materialisation is capped at {max_bytes / 2**20:.0f} MiB "
            "(use the simulated backend for paper-scale runs)"
        )
    if spec.skew > 0:
        return skewed_matrix(spec.rows, spec.cols, skew=spec.skew, seed=spec.seed)
    return uniform_matrix(spec.rows, spec.cols, seed=spec.seed)
