"""Trace export, import, and text visualisation.

The paper collected Paraver traces from the PyCOMPSs runtime (§4.4.3);
this module is the reproduction's counterpart: traces serialise to JSON
Lines for offline analysis, round-trip losslessly, and render as an ASCII
Gantt chart — one row per (node, core), time binned into columns, each
cell showing the dominant stage.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.tracing.trace import Stage, StageRecord, TaskAttempt, TaskRecord, Trace

#: One-character glyphs per stage for the Gantt rendering.
_STAGE_GLYPHS = {
    Stage.SCHEDULING: "s",
    Stage.DESERIALIZATION: "d",
    Stage.SERIAL_FRACTION: "F",
    Stage.PARALLEL_FRACTION: "P",
    Stage.CPU_GPU_COMM: "c",
    Stage.SERIALIZATION: "w",
    Stage.FAILURE: "x",
    Stage.RETRY_WAIT: "r",
    Stage.RECOMPUTE: "R",
    Stage.CHECKPOINT_WRITE: "k",
    Stage.SPECULATIVE: "S",
}


def dump_trace(trace: Trace, target: IO[str] | str | Path) -> None:
    """Write a trace as JSON Lines (one record per line).

    Stage records carry ``kind: "stage"``, task records ``kind: "task"``,
    attempt records ``kind: "attempt"``.
    """
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            dump_trace(trace, handle)
        return
    for record in trace.stages:
        payload = {
            "kind": "stage",
            "task_id": record.task_id,
            "task_type": record.task_type,
            "stage": record.stage.value,
            "start": record.start,
            "end": record.end,
            "node": record.node,
            "core": record.core,
            "level": record.level,
            "used_gpu": record.used_gpu,
            "attempt": record.attempt,
        }
        target.write(json.dumps(payload) + "\n")
    for task in trace.tasks:
        payload = {
            "kind": "task",
            "task_id": task.task_id,
            "task_type": task.task_type,
            "start": task.start,
            "end": task.end,
            "node": task.node,
            "core": task.core,
            "level": task.level,
            "used_gpu": task.used_gpu,
            "attempt": task.attempt,
        }
        target.write(json.dumps(payload) + "\n")
    for attempt in trace.attempts:
        payload = {
            "kind": "attempt",
            "task_id": attempt.task_id,
            "task_type": attempt.task_type,
            "attempt": attempt.attempt,
            "start": attempt.start,
            "end": attempt.end,
            "node": attempt.node,
            "core": attempt.core,
            "level": attempt.level,
            "used_gpu": attempt.used_gpu,
            "outcome": attempt.outcome,
        }
        target.write(json.dumps(payload) + "\n")


def load_trace(source: IO[str] | str | Path) -> Trace:
    """Read a trace written by :func:`dump_trace`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return load_trace(handle)
    trace = Trace()
    for line_number, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        kind = payload.pop("kind", None)
        if kind == "stage":
            payload["stage"] = Stage(payload["stage"])
            trace.add_stage(StageRecord(**payload))
        elif kind == "task":
            trace.add_task(TaskRecord(**payload))
        elif kind == "attempt":
            trace.add_attempt(TaskAttempt(**payload))
        else:
            raise ValueError(f"line {line_number}: unknown record kind {kind!r}")
    return trace


def gantt(
    trace: Trace,
    width: int = 100,
    max_rows: int = 40,
) -> str:
    """Render the trace as an ASCII Gantt chart.

    One row per (node, core) that executed anything, columns binning the
    makespan into ``width`` slots.  Cell glyphs: d=deserialization,
    F=serial fraction, P=parallel fraction, c=CPU-GPU comm,
    w=serialization; '.' is idle.
    """
    if not trace.stages:
        return "(empty trace)"
    t0 = min(r.start for r in trace.stages)
    t1 = max(r.end for r in trace.stages)
    span = max(t1 - t0, 1e-12)
    rows: dict[tuple[int, int], list[str]] = {}
    for record in sorted(trace.stages, key=lambda r: (r.start, r.end)):
        key = (record.node, record.core)
        row = rows.setdefault(key, ["."] * width)
        glyph = _STAGE_GLYPHS.get(record.stage, "?")
        first = int((record.start - t0) / span * (width - 1))
        last = int((record.end - t0) / span * (width - 1))
        for column in range(first, last + 1):
            row[column] = glyph
    lines = [
        f"Gantt over {span:.3f}s "
        "(d=deser F=serial P=parallel c=comm w=ser .=idle)"
    ]
    for key in sorted(rows)[:max_rows]:
        node, core = key
        lines.append(f"n{node:02d}/c{core:02d} |" + "".join(rows[key]) + "|")
    hidden = len(rows) - max_rows
    if hidden > 0:
        lines.append(f"... {hidden} more cores")
    return "\n".join(lines)
