"""Execution-ledger contracts: append/replay round-trips, crash
consistency (torn tails tolerated, mid-file corruption refused), and the
resume bookkeeping (`done_records`, `unfinished`) the sweep engine's
``--resume`` path is built on."""

import json

import pytest

from repro.core.ledger import (
    DISPATCHED,
    DONE,
    FAILED,
    OPEN,
    PENDING,
    QUARANTINED,
    RESUME,
    SCHEMA,
    ExecutionLedger,
    LedgerError,
    iter_events,
    replay_ledger,
)


def _journal(tmp_path):
    return tmp_path / "ledger.jsonl"


class TestAppend:
    def test_round_trip_through_replay(self, tmp_path):
        path = _journal(tmp_path)
        with ExecutionLedger(path, fsync=False) as ledger:
            ledger.open_session()
            ledger.append(PENDING, item="a")
            ledger.append(DISPATCHED, item="a", worker=0, attempt=1)
            ledger.append(DONE, item="a", record={"makespan": 1.5}, duration=0.25)
        state = replay_ledger(path)
        assert state.sessions == 1
        assert state.events == 4
        assert not state.torn
        assert state.done == ["a"]
        item = state.items["a"]
        assert item.terminal
        assert item.attempts == 1
        assert item.worker == 0
        assert item.record == {"makespan": 1.5}
        assert item.duration == 0.25

    def test_seq_is_monotonic_and_none_fields_dropped(self, tmp_path):
        path = _journal(tmp_path)
        with ExecutionLedger(path, fsync=False) as ledger:
            ledger.append(PENDING, item="a", worker=None)
            ledger.append(PENDING, item="b")
        entries = list(iter_events(path))
        assert [e["seq"] for e in entries] == [0, 1]
        assert "worker" not in entries[0]

    def test_states_require_items_and_markers_refuse_them(self, tmp_path):
        with ExecutionLedger(_journal(tmp_path), fsync=False) as ledger:
            with pytest.raises(ValueError, match="need an item"):
                ledger.append(DONE)
            with pytest.raises(ValueError, match="session marker"):
                ledger.append(OPEN, item="a")
            with pytest.raises(ValueError, match="unknown ledger state"):
                ledger.append("EXPLODED", item="a")

    def test_session_markers_carry_the_schema(self, tmp_path):
        path = _journal(tmp_path)
        with ExecutionLedger(path, fsync=False) as ledger:
            ledger.open_session()
            ledger.open_session(resumed=True)
        opened, resumed = iter_events(path)
        assert opened["state"] == OPEN and opened["schema"] == SCHEMA
        assert resumed["state"] == RESUME and resumed["schema"] == SCHEMA

    def test_appends_survive_reopening(self, tmp_path):
        """Two sequential writers (run, then resume) extend one journal."""
        path = _journal(tmp_path)
        with ExecutionLedger(path, fsync=False) as ledger:
            ledger.append(PENDING, item="a")
        with ExecutionLedger(path, fsync=False) as ledger:
            ledger.append(DONE, item="a", record={})
        state = replay_ledger(path)
        assert state.done == ["a"]
        assert state.events == 2


class TestCrashConsistency:
    def test_missing_file_replays_empty(self, tmp_path):
        state = replay_ledger(_journal(tmp_path))
        assert state.items == {} and state.events == 0 and not state.torn

    def test_torn_final_line_is_dropped(self, tmp_path):
        """A SIGKILL mid-append leaves a partial last line; replay keeps
        everything before it and flags the tear."""
        path = _journal(tmp_path)
        with ExecutionLedger(path, fsync=False) as ledger:
            ledger.append(PENDING, item="a")
            ledger.append(DONE, item="a", record={"makespan": 2.0})
        raw = path.read_bytes()
        path.write_bytes(raw + b'{"seq": 2, "state": "DIS')  # cut mid-write
        state = replay_ledger(path)
        assert state.torn
        assert state.events == 2
        assert state.done == ["a"]

    def test_mid_file_corruption_raises(self, tmp_path):
        """Garbage *before* the final line is not a torn append — it means
        two uncoordinated writers or disk damage, and replay must refuse
        to guess."""
        path = _journal(tmp_path)
        with ExecutionLedger(path, fsync=False) as ledger:
            ledger.append(PENDING, item="a")
        raw = path.read_bytes()
        path.write_bytes(b"not json at all\n" + raw)
        with pytest.raises(LedgerError, match="corrupt journal line 1"):
            list(iter_events(path))

    def test_non_event_entries_raise(self, tmp_path):
        path = _journal(tmp_path)
        path.write_text(json.dumps({"no_state": True}) + "\n")
        with pytest.raises(LedgerError, match="not an event"):
            list(iter_events(path))


class TestReplayBookkeeping:
    def test_latest_state_wins_and_attempts_accumulate(self, tmp_path):
        path = _journal(tmp_path)
        with ExecutionLedger(path, fsync=False) as ledger:
            ledger.append(PENDING, item="a")
            ledger.append(DISPATCHED, item="a", worker=0, attempt=1)
            ledger.append(DISPATCHED, item="a", worker=2, attempt=2)
            ledger.append(FAILED, item="a", error="ValueError: boom")
        item = replay_ledger(path).items["a"]
        assert item.state == FAILED
        assert item.attempts == 2
        assert item.worker == 2
        assert item.error == "ValueError: boom"

    def test_done_records_and_unfinished_partition_the_items(self, tmp_path):
        path = _journal(tmp_path)
        with ExecutionLedger(path, fsync=False) as ledger:
            ledger.append(DONE, item="done1", record={"v": 1})
            ledger.append(DONE, item="done2", record={"v": 2})
            ledger.append(PENDING, item="never_started")
            ledger.append(DISPATCHED, item="in_flight", attempt=1)
            ledger.append(QUARANTINED, item="poison", error="killed workers")
        state = replay_ledger(path)
        assert state.done_records() == {"done1": {"v": 1}, "done2": {"v": 2}}
        assert state.unfinished == ["in_flight", "never_started"]
        assert state.by_state(QUARANTINED) == ["poison"]
        assert state.items["poison"].terminal
