"""Unit tests for the stage cost model and its calibration."""

import pytest

from repro.hardware import GpuOutOfMemoryError, HostOutOfMemoryError, minotauro
from repro.perfmodel import CostModel, TaskCost
from repro.perfmodel.calibration import verify_calibration_consistency


def _cost(**overrides) -> TaskCost:
    base = dict(
        serial_flops=1e9,
        parallel_flops=1e10,
        parallel_items=1e6,
        arithmetic_intensity=10.0,
        input_bytes=10**8,
        output_bytes=10**7,
        host_device_bytes=10**8,
        gpu_memory_bytes=10**8,
    )
    base.update(overrides)
    return TaskCost(**base)


@pytest.fixture
def model() -> CostModel:
    return CostModel(minotauro())


class TestTaskCost:
    def test_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            _cost(serial_flops=-1)
        with pytest.raises(ValueError):
            _cost(input_bytes=-1)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            _cost(gpu_efficiency=0.0)
        with pytest.raises(ValueError):
            _cost(gpu_efficiency=1.5)

    def test_scaled_multiplies_everything(self):
        cost = _cost()
        double = cost.scaled(2.0)
        assert double.parallel_flops == cost.parallel_flops * 2
        assert double.input_bytes == cost.input_bytes * 2
        assert double.gpu_memory_bytes == cost.gpu_memory_bytes * 2

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            _cost().scaled(0.0)


class TestRates:
    def test_cpu_rate_compute_bound(self, model):
        # High arithmetic intensity: limited by FLOP rate.
        assert model.cpu_rate(1000.0) == model.cpu.flops_per_core

    def test_cpu_rate_memory_bound(self, model):
        # Very low intensity: limited by memory bandwidth x intensity.
        ai = 1 / 24
        expected = model.cpu.mem_bandwidth_per_core * ai
        assert model.cpu_rate(ai) == pytest.approx(expected)

    def test_gpu_rate_scales_with_occupancy(self, model):
        small = model.gpu_rate(1000.0, work_items=1e4)
        large = model.gpu_rate(1000.0, work_items=1e9)
        assert small < large <= model.gpu.flops

    def test_gpu_efficiency_scales_rate(self, model):
        full = model.gpu_rate(1000.0, 1e8, efficiency=1.0)
        half = model.gpu_rate(1000.0, 1e8, efficiency=0.5)
        assert half == pytest.approx(full / 2)


class TestStageTimes:
    def test_zero_fractions_cost_nothing(self, model):
        cost = _cost(serial_flops=0, parallel_flops=0, host_device_bytes=0)
        times = model.stage_times(cost, use_gpu=False)
        assert times.serial_fraction == 0.0
        assert times.parallel_fraction == 0.0
        assert times.cpu_gpu_comm == 0.0

    def test_cpu_tasks_have_no_comm(self, model):
        times = model.stage_times(_cost(), use_gpu=False)
        assert times.cpu_gpu_comm == 0.0

    def test_gpu_tasks_pay_comm(self, model):
        times = model.stage_times(_cost(), use_gpu=True)
        pcie = model.cluster.node.interconnect
        expected = pcie.latency + 1e8 / pcie.bandwidth_per_transfer
        assert times.cpu_gpu_comm == pytest.approx(expected)

    def test_user_code_is_sum_of_stages(self, model):
        times = model.stage_times(_cost(), use_gpu=True)
        assert times.user_code == pytest.approx(
            times.serial_fraction + times.parallel_fraction + times.cpu_gpu_comm
        )

    def test_serial_fraction_identical_on_both_processors(self, model):
        cost = _cost()
        cpu = model.stage_times(cost, use_gpu=False)
        gpu = model.stage_times(cost, use_gpu=True)
        assert cpu.serial_fraction == gpu.serial_fraction


class TestSpeedups:
    def test_big_compute_bound_kernel_gets_near_peak_speedup(self, model):
        cost = _cost(parallel_flops=1e14, parallel_items=1e9, serial_flops=0)
        ratio = model.gpu.flops / model.cpu.flops_per_core
        speedup = model.parallel_fraction_speedup(cost)
        assert 0.9 * ratio < speedup <= ratio

    def test_tiny_kernel_gets_poor_speedup(self, model):
        cost = _cost(parallel_flops=1e7, parallel_items=1e3)
        assert model.parallel_fraction_speedup(cost) < 1.0

    def test_user_code_speedup_below_parallel_fraction_speedup(self, model):
        # Amdahl: serial fraction and comm can only reduce the gain.
        cost = _cost(parallel_flops=1e13, parallel_items=1e9)
        assert model.user_code_speedup(cost) < model.parallel_fraction_speedup(cost)

    def test_speedup_grows_with_work(self, model):
        speedups = [
            model.parallel_fraction_speedup(
                _cost(parallel_flops=f, parallel_items=f / 100)
            )
            for f in (1e9, 1e11, 1e13)
        ]
        assert speedups == sorted(speedups)


class TestMemoryChecks:
    def test_gpu_oom(self, model):
        with pytest.raises(GpuOutOfMemoryError):
            model.check_gpu_memory(_cost(gpu_memory_bytes=13 * 1024**3))
        model.check_gpu_memory(_cost(gpu_memory_bytes=12 * 1024**3))

    def test_host_oom(self, model):
        with pytest.raises(HostOutOfMemoryError):
            model.check_host_memory(_cost(host_memory_bytes=129 * 1024**3))
        model.check_host_memory(_cost(host_memory_bytes=128 * 1024**3))


class TestCalibration:
    def test_notes_match_spec(self):
        assert verify_calibration_consistency() == []

    def test_matmul_2048mb_block_lands_near_21x(self):
        # The paper's Figure 8 peak: a 2048 MB matmul block reaches ~21x.
        model = CostModel(minotauro())
        n = 16_384
        flops = 2.0 * n**3
        in_bytes = 2 * 8 * n * n
        out_bytes = 8 * n * n
        cost = TaskCost(
            serial_flops=0.0,
            parallel_flops=flops,
            parallel_items=float(n * n),
            arithmetic_intensity=flops / (in_bytes + out_bytes),
            input_bytes=in_bytes,
            output_bytes=out_bytes,
            host_device_bytes=in_bytes + out_bytes,
            gpu_memory_bytes=in_bytes + out_bytes,
        )
        assert 18.0 <= model.user_code_speedup(cost) <= 25.0
