"""Additional cluster presets beyond the paper's testbed.

:func:`minotauro` (in :mod:`repro.hardware.specs`) is the measured
configuration; these presets support what-if studies (§5.5.2 argues the
findings transfer across GPU generations — these are the clusters to
check that claim against).
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.hardware.specs import ClusterSpec, minotauro

GIB = 1024**3


def modern(num_nodes: int = 8) -> ClusterSpec:
    """An A100-class cluster on NVLink-class interconnect.

    Same topology as Minotauro (so comparisons isolate the device
    generation): 16 cores + 4 devices per node, but each device has 40 GiB
    of memory, ~9.5 TFLOP/s effective compute, 1.5 TB/s device memory
    bandwidth, and a 20 GB/s per-transfer host link.
    """
    base = minotauro(num_nodes)
    gpu = dataclasses.replace(
        base.node.gpu,
        name="A100-class device",
        memory_bytes=40 * GIB,
        flops=9_500.0e9,
        mem_bandwidth=1_500.0e9,
        saturation_items=4.0e7,
    )
    interconnect = dataclasses.replace(
        base.node.interconnect,
        name="NVLink-class interconnect",
        bandwidth_per_transfer=20.0e9,
        node_bandwidth=80.0e9,
    )
    node = dataclasses.replace(base.node, gpu=gpu, interconnect=interconnect)
    return dataclasses.replace(base, name=f"modern-{num_nodes}", node=node)


def cpu_only(num_nodes: int = 8) -> ClusterSpec:
    """Minotauro stripped of its GPU devices.

    The baseline for CPU-only what-ifs — and the cluster on which the
    static analyzer's ``WF103`` rule fires when a GPU run is requested.
    """
    base = minotauro(num_nodes)
    gpu = dataclasses.replace(base.node.gpu, devices_per_node=0)
    node = dataclasses.replace(base.node, gpu=gpu)
    return dataclasses.replace(base, name=f"cpu-only-{num_nodes}", node=node)


def cluster_presets() -> dict[str, Callable[..., ClusterSpec]]:
    """Name -> factory for every bundled cluster preset (CLI ``--preset``)."""
    return {
        "minotauro": minotauro,
        "modern": modern,
        "fat_storage": fat_storage,
        "cpu_only": cpu_only,
    }


def fat_storage(num_nodes: int = 8) -> ClusterSpec:
    """Minotauro with an NVMe-backed parallel file system.

    For storage what-ifs: 32 GB/s aggregate shared reads with 4 GB/s
    per stream — the §4.3 disk-throughput deferred parameter, turned up.
    """
    base = minotauro(num_nodes)
    shared = dataclasses.replace(
        base.shared_disk,
        name="NVMe parallel FS",
        read_bandwidth=32.0e9,
        write_bandwidth=24.0e9,
        per_stream_cap=4.0e9,
        latency=1.0e-4,
    )
    return dataclasses.replace(
        base, name=f"fat-storage-{num_nodes}", shared_disk=shared
    )
