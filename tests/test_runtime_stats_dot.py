"""Tests for resource-utilisation stats and DOT export."""

import pytest

from repro.algorithms import KMeansWorkflow, MatmulWorkflow
from repro.data import DatasetSpec, paper_datasets
from repro.hardware import StorageKind, minotauro
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.backends.simulated import SimulatedExecutor
from repro.runtime.scheduler import SchedulingPolicy


def _run_and_stats(storage, use_gpu=False, grid_rows=64):
    executor = SimulatedExecutor(
        cluster_spec=minotauro(),
        storage=storage,
        scheduling=SchedulingPolicy.GENERATION_ORDER,
        use_gpu=use_gpu,
    )
    rt = Runtime(RuntimeConfig())
    KMeansWorkflow(
        paper_datasets()["kmeans_10gb"], grid_rows=grid_rows, n_clusters=10,
        iterations=1,
    ).build(rt)
    executor.execute(rt.graph)
    return executor.resource_stats()


class TestResourceStats:
    def test_shared_storage_uses_shared_disk_only(self):
        stats = _run_and_stats(StorageKind.SHARED)
        assert stats.shared_disk_read_bytes > 0
        assert stats.local_disk_read_bytes == 0
        # Reads cross the network to GPFS.
        assert stats.network_bytes > 0

    def test_local_storage_uses_local_disks(self):
        stats = _run_and_stats(StorageKind.LOCAL)
        assert stats.local_disk_read_bytes > 0
        assert stats.shared_disk_read_bytes == 0

    def test_read_volume_close_to_dataset_size(self):
        stats = _run_and_stats(StorageKind.SHARED)
        dataset_bytes = paper_datasets()["kmeans_10gb"].size_bytes
        # One iteration reads every block once (plus small centroid refs).
        assert stats.shared_disk_read_bytes == pytest.approx(
            dataset_bytes, rel=0.05
        )

    def test_pcie_only_used_in_gpu_mode(self):
        cpu_stats = _run_and_stats(StorageKind.SHARED, use_gpu=False)
        gpu_stats = _run_and_stats(StorageKind.SHARED, use_gpu=True)
        assert cpu_stats.pcie_bytes == 0
        assert gpu_stats.pcie_bytes > 0

    def test_peak_gpus_bounded(self):
        stats = _run_and_stats(StorageKind.SHARED, use_gpu=True, grid_rows=128)
        assert 0 < stats.peak_gpus_in_use <= 32

    def test_peak_cores_bounded_by_cluster(self):
        stats = _run_and_stats(StorageKind.SHARED, grid_rows=256)
        assert 0 < stats.peak_cores_in_use <= 128

    def test_concurrent_shared_readers_tracked(self):
        stats = _run_and_stats(StorageKind.SHARED, grid_rows=256)
        assert stats.peak_concurrent_shared_reads > 1


class TestDotExport:
    def _graph(self):
        rt = Runtime(RuntimeConfig())
        MatmulWorkflow(DatasetSpec("d", rows=64, cols=64), grid=2).build(rt)
        return rt.graph

    def test_dot_structure(self):
        dot = self._graph().to_dot()
        assert dot.startswith("digraph workflow {")
        assert dot.rstrip().endswith("}")
        assert "matmul_func" in dot
        assert "->" in dot

    def test_vertex_and_edge_counts(self):
        graph = self._graph()
        dot = graph.to_dot()
        assert dot.count("->") == graph.num_edges
        assert dot.count("[label=") == graph.num_tasks

    def test_types_get_distinct_colours(self):
        dot = self._graph().to_dot()
        colours = {
            line.split("fillcolor=")[1].rstrip("];")
            for line in dot.splitlines()
            if "fillcolor=" in line
        }
        assert len(colours) == 2  # matmul_func and add_func

    def test_size_guard(self):
        rt = Runtime(RuntimeConfig())
        MatmulWorkflow(DatasetSpec("d", rows=64, cols=64), grid=8).build(rt)
        with pytest.raises(ValueError, match="raise max_tasks"):
            rt.graph.to_dot(max_tasks=10)
